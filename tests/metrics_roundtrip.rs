//! Observability round-trip: a live farm run under injected faults and a
//! simulated fault replay of the *same captured structure* export into one
//! [`MetricsRegistry`], and their re-dispatch accounts agree line-for-line.
//!
//! This pins the PR's unified-snapshot contract: skeleton taps
//! (`Partition.packs_issued`, `Partition.redispatched`), fabric taps
//! (`fabric.retries`), and [`SimReport::install_metrics`] all land in the
//! same [`Snapshot`] namespace, so a simulated cluster run and a live run
//! can be diffed with `to_text()` alone.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use weavepar::cluster::{
    simulate_schedule, simulate_with_faults, ClusterConfig, FaultTimeline, MiddlewareProfile,
    Placement, SimParams,
};
use weavepar::distribution::{Backoff, FaultAction, FaultPlan, FaultRule, RequestClass};
use weavepar::prelude::*;
use weavepar::weave::trace::Recorder;
use weavepar::weave::value::downcast_ret;
use weavepar::{args, ret, weaveable};

/// The chaos seed: `CHAOS_SEED` from the environment (ci.sh's randomised
/// run) or a pinned default. Assertion messages carry it so a failing
/// randomised run prints how to replay itself.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE)
}

struct Cruncher;

weaveable! {
    class Cruncher as CruncherProxy {
        fn new() -> Self { Cruncher }
        fn crunch(&mut self, items: Vec<u64>) -> Vec<u64> {
            items.into_iter().map(|x| x * x).collect()
        }
    }
}

fn marshal() -> MarshalRegistry {
    let m = MarshalRegistry::new();
    m.register::<(), ()>("Cruncher", "new");
    m.register::<(Vec<u64>,), Vec<u64>>("Cruncher", "crunch");
    m
}

fn protocol(workers: usize, packs: usize) -> Protocol {
    Protocol {
        class: "Cruncher",
        method: "crunch",
        workers,
        worker_args: Arc::new(|_r, _n, _orig: &Args| Ok(args![])),
        split: Arc::new(move |a: &Args| {
            let items = a.get::<Vec<u64>>(0)?;
            let chunk = items.len().div_ceil(packs.max(1)).max(1);
            Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
        }),
        reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
        combine: Arc::new(|vs: Vec<AnyValue>| {
            let mut all = Vec::new();
            for v in vs {
                all.extend(downcast_ret::<Vec<u64>>(v)?);
            }
            Ok(ret!(all))
        }),
    }
}

/// Farm + RMI distribution over a fresh 2-node fabric, everything metered
/// into `registry`.
fn metered_farm(registry: &MetricsRegistry) -> (Weaver, Arc<InProcFabric>) {
    let fabric = InProcFabric::new(2, marshal());
    fabric.register_class::<Cruncher>();
    let weaver = Weaver::new();
    weaver.plug(FarmConfig::new(protocol(2, 4)).metrics(registry).aspect("Partition"));
    weaver.plug(
        RmiConfig::new("Cruncher", Pointcut::call("Cruncher.crunch"), fabric.clone())
            .metrics(registry)
            .aspect("Distribution"),
    );
    (weaver, fabric)
}

#[test]
fn live_redispatches_match_simulated_fault_replay() {
    let registry = MetricsRegistry::new();

    // --- 1. Capture the farm's structure. Like the benchmark harness, the
    // capture runs without the distribution aspect (the recorder sees only
    // locally executed join points); node placement and faults are applied
    // during replay. ---
    let recorder = Recorder::measuring();
    let rec_weaver = Weaver::new();
    rec_weaver.plug(FarmConfig::new(protocol(2, 4)).aspect("Partition"));
    rec_weaver.set_recorder(Some(recorder.clone()));
    let c = CruncherProxy::construct(&rec_weaver).unwrap();
    let input: Vec<u64> = (0..16).collect();
    let expect: Vec<u64> = input.iter().map(|x| x * x).collect();
    assert_eq!(c.crunch(input.clone()).unwrap(), expect);
    rec_weaver.set_recorder(None);
    let trace = recorder.finish();

    // Mirror the live placement: `RmiConfig` defaults to round-robin
    // construction placement, so the k-th constructed object (in trace
    // order) lives on node k % 2.
    let mut by_obj: HashMap<ObjId, usize> = HashMap::new();
    let mut constructed = 0usize;
    for t in &trace.tasks {
        if t.signature.is_construction() {
            if let Some(obj) = t.target {
                by_obj.insert(obj, constructed % 2);
                constructed += 1;
            }
        }
    }
    // The farm serves worker 0 from the root object itself, so the trace
    // holds exactly two constructions: the root (→ node 0, like the live
    // round-robin) and one duplicate (→ node 1).
    assert_eq!(constructed, 2, "root + 1 duplicated worker were constructed");
    let params = SimParams {
        cluster: ClusterConfig {
            nodes: 2,
            cores_per_node: 2,
            link_latency: 60e-6,
            bandwidth: 117e6,
            cpu_speed: 1.0,
        },
        middleware: MiddlewareProfile::rmi(),
        placement: Placement::ByObject(by_obj),
        client_node: 0,
        cpu_inflation: 1.0,
        packing: None,
    };

    // --- 2. Replay with node 1 crashing right after its constructions. ---
    // The kill time comes from the fault-free schedule, so every `crunch`
    // pack bound to node 1 is lost mid-flight and re-dispatched — the same
    // packs the live farm below loses.
    let (_, schedule) = simulate_schedule(&trace, &params);
    let constructions_done = schedule
        .entries
        .iter()
        .filter(|e| e.signature.is_construction())
        .map(|e| e.end)
        .fold(0.0f64, f64::max);
    let faults = FaultTimeline::new().kill(1, constructions_done + 1e-9);
    let report = simulate_with_faults(&trace, &params, &faults).unwrap();
    assert!(report.redispatched > 0, "the replay lost node 1's in-flight packs");
    report.install_metrics(&registry, "sim");

    // --- 3. The live run: same farm, node 1 killed before the call. ---
    let (weaver, fabric) = metered_farm(&registry);
    let c = CruncherProxy::construct(&weaver).unwrap();
    fabric.kill_node(1).unwrap();
    assert_eq!(c.crunch(input).unwrap(), expect, "node loss degrades, never corrupts");

    // --- 4. One snapshot holds both accounts, and they agree. ---
    let snap = registry.snapshot();
    assert_eq!(snap.counter("Partition.packs_issued"), Some(4));
    assert_eq!(
        snap.counter("Partition.redispatched"),
        snap.counter("sim.redispatched"),
        "live farm and simulated replay disagree on re-dispatches:\n{}",
        snap.to_text()
    );
    let redispatched = snap.counter("Partition.redispatched").unwrap();
    assert!(redispatched > 0, "the live farm re-dispatched the dead node's packs");
    assert_eq!(
        snap.counter("Distribution.calls"),
        Some(4 + redispatched),
        "every pack plus every re-dispatch crossed the middleware"
    );
}

#[test]
fn chaos_drops_surface_as_retries_in_the_snapshot() {
    let seed = chaos_seed();
    let registry = MetricsRegistry::new();
    let fabric = InProcFabric::new(2, marshal());
    fabric.register_class::<Cruncher>();
    fabric.install_metrics(&registry, "fabric");
    let plan = Arc::new(
        FaultPlan::seeded(seed).rule(FaultRule::on(RequestClass::Call, FaultAction::Drop).times(2)),
    );
    fabric.install_faults(plan.clone());

    let weaver = Weaver::new();
    weaver.plug(FarmConfig::new(protocol(2, 4)).metrics(&registry).aspect("Partition"));
    weaver.plug(
        RmiConfig::new("Cruncher", Pointcut::call("Cruncher.crunch"), fabric.clone())
            .policy(
                CallPolicy::with_deadline(Duration::from_millis(25))
                    .retries(3)
                    .backoff(Backoff {
                        base: Duration::from_millis(1),
                        max: Duration::from_millis(4),
                    })
                    .seed(seed),
            )
            .metrics(&registry)
            .aspect("Distribution"),
    );
    let c = CruncherProxy::construct(&weaver).unwrap();
    let input: Vec<u64> = (0..16).collect();
    let expect: Vec<u64> = input.iter().map(|x| x * x).collect();
    assert_eq!(c.crunch(input).unwrap(), expect, "seed {seed}: retries recover every drop");

    // Every injected drop forced exactly one timed-out attempt, and the
    // fabric's bound counter saw each retry.
    let dropped = plan.stats().snapshot().dropped as u64;
    assert!(dropped >= 1, "seed {seed}: the plan injected at least one drop");
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("fabric.retries"),
        Some(dropped),
        "seed {seed}: retries must match injected drops:\n{}",
        snap.to_text()
    );
    assert_eq!(snap.counter("Partition.redispatched"), Some(0), "drops retry, they never re-farm");
}

#[test]
fn snapshots_render_deterministically() {
    let fill = |names: &[&str]| {
        let reg = MetricsRegistry::new();
        for name in names {
            reg.counter(name).add(name.len() as u64);
        }
        reg.gauge("pool.occupancy").set(3);
        reg.histogram("latency_ns").record(Duration::from_micros(7));
        reg
    };
    // Same instruments registered in different orders render identically:
    // the snapshot is BTreeMap-ordered, not insertion-ordered.
    let a = fill(&["farm.packs", "rmi.calls", "exec.steals"]);
    let b = fill(&["exec.steals", "farm.packs", "rmi.calls"]);
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.to_text(), sb.to_text(), "text render is registration-order independent");
    assert_eq!(sa.to_json(), sb.to_json(), "json render is registration-order independent");
    assert_eq!(sa.to_text(), a.snapshot().to_text(), "rendering is a pure function");
}
