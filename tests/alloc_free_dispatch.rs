//! Proof of the inline-value fast path: steady-state scalar-argument
//! dispatch through a plugged aspect chain performs **zero heap
//! allocations** (PR 9 tentpole acceptance).
//!
//! A counting wrapper around the system allocator is installed as the
//! global allocator for this test binary only. Each test warms the weaver
//! (first calls populate dispatch tables and advice-chain caches), then
//! counts allocations across a burst of steady-state calls.
//!
//! The tests share one process-global allocator counter, so they serialise
//! on a mutex: a concurrently running test would otherwise attribute its
//! allocations to the measuring window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use weavepar::prelude::*;
use weavepar::weaveable;

/// Counts allocations while `COUNTING` is set; delegates to [`System`].
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Serialises the measuring window across tests in this binary.
static WINDOW: Mutex<()> = Mutex::new(());

/// Count allocations performed by `f` (exclusive window).
fn count_allocs<T>(f: impl FnOnce() -> T) -> (usize, T) {
    let _guard = WINDOW.lock().unwrap_or_else(|e| e.into_inner());
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), out)
}

struct Alu;

weaveable! {
    class Alu as AluProxy {
        fn new() -> Self { Alu }
        fn fma(&mut self, a: u64, b: u64, c: u64, d: u64) -> u64 {
            a.wrapping_mul(b).wrapping_add(c).wrapping_mul(d | 1)
        }
        fn poke(&mut self, x: u64) -> u64 { x.wrapping_add(1) }
    }
}

fn plugged_proxy(aspects: usize) -> AluProxy {
    let weaver = Weaver::new();
    for i in 0..aspects {
        weaver.plug(
            Aspect::named(format!("P{i}"))
                .around(Pointcut::call("Alu.*"), |inv: &mut Invocation| inv.proceed())
                .build(),
        );
    }
    AluProxy::construct(&weaver).unwrap()
}

#[test]
fn steady_state_scalar_dispatch_is_allocation_free() {
    let proxy = plugged_proxy(3);
    // Warm-up: the first calls build dispatch tables and advice chains.
    for i in 0..16 {
        proxy.fma(i, i + 1, i + 2, i + 3).unwrap();
        proxy.poke(i).unwrap();
    }
    let (allocs, sum) = count_allocs(|| {
        let mut sum = 0u64;
        for i in 0..1_000u64 {
            sum = sum.wrapping_add(proxy.fma(i, 3, 5, 7).unwrap());
            sum = sum.wrapping_add(proxy.poke(i).unwrap());
        }
        sum
    });
    assert_ne!(sum, 0, "calls really ran");
    assert_eq!(allocs, 0, "steady-state scalar dispatch through 3 aspects must not allocate");
}

#[test]
fn unwoven_proxy_dispatch_is_allocation_free() {
    let proxy = plugged_proxy(0);
    for i in 0..16 {
        proxy.poke(i).unwrap();
    }
    let (allocs, _) = count_allocs(|| {
        let mut sum = 0u64;
        for i in 0..1_000u64 {
            sum = sum.wrapping_add(proxy.poke(i).unwrap());
        }
        sum
    });
    assert_eq!(allocs, 0, "bare proxy dispatch must not allocate");
}

#[test]
fn metered_dispatch_stays_allocation_free() {
    // The observability tentpole's bound: plugging the metrics aspect keeps
    // steady-state dispatch allocation-free. The aspect resolves its
    // counters and histogram once at build time, so the hot path is pure
    // relaxed-atomic bumps into pre-bound shards.
    let weaver = Weaver::new();
    let registry = MetricsRegistry::new();
    weaver.plug(metrics_aspect("Metrics", Pointcut::call("Alu.*"), &registry));
    weaver.plug(
        Aspect::named("P0")
            .around(Pointcut::call("Alu.*"), |inv: &mut Invocation| inv.proceed())
            .build(),
    );
    let proxy = AluProxy::construct(&weaver).unwrap();
    for i in 0..16 {
        proxy.poke(i).unwrap();
    }
    let (allocs, sum) = count_allocs(|| {
        let mut sum = 0u64;
        for i in 0..1_000u64 {
            sum = sum.wrapping_add(proxy.poke(i).unwrap());
        }
        sum
    });
    assert_ne!(sum, 0, "calls really ran");
    assert_eq!(allocs, 0, "recording into the metrics registry must not allocate");
    // And the registry really saw the burst (warm-up + measured calls).
    assert_eq!(registry.snapshot().counter("Metrics.calls"), Some(1_016));
}

#[test]
fn wrong_type_take_keeps_inline_value_intact() {
    let mut args = weavepar::args![41u64];
    // A mistyped take must fail AND leave the argument in place. (The error
    // itself carries a formatted context string, so the failure path is
    // allowed to allocate; only the success path below must not.)
    assert!(args.take::<i64>(0).is_err());
    assert_eq!(*args.get::<u64>(0).expect("value still present after failed take"), 41);

    // The correctly typed round trip is allocation-free.
    let (allocs, value) = count_allocs(|| {
        let taken: u64 = args.take::<u64>(0).expect("correctly typed take succeeds");
        let ret = AnyValue::new(taken);
        *ret.downcast_ref::<u64>().expect("inline return")
    });
    assert_eq!(value, 41);
    assert_eq!(allocs, 0, "inline args round trip must not allocate");
}
