//! The incremental-development story, end to end: develop sequentially, plug
//! concerns one at a time, unplug for debugging, swap strategies — the
//! workflow of the paper's §1 and conclusion.

use weavepar::prelude::*;
use weavepar_apps::sieve::{
    build_sieve, run_sieve, sequential_sieve, PrimeFilter, PrimeFilterProxy, SieveConfig,
};

const MAX: u64 = 3_000;

#[test]
fn step0_core_runs_without_any_weaver() {
    // The core functionality is an ordinary sequential type.
    let mut f = PrimeFilter::new(2, 54);
    let out = f.filter(Pack::from_slice(&[55, 56, 57, 59]));
    assert_eq!(out.to_vec(), vec![59]);
    assert_eq!(sequential_sieve(100).len(), 25);
}

#[test]
fn step1_core_through_an_empty_weaver_is_identity() {
    // A proxy over a weaver with nothing plugged behaves exactly like the
    // bare object.
    let weaver = Weaver::new();
    let proxy = PrimeFilterProxy::construct(&weaver, 2, 54).unwrap();
    assert_eq!(proxy.filter(Pack::from_slice(&[55, 56, 57, 59])).unwrap().to_vec(), vec![59]);
    assert_eq!(weaver.space().len(), 1);
}

#[test]
fn step2_incremental_plugging_preserves_output() {
    let reference = sequential_sieve(MAX);

    // Partition only.
    let run = build_sieve(SieveConfig::sequential_pipeline(3));
    assert_eq!(run_sieve(&run, MAX).unwrap(), reference);

    // Partition + concurrency.
    let run = build_sieve(SieveConfig { packs: 6, ..SieveConfig::farm_threads(3) });
    assert_eq!(run_sieve(&run, MAX).unwrap(), reference);

    // Partition + concurrency + distribution.
    let run = build_sieve(SieveConfig { packs: 6, nodes: 3, ..SieveConfig::farm_rmi(3) });
    assert_eq!(run_sieve(&run, MAX).unwrap(), reference);
}

#[test]
fn step3_unplugging_returns_to_sequential_semantics() {
    let run = build_sieve(SieveConfig { packs: 6, ..SieveConfig::farm_threads(3) });
    // Unplug everything: back to the sequential program.
    assert!(run.stack.unplug(Concern::Partition));
    assert!(run.stack.unplug(Concern::Concurrency));
    assert!(!run.stack.unplug(Concern::Distribution), "was never plugged");

    let got = run_sieve(&run, MAX).unwrap();
    assert_eq!(got, sequential_sieve(MAX));
    // And only one PrimeFilter object per construction now.
    let weaver = run.stack.weaver();
    let before = weaver.space().ids_of_class("PrimeFilter").len();
    let _p = PrimeFilterProxy::construct(weaver, 2, 50).unwrap();
    assert_eq!(weaver.space().ids_of_class("PrimeFilter").len(), before + 1);
}

#[test]
fn step4_disable_for_debugging_then_reenable() {
    let run = build_sieve(SieveConfig { packs: 6, ..SieveConfig::farm_threads(3) });
    let reference = sequential_sieve(MAX);

    assert!(run.stack.set_enabled(Concern::Concurrency, false));
    assert_eq!(run_sieve(&run, MAX).unwrap(), reference, "sequential debugging mode");
    assert!(run.stack.set_enabled(Concern::Concurrency, true));
    assert_eq!(run_sieve(&run, MAX).unwrap(), reference, "parallel mode restored");
}

#[test]
fn step5_swap_pipeline_for_farm() {
    // "exchanging a pipeline by a farm partition" — conclusion.
    let reference = sequential_sieve(MAX);
    let run = build_sieve(SieveConfig { packs: 6, nodes: 3, ..SieveConfig::pipe_rmi(3) });
    assert_eq!(run_sieve(&run, MAX).unwrap(), reference);

    let farm = build_sieve(SieveConfig { packs: 6, nodes: 3, ..SieveConfig::farm_rmi(3) });
    assert_eq!(run_sieve(&farm, MAX).unwrap(), reference);
    assert_ne!(
        run.stack.plugged_names(Concern::Partition),
        farm.stack.plugged_names(Concern::Partition),
        "different partition aspects are plugged"
    );
}

#[test]
fn aspect_inventory_matches_configuration() {
    let run = build_sieve(SieveConfig { packs: 4, nodes: 2, ..SieveConfig::farm_mpp(2) });
    assert_eq!(run.stack.plugged_names(Concern::Partition), vec!["Partition.farm".to_string()]);
    assert_eq!(
        run.stack.plugged_names(Concern::Concurrency),
        vec!["Concurrency.async".to_string(), "Concurrency.sync".to_string()]
    );
    assert_eq!(
        run.stack.plugged_names(Concern::Distribution),
        vec!["Distribution.mpp".to_string()]
    );
    assert!(!run.stack.is_plugged(Concern::Optimisation));
    let d = run.stack.describe();
    assert!(d.contains("partition="), "{d}");
}

#[test]
fn plugging_is_per_weaver_not_global() {
    // Two stacks with different strategies coexist in one process.
    let a = build_sieve(SieveConfig { packs: 4, ..SieveConfig::farm_threads(2) });
    let b = build_sieve(SieveConfig::sequential_pipeline(3));
    assert_eq!(run_sieve(&a, 500).unwrap(), run_sieve(&b, 500).unwrap());
    assert_eq!(a.stack.weaver().space().ids_of_class("PrimeFilter").len(), 2);
    assert_eq!(b.stack.weaver().space().ids_of_class("PrimeFilter").len(), 3);
}
