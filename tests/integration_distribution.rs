//! Distribution-focused integration: middleware swap, remote placement,
//! name-server behaviour, failure propagation.

use weavepar::prelude::*;
use weavepar_apps::sieve::{build_sieve, run_sieve, sequential_sieve, PrimeFilter, SieveConfig};

fn sieve_marshal() -> MarshalRegistry {
    let m = MarshalRegistry::new();
    m.register::<(u64, u64), ()>("PrimeFilter", "new");
    m.register::<(Pack,), Pack>("PrimeFilter", "filter");
    m
}

#[test]
fn middleware_swap_preserves_results() {
    // "it becomes easier to switch among underlying middleware
    // implementations" — §4.3.
    let rmi = build_sieve(SieveConfig { packs: 6, nodes: 3, ..SieveConfig::farm_rmi(3) });
    let mpp = build_sieve(SieveConfig { packs: 6, nodes: 3, ..SieveConfig::farm_mpp(3) });
    let a = run_sieve(&rmi, 3_000).unwrap();
    let b = run_sieve(&mpp, 3_000).unwrap();
    assert_eq!(a, b);
    assert_eq!(a, sequential_sieve(3_000));
}

#[test]
fn rmi_populates_the_name_server_mpp_does_not() {
    let rmi = build_sieve(SieveConfig { packs: 4, nodes: 2, ..SieveConfig::farm_rmi(3) });
    run_sieve(&rmi, 500).unwrap();
    let ns = rmi.fabric.as_ref().unwrap().nameserver();
    assert_eq!(ns.len(), 3, "one PS<n> binding per farm worker");
    assert!(ns.names().iter().all(|n| n.starts_with("PS")));

    let mpp = build_sieve(SieveConfig { packs: 4, nodes: 2, ..SieveConfig::farm_mpp(3) });
    run_sieve(&mpp, 500).unwrap();
    assert!(mpp.fabric.as_ref().unwrap().nameserver().is_empty());
}

#[test]
fn workers_are_actually_remote() {
    let run = build_sieve(SieveConfig { packs: 4, nodes: 4, ..SieveConfig::farm_rmi(4) });
    run_sieve(&run, 1_000).unwrap();
    let fabric = run.fabric.as_ref().unwrap();
    // Round-robin placement: one worker instance per node.
    let mut remote_objects = 0;
    for node in 0..4 {
        remote_objects += fabric.node(node).unwrap().weaver().space().len();
    }
    assert_eq!(remote_objects, 4, "each worker lives on a fabric node");
    // The class is tagged Remote on the client (declare-parents analogue).
    assert!(run.stack.weaver().intertype().has_tag("PrimeFilter", "Remote"));
}

#[test]
fn placement_policies_spread_or_pin() {
    let marshal = sieve_marshal();
    let fabric = InProcFabric::new(4, marshal);
    fabric.register_class::<PrimeFilter>();
    let weaver = Weaver::new();
    weaver.register_class::<PrimeFilter>();
    weaver.plug(
        RmiConfig::new("PrimeFilter", Pointcut::call("PrimeFilter.filter"), fabric.clone())
            .placement(Policy::fixed(2))
            .aspect("Distribution"),
    );
    for _ in 0..3 {
        weaver.construct_dyn("PrimeFilter", weavepar::args![2u64, 10u64]).unwrap();
    }
    assert_eq!(fabric.node(2).unwrap().weaver().space().len(), 3, "fixed policy pins to node 2");
    assert_eq!(fabric.node(0).unwrap().weaver().space().len(), 0);
}

#[test]
fn random_policy_is_seed_deterministic() {
    let pick = |seed: u64| {
        let p = Policy::random(seed);
        (0..20).map(|_| p.pick(5)).collect::<Vec<_>>()
    };
    assert_eq!(pick(99), pick(99));
    assert_ne!(pick(99), pick(100), "different seeds should differ somewhere");
}

#[test]
fn remote_failure_surfaces_as_remote_error() {
    // A fabric whose marshaller lacks `filter`: the remote call must fail
    // loudly with the RemoteException analogue, not hang or corrupt.
    let marshal = MarshalRegistry::new();
    marshal.register::<(u64, u64), ()>("PrimeFilter", "new");
    let fabric = InProcFabric::new(2, marshal);
    fabric.register_class::<PrimeFilter>();
    let weaver = Weaver::new();
    weaver.register_class::<PrimeFilter>();
    weaver.plug(
        MppConfig::new("PrimeFilter", Pointcut::call("PrimeFilter.filter"), fabric)
            .placement(Policy::round_robin())
            .aspect("Distribution"),
    );
    let id = weaver.construct_dyn("PrimeFilter", weavepar::args![2u64, 10u64]).unwrap();
    let err = weaver
        .invoke_call_dyn(id, "filter", weavepar::args![Pack::from_slice(&[4u64])])
        .unwrap_err();
    assert!(matches!(err, WeaveError::Remote(_)), "got {err:?}");
}

#[test]
fn hybrid_stacks_coexist() {
    // "It is also possible to use a combination of middleware
    // implementations" — two classes, one per middleware, on one weaver.
    struct Doubler;
    weavepar::weaveable! {
        class Doubler as DoublerProxy {
            fn new() -> Self { Doubler }
            fn double(&mut self, x: u64) -> u64 { x * 2 }
        }
    }
    struct Tripler;
    weavepar::weaveable! {
        class Tripler as TriplerProxy {
            fn new() -> Self { Tripler }
            fn triple(&mut self, x: u64) -> u64 { x * 3 }
        }
    }

    let m = MarshalRegistry::new();
    m.register::<(), ()>("Doubler", "new");
    m.register::<(u64,), u64>("Doubler", "double");
    m.register::<(), ()>("Tripler", "new");
    m.register::<(u64,), u64>("Tripler", "triple");
    let fabric = InProcFabric::new(2, m);
    fabric.register_class::<Doubler>();
    fabric.register_class::<Tripler>();

    let weaver = Weaver::new();
    weaver.plug(
        RmiConfig::new("Doubler", Pointcut::call("Doubler.double"), fabric.clone())
            .placement(Policy::fixed(0))
            .aspect("Distribution.rmi"),
    );
    weaver.plug(
        MppConfig::new("Tripler", Pointcut::call("Tripler.triple"), fabric.clone())
            .placement(Policy::fixed(1))
            .aspect("Distribution.mpp"),
    );

    let d = DoublerProxy::construct(&weaver).unwrap();
    let t = TriplerProxy::construct(&weaver).unwrap();
    assert_eq!(d.double(21).unwrap(), 42);
    assert_eq!(t.triple(14).unwrap(), 42);
    assert_eq!(fabric.nameserver().len(), 1, "only the RMI class registers names");
}

#[test]
fn filters_can_migrate_mid_run() {
    use weavepar::distribution::{introduce_migration, migrate_object};

    // A farmed, distributed sieve whose workers are moved to other nodes
    // between two runs — results must be identical, and the objects must
    // really have moved.
    let run = build_sieve(SieveConfig { packs: 4, nodes: 4, ..SieveConfig::farm_rmi(3) });
    let weaver = run.stack.weaver();
    let fabric = run.fabric.clone().unwrap();
    introduce_migration(weaver, "PrimeFilter", fabric.clone());

    let first = run_sieve(&run, 2_000).unwrap();
    assert_eq!(first, sequential_sieve(2_000));

    // Move every distributed worker to node 3.
    let stubs = weaver.space().ids_of_class("PrimeFilter");
    let mut moved = 0;
    for stub in stubs {
        if weaver.intertype().has_field(stub, "remote") {
            migrate_object(weaver, stub, 3).unwrap();
            moved += 1;
        }
    }
    assert!(moved >= 3, "expected the farm workers to be migratable: {moved}");
    let on_node3 = fabric.node(3).unwrap().weaver().space().len();
    assert!(on_node3 >= moved, "workers must live on node 3 now");

    // The same stubs keep working after migration (calls follow the move).
    use weavepar::concurrency::resolve_any;
    use weavepar::weave::value::downcast_ret;
    let stub = weaver
        .space()
        .ids_of_class("PrimeFilter")
        .into_iter()
        .find(|s| weaver.intertype().has_field(*s, "remote"))
        .unwrap();
    let raw = weaver
        .invoke_call_dyn(stub, "filter", weavepar::args![Pack::from_slice(&[1999u64, 2000])])
        .unwrap();
    let out = downcast_ret::<Pack>(resolve_any(raw).unwrap()).unwrap();
    assert_eq!(out.to_vec(), vec![1999], "migrated filter still filters correctly");
}

#[test]
fn node_failure_surfaces_through_the_whole_stack() {
    // Failure injection: crash a fabric node, then run. The remote error
    // must propagate through distribution advice, the concurrency futures
    // and the partition combine up to the caller — Figure 14's
    // RemoteException path, end to end.
    let run = build_sieve(SieveConfig { packs: 6, nodes: 3, ..SieveConfig::farm_rmi(3) });
    run.fabric.as_ref().unwrap().kill_node(1).unwrap();
    let err = run_sieve(&run, 2_000).unwrap_err();
    assert!(err.is_node_loss(), "expected a typed NodeDown, got {err:?}");
}

#[test]
fn surviving_nodes_keep_serving_after_a_crash() {
    let run = build_sieve(SieveConfig { packs: 4, nodes: 4, ..SieveConfig::farm_rmi(4) });
    // Build the farm first (places one worker per node), then crash node 3.
    let first = run_sieve(&run, 1_000).unwrap();
    assert_eq!(first, sequential_sieve(1_000));
    run.fabric.as_ref().unwrap().kill_node(3).unwrap();
    // A fresh farm construction now fails when placement reaches node 3...
    let second = run_sieve(&run, 1_000);
    assert!(second.is_err(), "round-robin placement must hit the dead node");
    // ...but direct calls to workers on live nodes still succeed.
    use weavepar::concurrency::resolve_any;
    use weavepar::weave::value::downcast_ret;
    let weaver = run.stack.weaver();
    let live_stub = weaver
        .space()
        .ids_of_class("PrimeFilter")
        .into_iter()
        .find(|s| {
            weaver
                .intertype()
                .get_field::<weavepar::distribution::RemoteRef>(*s, "remote")
                .is_some_and(|r| r.node != 3)
        })
        .expect("a worker on a live node");
    let raw = weaver
        .invoke_call_dyn(live_stub, "filter", weavepar::args![Pack::from_slice(&[7u64, 8])])
        .unwrap();
    let out = downcast_ret::<Pack>(resolve_any(raw).unwrap()).unwrap();
    assert_eq!(out.to_vec(), vec![7]);
}
