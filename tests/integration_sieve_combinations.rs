//! Table 1, end to end: every module combination the paper evaluates must
//! produce exactly the sequential sieve's output — the correctness half of
//! the methodology's (un)pluggability claim.

use weavepar_apps::sieve::{
    build_sieve, run_sieve, sequential_sieve, Middleware, PartitionStrategy, SieveConfig,
};

const MAX: u64 = 4_000;

fn check(config: SieveConfig) {
    let run = build_sieve(config);
    let got = run_sieve(&run, MAX).expect("sieve run failed");
    assert_eq!(got, sequential_sieve(MAX), "{} diverged from sequential", config.label());
}

#[test]
fn table1_farm_threads_across_filter_counts() {
    for filters in [1usize, 2, 4, 7] {
        check(SieveConfig { packs: 10, ..SieveConfig::farm_threads(filters) });
    }
}

#[test]
fn table1_pipe_rmi_across_filter_counts() {
    for filters in [1usize, 3, 5] {
        check(SieveConfig { packs: 6, nodes: 3, ..SieveConfig::pipe_rmi(filters) });
    }
}

#[test]
fn table1_farm_rmi() {
    check(SieveConfig { packs: 8, nodes: 4, ..SieveConfig::farm_rmi(6) });
}

#[test]
fn table1_farm_drmi() {
    check(SieveConfig { packs: 8, nodes: 4, ..SieveConfig::farm_drmi(5) });
}

#[test]
fn table1_farm_mpp() {
    check(SieveConfig { packs: 8, nodes: 4, ..SieveConfig::farm_mpp(6) });
}

#[test]
fn partition_without_concurrency_still_correct() {
    // The paper: "the program must be valid without concurrency" (§4.2).
    for strategy in [PartitionStrategy::Pipeline, PartitionStrategy::Farm] {
        check(SieveConfig {
            partition: strategy,
            concurrency: false,
            middleware: Middleware::None,
            filters: 3,
            packs: 5,
            nodes: 1,
        });
    }
}

#[test]
fn distribution_without_concurrency_still_correct() {
    // Debugging combination: remote objects, synchronous calls.
    check(SieveConfig {
        partition: PartitionStrategy::Farm,
        concurrency: false,
        middleware: Middleware::Rmi,
        filters: 3,
        packs: 5,
        nodes: 2,
    });
}

#[test]
fn paper_pack_shape_scaled_down() {
    // The paper uses 50 packs; keep 50 packs over a smaller range.
    check(SieveConfig { packs: 50, ..SieveConfig::farm_threads(4) });
    check(SieveConfig { packs: 50, nodes: 7, ..SieveConfig::farm_mpp(7) });
}

#[test]
fn every_combination_agrees_with_every_other() {
    let combos = [
        SieveConfig { packs: 6, ..SieveConfig::farm_threads(3) },
        SieveConfig { packs: 6, nodes: 3, ..SieveConfig::pipe_rmi(3) },
        SieveConfig { packs: 6, nodes: 3, ..SieveConfig::farm_rmi(3) },
        SieveConfig { packs: 6, nodes: 3, ..SieveConfig::farm_drmi(3) },
        SieveConfig { packs: 6, nodes: 3, ..SieveConfig::farm_mpp(3) },
    ];
    let outputs: Vec<Vec<u64>> =
        combos.iter().map(|c| run_sieve(&build_sieve(*c), 2_500).expect("run failed")).collect();
    for window in outputs.windows(2) {
        assert_eq!(window[0], window[1]);
    }
}
