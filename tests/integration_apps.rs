//! Cross-application integration: the farm and heartbeat case studies, the
//! optimisation aspects layered on real applications, and trace capture
//! feeding the cluster simulator.

use weavepar::cluster::{simulate, MiddlewareProfile, SimParams};
use weavepar::optimisation::{object_cache_aspect, CachePolicy};
use weavepar::prelude::*;
use weavepar::weave::trace::Recorder;
use weavepar_apps::heat::{solve_heartbeat, solve_sequential};
use weavepar_apps::mandel::{render_dynamic, render_farmed, render_sequential};
use weavepar_apps::sieve::{build_sieve, run_sieve, sequential_sieve, SieveConfig};

#[test]
fn mandelbrot_farm_and_dynamic_farm_agree() {
    let reference = render_sequential(32, 16, 60);
    assert_eq!(render_farmed(32, 16, 60, 4, 8, true).unwrap(), reference);
    assert_eq!(render_dynamic(32, 16, 60, 4, 8).unwrap(), reference);
}

#[test]
fn heat_heartbeat_scales_workers() {
    let reference = solve_sequential(30, 0.0, 10.0, 0.0, 40);
    for workers in [1usize, 2, 5] {
        let got = solve_heartbeat(30, 0.0, 10.0, 0.0, 40, workers).unwrap();
        assert_eq!(got.len(), 30);
        for (a, b) in got.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9, "workers={workers}");
        }
    }
}

#[test]
fn cache_optimisation_composes_with_the_farm() {
    // Plug the §4.4 cache-objects optimisation *inside* the farm: it
    // memoises per-worker pack calls, so re-filtering the same candidate
    // list is answered entirely from the cache.
    use weavepar::concurrency::resolve_any;
    use weavepar::weave::value::downcast_ret;
    use weavepar_apps::sieve::{candidates, isqrt, PrimeFilterProxy};

    let packs = 6u64;
    let run = build_sieve(SieveConfig { packs: packs as usize, ..SieveConfig::farm_threads(3) });
    let (aspect, stats) = object_cache_aspect(
        "Optimisation.cache",
        Pointcut::call("PrimeFilter.filter"),
        CachePolicy::unary::<Pack, Pack>(),
    );
    run.stack.plug(Concern::Optimisation, aspect);

    let max = 2_000u64;
    let weaver = run.stack.weaver();
    let proxy = PrimeFilterProxy::construct(weaver, 2, isqrt(max)).unwrap();
    let call = || -> Vec<u64> {
        let cands = Pack::from_vec(candidates(max));
        let raw = proxy.handle().call("filter", weavepar::args![cands]).unwrap();
        downcast_ret::<Pack>(resolve_any(raw).unwrap()).unwrap().to_vec()
    };
    let first = call();
    let mut primes = vec![2u64];
    primes.extend(first.iter().copied());
    assert_eq!(primes, sequential_sieve(max));
    assert_eq!(stats.misses(), packs, "every pack misses on the first pass");
    assert_eq!(stats.hits(), 0);

    let second = call();
    assert_eq!(second, first);
    assert_eq!(stats.hits(), packs, "every pack hits on the second pass");
    assert_eq!(stats.misses(), packs);
}

#[test]
fn recorded_trace_replays_on_the_simulator() {
    // Capture a real farmed-sieve execution and replay it on the paper
    // cluster: the bridge the benchmark harness is built on.
    let run = build_sieve(SieveConfig { packs: 8, ..SieveConfig::farm_threads(4) });
    let recorder = Recorder::measuring();
    run.stack.weaver().set_recorder(Some(recorder.clone()));
    let got = run_sieve(&run, 20_000).unwrap();
    run.stack.weaver().set_recorder(None);
    assert_eq!(got.len(), sequential_sieve(20_000).len());

    let trace = recorder.finish();
    // 4 worker constructions + 8 pack calls (the original construction never
    // reaches its base: the partition advice replaces it).
    assert!(trace.len() >= 12, "trace too small: {} tasks", trace.len());
    let filter_tasks = trace.tasks.iter().filter(|t| t.signature.method == "filter").count();
    assert_eq!(filter_tasks, 8, "one task per pack");
    assert!(
        trace.tasks.iter().filter(|t| t.signature.method == "filter").all(|t| t.async_spawn),
        "farmed packs run asynchronously"
    );

    // Replay on one node (threads) and on the 7-node cluster (MPP).
    let local = simulate(&trace, &SimParams::threads_on_single_node());
    assert!(local.makespan > 0.0);
    assert_eq!(local.messages, 0, "shared memory: no messages");

    let clustered = simulate(&trace, &SimParams::paper_cluster(MiddlewareProfile::mpp()));
    assert!(clustered.messages > 0, "distributed placement must send messages");
    assert!(clustered.bytes > 0);
    assert_eq!(local.tasks, clustered.tasks);
}

#[test]
fn trace_costs_reflect_real_work() {
    // Bigger workloads must record more CPU cost.
    let capture = |max: u64| {
        let run = build_sieve(SieveConfig { packs: 4, ..SieveConfig::farm_threads(2) });
        let recorder = Recorder::measuring();
        run.stack.weaver().set_recorder(Some(recorder.clone()));
        run_sieve(&run, max).unwrap();
        recorder.finish().total_cost()
    };
    let small = capture(5_000);
    let large = capture(200_000);
    assert!(large > small, "cost must grow with the workload: {small:?} vs {large:?}");
}

#[test]
fn pipeline_trace_has_forwarding_chains() {
    let run = build_sieve(SieveConfig { packs: 5, ..SieveConfig::sequential_pipeline(3) });
    let recorder = Recorder::measuring();
    run.stack.weaver().set_recorder(Some(recorder.clone()));
    run_sieve(&run, 10_000).unwrap();
    let trace = recorder.finish();
    // Each pack crosses 3 stages; stages 2 and 3 carry `after` edges.
    let filter_tasks: Vec<_> =
        trace.tasks.iter().filter(|t| t.signature.method == "filter").collect();
    assert_eq!(filter_tasks.len(), 15, "5 packs × 3 stages");
    let forwarded = filter_tasks.iter().filter(|t| t.after.is_some()).count();
    assert!(forwarded >= 10, "pipeline hops must record data dependencies: {forwarded}");
    // Critical path of a pipeline exceeds any single task but is far below
    // total work when stages overlap.
    let cp = weavepar::cluster::critical_path(&trace);
    let total = trace.total_cost().as_secs_f64();
    assert!(cp <= total + 1e-9);
}

#[test]
fn mandel_dynamic_farm_balances_uneven_rows() {
    // Rows near the set's bulk are much more expensive; the dynamic farm
    // must still produce identical output (scheduling differs, data doesn't).
    let reference = render_sequential(48, 24, 200);
    let dynamic = render_dynamic(48, 24, 200, 3, 12).unwrap();
    assert_eq!(dynamic, reference);
}

#[test]
fn active_objects_can_replace_the_concurrency_module() {
    // The ABCL-style active-object aspect is an alternative concurrency
    // module: per-filter mailboxes serialise packs in issue order, futures
    // carry the results, the farm's combine is unchanged.
    use weavepar::concurrency::active_object_aspect;
    use weavepar_apps::sieve::PartitionStrategy;

    let config = SieveConfig {
        partition: PartitionStrategy::Farm,
        concurrency: false, // we plug active objects instead
        middleware: weavepar_apps::sieve::Middleware::None,
        filters: 3,
        packs: 6,
        nodes: 1,
    };
    let run = build_sieve(config);
    // Scope the mailboxes to the aspect-issued pack calls only: if the core
    // call itself were posted, the farm's split advice would run inside
    // worker 0's mailbox and then block on a pack posted to that same
    // mailbox — the classic actor re-entrancy deadlock.
    let (aspect, runtime) = active_object_aspect(
        "ActiveObjects",
        Pointcut::call("PrimeFilter.filter").and(Pointcut::within_aspects()),
    );
    run.stack.plug(Concern::Concurrency, aspect);

    let got = run_sieve(&run, 3_000).unwrap();
    assert_eq!(got, sequential_sieve(3_000));
    runtime.wait_idle();
    assert!(runtime.active_objects() >= 3, "each farmed filter got a mailbox");
    runtime.shutdown();
}
