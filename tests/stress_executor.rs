//! Stress tests for the work-stealing executor (the §4.4 thread-pool
//! optimisation's engine).
//!
//! Three properties beyond the unit tests in `weavepar-concurrency`:
//!
//! 1. **Stealing**: a deep, *one-sided* nested spawn tree — every task
//!    spawned from the same worker, so everything lands on that worker's
//!    local deque — must still spread across the pool: idle peers steal.
//! 2. **Batch quiescence**: `spawn_batch` from many threads at once, with
//!    each batched task spawning nested work, and `wait_idle` must cover
//!    every transitively spawned task.
//! 3. **Skeleton integration**: a farmed computation over the pooled
//!    executor (pack-granular batch submission end to end) matches the
//!    sequential result, repeatedly, while the pool is shared.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use weavepar::concurrency::{BatchScope, Executor, Scheduler, ThreadPool};

/// Spawn a chain of depth `depth`; every level fans out `width` leaves and
/// recurses once — all from whichever worker runs it.
fn seed_tree(
    pool: &Arc<ThreadPool>,
    depth: usize,
    width: usize,
    running: &Arc<AtomicUsize>,
    peak: &Arc<AtomicUsize>,
    done: &Arc<AtomicUsize>,
) {
    for _ in 0..width {
        let (running, peak, done) = (running.clone(), peak.clone(), done.clone());
        pool.spawn(move || {
            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            running.fetch_sub(1, Ordering::SeqCst);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    if depth > 0 {
        let pool2 = pool.clone();
        let (running, peak, done) = (running.clone(), peak.clone(), done.clone());
        pool.spawn(move || {
            seed_tree(&pool2, depth - 1, width, &running, &peak, &done);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
}

#[test]
fn deep_nested_spawns_from_one_worker_are_stolen() {
    let pool = ThreadPool::new(4, "steal-stress");
    let running = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicUsize::new(0));

    // One injector submission; every other task is spawned from a worker
    // thread, so it is seeded on a single worker's LIFO deque.
    let depth = 6;
    let width = 4;
    let pool2 = pool.clone();
    let (r2, k2, d2) = (running.clone(), peak.clone(), done.clone());
    pool.spawn(move || {
        seed_tree(&pool2, depth, width, &r2, &k2, &d2);
    });
    pool.wait_idle();

    let expected = (depth + 1) * width + depth; // leaves + recursion tasks
    assert_eq!(done.load(Ordering::SeqCst), expected, "every spawned task ran");
    assert!(
        peak.load(Ordering::SeqCst) > 1,
        "peers never stole from the seeding worker (peak parallelism 1)"
    );
}

#[test]
fn concurrent_spawn_batches_reach_quiescence() {
    let pool = ThreadPool::new(4, "batch-stress");
    let hits = Arc::new(AtomicUsize::new(0));
    let submitters = 4;
    let batches = 8;
    let batch_size = 32;

    let mut threads = Vec::new();
    for _ in 0..submitters {
        let pool = pool.clone();
        let hits = hits.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..batches {
                let pool2 = pool.clone();
                let hits2 = hits.clone();
                pool.spawn_batch((0..batch_size).map(move |i| {
                    let pool3 = pool2.clone();
                    let hits3 = hits2.clone();
                    move || {
                        hits3.fetch_add(1, Ordering::Relaxed);
                        // Every fourth batched task spawns a straggler, so
                        // wait_idle must cover nested work too.
                        if i % 4 == 0 {
                            let hits4 = hits3.clone();
                            pool3.spawn(move || {
                                hits4.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    }
                }));
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    pool.wait_idle();

    let direct = submitters * batches * batch_size;
    let nested = submitters * batches * batch_size / 4;
    assert_eq!(hits.load(Ordering::Relaxed), direct + nested);
    assert_eq!(pool.in_flight(), 0, "wait_idle returned with work in flight");
}

#[test]
fn batch_scope_defers_across_repeated_rounds() {
    // The executor-level deferral the skeletons rely on, exercised directly
    // under contention: rounds of scoped spawns against a shared pool.
    let executor = Executor::pool(4, "scope-stress");
    let hits = Arc::new(AtomicUsize::new(0));
    for _ in 0..50 {
        let scope = BatchScope::enter();
        for _ in 0..20 {
            let h = hits.clone();
            executor.spawn(move || {
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        scope.flush();
    }
    executor.wait_idle();
    assert_eq!(hits.load(Ordering::Relaxed), 1000);
}

#[test]
fn both_schedulers_agree_under_load() {
    // The ablation backend is semantically identical to the stealing one;
    // hammer both with the same nested workload and compare the count.
    for scheduler in [Scheduler::WorkStealing, Scheduler::SingleQueue] {
        let pool = ThreadPool::with_scheduler(3, "agree", scheduler);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let pool2 = pool.clone();
            let h = hits.clone();
            pool.spawn(move || {
                h.fetch_add(1, Ordering::Relaxed);
                let h2 = h.clone();
                pool2.spawn(move || {
                    h2.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 200, "{scheduler:?}");
        drop(pool);
    }
}
