//! Middleware stress: the message-packing aspect under concurrent issuers
//! and repeated plug/unplug cycles (run in `--release` by ci.sh).
//!
//! Pins the §4.4 packing optimisation's correctness contract:
//!
//! * every oneway call issued while the aspect is plugged, unplugged, or
//!   mid-unplug is delivered **exactly once** — never lost in a buffer
//!   nobody flushes, never shipped twice;
//! * replied calls outside the packing pointcut behave identically whether
//!   the aspect is plugged or not.

use std::sync::Arc;
use std::time::Duration;

use weavepar::distribution::RemoteRef;
use weavepar::prelude::*;
use weavepar::{args, weaveable};

struct Counter {
    hits: u64,
}

weaveable! {
    class Counter as CounterProxy {
        fn new() -> Self { Counter { hits: 0 } }
        fn bump(&mut self, x: u64) {
            self.hits += x;
        }
        fn total(&mut self) -> u64 {
            self.hits
        }
    }
}

fn fabric() -> Arc<InProcFabric> {
    let m = MarshalRegistry::new();
    m.register::<(), ()>("Counter", "new");
    m.register::<(u64,), ()>("Counter", "bump");
    m.register::<(), u64>("Counter", "total");
    let f = InProcFabric::new(1, m);
    f.register_class::<Counter>();
    f
}

/// Replied call straight through the fabric — FIFO-drains the node's queue
/// (packs included) and reads the server-side count.
fn remote_total(f: &InProcFabric, remote: RemoteRef) -> u64 {
    let args = f.marshal().encode_args("Counter", "total", &args![]).unwrap();
    let reply = f.call(remote, "total", args, true).unwrap().unwrap();
    *f.marshal().decode_ret("Counter", "total", &reply).unwrap().downcast::<u64>().unwrap()
}

#[test]
fn packing_plug_unplug_stress_loses_nothing() {
    const CYCLES: usize = 12;
    const THREADS: usize = 4;
    const CALLS: usize = 250;

    let weaver = Weaver::new();
    let f = fabric();
    // One distribution aspect covers the whole class: `bump` and `total`
    // both execute remotely, with replies awaited.
    weaver.plug(
        MppConfig::new("Counter", Pointcut::call("Counter.*"), f.clone())
            .placement(Policy::fixed(0))
            .aspect("Distribution"),
    );
    let c = CounterProxy::construct(&weaver).unwrap();
    let remote = weaver
        .intertype()
        .get_field::<RemoteRef>(c.id(), weavepar::distribution::aspects::REMOTE_FIELD)
        .unwrap();

    let mut expected = 0u64;
    for cycle in 0..CYCLES {
        // Fresh aspect + packer per cycle: a packer stays closed once its
        // aspect is unplugged.
        let (aspect, packer) = message_packing_aspect(
            "Packing",
            Pointcut::call("Counter.bump"),
            f.clone(),
            8,
            Duration::from_secs(3600),
        );
        let plugged = weaver.plug(aspect);

        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..CALLS {
                        c.handle().call("bump", args![1u64]).unwrap();
                    }
                });
            }
            // Unplug while the issuers are mid-burst; vary the timing so
            // different cycles race different phases of the burst.
            std::thread::sleep(Duration::from_micros(100 * (cycle as u64 % 5)));
            packer.unplug(&weaver, &plugged).unwrap();
        });

        expected += (THREADS * CALLS) as u64;
        assert_eq!(packer.pending_calls(), 0, "cycle {cycle}: unplug left a buffered call");
        // A call that raced the unplug ships on its own; everything else
        // went packed or direct. Either way the server saw each exactly once.
        assert_eq!(
            remote_total(&f, remote),
            expected,
            "cycle {cycle}: lost or duplicated calls across the unplug"
        );
        // Replied calls through the woven path are untouched by the (now
        // unplugged) packing aspect.
        assert_eq!(c.total().unwrap(), expected, "cycle {cycle}: replied call disagreed");
    }
}

#[test]
fn packing_replied_calls_identical_plugged_or_not() {
    let weaver = Weaver::new();
    let f = fabric();
    weaver.plug(
        MppConfig::new("Counter", Pointcut::call("Counter.*"), f.clone())
            .placement(Policy::fixed(0))
            .aspect("Distribution"),
    );
    let c = CounterProxy::construct(&weaver).unwrap();

    let (aspect, packer) = message_packing_aspect(
        "Packing",
        Pointcut::call("Counter.bump"),
        f.clone(),
        1024,
        Duration::from_secs(3600),
    );

    // Unplugged: replied total sees every bump immediately.
    c.handle().call("bump", args![5u64]).unwrap();
    assert_eq!(c.total().unwrap(), 5);

    // Plugged: bumps buffer (outside the replied pointcut), total is live.
    let plugged = weaver.plug(aspect);
    c.handle().call("bump", args![7u64]).unwrap();
    assert_eq!(packer.pending_calls(), 1);
    assert_eq!(c.total().unwrap(), 5, "buffered bump not yet visible");

    // Unplugging ships the backlog; replied path identical to before.
    packer.unplug(&weaver, &plugged).unwrap();
    assert_eq!(c.total().unwrap(), 12);
}
