//! Concurrent plug/unplug stress test for the lock-free snapshot dispatch
//! path.
//!
//! The paper's methodology leans on plugging and unplugging concerns *at run
//! time* (§1, §5). With the generation-stamped snapshot cache, a dispatch
//! racing a plug/unplug must observe either the old aspect set or the new one
//! — never a torn chain, and never a chain from an aspect set that was
//! unplugged *before* the call started.
//!
//! Three properties are exercised here:
//!
//! 1. **Atomicity**: every woven call returns either the unwoven result or
//!    the fully-woven result, even while a chaos thread flips the aspect set
//!    as fast as it can.
//! 2. **No staleness after quiescence**: once `unplug` has returned, no
//!    subsequent call — from a thread with a warm thread-local chain cache or
//!    a cold one — runs the unplugged advice.
//! 3. **Liveness**: nothing deadlocks or panics under the mix of dispatch,
//!    republish, recorder swaps and cache toggles.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use weavepar::prelude::*;
use weavepar::weave::Recorder;

struct Counter {
    calls: u64,
}

weavepar::weaveable! {
    class Counter as CounterProxy {
        fn new() -> Self { Counter { calls: 0 } }
        fn bump(&mut self, x: u64) -> u64 { self.calls += 1; x }
    }
}

/// Offset the around-advice adds on top of the base result. A woven call
/// returns `x + WOVEN_OFFSET`, an unwoven call returns `x`; anything else is
/// a torn dispatch.
const WOVEN_OFFSET: u64 = 1_000_000;

fn woven_aspect(fired: &Arc<AtomicU64>) -> Aspect {
    let fired = Arc::clone(fired);
    Aspect::named("Stress")
        .around(Pointcut::call("Counter.bump"), move |inv: &mut Invocation| {
            fired.fetch_add(1, Ordering::Relaxed);
            let base: u64 = *inv.proceed()?.downcast::<u64>().expect("base returns u64");
            Ok(ret!(base + WOVEN_OFFSET))
        })
        .build()
}

#[test]
fn concurrent_plug_unplug_never_tears_a_dispatch() {
    const WORKERS: usize = 4;
    const CHAOS_CYCLES: usize = 200;
    const QUIESCED_CALLS: u64 = 200;

    let weaver = Weaver::new();
    let fired = Arc::new(AtomicU64::new(0));
    let stop = AtomicBool::new(false);
    let dispatched = AtomicU64::new(0);

    let proxies: Vec<CounterProxy> =
        (0..WORKERS).map(|_| CounterProxy::construct(&weaver).unwrap()).collect();

    std::thread::scope(|s| {
        // Workers: hammer the join point, asserting woven-or-unwoven on every
        // single result. Once the chaos thread signals quiescence (its final
        // unplug happens-before the Release store of `stop`), the *same*
        // thread — with its warm thread-local chain cache — must see only
        // unwoven calls.
        for proxy in &proxies {
            let stop = &stop;
            let dispatched = &dispatched;
            s.spawn(move || {
                let mut x = 1u64;
                while !stop.load(Ordering::Acquire) {
                    let got = proxy.bump(x).unwrap();
                    assert!(
                        got == x || got == x + WOVEN_OFFSET,
                        "torn dispatch: bump({x}) returned {got}"
                    );
                    dispatched.fetch_add(1, Ordering::Relaxed);
                    x += 1;
                }
                for q in 0..QUIESCED_CALLS {
                    assert_eq!(
                        proxy.bump(q).unwrap(),
                        q,
                        "warm thread-local cache served a stale chain after unplug"
                    );
                }
            });
        }

        // Chaos: plug/unplug the aspect as fast as possible, with occasional
        // enable/disable flips, recorder swaps and match-cache toggles thrown
        // in — every operation that republishes the snapshot.
        let weaver = &weaver;
        let fired = &fired;
        let stop = &stop;
        s.spawn(move || {
            for cycle in 0..CHAOS_CYCLES {
                let plugged = weaver.plug(woven_aspect(fired));
                if cycle % 7 == 0 {
                    weaver.set_enabled(&plugged, false);
                    weaver.set_enabled(&plugged, true);
                }
                if cycle % 11 == 0 {
                    weaver.set_recorder(Some(Recorder::measuring()));
                    weaver.set_recorder(None);
                }
                if cycle % 13 == 0 {
                    weaver.set_match_cache(false);
                    weaver.set_match_cache(true);
                }
                assert!(weaver.unplug(&plugged), "unplug of a live aspect must succeed");
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Release);
        });
    });

    assert!(
        dispatched.load(Ordering::Relaxed) > 0,
        "workers never dispatched — stress loop is vacuous"
    );

    // Quiescence from a cold thread too: the workers' warm-cache check ran
    // inside the scope; the main thread (which never dispatched) must equally
    // see the unwoven program, and the advice counter must not move again.
    let baseline = fired.load(Ordering::Relaxed);
    for (i, proxy) in proxies.iter().enumerate() {
        let x = i as u64;
        assert_eq!(proxy.bump(x).unwrap(), x, "stale chain served to a cold thread");
    }
    assert_eq!(
        fired.load(Ordering::Relaxed),
        baseline,
        "unplugged advice fired after unplug returned"
    );
}

#[test]
fn plug_during_dispatch_becomes_visible_without_restart() {
    // The inverse direction: a *plug* concurrent with dispatch must become
    // visible to already-running worker threads (no permanently-stale
    // thread-local cache).
    let weaver = Weaver::new();
    let fired = Arc::new(AtomicU64::new(0));
    let proxy = CounterProxy::construct(&weaver).unwrap();

    std::thread::scope(|s| {
        let weaver = &weaver;
        let fired = &fired;
        let proxy = &proxy;
        s.spawn(move || {
            // Warm the thread-local cache unwoven, then wait for the plug to
            // land and assert this same thread observes it.
            assert_eq!(proxy.bump(1).unwrap(), 1);
            let plugged = weaver.plug(woven_aspect(fired));
            let mut x = 2u64;
            loop {
                let got = proxy.bump(x).unwrap();
                assert!(got == x || got == x + WOVEN_OFFSET);
                if got == x + WOVEN_OFFSET {
                    break;
                }
                x += 1;
            }
            weaver.unplug(&plugged);
        });
    });
    assert!(fired.load(Ordering::Relaxed) > 0);
}
