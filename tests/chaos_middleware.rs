//! Chaos matrix: farm/pipeline workloads under seeded fault plans (run in
//! `--release` by ci.sh, once with a pinned seed and once with a randomised
//! seed exported as `CHAOS_SEED`).
//!
//! Every fault schedule is a pure function of the seed
//! ([`FaultPlan::seeded`]), so a failing randomised run is replayed exactly
//! by re-running with the printed seed. The matrix pins the fault-tolerance
//! layer's contract:
//!
//! * a node crashed **mid-flight** under a farm costs nothing but time — the
//!   supervision aspect rebuilds the dead workers and re-dispatches the
//!   orphaned packs, and the result is byte-identical to the undisturbed run;
//! * dropped replies are retried under a [`CallPolicy`] and recover, on both
//!   the pooled-slot and channel-rendezvous backends;
//! * an **unrecoverable** loss fails with a typed [`WeaveError::Timeout`]
//!   within the policy's worst case (every attempt hitting its deadline plus
//!   one full backoff ladder) — never a hang;
//! * an injected duplicate oneway is executed **at most once** (the node's
//!   dedup window answers the second delivery);
//! * losing 1 or 2 of 4 worker nodes degrades throughput, not correctness.

use std::sync::Arc;
use std::time::{Duration, Instant};

use weavepar::distribution::{
    Backoff, Bytes, FaultAction, FaultPlan, FaultRule, MethodId, RemoteRef, RequestClass,
};
use weavepar::prelude::*;
use weavepar::skeletons::{supervisor_aspect, SupervisorStats};
use weavepar::weave::value::downcast_ret;
use weavepar::{args, ret, weaveable};
use weavepar_apps::sieve::{build_sieve, run_sieve, sequential_sieve, SieveConfig};

/// The chaos seed: `CHAOS_SEED` from the environment (ci.sh's randomised
/// run) or a pinned default (the regression run). Assertion messages carry
/// it so a failing randomised run prints how to replay itself.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE)
}

struct Cruncher {
    bias: u64,
}

weaveable! {
    class Cruncher as CruncherProxy {
        fn new(bias: u64) -> Self { Cruncher { bias } }
        fn crunch(&mut self, items: Vec<u64>) -> Vec<u64> {
            items.into_iter().map(|x| x * x + self.bias).collect()
        }
    }
}

struct Counter {
    hits: u64,
}

weaveable! {
    class Counter as CounterProxy {
        fn new() -> Self { Counter { hits: 0 } }
        fn bump(&mut self, x: u64) { self.hits += x; }
        fn total(&mut self) -> u64 { self.hits }
    }
}

fn cruncher_marshal() -> MarshalRegistry {
    let m = MarshalRegistry::new();
    m.register::<(u64,), ()>("Cruncher", "new");
    m.register::<(Vec<u64>,), Vec<u64>>("Cruncher", "crunch");
    m.register_state::<Cruncher, u64, _, _>(|c| c.bias, |bias| Cruncher { bias });
    m
}

fn cruncher_protocol(workers: usize, packs: usize) -> Protocol {
    Protocol {
        class: "Cruncher",
        method: "crunch",
        workers,
        worker_args: Arc::new(|_r, _n, orig: &Args| Ok(args![*orig.get::<u64>(0)?])),
        split: Arc::new(move |a: &Args| {
            let items = a.get::<Vec<u64>>(0)?;
            let chunk = items.len().div_ceil(packs.max(1)).max(1);
            Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
        }),
        reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
        combine: Arc::new(|vs: Vec<AnyValue>| {
            let mut all = Vec::new();
            for v in vs {
                all.extend(downcast_ret::<Vec<u64>>(v)?);
            }
            Ok(ret!(all))
        }),
    }
}

/// Farm partition + supervision + RMI distribution (under `call_policy`)
/// over a fresh fabric — the full fault-tolerant stack.
fn supervised_farm(
    nodes: usize,
    workers: usize,
    packs: usize,
    call_policy: CallPolicy,
) -> (Weaver, Arc<InProcFabric>, Arc<SupervisorStats>) {
    let weaver = Weaver::new();
    let fabric = InProcFabric::new(nodes, cruncher_marshal());
    fabric.register_class::<Cruncher>();
    weaver.plug(FarmConfig::new(cruncher_protocol(workers, packs)).aspect("Partition"));
    let (sup, stats) = supervisor_aspect(
        "Supervision",
        "Cruncher",
        Pointcut::call("Cruncher.crunch"),
        fabric.clone(),
    );
    weaver.plug(sup);
    weaver.plug(
        RmiConfig::new("Cruncher", Pointcut::call("Cruncher.crunch"), fabric.clone())
            .placement(Policy::round_robin())
            .policy(call_policy)
            .aspect("Distribution"),
    );
    (weaver, fabric, stats)
}

fn expect_crunch(input: &[u64], bias: u64) -> Vec<u64> {
    input.iter().map(|x| x * x + bias).collect()
}

#[test]
fn farm_survives_a_node_crashed_mid_flight() {
    // The first replied call delivered to node 1 kills the whole node while
    // the farm's packs are in flight. The supervisor must detect the typed
    // NodeDown, rebuild node 1's workers on a survivor and re-dispatch the
    // orphaned packs — same bytes out as a run nobody disturbed.
    let seed = chaos_seed();
    let (weaver, fabric, stats) = supervised_farm(4, 4, 8, CallPolicy::unbounded());
    fabric.install_faults(Arc::new(
        FaultPlan::seeded(seed)
            .rule(FaultRule::on(RequestClass::Call, FaultAction::CrashNode).node(1).times(1)),
    ));
    let lead = CruncherProxy::construct(&weaver, 3).unwrap();
    let input: Vec<u64> = (0..64).collect();
    let got = lead.crunch(input.clone()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    assert_eq!(got, expect_crunch(&input, 3), "seed {seed}: degraded result diverged");
    let injected = fabric.faults().unwrap().stats().snapshot();
    assert_eq!(injected.crashed, 1, "seed {seed}: the crash rule must fire exactly once");
    assert!(stats.workers_recovered() >= 1, "seed {seed}: no worker was rebuilt");
    assert!(stats.tasks_redispatched() >= 1, "seed {seed}: no orphaned pack was re-dispatched");
    assert!(fabric.node(1).unwrap().is_down(), "seed {seed}: node 1 should stay dead");
}

#[test]
fn seeded_fault_matrix_keeps_farm_results_identical() {
    // Probabilistic drops and delays over several derived seeds. The drop
    // budget (3) is strictly below the retry budget (4), so completion is
    // guaranteed for *every* seed — the seed only decides which calls pay.
    let base = chaos_seed();
    let input: Vec<u64> = (0..48).collect();
    let expect = expect_crunch(&input, 9);
    for seed in [base, base ^ 0x5bd1e995, base.wrapping_add(12_345)] {
        let policy = CallPolicy::with_deadline(Duration::from_millis(250))
            .retries(4)
            .backoff(Backoff { base: Duration::from_millis(2), max: Duration::from_millis(10) })
            .seed(seed);
        let (weaver, fabric, _stats) = supervised_farm(3, 3, 12, policy);
        fabric.install_faults(Arc::new(
            FaultPlan::seeded(seed)
                .rule(FaultRule::on(RequestClass::Call, FaultAction::Drop).per_mille(400).times(3))
                .rule(
                    FaultRule::on(RequestClass::Call, FaultAction::Delay(Duration::from_millis(2)))
                        .per_mille(250),
                ),
        ));
        let lead = CruncherProxy::construct(&weaver, 9).unwrap();
        let got = lead.crunch(input.clone()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(got, expect, "seed {seed}: farm result diverged under faults");
    }
}

#[test]
fn delayed_pipeline_sieve_is_undisturbed() {
    // The pipeline leg of the matrix: every request class may be delivered
    // late, which exercises the futures + reforwarding chain under jitter
    // without ever losing data — the primes must come out exactly.
    let seed = chaos_seed();
    let run = build_sieve(SieveConfig { packs: 6, nodes: 3, ..SieveConfig::pipe_rmi(4) });
    run.fabric.as_ref().unwrap().install_faults(Arc::new(
        FaultPlan::seeded(seed).rule(
            FaultRule::on(RequestClass::Any, FaultAction::Delay(Duration::from_millis(2)))
                .per_mille(300),
        ),
    ));
    let got = run_sieve(&run, 3_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    assert_eq!(got, sequential_sieve(3_000), "seed {seed}: delayed pipeline diverged");
    let injected = run.fabric.as_ref().unwrap().faults().unwrap().stats().snapshot();
    assert!(injected.delayed >= 1, "seed {seed}: p=0.3 over a whole sieve must delay something");
}

/// The two replied-call backends under one policy: the pooled-slot fast path
/// and the channel-rendezvous ablation path must expose identical
/// deadline/retry semantics.
type PolicyBackend =
    fn(&InProcFabric, RemoteRef, MethodId, Bytes, &CallPolicy) -> WeaveResult<Option<Bytes>>;

const BACKENDS: [(&str, PolicyBackend); 2] = [
    ("pooled-slot", |f, r, m, a, p| f.call_id_with_policy(r, m, a, true, p)),
    ("channel", |f, r, m, a, p| f.call_id_channel_with_policy(r, m, a, true, p)),
];

fn lone_cruncher(bias: u64) -> (Arc<InProcFabric>, RemoteRef, MethodId) {
    let f = InProcFabric::new(1, cruncher_marshal());
    f.register_class::<Cruncher>();
    let ctor = f.marshal().encode_args("Cruncher", "new", &args![bias]).unwrap();
    let r = f.construct_on(0, "Cruncher", ctor).unwrap();
    let crunch = f.marshal().method_id("Cruncher", "crunch").unwrap();
    (f, r, crunch)
}

#[test]
fn dropped_replies_recover_under_retry_on_both_backends() {
    let seed = chaos_seed();
    for (name, call) in BACKENDS {
        let (f, r, crunch) = lone_cruncher(5);
        // Lose the first two replied deliveries, then behave.
        f.install_faults(Arc::new(
            FaultPlan::seeded(seed)
                .rule(FaultRule::on(RequestClass::Call, FaultAction::Drop).times(2)),
        ));
        let policy = CallPolicy::with_deadline(Duration::from_millis(40))
            .retries(3)
            .backoff(Backoff { base: Duration::from_millis(2), max: Duration::from_millis(8) })
            .seed(seed);
        let args = f.marshal().encode_args("Cruncher", "crunch", &args![vec![3u64]]).unwrap();
        let reply = call(&f, r, crunch, args, &policy)
            .unwrap_or_else(|e| panic!("seed {seed} [{name}]: {e}"))
            .unwrap();
        let ret = f.marshal().decode_ret("Cruncher", "crunch", &reply).unwrap();
        assert_eq!(*ret.downcast::<Vec<u64>>().unwrap(), vec![14], "seed {seed} [{name}]");
        assert_eq!(
            f.faults().unwrap().stats().snapshot().dropped,
            2,
            "seed {seed} [{name}]: both budgeted drops must have fired"
        );
    }
}

#[test]
fn unrecoverable_loss_fails_typed_within_the_policy_worst_case() {
    let seed = chaos_seed();
    for (name, call) in BACKENDS {
        let (f, r, crunch) = lone_cruncher(0);
        // Every replied delivery is lost: no retry can help, so the call
        // must fail with a typed Timeout inside deadline × attempts plus
        // one full backoff ladder (CallPolicy::worst_case), never hang.
        f.install_faults(Arc::new(
            FaultPlan::seeded(seed).rule(FaultRule::on(RequestClass::Call, FaultAction::Drop)),
        ));
        let policy = CallPolicy::with_deadline(Duration::from_millis(30))
            .retries(2)
            .backoff(Backoff { base: Duration::from_millis(2), max: Duration::from_millis(6) })
            .seed(seed);
        let bound = policy.worst_case().unwrap();
        let args = f.marshal().encode_args("Cruncher", "crunch", &args![vec![1u64]]).unwrap();
        let start = Instant::now();
        let err = call(&f, r, crunch, args, &policy).unwrap_err();
        let elapsed = start.elapsed();
        assert!(
            matches!(err, WeaveError::Timeout { .. }),
            "seed {seed} [{name}]: expected Timeout, got {err:?}"
        );
        // Generous scheduling slack: the bound is ~100ms, the slack covers a
        // loaded CI box without masking a hang.
        assert!(
            elapsed <= bound + Duration::from_millis(400),
            "seed {seed} [{name}]: failure took {elapsed:?}, policy worst case is {bound:?}"
        );
    }
}

#[test]
fn duplicated_oneways_execute_at_most_once() {
    let m = MarshalRegistry::new();
    m.register::<(), ()>("Counter", "new");
    m.register::<(u64,), ()>("Counter", "bump");
    m.register::<(), u64>("Counter", "total");
    let f = InProcFabric::new(1, m);
    f.register_class::<Counter>();
    let ctor = f.marshal().encode_args("Counter", "new", &args![]).unwrap();
    let r = f.construct_on(0, "Counter", ctor).unwrap();

    // Every oneway is delivered twice with the same dedup key.
    let seed = chaos_seed();
    f.install_faults(Arc::new(
        FaultPlan::seeded(seed).rule(FaultRule::on(RequestClass::Oneway, FaultAction::Duplicate)),
    ));
    const BUMPS: usize = 64;
    for _ in 0..BUMPS {
        let args = f.marshal().encode_args("Counter", "bump", &args![1u64]).unwrap();
        f.call(r, "bump", args, false).unwrap();
    }
    // The replied read drains the node FIFO behind every duplicate.
    let args = f.marshal().encode_args("Counter", "total", &args![]).unwrap();
    let reply = f.call(r, "total", args, true).unwrap().unwrap();
    let total =
        *f.marshal().decode_ret("Counter", "total", &reply).unwrap().downcast::<u64>().unwrap();
    let injected = f.faults().unwrap().stats().snapshot();
    assert_eq!(
        injected.duplicated, BUMPS,
        "seed {seed}: every oneway must have been duplicated on the wire"
    );
    assert_eq!(
        total,
        BUMPS as u64,
        "seed {seed}: {} duplicate deliveries leaked past the dedup window",
        total as i64 - BUMPS as i64
    );
}

#[test]
fn farm_degrades_gracefully_losing_one_then_two_of_four_workers() {
    // The EXPERIMENTS.md degradation row: same workload, 0/1/2 worker nodes
    // killed after warm-up. Correctness must be bit-identical in all three
    // columns; the killed columns only pay recovery time.
    let input: Vec<u64> = (0..4096).collect();
    let expect = expect_crunch(&input, 1);
    let mut timings = Vec::new();
    for kills in 0..=2usize {
        let (weaver, fabric, stats) = supervised_farm(4, 4, 16, CallPolicy::unbounded());
        let lead = CruncherProxy::construct(&weaver, 1).unwrap();
        // Warm-up places one worker per node and caches the farm.
        assert_eq!(lead.crunch(input.clone()).unwrap(), expect);
        for node in 1..=kills {
            fabric.kill_node(node).unwrap();
        }
        let start = Instant::now();
        let got = lead.crunch(input.clone()).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(got, expect, "{kills} kills: degraded result diverged");
        if kills > 0 {
            assert!(stats.workers_recovered() >= kills, "{kills} kills: recovery did not run");
        }
        timings.push((kills, elapsed, stats.workers_recovered(), stats.tasks_redispatched()));
    }
    // Printed under --nocapture; EXPERIMENTS.md quotes a run of this loop.
    for (kills, elapsed, recovered, redispatched) in timings {
        eprintln!(
            "degradation: kills={kills} elapsed={elapsed:?} recovered={recovered} redispatched={redispatched}"
        );
    }
}
