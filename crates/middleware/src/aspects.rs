//! The pluggable distribution aspects (paper §4.3, Figures 14 and 15) and
//! the communication-packing optimisation aspect (§4.4).
//!
//! Both distribution aspects perform the paper's four RMI code modifications
//! in one module:
//!
//! 1. the class is declared `Remote` (an inter-type class tag);
//! 2. each construction additionally creates a server-side instance
//!    (selected by a [`Policy`]) and — in the RMI flavour — registers it in
//!    the name server under an automatic `PS<n>` name;
//! 3. the client obtains the remote reference (RMI: name-server lookup) and
//!    stores it as an inter-type field on the local stub;
//! 4. matched calls are redirected to the remote instance, marshalled
//!    through the wire codec, with failures surfacing as
//!    [`WeaveError::Remote`] — the `RemoteException` analogue.
//!
//! The local object created by `proceed` acts as the client-side stub: it
//! keeps the object id (and monitor) that the rest of the aspect stack
//! works with, while calls are served by the remote instance.
//!
//! The call advice is allocation-free in the steady state: method ids are
//! resolved once per `(class, method)` signature and cached, argument packs
//! are encoded into pooled frames, and replies are recycled after decoding.
//!
//! [`message_packing_aspect`] is the paper's *communication packing*
//! optimisation as an unpluggable module: it runs at `OPTIMISATION`
//! precedence (outside distribution), captures matched oneway calls on
//! remote stubs, and appends them to a per-node [`PackFrame`] instead of
//! submitting them one by one. A pack ships when it reaches `max_calls`,
//! when the oldest buffered call exceeds `max_age` (checked on the next
//! append — adaptive, no timer thread), when a
//! [`BatchScope`](weavepar_concurrency::BatchScope) active on the calling
//! thread flushes, or on an explicit [`MessagePacker::flush`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;
use weavepar_weave::{Counter, Histogram, MetricsRegistry, Signature};

use crate::fabric::{InProcFabric, RemoteRef};
use crate::policy::CallPolicy;
use crate::wire::{MarshalRegistry, MethodId, PackFrame};

/// Node-selection policy (§4.3: "Several policies can be implemented in this
/// aspect (e.g., random, round-robin)").
#[derive(Clone, Debug)]
pub enum Policy {
    /// Cycle through the nodes.
    RoundRobin(Arc<AtomicUsize>),
    /// Always the same node.
    Fixed(usize),
    /// Pseudo-random node (deterministic LCG seeded explicitly).
    Random(Arc<Mutex<u64>>),
}

impl Policy {
    /// A fresh round-robin policy starting at node 0.
    pub fn round_robin() -> Self {
        Policy::RoundRobin(Arc::new(AtomicUsize::new(0)))
    }

    /// Always place on `node`.
    pub fn fixed(node: usize) -> Self {
        Policy::Fixed(node)
    }

    /// Seeded pseudo-random placement.
    pub fn random(seed: u64) -> Self {
        Policy::Random(Arc::new(Mutex::new(seed.max(1))))
    }

    /// Choose a node out of `nodes`.
    pub fn pick(&self, nodes: usize) -> usize {
        let nodes = nodes.max(1);
        match self {
            Policy::RoundRobin(next) => next.fetch_add(1, Ordering::Relaxed) % nodes,
            Policy::Fixed(node) => *node % nodes,
            Policy::Random(state) => {
                let mut s = state.lock();
                // Numerical Recipes LCG.
                *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((*s >> 33) % nodes as u64) as usize
            }
        }
    }
}

/// Inter-type field under which the remote reference is stored on the stub.
pub const REMOTE_FIELD: &str = "remote";

/// Per-aspect `Signature → MethodId` cache. Signatures are `Copy` pairs of
/// `&'static str`, and an aspect only ever sees the handful its pointcut
/// matches, so a read-mostly linear scan beats re-hashing two strings per
/// call.
#[derive(Default)]
struct SigCache {
    resolved: RwLock<Vec<(Signature, MethodId)>>,
}

impl SigCache {
    fn resolve(&self, marshal: &MarshalRegistry, sig: Signature) -> WeaveResult<MethodId> {
        for (seen, id) in self.resolved.read().iter() {
            if *seen == sig {
                return Ok(*id);
            }
        }
        let id = marshal.method_id(sig.class, sig.method)?;
        self.resolved.write().push((sig, id));
        Ok(id)
    }
}

/// Pre-resolved per-aspect metric cells: the redirected-call advice bumps
/// these directly, never consulting the registry on the hot path.
struct CallMetrics {
    calls: Counter,
    errors: Counter,
    latency: Histogram,
}

#[allow(clippy::too_many_arguments)]
fn distribution_aspect(
    name: String,
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    policy: Policy,
    use_nameserver: bool,
    oneway: bool,
    call_policy: Option<CallPolicy>,
    metrics: Option<MetricsRegistry>,
) -> Aspect {
    let call_metrics = metrics.map(|registry| CallMetrics {
        calls: registry.counter(&format!("{name}.calls")),
        errors: registry.counter(&format!("{name}.errors")),
        latency: registry.histogram(&format!("{name}.latency_ns")),
    });
    let construct_fabric = fabric.clone();
    let sig_cache = Arc::new(SigCache::default());
    Aspect::named(name)
        .precedence(precedence::DISTRIBUTION)
        // Server + client side of object creation (modifications 1–3).
        .around(Pointcut::construct(class), move |inv: &mut Invocation| {
            let fabric = &construct_fabric;
            // Resolve the constructor id once per registry; encode into a
            // pooled frame before `proceed` consumes the arguments.
            let ctor = fabric.marshal().method_id(class, "new")?;
            let mut buf = fabric.buffers().take();
            fabric.marshal().encode_args_id(ctor, inv.args()?, &mut buf)?;
            let local = inv.proceed()?;
            let local_id = *local
                .downcast_ref::<ObjId>()
                .ok_or_else(|| WeaveError::remote("construction did not return an ObjId"))?;
            let node = policy.pick(fabric.node_count());
            let remote = fabric.construct_on_id(node, ctor, buf.freeze())?;
            let resolved = if use_nameserver {
                // Figure 14: register under PS<n>, then look it up — the
                // client only ever holds what the name server handed out.
                let ns = fabric.nameserver();
                let name = ns.next_name("PS");
                ns.rebind(&name, remote);
                ns.lookup(&name)?
            } else {
                remote
            };
            let weaver = inv.weaver();
            weaver.intertype().declare_tag(class, "Remote");
            weaver.intertype().set_field(local_id, REMOTE_FIELD, resolved);
            Ok(local)
        })
        // Client-side call redirection (modification 4).
        .around(call_pointcut, move |inv: &mut Invocation| {
            let target = inv.target_required()?;
            let remote = inv.weaver().intertype().get_field::<RemoteRef>(target, REMOTE_FIELD);
            let Some(remote) = remote else {
                // Not a distributed object (plugged after creation, or a
                // purely local instance): run locally.
                return inv.proceed();
            };
            // Only redirected calls are metered: the timer covers marshal,
            // wire round-trip and decode — the cost distribution added.
            let timer = call_metrics.as_ref().map(|m| {
                m.calls.inc();
                Instant::now()
            });
            let result: WeaveResult<_> = (|| {
                let method = sig_cache.resolve(fabric.marshal(), inv.signature())?;
                let mut buf = fabric.buffers().take();
                fabric.marshal().encode_args_id(method, inv.args()?, &mut buf)?;
                // With a call policy the invocation gets a deadline on the
                // reply park and transparent retry of transient failures;
                // without one it is the original wait-forever fast path.
                let send = |frame, want_reply| match &call_policy {
                    Some(policy) => {
                        fabric.call_id_with_policy(remote, method, frame, want_reply, policy)
                    }
                    None => fabric.call_id(remote, method, frame, want_reply),
                };
                if oneway {
                    send(buf.freeze(), false)?;
                    Ok(weavepar_weave::ret!())
                } else {
                    let reply = send(buf.freeze(), true)?
                        .ok_or_else(|| WeaveError::remote("missing reply"))?;
                    let mut view = reply.clone();
                    let ret = fabric.marshal().decode_ret_id(method, &mut view);
                    drop(view);
                    fabric.buffers().recycle(reply);
                    ret
                }
            })();
            if let (Some(m), Some(start)) = (&call_metrics, timer) {
                m.latency.record(start.elapsed());
                if result.is_err() {
                    m.errors.inc();
                }
            }
            result
        })
        .build()
}

/// Builder for the RMI-style distribution aspect (Figure 14): name-server
/// registration and lookup, synchronous calls with marshalled replies.
///
/// The three constructor arguments are the decisions every deployment makes;
/// everything optional — placement policy, call policy, metrics — chains:
///
/// ```ignore
/// let aspect = RmiConfig::new("Doubler", Pointcut::call("Doubler.apply"), fabric)
///     .placement(Policy::round_robin())
///     .policy(CallPolicy::with_deadline(Duration::from_millis(50)).retries(3))
///     .metrics(&registry)
///     .aspect("Distribution");
/// ```
#[derive(Clone)]
pub struct RmiConfig {
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    placement: Policy,
    call_policy: Option<CallPolicy>,
    metrics: Option<MetricsRegistry>,
}

impl RmiConfig {
    /// Distribute `class`, redirecting calls matched by `call_pointcut` over
    /// `fabric`. Placement defaults to round-robin; calls wait forever (no
    /// [`CallPolicy`]) and record no metrics until configured otherwise.
    pub fn new(class: &'static str, call_pointcut: Pointcut, fabric: Arc<InProcFabric>) -> Self {
        RmiConfig {
            class,
            call_pointcut,
            fabric,
            placement: Policy::round_robin(),
            call_policy: None,
            metrics: None,
        }
    }

    /// Node-selection policy for new instances (default: round-robin).
    pub fn placement(mut self, policy: Policy) -> Self {
        self.placement = policy;
        self
    }

    /// Give every redirected call a deadline on its reply wait and retry
    /// transient failures with backoff — the fault-tolerant flavour of
    /// Figure 14, still one pluggable module.
    pub fn policy(mut self, call_policy: CallPolicy) -> Self {
        self.call_policy = Some(call_policy);
        self
    }

    /// Record per-call observability into `registry`: `{name}.calls` /
    /// `{name}.errors` counters and an `{name}.latency_ns` histogram over
    /// redirected calls (marshal + round-trip + decode).
    pub fn metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Build the pluggable aspect under `name`.
    pub fn aspect(self, name: impl Into<String>) -> Aspect {
        distribution_aspect(
            name.into(),
            self.class,
            self.call_pointcut,
            self.fabric,
            self.placement,
            true,
            false,
            self.call_policy,
            self.metrics,
        )
    }
}

/// Builder for the MPP-style distribution aspect (Figure 15): direct node
/// addressing, no name server. [`MppConfig::oneway`] sends without replies
/// (the figure's `comm.send`); the replied default awaits a reply message,
/// which methods with results require.
#[derive(Clone)]
pub struct MppConfig {
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    placement: Policy,
    oneway: bool,
    call_policy: Option<CallPolicy>,
    metrics: Option<MetricsRegistry>,
}

impl MppConfig {
    /// Distribute `class` MPP-style over `fabric`. Placement defaults to
    /// round-robin and calls are replied; chain [`MppConfig::oneway`] for
    /// send-and-forget semantics.
    pub fn new(class: &'static str, call_pointcut: Pointcut, fabric: Arc<InProcFabric>) -> Self {
        MppConfig {
            class,
            call_pointcut,
            fabric,
            placement: Policy::round_robin(),
            oneway: false,
            call_policy: None,
            metrics: None,
        }
    }

    /// Node-selection policy for new instances (default: round-robin).
    pub fn placement(mut self, policy: Policy) -> Self {
        self.placement = policy;
        self
    }

    /// Send without replies (only apply to methods whose results are
    /// unused); `false` restores the replied default.
    pub fn oneway(mut self, oneway: bool) -> Self {
        self.oneway = oneway;
        self
    }

    /// A [`CallPolicy`] on redirected calls (deadline + retry/backoff;
    /// oneway sends only mint a dedup key).
    pub fn policy(mut self, call_policy: CallPolicy) -> Self {
        self.call_policy = Some(call_policy);
        self
    }

    /// Record per-call observability into `registry` (see
    /// [`RmiConfig::metrics`]).
    pub fn metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Build the pluggable aspect under `name`.
    pub fn aspect(self, name: impl Into<String>) -> Aspect {
        distribution_aspect(
            name.into(),
            self.class,
            self.call_pointcut,
            self.fabric,
            self.placement,
            false,
            self.oneway,
            self.call_policy,
            self.metrics,
        )
    }
}

/// The RMI-style distribution aspect (Figure 14).
#[deprecated(note = "use `RmiConfig::new(class, pointcut, fabric).placement(policy).aspect(name)`")]
pub fn rmi_distribution_aspect(
    name: impl Into<String>,
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    policy: Policy,
) -> Aspect {
    RmiConfig::new(class, call_pointcut, fabric).placement(policy).aspect(name)
}

/// The RMI-style distribution aspect with a [`CallPolicy`].
#[deprecated(
    note = "use `RmiConfig::new(class, pointcut, fabric).placement(policy).policy(call_policy).aspect(name)`"
)]
pub fn rmi_distribution_aspect_with_policy(
    name: impl Into<String>,
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    policy: Policy,
    call_policy: CallPolicy,
) -> Aspect {
    RmiConfig::new(class, call_pointcut, fabric).placement(policy).policy(call_policy).aspect(name)
}

/// The MPP-style distribution aspect (Figure 15).
#[deprecated(
    note = "use `MppConfig::new(class, pointcut, fabric).placement(policy).oneway(oneway).aspect(name)`"
)]
pub fn mpp_distribution_aspect(
    name: impl Into<String>,
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    policy: Policy,
    oneway: bool,
) -> Aspect {
    MppConfig::new(class, call_pointcut, fabric).placement(policy).oneway(oneway).aspect(name)
}

/// The MPP-style distribution aspect with a [`CallPolicy`].
#[deprecated(
    note = "use `MppConfig::new(class, pointcut, fabric).placement(policy).oneway(oneway).policy(call_policy).aspect(name)`"
)]
pub fn mpp_distribution_aspect_with_policy(
    name: impl Into<String>,
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    policy: Policy,
    oneway: bool,
    call_policy: CallPolicy,
) -> Aspect {
    MppConfig::new(class, call_pointcut, fabric)
        .placement(policy)
        .oneway(oneway)
        .policy(call_policy)
        .aspect(name)
}

/// One node's pending pack.
struct Pending {
    frame: PackFrame,
    born: Instant,
}

/// Shared state behind [`message_packing_aspect`]: per-destination-node
/// pack frames plus the flush policy. Clone-cheap; hand one to whoever
/// needs to flush (scope hooks, tests, shutdown paths).
#[derive(Clone)]
pub struct MessagePacker {
    fabric: Arc<InProcFabric>,
    pending: Arc<Mutex<HashMap<usize, Pending>>>,
    /// Set (under the `pending` lock) by [`MessagePacker::unplug`]: calls
    /// racing the unplug ship immediately instead of parking in a buffer
    /// nobody will flush again.
    closed: Arc<AtomicBool>,
    /// Flush thresholds, held in shared cells so a tuning controller can
    /// adjust them between flushes; each `buffer` reads them with one
    /// relaxed load apiece.
    max_calls: Arc<AtomicU32>,
    max_age_ms: Arc<AtomicU32>,
}

impl MessagePacker {
    fn new(fabric: Arc<InProcFabric>, max_calls: u32, max_age: Duration) -> Self {
        MessagePacker {
            fabric,
            pending: Arc::new(Mutex::new(HashMap::new())),
            closed: Arc::new(AtomicBool::new(false)),
            max_calls: Arc::new(AtomicU32::new(max_calls.max(1))),
            max_age_ms: Arc::new(AtomicU32::new(
                max_age.as_millis().min(u128::from(u32::MAX)) as u32
            )),
        }
    }

    /// The pack-size threshold cell (calls per frame), for tuner binding.
    pub fn max_calls_cell(&self) -> Arc<AtomicU32> {
        self.max_calls.clone()
    }

    /// The flush-age threshold cell (milliseconds), for tuner binding.
    pub fn max_age_ms_cell(&self) -> Arc<AtomicU32> {
        self.max_age_ms.clone()
    }

    /// Append one call bound for `node`; ships the pack when the count or
    /// age threshold is hit.
    fn buffer(&self, node: usize, obj: ObjId, method: MethodId, args: &Args) -> WeaveResult<()> {
        let ready = {
            let mut pending = self.pending.lock();
            if self.closed.load(Ordering::SeqCst) {
                // The unplug already drained the buffers; this call slipped
                // through the advice chain mid-unplug. Ship it on its own so
                // it is delivered exactly once rather than stranded.
                drop(pending);
                let mut frame = self.fabric.new_pack();
                frame.push(obj, method, self.fabric.marshal(), args)?;
                self.fabric.submit_pack(node, frame)?;
                return Ok(());
            }
            let entry = pending
                .entry(node)
                .or_insert_with(|| Pending { frame: self.fabric.new_pack(), born: Instant::now() });
            if entry.frame.is_empty() {
                entry.born = Instant::now();
                // First call of a fresh pack: if the calling thread is inside
                // a BatchScope, ship this node's pack when the scope flushes
                // so deferred skeleton work and its messages leave together.
                if weavepar_concurrency::scope_active() {
                    let packer = self.clone();
                    weavepar_concurrency::on_scope_flush(move || {
                        let _ = packer.flush_node(node);
                    });
                }
            }
            entry.frame.push(obj, method, self.fabric.marshal(), args)?;
            let max_calls = self.max_calls.load(Ordering::Relaxed).max(1);
            let max_age = Duration::from_millis(u64::from(self.max_age_ms.load(Ordering::Relaxed)));
            if entry.frame.count() >= max_calls || entry.born.elapsed() >= max_age {
                pending.remove(&node)
            } else {
                None
            }
        };
        if let Some(pack) = ready {
            self.fabric.submit_pack(node, pack.frame)?;
        }
        Ok(())
    }

    /// Ship `node`'s pending pack, if any. Returns the number of calls
    /// shipped.
    pub fn flush_node(&self, node: usize) -> WeaveResult<usize> {
        let taken = self.pending.lock().remove(&node);
        match taken {
            Some(pack) => self.fabric.submit_pack(node, pack.frame),
            None => Ok(0),
        }
    }

    /// Ship every pending pack. Returns the total number of calls shipped.
    pub fn flush(&self) -> WeaveResult<usize> {
        let drained: Vec<(usize, Pending)> = self.pending.lock().drain().collect();
        let mut shipped = 0;
        for (node, pack) in drained {
            shipped += self.fabric.submit_pack(node, pack.frame)?;
        }
        Ok(shipped)
    }

    /// Unplug the packing aspect and ship whatever it buffered: every call
    /// that entered the advice — including calls racing the unplug from
    /// other threads — is delivered exactly once; calls issued after go
    /// through the distribution aspect directly. The packer is closed for
    /// good: a still-running advice that buffers after this drain ships its
    /// call immediately instead (see [`MessagePacker::buffer`]).
    pub fn unplug(&self, weaver: &Weaver, plugged: &PluggedAspect) -> WeaveResult<usize> {
        weaver.unplug(plugged);
        let drained: Vec<(usize, Pending)> = {
            let mut pending = self.pending.lock();
            // Closing under the lock linearises against `buffer`: an append
            // that won the lock first is in `drained`; one that lost sees
            // `closed` and self-ships.
            self.closed.store(true, Ordering::SeqCst);
            pending.drain().collect()
        };
        let mut shipped = 0;
        for (node, pack) in drained {
            shipped += self.fabric.submit_pack(node, pack.frame)?;
        }
        Ok(shipped)
    }

    /// Calls currently buffered across all nodes (tests, introspection).
    pub fn pending_calls(&self) -> usize {
        self.pending.lock().values().map(|p| p.frame.count() as usize).sum()
    }
}

/// The paper's §4.4 *communication packing* optimisation as a pluggable
/// aspect. Matched calls on remote stubs are appended to a per-node
/// [`PackFrame`] and shipped as one [`Request::CallPack`] — one submit, one
/// wakeup for up to `max_calls` calls. Returns the aspect plus its
/// [`MessagePacker`] handle for explicit flushing.
///
/// Packed calls are **oneway**: the advice returns unit without waiting, so
/// only apply the pointcut to methods whose results are unused (the same
/// contract as `mpp_distribution_aspect` with `oneway = true`). Replied
/// calls and non-remote targets are untouched — they proceed down the
/// aspect stack as if this aspect were not plugged.
pub fn message_packing_aspect(
    name: impl Into<String>,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    max_calls: u32,
    max_age: Duration,
) -> (Aspect, MessagePacker) {
    let packer = MessagePacker::new(fabric.clone(), max_calls, max_age);
    let advice_packer = packer.clone();
    let sig_cache = Arc::new(SigCache::default());
    let aspect = Aspect::named(name)
        .precedence(precedence::OPTIMISATION)
        .around(call_pointcut, move |inv: &mut Invocation| {
            let target = inv.target_required()?;
            let remote = inv.weaver().intertype().get_field::<RemoteRef>(target, REMOTE_FIELD);
            let Some(remote) = remote else {
                // Local object: nothing to pack.
                return inv.proceed();
            };
            let method = sig_cache.resolve(advice_packer.fabric.marshal(), inv.signature())?;
            advice_packer.buffer(remote.node, remote.obj, method, inv.args()?)?;
            Ok(weavepar_weave::ret!())
        })
        .build();
    (aspect, packer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MarshalRegistry;

    struct Doubler {
        bias: u64,
        calls: u64,
    }

    weavepar_weave::weaveable! {
        class Doubler as DoublerProxy {
            fn new(bias: u64) -> Self { Doubler { bias, calls: 0 } }
            fn apply(&mut self, x: u64) -> u64 {
                self.calls += 1;
                x * 2 + self.bias
            }
            fn calls(&mut self) -> u64 {
                self.calls
            }
        }
    }

    fn fabric(nodes: usize) -> Arc<InProcFabric> {
        let m = MarshalRegistry::new();
        m.register::<(u64,), ()>("Doubler", "new");
        m.register::<(u64,), u64>("Doubler", "apply");
        m.register::<(), u64>("Doubler", "calls");
        let f = InProcFabric::new(nodes, m);
        f.register_class::<Doubler>();
        f
    }

    /// Replied call straight to the remote instance — synchronises behind
    /// any queued packs (FIFO) and reads the server-side call count.
    fn remote_calls(f: &InProcFabric, remote: RemoteRef) -> u64 {
        let args = f.marshal().encode_args("Doubler", "calls", &weavepar_weave::args![]).unwrap();
        let reply = f.call(remote, "calls", args, true).unwrap().unwrap();
        *f.marshal().decode_ret("Doubler", "calls", &reply).unwrap().downcast::<u64>().unwrap()
    }

    #[test]
    fn rmi_redirects_calls_to_the_remote_instance() {
        let weaver = Weaver::new();
        let f = fabric(2);
        weaver.plug(
            RmiConfig::new(
                "Doubler",
                Pointcut::call("Doubler.apply").or(Pointcut::call("Doubler.calls")),
                f.clone(),
            )
            .placement(Policy::fixed(1))
            .aspect("Distribution"),
        );
        let d = DoublerProxy::construct(&weaver, 5).unwrap();
        assert_eq!(d.apply(10).unwrap(), 25);
        assert_eq!(d.apply(0).unwrap(), 5);
        // The *remote* instance took the calls; the local stub took none.
        assert_eq!(d.calls().unwrap(), 2);
        let local_calls = weaver.space().with_object::<Doubler, _>(d.id(), |o| o.calls).unwrap();
        assert_eq!(local_calls, 0, "stub must not execute redirected calls");
        // And the remote object lives on node 1.
        assert_eq!(f.node(1).unwrap().weaver().space().len(), 1);
        assert_eq!(f.node(0).unwrap().weaver().space().len(), 0);
    }

    #[test]
    fn rmi_registers_names() {
        let weaver = Weaver::new();
        let f = fabric(2);
        weaver.plug(
            RmiConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .aspect("Distribution"),
        );
        let _a = DoublerProxy::construct(&weaver, 0).unwrap();
        let _b = DoublerProxy::construct(&weaver, 0).unwrap();
        assert_eq!(f.nameserver().names(), vec!["PS1".to_string(), "PS2".to_string()]);
        assert!(weaver.intertype().has_tag("Doubler", "Remote"));
    }

    #[test]
    fn mpp_without_nameserver() {
        let weaver = Weaver::new();
        let f = fabric(3);
        weaver.plug(
            MppConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .aspect("DistributionMPP"),
        );
        let d = DoublerProxy::construct(&weaver, 1).unwrap();
        assert_eq!(d.apply(3).unwrap(), 7);
        assert!(f.nameserver().is_empty());
    }

    #[test]
    fn mpp_oneway_returns_unit_immediately() {
        let weaver = Weaver::new();
        let f = fabric(2);
        weaver.plug(
            MppConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .placement(Policy::fixed(0))
                .oneway(true)
                .aspect("DistributionMPP"),
        );
        let d = DoublerProxy::construct(&weaver, 1).unwrap();
        // Typed proxy expects u64 but the oneway advice returns (): use the
        // raw handle, as oneway methods should be unit-returning by design.
        let ret = d.handle().call("apply", weavepar_weave::args![3u64]).unwrap();
        assert!(ret.downcast::<()>().is_ok());
    }

    #[test]
    fn unplugged_distribution_is_fully_local() {
        let weaver = Weaver::new();
        let f = fabric(2);
        let plugged = weaver.plug(
            RmiConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .placement(Policy::fixed(0))
                .aspect("Distribution"),
        );
        weaver.unplug(&plugged);
        let d = DoublerProxy::construct(&weaver, 5).unwrap();
        assert_eq!(d.apply(10).unwrap(), 25);
        assert_eq!(f.node(0).unwrap().weaver().space().len(), 0, "no remote instance created");
    }

    #[test]
    fn objects_created_before_plugging_stay_local() {
        let weaver = Weaver::new();
        let f = fabric(2);
        let d = DoublerProxy::construct(&weaver, 5).unwrap();
        weaver.plug(
            RmiConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .placement(Policy::fixed(0))
                .aspect("Distribution"),
        );
        // No remote field on this object: the call advice falls through.
        assert_eq!(d.apply(1).unwrap(), 7);
        assert_eq!(f.node(0).unwrap().weaver().space().len(), 0);
    }

    #[test]
    fn round_robin_spreads_instances() {
        let weaver = Weaver::new();
        let f = fabric(3);
        weaver.plug(
            MppConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .aspect("DistributionMPP"),
        );
        for _ in 0..6 {
            DoublerProxy::construct(&weaver, 0).unwrap();
        }
        for node in 0..3 {
            assert_eq!(f.node(node).unwrap().weaver().space().len(), 2);
        }
    }

    #[test]
    fn policy_pick_ranges() {
        let rr = Policy::round_robin();
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(3)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(Policy::fixed(5).pick(3), 2);
        let rnd = Policy::random(42);
        for _ in 0..100 {
            assert!(rnd.pick(4) < 4);
        }
        // Determinism: same seed, same sequence.
        let a: Vec<usize> = {
            let p = Policy::random(7);
            (0..10).map(|_| p.pick(5)).collect()
        };
        let b: Vec<usize> = {
            let p = Policy::random(7);
            (0..10).map(|_| p.pick(5)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn missing_marshaller_is_a_remote_error() {
        let weaver = Weaver::new();
        let m = MarshalRegistry::new(); // nothing registered
        let f = InProcFabric::new(1, m);
        f.register_class::<Doubler>();
        weaver.plug(
            RmiConfig::new("Doubler", Pointcut::call("Doubler.apply"), f)
                .placement(Policy::fixed(0))
                .aspect("Distribution"),
        );
        let err = DoublerProxy::construct(&weaver, 1).unwrap_err();
        assert!(matches!(err, WeaveError::Remote(_)));
    }

    #[test]
    fn builder_metrics_meter_redirected_calls() {
        let weaver = Weaver::new();
        let f = fabric(2);
        let registry = MetricsRegistry::new();
        weaver.plug(
            RmiConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .placement(Policy::fixed(1))
                .metrics(&registry)
                .aspect("Distribution"),
        );
        let d = DoublerProxy::construct(&weaver, 5).unwrap();
        for x in 0..4 {
            assert_eq!(d.apply(x).unwrap(), x * 2 + 5);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("Distribution.calls"), Some(4));
        assert_eq!(snap.counter("Distribution.errors"), Some(0));
        let latency = snap.histogram("Distribution.latency_ns").unwrap();
        assert_eq!(latency.count, 4, "every redirected call is timed");
        assert!(latency.sum_ns > 0);

        // Local objects (constructed before plugging elsewhere) are not
        // metered: the advice falls through before the timer starts.
        let weaver2 = Weaver::new();
        let local = DoublerProxy::construct(&weaver2, 1).unwrap();
        assert_eq!(local.apply(1).unwrap(), 3);
        assert_eq!(registry.snapshot().counter("Distribution.calls"), Some(4));
    }

    #[test]
    fn packing_buffers_and_auto_flushes_on_count() {
        let weaver = Weaver::new();
        let f = fabric(1);
        let (aspect, packer) = message_packing_aspect(
            "Packing",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            3,
            Duration::from_secs(3600),
        );
        weaver.plug(aspect);
        weaver.plug(
            MppConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .placement(Policy::fixed(0))
                .oneway(true)
                .aspect("DistributionMPP"),
        );
        let d = DoublerProxy::construct(&weaver, 0).unwrap();
        let remote = weaver.intertype().get_field::<RemoteRef>(d.id(), REMOTE_FIELD).unwrap();

        // Two calls: buffered, nothing on the wire yet.
        for x in [1u64, 2] {
            d.handle().call("apply", weavepar_weave::args![x]).unwrap();
        }
        assert_eq!(packer.pending_calls(), 2);
        assert_eq!(remote_calls(&f, remote), 0, "buffered calls not yet shipped");

        // Third call trips max_calls: the pack ships as one frame.
        d.handle().call("apply", weavepar_weave::args![3u64]).unwrap();
        assert_eq!(packer.pending_calls(), 0);
        assert_eq!(remote_calls(&f, remote), 3);
    }

    #[test]
    fn packing_explicit_flush_and_age_trigger() {
        let weaver = Weaver::new();
        let f = fabric(1);
        let (aspect, packer) = message_packing_aspect(
            "Packing",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            1000,
            Duration::from_millis(10),
        );
        weaver.plug(aspect);
        weaver.plug(
            MppConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .placement(Policy::fixed(0))
                .oneway(true)
                .aspect("DistributionMPP"),
        );
        let d = DoublerProxy::construct(&weaver, 0).unwrap();
        let remote = weaver.intertype().get_field::<RemoteRef>(d.id(), REMOTE_FIELD).unwrap();

        d.handle().call("apply", weavepar_weave::args![1u64]).unwrap();
        assert_eq!(packer.flush().unwrap(), 1);
        assert_eq!(packer.flush().unwrap(), 0, "flush is idempotent");
        assert_eq!(remote_calls(&f, remote), 1);

        // Age trigger: a stale pack ships on the next append.
        d.handle().call("apply", weavepar_weave::args![2u64]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        d.handle().call("apply", weavepar_weave::args![3u64]).unwrap();
        assert_eq!(packer.pending_calls(), 0, "age threshold shipped the pack");
        assert_eq!(remote_calls(&f, remote), 3);
    }

    #[test]
    fn packing_unplug_flushes_and_restores_direct_sends() {
        let weaver = Weaver::new();
        let f = fabric(1);
        let (aspect, packer) = message_packing_aspect(
            "Packing",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            1000,
            Duration::from_secs(3600),
        );
        let plugged = weaver.plug(aspect);
        weaver.plug(
            MppConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .placement(Policy::fixed(0))
                .oneway(true)
                .aspect("DistributionMPP"),
        );
        let d = DoublerProxy::construct(&weaver, 0).unwrap();
        let remote = weaver.intertype().get_field::<RemoteRef>(d.id(), REMOTE_FIELD).unwrap();

        d.handle().call("apply", weavepar_weave::args![1u64]).unwrap();
        d.handle().call("apply", weavepar_weave::args![2u64]).unwrap();
        assert_eq!(packer.unplug(&weaver, &plugged).unwrap(), 2, "unplug ships the backlog");
        // After unplug, calls go straight through the distribution aspect.
        d.handle().call("apply", weavepar_weave::args![3u64]).unwrap();
        assert_eq!(packer.pending_calls(), 0);
        assert_eq!(remote_calls(&f, remote), 3);
    }

    #[test]
    fn packing_flushes_with_batch_scope() {
        let weaver = Weaver::new();
        let f = fabric(1);
        let (aspect, packer) = message_packing_aspect(
            "Packing",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            1000,
            Duration::from_secs(3600),
        );
        weaver.plug(aspect);
        weaver.plug(
            MppConfig::new("Doubler", Pointcut::call("Doubler.apply"), f.clone())
                .placement(Policy::fixed(0))
                .oneway(true)
                .aspect("DistributionMPP"),
        );
        let d = DoublerProxy::construct(&weaver, 0).unwrap();
        let remote = weaver.intertype().get_field::<RemoteRef>(d.id(), REMOTE_FIELD).unwrap();

        let scope = weavepar_concurrency::BatchScope::enter();
        for x in [1u64, 2, 3] {
            d.handle().call("apply", weavepar_weave::args![x]).unwrap();
        }
        assert_eq!(packer.pending_calls(), 3, "buffered while the scope is open");
        scope.flush();
        assert_eq!(packer.pending_calls(), 0, "scope flush shipped the pack");
        assert_eq!(remote_calls(&f, remote), 3);
    }

    #[test]
    fn packing_leaves_local_objects_alone() {
        let weaver = Weaver::new();
        let f = fabric(1);
        let (aspect, packer) = message_packing_aspect(
            "Packing",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            1000,
            Duration::from_secs(3600),
        );
        weaver.plug(aspect);
        // No distribution aspect: the object is purely local.
        let d = DoublerProxy::construct(&weaver, 5).unwrap();
        assert_eq!(d.apply(10).unwrap(), 25, "local calls proceed untouched");
        assert_eq!(packer.pending_calls(), 0);
    }
}
