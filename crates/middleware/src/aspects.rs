//! The pluggable distribution aspects (paper §4.3, Figures 14 and 15).
//!
//! Both aspects perform the paper's four RMI code modifications in one
//! module:
//!
//! 1. the class is declared `Remote` (an inter-type class tag);
//! 2. each construction additionally creates a server-side instance
//!    (selected by a [`Policy`]) and — in the RMI flavour — registers it in
//!    the name server under an automatic `PS<n>` name;
//! 3. the client obtains the remote reference (RMI: name-server lookup) and
//!    stores it as an inter-type field on the local stub;
//! 4. matched calls are redirected to the remote instance, marshalled
//!    through the wire codec, with failures surfacing as
//!    [`WeaveError::Remote`] — the `RemoteException` analogue.
//!
//! The local object created by `proceed` acts as the client-side stub: it
//! keeps the object id (and monitor) that the rest of the aspect stack
//! works with, while calls are served by the remote instance.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;

use crate::fabric::{InProcFabric, RemoteRef};

/// Node-selection policy (§4.3: "Several policies can be implemented in this
/// aspect (e.g., random, round-robin)").
#[derive(Clone, Debug)]
pub enum Policy {
    /// Cycle through the nodes.
    RoundRobin(Arc<AtomicUsize>),
    /// Always the same node.
    Fixed(usize),
    /// Pseudo-random node (deterministic LCG seeded explicitly).
    Random(Arc<Mutex<u64>>),
}

impl Policy {
    /// A fresh round-robin policy starting at node 0.
    pub fn round_robin() -> Self {
        Policy::RoundRobin(Arc::new(AtomicUsize::new(0)))
    }

    /// Always place on `node`.
    pub fn fixed(node: usize) -> Self {
        Policy::Fixed(node)
    }

    /// Seeded pseudo-random placement.
    pub fn random(seed: u64) -> Self {
        Policy::Random(Arc::new(Mutex::new(seed.max(1))))
    }

    /// Choose a node out of `nodes`.
    pub fn pick(&self, nodes: usize) -> usize {
        let nodes = nodes.max(1);
        match self {
            Policy::RoundRobin(next) => next.fetch_add(1, Ordering::Relaxed) % nodes,
            Policy::Fixed(node) => *node % nodes,
            Policy::Random(state) => {
                let mut s = state.lock();
                // Numerical Recipes LCG.
                *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((*s >> 33) % nodes as u64) as usize
            }
        }
    }
}

/// Inter-type field under which the remote reference is stored on the stub.
pub const REMOTE_FIELD: &str = "remote";

fn distribution_aspect(
    name: String,
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    policy: Policy,
    use_nameserver: bool,
    oneway: bool,
) -> Aspect {
    let construct_fabric = fabric.clone();
    Aspect::named(name)
        .precedence(precedence::DISTRIBUTION)
        // Server + client side of object creation (modifications 1–3).
        .around(Pointcut::construct(class), move |inv: &mut Invocation| {
            let fabric = &construct_fabric;
            // Marshal the constructor arguments before `proceed` consumes them.
            let ctor_bytes = fabric.marshal().encode_args(class, "new", inv.args()?)?;
            let local = inv.proceed()?;
            let local_id = *local
                .downcast_ref::<ObjId>()
                .ok_or_else(|| WeaveError::remote("construction did not return an ObjId"))?;
            let node = policy.pick(fabric.node_count());
            let remote = fabric.construct_on(node, class, ctor_bytes)?;
            let resolved = if use_nameserver {
                // Figure 14: register under PS<n>, then look it up — the
                // client only ever holds what the name server handed out.
                let ns = fabric.nameserver();
                let name = ns.next_name("PS");
                ns.rebind(&name, remote);
                ns.lookup(&name)?
            } else {
                remote
            };
            let weaver = inv.weaver();
            weaver.intertype().declare_tag(class, "Remote");
            weaver.intertype().set_field(local_id, REMOTE_FIELD, resolved);
            Ok(local)
        })
        // Client-side call redirection (modification 4).
        .around(call_pointcut, move |inv: &mut Invocation| {
            let target = inv.target_required()?;
            let remote = inv.weaver().intertype().get_field::<RemoteRef>(target, REMOTE_FIELD);
            let Some(remote) = remote else {
                // Not a distributed object (plugged after creation, or a
                // purely local instance): run locally.
                return inv.proceed();
            };
            let sig = inv.signature();
            let bytes = fabric.marshal().encode_args(sig.class, sig.method, inv.args()?)?;
            if oneway {
                fabric.call(remote, sig.method, bytes, false)?;
                Ok(weavepar_weave::ret!())
            } else {
                let reply = fabric
                    .call(remote, sig.method, bytes, true)?
                    .ok_or_else(|| WeaveError::remote("missing reply"))?;
                fabric.marshal().decode_ret(sig.class, sig.method, &reply)
            }
        })
        .build()
}

/// The RMI-style distribution aspect (Figure 14): name-server registration
/// and lookup, synchronous calls with marshalled replies.
pub fn rmi_distribution_aspect(
    name: impl Into<String>,
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    policy: Policy,
) -> Aspect {
    distribution_aspect(name.into(), class, call_pointcut, fabric, policy, true, false)
}

/// The MPP-style distribution aspect (Figure 15): direct node addressing,
/// no name server. `oneway` sends without replies (the figure's
/// `comm.send`); with `oneway = false` a reply message is awaited, which
/// methods with results require.
pub fn mpp_distribution_aspect(
    name: impl Into<String>,
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
    policy: Policy,
    oneway: bool,
) -> Aspect {
    distribution_aspect(name.into(), class, call_pointcut, fabric, policy, false, oneway)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MarshalRegistry;

    struct Doubler {
        bias: u64,
        calls: u64,
    }

    weavepar_weave::weaveable! {
        class Doubler as DoublerProxy {
            fn new(bias: u64) -> Self { Doubler { bias, calls: 0 } }
            fn apply(&mut self, x: u64) -> u64 {
                self.calls += 1;
                x * 2 + self.bias
            }
            fn calls(&mut self) -> u64 {
                self.calls
            }
        }
    }

    fn fabric(nodes: usize) -> Arc<InProcFabric> {
        let m = MarshalRegistry::new();
        m.register::<(u64,), ()>("Doubler", "new");
        m.register::<(u64,), u64>("Doubler", "apply");
        m.register::<(), u64>("Doubler", "calls");
        let f = InProcFabric::new(nodes, m);
        f.register_class::<Doubler>();
        f
    }

    #[test]
    fn rmi_redirects_calls_to_the_remote_instance() {
        let weaver = Weaver::new();
        let f = fabric(2);
        weaver.plug(rmi_distribution_aspect(
            "Distribution",
            "Doubler",
            Pointcut::call("Doubler.apply").or(Pointcut::call("Doubler.calls")),
            f.clone(),
            Policy::fixed(1),
        ));
        let d = DoublerProxy::construct(&weaver, 5).unwrap();
        assert_eq!(d.apply(10).unwrap(), 25);
        assert_eq!(d.apply(0).unwrap(), 5);
        // The *remote* instance took the calls; the local stub took none.
        assert_eq!(d.calls().unwrap(), 2);
        let local_calls = weaver.space().with_object::<Doubler, _>(d.id(), |o| o.calls).unwrap();
        assert_eq!(local_calls, 0, "stub must not execute redirected calls");
        // And the remote object lives on node 1.
        assert_eq!(f.node(1).unwrap().weaver().space().len(), 1);
        assert_eq!(f.node(0).unwrap().weaver().space().len(), 0);
    }

    #[test]
    fn rmi_registers_names() {
        let weaver = Weaver::new();
        let f = fabric(2);
        weaver.plug(rmi_distribution_aspect(
            "Distribution",
            "Doubler",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            Policy::round_robin(),
        ));
        let _a = DoublerProxy::construct(&weaver, 0).unwrap();
        let _b = DoublerProxy::construct(&weaver, 0).unwrap();
        assert_eq!(f.nameserver().names(), vec!["PS1".to_string(), "PS2".to_string()]);
        assert!(weaver.intertype().has_tag("Doubler", "Remote"));
    }

    #[test]
    fn mpp_without_nameserver() {
        let weaver = Weaver::new();
        let f = fabric(3);
        weaver.plug(mpp_distribution_aspect(
            "DistributionMPP",
            "Doubler",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            Policy::round_robin(),
            false,
        ));
        let d = DoublerProxy::construct(&weaver, 1).unwrap();
        assert_eq!(d.apply(3).unwrap(), 7);
        assert!(f.nameserver().is_empty());
    }

    #[test]
    fn mpp_oneway_returns_unit_immediately() {
        let weaver = Weaver::new();
        let f = fabric(2);
        weaver.plug(mpp_distribution_aspect(
            "DistributionMPP",
            "Doubler",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            Policy::fixed(0),
            true,
        ));
        let d = DoublerProxy::construct(&weaver, 1).unwrap();
        // Typed proxy expects u64 but the oneway advice returns (): use the
        // raw handle, as oneway methods should be unit-returning by design.
        let ret = d.handle().call("apply", weavepar_weave::args![3u64]).unwrap();
        assert!(ret.downcast::<()>().is_ok());
    }

    #[test]
    fn unplugged_distribution_is_fully_local() {
        let weaver = Weaver::new();
        let f = fabric(2);
        let plugged = weaver.plug(rmi_distribution_aspect(
            "Distribution",
            "Doubler",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            Policy::fixed(0),
        ));
        weaver.unplug(&plugged);
        let d = DoublerProxy::construct(&weaver, 5).unwrap();
        assert_eq!(d.apply(10).unwrap(), 25);
        assert_eq!(f.node(0).unwrap().weaver().space().len(), 0, "no remote instance created");
    }

    #[test]
    fn objects_created_before_plugging_stay_local() {
        let weaver = Weaver::new();
        let f = fabric(2);
        let d = DoublerProxy::construct(&weaver, 5).unwrap();
        weaver.plug(rmi_distribution_aspect(
            "Distribution",
            "Doubler",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            Policy::fixed(0),
        ));
        // No remote field on this object: the call advice falls through.
        assert_eq!(d.apply(1).unwrap(), 7);
        assert_eq!(f.node(0).unwrap().weaver().space().len(), 0);
    }

    #[test]
    fn round_robin_spreads_instances() {
        let weaver = Weaver::new();
        let f = fabric(3);
        weaver.plug(mpp_distribution_aspect(
            "DistributionMPP",
            "Doubler",
            Pointcut::call("Doubler.apply"),
            f.clone(),
            Policy::round_robin(),
            false,
        ));
        for _ in 0..6 {
            DoublerProxy::construct(&weaver, 0).unwrap();
        }
        for node in 0..3 {
            assert_eq!(f.node(node).unwrap().weaver().space().len(), 2);
        }
    }

    #[test]
    fn policy_pick_ranges() {
        let rr = Policy::round_robin();
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(3)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(Policy::fixed(5).pick(3), 2);
        let rnd = Policy::random(42);
        for _ in 0..100 {
            assert!(rnd.pick(4) < 4);
        }
        // Determinism: same seed, same sequence.
        let a: Vec<usize> = {
            let p = Policy::random(7);
            (0..10).map(|_| p.pick(5)).collect()
        };
        let b: Vec<usize> = {
            let p = Policy::random(7);
            (0..10).map(|_| p.pick(5)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn missing_marshaller_is_a_remote_error() {
        let weaver = Weaver::new();
        let m = MarshalRegistry::new(); // nothing registered
        let f = InProcFabric::new(1, m);
        f.register_class::<Doubler>();
        weaver.plug(rmi_distribution_aspect(
            "Distribution",
            "Doubler",
            Pointcut::call("Doubler.apply"),
            f,
            Policy::fixed(0),
        ));
        let err = DoublerProxy::construct(&weaver, 1).unwrap_err();
        assert!(matches!(err, WeaveError::Remote(_)));
    }
}
