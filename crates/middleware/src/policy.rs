//! Call policies: deadlines, retries and backoff for remote invocations.
//!
//! The paper's fault handling stops at wrapping `RemoteException` in
//! try/catch (Figure 14). A real deployment needs the next layer: how long a
//! synchronous call may wait ([`CallPolicy::deadline`]), how often a
//! *transient* failure is retried ([`CallPolicy::retries`]), and how retries
//! space themselves out ([`Backoff`] — exponential with deterministic,
//! seeded jitter so chaos tests replay bit-for-bit).
//!
//! Policies only retry errors that [`WeaveError::is_retryable`] admits
//! (timeouts and explicit transients). A [`WeaveError::NodeDown`] is *not*
//! retryable — the node stays dead; recovery means a different placement,
//! which is the supervision aspect's job, not the call layer's.

use std::time::Duration;

use weavepar_weave::WeaveError;

/// Advance a split-mix/LCG style deterministic generator (same constants as
/// the executor's seed scrambler) and return the next state.
#[inline]
pub(crate) fn lcg_next(state: u64) -> u64 {
    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// Exponential backoff with bounded, deterministically seeded jitter.
///
/// Attempt `n` (1-based over the retries) sleeps `base * 2^(n-1)` capped at
/// `max`, plus a jitter drawn in `[0, capped/2]` from the caller's RNG
/// state — retries of concurrent calls de-synchronise without any global
/// randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First retry's base delay.
    pub base: Duration,
    /// Ceiling for the exponential curve (pre-jitter).
    pub max: Duration,
}

impl Backoff {
    /// No waiting between retries (tests, already-queued work).
    pub const fn none() -> Self {
        Backoff { base: Duration::ZERO, max: Duration::ZERO }
    }

    /// The delay before retry `attempt` (1-based), advancing `rng` for the
    /// jitter draw.
    pub fn delay(&self, attempt: u32, rng: &mut u64) -> Duration {
        *rng = lcg_next(*rng);
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let shift = attempt.saturating_sub(1).min(20);
        let capped = self
            .base
            .checked_mul(1u32 << shift)
            .map_or(self.max, |d| d.min(self.max))
            .max(self.base.min(self.max));
        let half = capped.as_nanos() as u64 / 2;
        let jitter = if half == 0 { 0 } else { (*rng >> 33) % (half + 1) };
        capped + Duration::from_nanos(jitter)
    }

    /// Upper bound on the total sleep across `retries` retries (full
    /// exponential ladder, maximal jitter). Chaos tests use this to assert
    /// that an unrecoverable call fails within `deadline * attempts +
    /// ladder`.
    pub fn ladder_bound(&self, retries: u32) -> Duration {
        let mut total = Duration::ZERO;
        for attempt in 1..=retries {
            let shift = attempt.saturating_sub(1).min(20);
            let capped = self.base.checked_mul(1u32 << shift).map_or(self.max, |d| d.min(self.max));
            total += capped + capped / 2;
        }
        total
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff { base: Duration::from_millis(5), max: Duration::from_millis(200) }
    }
}

/// Policy for one remote call: how long to wait, how often to retry, and
/// how to space the retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallPolicy {
    /// Per-attempt deadline for the synchronous reply wait. `None` waits
    /// forever (the pre-policy behaviour).
    pub deadline: Option<Duration>,
    /// How many times a retryable failure is retried (0 = single attempt).
    pub retries: u32,
    /// Delay ladder between attempts.
    pub backoff: Backoff,
    /// Seed mixed (with the call's dedup key) into the jitter RNG, so runs
    /// replay deterministically.
    pub seed: u64,
}

impl CallPolicy {
    /// Wait forever, never retry — the exact semantics of a policy-less
    /// call.
    pub const fn unbounded() -> Self {
        CallPolicy { deadline: None, retries: 0, backoff: Backoff::none(), seed: 0 }
    }

    /// A per-attempt deadline with no retries.
    pub fn with_deadline(deadline: Duration) -> Self {
        CallPolicy { deadline: Some(deadline), ..Self::unbounded() }
    }

    /// Builder-style: set the retry count.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Builder-style: set the backoff ladder.
    pub fn backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Builder-style: set the jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Should `err` be retried at all under this policy?
    pub fn should_retry(&self, err: &WeaveError, attempt: u32) -> bool {
        attempt < self.retries && err.is_retryable()
    }

    /// Upper bound on the wall time a call under this policy can take
    /// before failing: every attempt hitting its deadline plus the full
    /// backoff ladder.
    pub fn worst_case(&self) -> Option<Duration> {
        let deadline = self.deadline?;
        Some(deadline * (self.retries + 1) + self.backoff.ladder_bound(self.retries))
    }
}

impl Default for CallPolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_jittered() {
        let b = Backoff { base: Duration::from_millis(10), max: Duration::from_millis(40) };
        let mut rng = 42u64;
        let d1 = b.delay(1, &mut rng);
        let d2 = b.delay(2, &mut rng);
        let d5 = b.delay(5, &mut rng);
        // Each delay sits in [capped, capped * 1.5].
        assert!(d1 >= Duration::from_millis(10) && d1 <= Duration::from_millis(15), "{d1:?}");
        assert!(d2 >= Duration::from_millis(20) && d2 <= Duration::from_millis(30), "{d2:?}");
        assert!(d5 >= Duration::from_millis(40) && d5 <= Duration::from_millis(60), "{d5:?}");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let b = Backoff::default();
        let (mut r1, mut r2) = (7u64, 7u64);
        for attempt in 1..5 {
            assert_eq!(b.delay(attempt, &mut r1), b.delay(attempt, &mut r2));
        }
        let mut r3 = 8u64;
        // A different seed gives a different (but still deterministic) ladder.
        let differs = (1..5).any(|a| {
            let mut r1 = 7u64;
            for _ in 1..a {
                r1 = lcg_next(r1);
            }
            b.delay(a, &mut { r1 }) != b.delay(a, &mut r3)
        });
        assert!(differs);
    }

    #[test]
    fn ladder_bound_covers_all_delays() {
        let b = Backoff { base: Duration::from_millis(10), max: Duration::from_millis(40) };
        let bound = b.ladder_bound(4);
        let mut total = Duration::ZERO;
        let mut rng = 1234u64;
        for attempt in 1..=4 {
            total += b.delay(attempt, &mut rng);
        }
        assert!(total <= bound, "{total:?} > {bound:?}");
    }

    #[test]
    fn retry_gate_respects_kind_and_budget() {
        let p = CallPolicy::with_deadline(Duration::from_millis(50)).retries(2);
        let timeout = WeaveError::Timeout { waited_ms: 50 };
        let down = WeaveError::NodeDown { node: 1 };
        assert!(p.should_retry(&timeout, 0));
        assert!(p.should_retry(&timeout, 1));
        assert!(!p.should_retry(&timeout, 2), "budget exhausted");
        assert!(!p.should_retry(&down, 0), "node loss is not transient");
    }

    #[test]
    fn worst_case_is_deadline_times_attempts_plus_ladder() {
        let p = CallPolicy::with_deadline(Duration::from_millis(50))
            .retries(2)
            .backoff(Backoff { base: Duration::from_millis(10), max: Duration::from_millis(40) });
        let wc = p.worst_case().unwrap();
        assert_eq!(wc, Duration::from_millis(150) + p.backoff.ladder_bound(2));
        assert!(CallPolicy::unbounded().worst_case().is_none());
    }
}
