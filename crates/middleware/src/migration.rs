//! Object migration: the paper's Figure 2 made operational.
//!
//! Figure 2 *introduces* a `migrate(node)` method into class `Point` by
//! static crosscutting, without touching the class. Here
//! [`introduce_migration`] does the same through the inter-type store — and
//! the method actually works: it snapshots the object's state (via the
//! [`MarshalRegistry`](crate::wire::MarshalRegistry) state codec), rebuilds
//! the instance on the chosen node, and repoints the stub's remote
//! reference, so subsequent distributed calls land on the new node.

use std::sync::Arc;

use weavepar_weave::{ObjId, WeaveError, WeaveResult, Weaver};

use crate::aspects::REMOTE_FIELD;
use crate::fabric::{InProcFabric, RemoteRef};

/// Token for removing the introduced method again (static crosscutting is
/// (un)pluggable too).
#[derive(Debug, Clone)]
pub struct MigrationCapability {
    class: &'static str,
}

/// Introduce `class.migrate(node: u64)` on `weaver` (an inter-type extension
/// method, dispatched when the class's own table misses).
///
/// Semantics per target object:
///
/// * object already distributed (has a remote reference): the remote
///   instance is moved — snapshot on the old node, restore on the new one,
///   stub repointed;
/// * purely local object: its state is shipped out to the chosen node and
///   the local instance becomes a stub for it.
///
/// Requires a state codec for the class
/// ([`MarshalRegistry::register_state`](crate::wire::MarshalRegistry::register_state)).
pub fn introduce_migration(
    weaver: &Weaver,
    class: &'static str,
    fabric: Arc<InProcFabric>,
) -> MigrationCapability {
    weaver.intertype().declare_tag(class, "Migratable");
    weaver.intertype().add_method(
        class,
        "migrate",
        Arc::new(move |weaver: &Weaver, target: ObjId, mut args| {
            let node = args.take::<u64>(0)? as usize;
            if node >= fabric.node_count() {
                return Err(WeaveError::remote(format!(
                    "migrate: no node {node} (fabric has {})",
                    fabric.node_count()
                )));
            }
            let moved = match weaver.intertype().get_field::<RemoteRef>(target, REMOTE_FIELD) {
                Some(current) => fabric.migrate(current, class, node)?,
                None => {
                    // Local object: ship its state out; it becomes a stub.
                    let state = fabric.marshal().snapshot_state(weaver, class, target)?;
                    fabric.restore(node, class, state)?
                }
            };
            weaver.intertype().set_field(target, REMOTE_FIELD, moved);
            Ok(weavepar_weave::ret!(moved.node as u64))
        }),
    );
    MigrationCapability { class }
}

/// Remove the introduced `migrate` method again.
pub fn remove_migration(weaver: &Weaver, capability: &MigrationCapability) -> bool {
    weaver.intertype().remove_tag(capability.class, "Migratable");
    weaver.intertype().remove_method(capability.class, "migrate")
}

/// Convenience: call `obj.migrate(node)` through the weaver.
pub fn migrate_object(weaver: &Weaver, obj: ObjId, node: usize) -> WeaveResult<u64> {
    let ret = weaver.invoke_call_dyn(obj, "migrate", weavepar_weave::args![node as u64])?;
    weavepar_weave::value::downcast_ret::<u64>(ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspects::{Policy, RmiConfig};
    use crate::wire::MarshalRegistry;
    use weavepar_weave::prelude::*;

    struct Counter {
        count: u64,
    }

    weavepar_weave::weaveable! {
        class Counter as CounterProxy {
            fn new(start: u64) -> Self { Counter { count: start } }
            fn bump(&mut self) -> u64 {
                self.count += 1;
                self.count
            }
        }
    }

    fn marshal() -> MarshalRegistry {
        let m = MarshalRegistry::new();
        m.register::<(u64,), ()>("Counter", "new");
        m.register::<(), u64>("Counter", "bump");
        m.register_state::<Counter, u64, _, _>(|c| c.count, |count| Counter { count });
        m
    }

    #[test]
    fn migrate_moves_state_between_nodes() {
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(3, marshal());
        fabric.register_class::<Counter>();
        weaver.plug(
            RmiConfig::new("Counter", Pointcut::call("Counter.bump"), fabric.clone())
                .placement(Policy::fixed(0))
                .aspect("Distribution"),
        );
        let cap = introduce_migration(&weaver, "Counter", fabric.clone());
        assert!(weaver.intertype().has_tag("Counter", "Migratable"));

        let c = CounterProxy::construct(&weaver, 10).unwrap();
        assert_eq!(c.bump().unwrap(), 11);
        assert_eq!(c.bump().unwrap(), 12);
        assert_eq!(fabric.node(0).unwrap().weaver().space().len(), 1);

        // Migrate to node 2: the count must travel with the object.
        let landed = migrate_object(&weaver, c.id(), 2).unwrap();
        assert_eq!(landed, 2);
        assert_eq!(fabric.node(0).unwrap().weaver().space().len(), 0, "moved away");
        assert_eq!(fabric.node(2).unwrap().weaver().space().len(), 1, "arrived");
        assert_eq!(c.bump().unwrap(), 13, "state survived the move");

        let _ = cap;
    }

    #[test]
    fn migrate_local_object_ships_it_out() {
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(2, marshal());
        fabric.register_class::<Counter>();
        // Distribution aspect plugged, but the object was created before it —
        // it is purely local until migrated.
        let c = CounterProxy::construct(&weaver, 5).unwrap();
        weaver.plug(
            RmiConfig::new("Counter", Pointcut::call("Counter.bump"), fabric.clone())
                .placement(Policy::fixed(0))
                .aspect("Distribution"),
        );
        introduce_migration(&weaver, "Counter", fabric.clone());

        assert_eq!(c.bump().unwrap(), 6, "local execution before migration");
        migrate_object(&weaver, c.id(), 1).unwrap();
        assert_eq!(fabric.node(1).unwrap().weaver().space().len(), 1);
        assert_eq!(c.bump().unwrap(), 7, "remote execution after migration");
        // Local stub no longer receives the calls.
        let local = weaver.space().with_object::<Counter, _>(c.id(), |x| x.count).unwrap();
        assert_eq!(local, 6);
    }

    #[test]
    fn migrate_to_same_node_is_a_noop_move() {
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(2, marshal());
        fabric.register_class::<Counter>();
        weaver.plug(
            RmiConfig::new("Counter", Pointcut::call("Counter.bump"), fabric.clone())
                .placement(Policy::fixed(1))
                .aspect("Distribution"),
        );
        introduce_migration(&weaver, "Counter", fabric.clone());
        let c = CounterProxy::construct(&weaver, 0).unwrap();
        c.bump().unwrap();
        migrate_object(&weaver, c.id(), 1).unwrap();
        assert_eq!(c.bump().unwrap(), 2);
        assert_eq!(fabric.node(1).unwrap().weaver().space().len(), 1);
    }

    #[test]
    fn migrate_to_invalid_node_errors() {
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(2, marshal());
        fabric.register_class::<Counter>();
        introduce_migration(&weaver, "Counter", fabric);
        let c = CounterProxy::construct(&weaver, 0).unwrap();
        let err = migrate_object(&weaver, c.id(), 9).unwrap_err();
        assert!(matches!(err, WeaveError::Remote(_)));
    }

    #[test]
    fn snapshot_kill_restore_on_survivor_preserves_state() {
        // The supervisor's recovery primitive: a checkpointed snapshot taken
        // before the node died can rebuild the object on a survivor with its
        // state intact.
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(3, marshal());
        fabric.register_class::<Counter>();
        weaver.plug(
            RmiConfig::new("Counter", Pointcut::call("Counter.bump"), fabric.clone())
                .placement(Policy::fixed(1))
                .aspect("Distribution"),
        );
        introduce_migration(&weaver, "Counter", fabric.clone());
        let c = CounterProxy::construct(&weaver, 40).unwrap();
        c.bump().unwrap();
        c.bump().unwrap();
        let remote =
            weaver.intertype().get_field::<RemoteRef>(c.id(), REMOTE_FIELD).expect("distributed");
        // Checkpoint (without removing), then the node dies.
        let state = fabric.snapshot(remote, false).unwrap();
        fabric.kill_node(1).unwrap();
        // Restore on a survivor and repoint the stub: computation continues
        // where the checkpoint left it.
        let revived = fabric.restore(2, "Counter", state).unwrap();
        weaver.intertype().set_field(c.id(), REMOTE_FIELD, revived);
        assert_eq!(c.bump().unwrap(), 43, "state survived the node loss");
        assert_eq!(fabric.node(2).unwrap().weaver().space().len(), 1);
    }

    #[test]
    fn migrate_to_dead_node_is_typed_and_source_intact() {
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(3, marshal());
        fabric.register_class::<Counter>();
        weaver.plug(
            RmiConfig::new("Counter", Pointcut::call("Counter.bump"), fabric.clone())
                .placement(Policy::fixed(0))
                .aspect("Distribution"),
        );
        introduce_migration(&weaver, "Counter", fabric.clone());
        let c = CounterProxy::construct(&weaver, 7).unwrap();
        c.bump().unwrap();
        fabric.kill_node(2).unwrap();
        let err = migrate_object(&weaver, c.id(), 2).unwrap_err();
        assert!(matches!(err, WeaveError::NodeDown { node: 2 }), "{err}");
        // The failed migration never touched the source instance.
        assert_eq!(fabric.node(0).unwrap().weaver().space().len(), 1);
        assert_eq!(c.bump().unwrap(), 9, "object still lives on the source");
    }

    #[test]
    fn migration_capability_is_removable() {
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(1, marshal());
        fabric.register_class::<Counter>();
        let cap = introduce_migration(&weaver, "Counter", fabric);
        let c = CounterProxy::construct(&weaver, 0).unwrap();
        assert!(remove_migration(&weaver, &cap));
        assert!(!weaver.intertype().has_tag("Counter", "Migratable"));
        let err = migrate_object(&weaver, c.id(), 0).unwrap_err();
        assert!(matches!(err, WeaveError::NoSuchMethod { .. }));
        assert!(!remove_migration(&weaver, &cap), "second removal is a no-op");
    }

    #[test]
    fn missing_state_codec_is_reported() {
        let m = MarshalRegistry::new();
        m.register::<(u64,), ()>("Counter", "new");
        assert!(!m.knows_state("Counter"));
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(1, m);
        fabric.register_class::<Counter>();
        introduce_migration(&weaver, "Counter", fabric);
        let c = CounterProxy::construct(&weaver, 0).unwrap();
        let err = migrate_object(&weaver, c.id(), 0).unwrap_err();
        assert!(matches!(err, WeaveError::Remote(_)));
    }
}
