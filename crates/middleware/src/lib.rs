//! # weavepar-middleware — the distribution substrate (paper §4.3)
//!
//! The paper's distribution concern runs objects on remote nodes and
//! redirects method calls through a middleware — Java RMI for naming +
//! synchronous remote invocation, or the MPP message-passing library for
//! explicit sends received by a server loop (Figures 13–15). This crate
//! rebuilds that stack:
//!
//! * [`wire`] — a compact binary codec ([`Wire`]) plus argument-pack
//!   marshalling ([`MarshalRegistry`]), standing in for Java serialisation;
//!   registration hands out dense [`ClassId`]/[`MethodId`] handles so the
//!   per-call fast path is an array index, and [`wire::PackFrame`] frames
//!   many oneway calls into one `CallPack` message;
//! * [`pool`] — the [`BufPool`] frame recycler and the [`pool::ReplyPool`]
//!   park/unpark reply slab behind the zero-allocation call path;
//! * [`nameserver`] — the RMI registry analogue (`PS1`, `PS2`, ... names);
//! * [`node`] — a [`NodeRuntime`]: one simulated cluster node = one thread
//!   with its own [`Weaver`](weavepar_weave::Weaver) and object space,
//!   serving construct/call requests from a channel (the MPP receive loop of
//!   Figure 15);
//! * [`fabric`] — an [`InProcFabric`] wiring N nodes together in-process;
//! * [`aspects`] — the pluggable distribution aspects, built through
//!   [`RmiConfig`](aspects::RmiConfig) (name-server lookup + synchronous
//!   call with reply, Figure 14) and [`MppConfig`](aspects::MppConfig)
//!   (direct node addressing, Figure 15) — both chain an optional placement
//!   [`Policy`](aspects::Policy) (round-robin, random, fixed — §4.3 "several
//!   policies can be implemented in this aspect"), an optional
//!   [`CallPolicy`] and an optional metrics registry — plus the §4.4
//!   communication-packing optimisation
//!   ([`aspects::message_packing_aspect`]);
//! * [`migration`] — the paper's Figure 2 `migrate` method, introduced by
//!   static crosscutting and actually moving object state between nodes.
//!
//! Everything runs for real: calls are marshalled to bytes, cross a channel,
//! and execute on the remote node's object space. Only the *performance*
//! of the 2005 cluster is left to `weavepar-cluster`'s simulator.

pub mod aspects;
pub mod fabric;
pub mod faults;
pub mod migration;
pub mod nameserver;
pub mod node;
pub mod policy;
pub mod pool;
pub mod wire;

pub use bytes::{Bytes, BytesMut};

pub use aspects::{message_packing_aspect, MessagePacker, MppConfig, Policy, RmiConfig};
#[allow(deprecated)]
pub use aspects::{
    mpp_distribution_aspect, mpp_distribution_aspect_with_policy, rmi_distribution_aspect,
    rmi_distribution_aspect_with_policy,
};
pub use fabric::{InProcFabric, RemoteRef, ReplyBackend};
pub use faults::{FaultAction, FaultPlan, FaultRule, FaultStats, FaultStatsSnapshot, RequestClass};
pub use migration::{introduce_migration, migrate_object, remove_migration, MigrationCapability};
pub use nameserver::NameServer;
pub use node::{NodeRuntime, ReplySink, Request};
pub use policy::{Backoff, CallPolicy};
pub use pool::{BufPool, ReplyPool};
pub use wire::{ClassId, MarshalRegistry, MethodId, PackFrame, PackReader, Wire, WireArgs};
