//! Buffer and reply-slot pooling for the remote-call fast path.
//!
//! Two recyclers back the zero-allocation contract:
//!
//! * [`BufPool`] — a sharded stack of [`BytesMut`] frames. Encode paths
//!   `take` a cleared frame (keeping a previous call's capacity), and
//!   decode/reply paths hand frames back with `give` or reclaim frozen
//!   [`Bytes`] whose refcount has dropped to one with `recycle`. Shards are
//!   picked by thread id, so concurrent clients rarely contend on one lock.
//!
//! * [`ReplySlot`] — a park/unpark rendezvous replacing the per-call
//!   `bounded(1)` channel. A caller checks a slot out of the pool, submits
//!   the request carrying the [`SlotReply`] half, blocks on the condvar, and
//!   returns the slot for reuse. `SlotReply` is a drop-guard: if the serving
//!   side drops it without answering (node thread panicked, request dropped
//!   on the floor), the waiter is woken with a `WeaveError::Remote` instead
//!   of blocking forever.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};

use weavepar_weave::{WeaveError, WeaveResult};

const SHARDS: usize = 8;
/// Per-shard cap: beyond this, returned frames are simply dropped so a burst
/// doesn't pin its high-water allocation forever.
const PER_SHARD: usize = 32;

/// Per-thread shard affinity, assigned round-robin on first use so the hot
/// path is a plain TLS read — no thread-id hashing per call. Shared by every
/// sharded pool in this module: a thread always hits the same shard index.
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(idx);
        }
        idx
    })
}

/// Sharded pool of reusable [`BytesMut`] frames.
pub struct BufPool {
    shards: [Mutex<Vec<BytesMut>>; SHARDS],
    counter: AtomicUsize,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufPool {
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            counter: AtomicUsize::new(0),
        }
    }

    fn shard(&self) -> &Mutex<Vec<BytesMut>> {
        &self.shards[shard_index()]
    }

    /// A cleared frame, reusing a pooled allocation when one is available.
    pub fn take(&self) -> BytesMut {
        if let Some(buf) = self.shard().lock().pop() {
            return buf;
        }
        // Steal from a rotating shard before allocating fresh.
        let i = self.counter.fetch_add(1, Ordering::Relaxed);
        if let Some(buf) = self.shards[i % SHARDS].lock().pop() {
            return buf;
        }
        BytesMut::new()
    }

    /// Return a frame to the pool (cleared; dropped when the shard is full).
    pub fn give(&self, mut buf: BytesMut) {
        buf.clear();
        let mut shard = self.shard().lock();
        if shard.len() < PER_SHARD {
            shard.push(buf);
        }
    }

    /// Reclaim a frozen frame whose storage is no longer shared; frames with
    /// live aliases are silently dropped.
    pub fn recycle(&self, bytes: Bytes) {
        if let Ok(buf) = bytes.try_into_mut() {
            self.give(buf);
        }
    }

    /// Frames currently parked in the pool (for tests).
    pub fn pooled(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// One reusable reply rendezvous: a mutex-guarded mailbox plus a condvar.
pub struct ReplySlot {
    mailbox: Mutex<Option<WeaveResult<Bytes>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Arc::new(ReplySlot { mailbox: Mutex::new(None), ready: Condvar::new() })
    }

    fn fill(&self, result: WeaveResult<Bytes>) {
        {
            let mut mailbox = self.mailbox.lock();
            *mailbox = Some(result);
        }
        // Notify with the mailbox lock *released*: waking the parked caller
        // while still holding the lock sends it straight into a futex
        // contention on the mutex it needs next (glibc condvars no longer
        // wait-morph), which cost the slot path its lead over `bounded(1)`
        // channels in BENCH_remote.json.
        self.ready.notify_one();
    }

    /// Block until the serving side fills the slot, and take the result.
    fn wait(&self) -> WeaveResult<Bytes> {
        let mut mailbox = self.mailbox.lock();
        while mailbox.is_none() {
            self.ready.wait(&mut mailbox);
        }
        mailbox.take().expect("slot filled")
    }

    /// Like `wait`, but give up at `deadline` with a typed
    /// [`WeaveError::Timeout`]. A timed-out slot may still be filled later
    /// by the serving side — the caller must abandon the ticket (not
    /// `finish` it) so the late reply is garbage-collected with the slot.
    fn wait_until(&self, deadline: Instant, waited_ms: u64) -> WeaveResult<Bytes> {
        let mut mailbox = self.mailbox.lock();
        while mailbox.is_none() {
            if self.ready.wait_until(&mut mailbox, deadline).timed_out() && mailbox.is_none() {
                return Err(WeaveError::Timeout { waited_ms });
            }
        }
        mailbox.take().expect("slot filled")
    }
}

/// The serving side's half of a checked-out [`ReplySlot`]. Consuming `send`
/// delivers the answer; dropping unsent wakes the waiter with an error so a
/// lost request can never strand its caller.
pub struct SlotReply {
    slot: Arc<ReplySlot>,
    sent: bool,
}

impl SlotReply {
    /// Deliver the reply and wake the waiting caller.
    pub fn send(mut self, result: WeaveResult<Bytes>) {
        self.sent = true;
        self.slot.fill(result);
    }

    /// Fault injection: make the reply vanish *silently* — the drop-guard is
    /// defused, the mailbox is never filled, and the waiter only learns of
    /// the loss when its deadline expires (a dropped datagram, not an
    /// error). The slot's Arc is released normally; the abandoned ticket is
    /// garbage-collected with it.
    pub(crate) fn discard(mut self) {
        self.sent = true;
    }
}

impl Drop for SlotReply {
    fn drop(&mut self) {
        if !self.sent {
            self.slot.fill(Err(WeaveError::remote("reply dropped before an answer was sent")));
        }
    }
}

/// The calling side's half: wait for the answer, then return the slot to the
/// pool via [`ReplyPool::finish`].
pub struct SlotTicket {
    slot: Arc<ReplySlot>,
    /// Set when a wait actually emptied the mailbox. `finish` consults this
    /// instead of re-locking the mailbox to check that the slot is clean.
    consumed: std::cell::Cell<bool>,
}

impl SlotTicket {
    /// Block until the reply arrives.
    pub fn wait(&self) -> WeaveResult<Bytes> {
        let result = self.slot.wait();
        self.consumed.set(true);
        result
    }

    /// Block until the reply arrives or `deadline` passes. On
    /// [`WeaveError::Timeout`] the ticket must be dropped, NOT
    /// [`ReplyPool::finish`]ed: the serving side may still fill the slot
    /// later, and recycling it would leak a stale reply into the next call.
    pub fn wait_deadline(&self, deadline: Option<Instant>, waited_ms: u64) -> WeaveResult<Bytes> {
        let result = match deadline {
            Some(d) => self.slot.wait_until(d, waited_ms),
            None => self.slot.wait(),
        };
        // A timeout leaves the mailbox unconsumed; every other outcome —
        // payload or drop-guard error — took the message out of it.
        if !matches!(result, Err(WeaveError::Timeout { .. })) {
            self.consumed.set(true);
        }
        result
    }
}

/// Pool of reply slots, sharded like [`BufPool`] so concurrent client
/// threads check slots in and out without fighting over one free-list lock.
/// `checkout` hands out a (ticket, reply) pair backed by a recycled slot
/// when one is free.
pub struct ReplyPool {
    free: [Mutex<Vec<Arc<ReplySlot>>>; SHARDS],
    /// Live total of parked slots, maintained on checkout/finish so a
    /// metrics registry can bind pool occupancy as a gauge without summing
    /// the shard locks.
    parked: Arc<AtomicUsize>,
}

impl Default for ReplyPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplyPool {
    /// An empty pool.
    pub fn new() -> Self {
        ReplyPool {
            free: std::array::from_fn(|_| Mutex::new(Vec::new())),
            parked: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Check out a slot: the caller keeps the [`SlotTicket`], the request
    /// carries the [`SlotReply`].
    pub fn checkout(&self) -> (SlotTicket, SlotReply) {
        let slot = match self.free[shard_index()].lock().pop() {
            Some(slot) => {
                self.parked.fetch_sub(1, Ordering::Relaxed);
                slot
            }
            None => ReplySlot::new(),
        };
        debug_assert!(slot.mailbox.lock().is_none(), "recycled slot must be empty");
        (
            SlotTicket { slot: slot.clone(), consumed: std::cell::Cell::new(false) },
            SlotReply { slot, sent: false },
        )
    }

    /// Return a slot after its reply has been taken. Slots whose serving half
    /// may still be live (caller gave up early) must NOT be finished — just
    /// drop the ticket and the slot is garbage-collected with it. A ticket
    /// that never consumed a reply is dropped here for the same reason, so
    /// `finish` costs one sharded lock and zero mailbox locks.
    pub fn finish(&self, ticket: SlotTicket) {
        if ticket.consumed.get() {
            let mut free = self.free[shard_index()].lock();
            if free.len() < PER_SHARD {
                free.push(ticket.slot);
                self.parked.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Slots currently parked in the pool (for tests).
    pub fn pooled(&self) -> usize {
        self.free.iter().map(|s| s.lock().len()).sum()
    }

    /// The live parked-slot count cell, for binding as an occupancy gauge.
    pub fn pooled_cell(&self) -> Arc<AtomicUsize> {
        self.parked.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn buf_pool_recycles_capacity() {
        let pool = BufPool::new();
        let mut buf = pool.take();
        buf.reserve(1024);
        buf.put_u64_le(7);
        let cap = buf.capacity();
        pool.give(buf);
        assert_eq!(pool.pooled(), 1);
        let again = pool.take();
        assert!(again.is_empty(), "pooled frames come back cleared");
        assert_eq!(again.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn recycle_reclaims_unshared_frozen_frames() {
        let pool = BufPool::new();
        let mut buf = BytesMut::with_capacity(256);
        buf.put_u32_le(1);
        pool.recycle(buf.freeze());
        assert_eq!(pool.pooled(), 1);
        // A frame with a live alias is dropped, not pooled.
        let frozen = BytesMut::with_capacity(64).freeze();
        let _alias = frozen.clone();
        pool.recycle(frozen);
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn reply_slot_roundtrip_and_reuse() {
        let pool = ReplyPool::new();
        let (ticket, reply) = pool.checkout();
        let payload = Bytes::copy_from_slice(b"ok");
        let handle = std::thread::spawn(move || reply.send(Ok(payload)));
        assert_eq!(&*ticket.wait().unwrap(), b"ok");
        handle.join().unwrap();
        pool.finish(ticket);
        assert_eq!(pool.pooled(), 1);
        let (t2, r2) = pool.checkout();
        assert_eq!(pool.pooled(), 0);
        r2.send(Err(WeaveError::remote("boom")));
        assert!(t2.wait().is_err());
        pool.finish(t2);
    }

    #[test]
    fn dropped_reply_wakes_waiter_with_error() {
        let pool = ReplyPool::new();
        let (ticket, reply) = pool.checkout();
        drop(reply);
        let err = ticket.wait().unwrap_err();
        assert!(matches!(err, WeaveError::Remote(_)));
    }

    #[test]
    fn deadline_wait_times_out_typed() {
        let pool = ReplyPool::new();
        let (ticket, reply) = pool.checkout();
        let deadline = Instant::now() + std::time::Duration::from_millis(20);
        let err = ticket.wait_deadline(Some(deadline), 20).unwrap_err();
        assert!(matches!(err, WeaveError::Timeout { waited_ms: 20 }));
        // The slot is abandoned, not finished: a late reply lands in the
        // orphaned mailbox and the pool never recycles a poisoned slot.
        reply.send(Ok(Bytes::copy_from_slice(b"late")));
        drop(ticket);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn deadline_wait_returns_early_reply() {
        let pool = ReplyPool::new();
        let (ticket, reply) = pool.checkout();
        reply.send(Ok(Bytes::copy_from_slice(b"fast")));
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        assert_eq!(&*ticket.wait_deadline(Some(deadline), 5000).unwrap(), b"fast");
        pool.finish(ticket);
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn discarded_reply_stays_silent_until_deadline() {
        let pool = ReplyPool::new();
        let (ticket, reply) = pool.checkout();
        reply.discard();
        // No drop-guard error: the waiter only learns via its deadline.
        let deadline = Instant::now() + std::time::Duration::from_millis(15);
        let err = ticket.wait_deadline(Some(deadline), 15).unwrap_err();
        assert!(matches!(err, WeaveError::Timeout { .. }));
    }
}
