//! Seeded fault injection for the in-process fabric.
//!
//! A [`FaultPlan`] is a small rule table the fabric consults on every
//! outbound request: each [`FaultRule`] matches a request class (and
//! optionally a target node) and fires an [`FaultAction`] — drop the
//! message, delay its delivery, duplicate it, or crash the whole node — with
//! a configured probability drawn from a **deterministic seeded RNG**. The
//! same seed replays the same fault schedule bit-for-bit, so chaos tests are
//! reproducible and a failing seed can be pinned as a regression.
//!
//! The plan is plugged in with [`InProcFabric::install_faults`]
//! (and removed with `clear_faults`); with no plan installed the fabric's
//! call path is untouched — fault tolerance stays an *unpluggable* concern,
//! like every other aspect in the paper's methodology.
//!
//! [`InProcFabric::install_faults`]: crate::InProcFabric::install_faults

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::policy::lcg_next;

/// What a fired rule does to the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Silently lose the message. A replied call's caller sees nothing
    /// until its deadline expires (a lost datagram); callers without a
    /// deadline would hang, which is exactly the failure mode deadlines
    /// exist for.
    Drop,
    /// Deliver the message late by this much.
    Delay(Duration),
    /// Deliver the message twice (same dedup key). Only meaningful for
    /// oneway calls — duplicated replied calls would race one reply slot.
    Duplicate,
    /// Kill the target node on delivery: the request and everything after
    /// it fails with [`WeaveError::NodeDown`](weavepar_weave::WeaveError).
    CrashNode,
}

/// Which requests a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Remote constructions.
    Construct,
    /// State snapshots (migration reads).
    Snapshot,
    /// State restores (migration writes).
    Restore,
    /// Replied (synchronous) calls.
    Call,
    /// Oneway calls.
    Oneway,
    /// Framed oneway packs.
    Pack,
    /// Everything.
    Any,
}

impl RequestClass {
    fn matches(self, actual: RequestClass) -> bool {
        self == RequestClass::Any || self == actual
    }
}

/// One injection rule: class/node filter, probability, action, optional
/// budget.
#[derive(Debug, Clone)]
pub struct FaultRule {
    class: RequestClass,
    node: Option<usize>,
    per_mille: u32,
    action: FaultAction,
    max_hits: Option<usize>,
}

impl FaultRule {
    /// A rule firing `action` on every request of `class` (probability 1,
    /// any node, no budget) — narrow it with the builder methods.
    pub fn on(class: RequestClass, action: FaultAction) -> Self {
        FaultRule { class, node: None, per_mille: 1000, action, max_hits: None }
    }

    /// Only requests addressed to `node`.
    pub fn node(mut self, node: usize) -> Self {
        self.node = Some(node);
        self
    }

    /// Fire with probability `per_mille`/1000 (clamped).
    pub fn per_mille(mut self, per_mille: u32) -> Self {
        self.per_mille = per_mille.min(1000);
        self
    }

    /// Fire at most `n` times over the plan's lifetime (e.g. crash once).
    pub fn times(mut self, n: usize) -> Self {
        self.max_hits = Some(n);
        self
    }
}

/// Counters for what the plan actually injected.
#[derive(Debug, Default)]
pub struct FaultStats {
    dropped: AtomicUsize,
    delayed: AtomicUsize,
    duplicated: AtomicUsize,
    crashed: AtomicUsize,
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStatsSnapshot {
    /// Messages silently lost.
    pub dropped: usize,
    /// Messages delivered late.
    pub delayed: usize,
    /// Messages delivered twice.
    pub duplicated: usize,
    /// Nodes crashed on delivery.
    pub crashed: usize,
}

impl FaultStats {
    pub(crate) fn count(&self, action: FaultAction) {
        match action {
            FaultAction::Drop => self.dropped.fetch_add(1, Ordering::Relaxed),
            FaultAction::Delay(_) => self.delayed.fetch_add(1, Ordering::Relaxed),
            FaultAction::Duplicate => self.duplicated.fetch_add(1, Ordering::Relaxed),
            FaultAction::CrashNode => self.crashed.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            dropped: self.dropped.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            crashed: self.crashed.load(Ordering::Relaxed),
        }
    }
}

/// A seeded, deterministic fault schedule: rules plus the RNG they draw
/// from.
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    rng: Mutex<u64>,
    hits: Vec<AtomicUsize>,
    stats: FaultStats,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan drawing from `seed`. Add rules with
    /// [`FaultPlan::rule`].
    pub fn seeded(seed: u64) -> Self {
        // Scramble the raw seed so small seeds (0, 1, 2...) diverge quickly.
        FaultPlan {
            rules: Vec::new(),
            rng: Mutex::new(lcg_next(seed ^ 0x9e3779b97f4a7c15)),
            hits: Vec::new(),
            stats: FaultStats::default(),
            seed,
        }
    }

    /// Append a rule. Rules are consulted in insertion order; the first one
    /// that matches *and* fires wins.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self.hits.push(AtomicUsize::new(0));
        self
    }

    /// The seed the plan was built with (chaos harnesses print it on
    /// failure so a randomised run can be replayed).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Decide what (if anything) to inject for a request of `class` headed
    /// to `node`. Advances the RNG once per matching rule, so the schedule
    /// is a pure function of the seed and the request sequence.
    pub(crate) fn decide(&self, class: RequestClass, node: usize) -> Option<FaultAction> {
        for (i, rule) in self.rules.iter().enumerate() {
            if !rule.class.matches(class) {
                continue;
            }
            if rule.node.is_some_and(|n| n != node) {
                continue;
            }
            let draw = {
                let mut rng = self.rng.lock();
                *rng = lcg_next(*rng);
                (*rng >> 33) % 1000
            };
            if draw >= rule.per_mille as u64 {
                continue;
            }
            if let Some(max) = rule.max_hits {
                if self.hits[i].fetch_add(1, Ordering::Relaxed) >= max {
                    continue;
                }
            }
            self.stats.count(rule.action);
            return Some(rule.action);
        }
        None
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rules", &self.rules.len())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let make = || {
            FaultPlan::seeded(1234)
                .rule(FaultRule::on(RequestClass::Oneway, FaultAction::Drop).per_mille(300))
        };
        let (a, b) = (make(), make());
        let schedule_a: Vec<_> = (0..64).map(|_| a.decide(RequestClass::Oneway, 0)).collect();
        let schedule_b: Vec<_> = (0..64).map(|_| b.decide(RequestClass::Oneway, 0)).collect();
        assert_eq!(schedule_a, schedule_b);
        assert!(schedule_a.iter().any(|d| d.is_some()), "p=0.3 over 64 draws must fire");
        assert!(schedule_a.iter().any(|d| d.is_none()), "p=0.3 over 64 draws must also skip");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::seeded(1)
            .rule(FaultRule::on(RequestClass::Any, FaultAction::Drop).per_mille(500));
        let b = FaultPlan::seeded(2)
            .rule(FaultRule::on(RequestClass::Any, FaultAction::Drop).per_mille(500));
        let sa: Vec<_> = (0..64).map(|_| a.decide(RequestClass::Call, 0).is_some()).collect();
        let sb: Vec<_> = (0..64).map(|_| b.decide(RequestClass::Call, 0).is_some()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn filters_and_budget_apply() {
        let plan = FaultPlan::seeded(9)
            .rule(FaultRule::on(RequestClass::Call, FaultAction::CrashNode).node(2).times(1));
        // Wrong class and wrong node never fire.
        assert_eq!(plan.decide(RequestClass::Oneway, 2), None);
        assert_eq!(plan.decide(RequestClass::Call, 1), None);
        // The budgeted rule fires exactly once.
        assert_eq!(plan.decide(RequestClass::Call, 2), Some(FaultAction::CrashNode));
        assert_eq!(plan.decide(RequestClass::Call, 2), None);
        assert_eq!(plan.stats().snapshot().crashed, 1);
    }

    #[test]
    fn first_firing_rule_wins() {
        let plan = FaultPlan::seeded(5)
            .rule(FaultRule::on(RequestClass::Oneway, FaultAction::Duplicate))
            .rule(FaultRule::on(RequestClass::Any, FaultAction::Drop));
        assert_eq!(plan.decide(RequestClass::Oneway, 0), Some(FaultAction::Duplicate));
        assert_eq!(plan.decide(RequestClass::Call, 0), Some(FaultAction::Drop));
        let stats = plan.stats().snapshot();
        assert_eq!((stats.duplicated, stats.dropped), (1, 1));
    }
}
