//! A simulated cluster node: one thread, one weaver, one request loop.
//!
//! This is the paper's Figure 15 server side — `PrimeFilter.main` with a
//! receive loop that takes messages off the wire and dispatches them to the
//! local object — generalised to serve constructions and arbitrary method
//! calls for any registered class.
//!
//! Requests carry interned [`MethodId`]/[`ClassId`] handles, not strings:
//! resolving the codec on the serving side is an array index, and the method
//! *name* needed for dispatch comes from the registry's `Arc<str>` boundary
//! copy. Replies are encoded into frames drawn from a shared [`BufPool`],
//! and a [`Request::CallPack`] frame executes many oneway calls from one
//! queue wakeup with no intermediate allocation (the pack's argument views
//! are zero-copy slices of the frame).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use weavepar_weave::{ObjId, WeaveError, WeaveResult, Weaveable, Weaver};

use crate::pool::{BufPool, SlotReply};
use crate::wire::{ClassId, MarshalRegistry, MethodId, PackReader};

/// Where a replied call's answer goes: a plain channel (convenience, tests)
/// or a pooled reply slot (the fabric's fast path).
pub enum ReplySink {
    /// One-shot channel, as used by direct node tests.
    Channel(Sender<WeaveResult<Bytes>>),
    /// Checked-out slot from the fabric's [`ReplyPool`](crate::ReplyPool).
    Slot(SlotReply),
}

impl ReplySink {
    /// Deliver the reply.
    pub fn send(self, result: WeaveResult<Bytes>) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(result);
            }
            ReplySink::Slot(slot) => slot.send(result),
        }
    }
}

/// A request arriving at a node.
pub enum Request {
    /// Create an instance from marshalled constructor arguments. `ctor` is
    /// the interned id of the class's `"new"` method — it names both the
    /// class and the argument codec.
    Construct {
        /// Interned id of `Class.new`.
        ctor: MethodId,
        /// Marshalled constructor arguments.
        args: Bytes,
        /// Reply channel carrying the new object's id.
        reply: Sender<WeaveResult<ObjId>>,
    },
    /// Snapshot (and optionally remove) an object's state for migration.
    Snapshot {
        /// Object to snapshot.
        obj: ObjId,
        /// Remove the object after snapshotting (move semantics).
        remove: bool,
        /// Reply channel with the marshalled state.
        reply: Sender<WeaveResult<Bytes>>,
    },
    /// Rebuild an instance of `class` from snapshotted state.
    Restore {
        /// Interned class id (must have a registered state codec).
        class: ClassId,
        /// Marshalled state.
        state: Bytes,
        /// Reply channel with the new object's id.
        reply: Sender<WeaveResult<ObjId>>,
    },
    /// Invoke `method` on object `obj` with marshalled arguments.
    Call {
        /// Target object on this node.
        obj: ObjId,
        /// Interned method id.
        method: MethodId,
        /// Marshalled arguments.
        args: Bytes,
        /// Reply sink for the marshalled return value; `None` makes the
        /// call oneway (MPP-style send).
        reply: Option<ReplySink>,
        /// At-most-once dedup key: a retried or duplicated delivery carrying
        /// a `seq` already in the node's dedup window is never executed
        /// again — replied duplicates get the cached reply, oneway
        /// duplicates are dropped. `None` (the default fast path) skips the
        /// window entirely.
        seq: Option<u64>,
    },
    /// A framed pack of oneway calls (see
    /// [`PackFrame`](crate::wire::PackFrame) for the layout): one submit,
    /// one wakeup, many executions.
    CallPack {
        /// The framed calls.
        frame: Bytes,
    },
}

impl Request {
    /// Fail the request's reply path with `err`; oneway requests are
    /// silently dropped (they have nowhere to report to).
    fn fail(self, err: impl Fn() -> WeaveError) {
        match self {
            Request::Construct { reply, .. } | Request::Restore { reply, .. } => {
                let _ = reply.send(Err(err()));
            }
            Request::Snapshot { reply, .. } => {
                let _ = reply.send(Err(err()));
            }
            Request::Call { reply: Some(reply), .. } => reply.send(Err(err())),
            Request::Call { reply: None, .. } | Request::CallPack { .. } => {}
        }
    }
}

/// One in-process "cluster node".
pub struct NodeRuntime {
    id: usize,
    weaver: Weaver,
    /// The request queue's sender, behind a mutex so [`NodeRuntime::kill`]
    /// can swap it for a closed channel without racing concurrent submits.
    tx: Mutex<Sender<Request>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    down: Arc<AtomicBool>,
    woven: Arc<AtomicBool>,
}

impl NodeRuntime {
    /// Spawn the node's server thread with a private buffer pool.
    pub fn spawn(id: usize, marshal: MarshalRegistry) -> Self {
        Self::spawn_with_pool(id, marshal, Arc::new(BufPool::new()))
    }

    /// Spawn the node's server thread, recycling reply frames through the
    /// given pool (the fabric shares one pool across nodes and clients).
    pub fn spawn_with_pool(id: usize, marshal: MarshalRegistry, pool: Arc<BufPool>) -> Self {
        let weaver = Weaver::new();
        let (tx, rx) = unbounded::<Request>();
        let server_weaver = weaver.clone();
        let woven = Arc::new(AtomicBool::new(false));
        let down = Arc::new(AtomicBool::new(false));
        let server_woven = woven.clone();
        let server_down = down.clone();
        let handle = std::thread::Builder::new()
            .name(format!("node-{id}"))
            .spawn(move || serve(id, server_weaver, marshal, rx, server_woven, server_down, pool))
            .expect("spawning node thread");
        NodeRuntime {
            id,
            weaver,
            tx: Mutex::new(tx),
            handle: Mutex::new(Some(handle)),
            down,
            woven,
        }
    }

    /// Failure injection: mark the node as crashed. Every later submission
    /// fails with a [`WeaveError::NodeDown`], and requests already queued are
    /// failed promptly by the serve loop instead of executing — callers
    /// blocked on a reply see the error as soon as the loop reaches their
    /// request, rather than hanging until the node is dropped (the
    /// `RemoteException` the paper's Figure 14 wraps in try/catch).
    ///
    /// The kill linearises on the `down` flag *before* the channel swap: a
    /// concurrent [`NodeRuntime::submit`] either observed `down == false`
    /// and still holds the live sender (its request is drained-and-failed by
    /// the serve loop, which re-checks the flag per request), or observes
    /// `down == true` and is rejected up front. Either way no request is
    /// executed after the kill, and none is silently stranded in a channel
    /// nobody serves.
    pub fn kill(&self) {
        self.down.store(true, Ordering::SeqCst);
        // Swap the queue for a closed channel: the serve loop exits once the
        // original senders (including any in-flight clones) are gone, after
        // draining and failing whatever was queued.
        let (closed_tx, _) = unbounded();
        *self.tx.lock() = closed_tx;
    }

    /// Is the node marked as crashed?
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Server-side weaving: when enabled, incoming calls dispatch through
    /// the node weaver's full join-point pipeline, so aspects plugged on the
    /// *node's* weaver apply to remote executions — the paper's MPP sketch,
    /// where the server JVM runs woven code too.
    pub fn set_woven(&self, woven: bool) {
        self.woven.store(woven, Ordering::SeqCst);
    }

    /// This node's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's weaver (its private object space). Exposed so tests and
    /// applications can register classes and inspect server-side state.
    pub fn weaver(&self) -> &Weaver {
        &self.weaver
    }

    /// Register a class on this node so construct/call requests can resolve
    /// it by name.
    pub fn register_class<T: Weaveable>(&self) {
        self.weaver.register_class::<T>();
    }

    /// Submit a request to the node's queue.
    pub fn submit(&self, request: Request) -> WeaveResult<()> {
        if self.is_down() {
            return Err(WeaveError::NodeDown { node: self.id });
        }
        self.tx.lock().send(request).map_err(|_| WeaveError::NodeDown { node: self.id })
    }

    /// A clone of the live queue sender, for delivery-injection threads that
    /// need to enqueue after a delay without borrowing the runtime. If the
    /// node is killed in the meantime the clone feeds the old (drained)
    /// channel or a closed one — either way the request is failed or
    /// dropped, never executed.
    pub(crate) fn sender(&self) -> Sender<Request> {
        self.tx.lock().clone()
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        // Closing the channel ends the serve loop after the queue drains.
        let (closed_tx, _) = unbounded();
        *self.tx.lock() = closed_tx;
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("id", &self.id)
            .field("objects", &self.weaver.space().len())
            .finish()
    }
}

/// Execute one already-decoded call: dispatch by the registry's boundary
/// name, woven or unwoven.
fn execute(
    weaver: &Weaver,
    marshal: &MarshalRegistry,
    woven: bool,
    obj: ObjId,
    method: MethodId,
    args: &Bytes,
) -> WeaveResult<(MethodId, weavepar_weave::AnyValue)> {
    let entry = marshal.method_entry(method)?;
    let mut view = args.clone();
    let decoded = marshal.decode_args_id(method, &mut view)?;
    let ret = if woven {
        weaver.invoke_call_dyn(obj, &entry.method_name, decoded)?
    } else {
        weaver.invoke_unwoven(obj, &entry.method_name, decoded)?
    };
    Ok((method, ret))
}

/// Per-node at-most-once window: remembers recently seen call `seq` keys and
/// the reply outcome they produced, so a retried (or fault-injected
/// duplicate) delivery is answered from cache instead of executed twice.
///
/// `Some(result)` caches a replied call's encoded outcome; `None` marks a
/// oneway already executed (nothing to resend — the duplicate is dropped).
/// The window is bounded: the oldest entries are evicted FIFO, which is safe
/// because retries happen within a call's deadline, far inside the window.
struct DedupWindow {
    seen: HashMap<u64, Option<WeaveResult<Bytes>>>,
    order: VecDeque<u64>,
    cap: usize,
}

impl DedupWindow {
    fn new(cap: usize) -> Self {
        DedupWindow { seen: HashMap::new(), order: VecDeque::new(), cap }
    }

    /// Look up a previously executed call. `Some(cached)` means duplicate.
    fn check(&self, seq: u64) -> Option<&Option<WeaveResult<Bytes>>> {
        self.seen.get(&seq)
    }

    /// Record an executed call's outcome under its dedup key.
    fn record(&mut self, seq: u64, outcome: Option<WeaveResult<Bytes>>) {
        if self.seen.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        if self.seen.insert(seq, outcome).is_none() {
            self.order.push_back(seq);
        }
    }
}

/// The receive loop: decode, dispatch unwoven (the weaving happened on the
/// client), encode the reply into a pooled frame.
fn serve(
    id: usize,
    weaver: Weaver,
    marshal: MarshalRegistry,
    rx: Receiver<Request>,
    woven: Arc<AtomicBool>,
    down: Arc<AtomicBool>,
    pool: Arc<BufPool>,
) {
    let mut dedup = DedupWindow::new(4096);
    while let Ok(request) = rx.recv() {
        // Crashed node: fail everything still queued instead of executing
        // it, so callers blocked on replies are released promptly.
        if down.load(Ordering::SeqCst) {
            request.fail(|| WeaveError::NodeDown { node: id });
            continue;
        }
        match request {
            Request::Construct { ctor, args, reply } => {
                let result = (|| {
                    let entry = marshal.method_entry(ctor)?;
                    let class = entry.class_name.clone();
                    let mut view = args.clone();
                    let decoded = marshal.decode_args_id(ctor, &mut view)?;
                    weaver.construct_dyn_unwoven(&class, decoded)
                })();
                pool.recycle(args);
                let _ = reply.send(result);
            }
            Request::Snapshot { obj, remove, reply } => {
                let result = (|| {
                    let class = weaver.space().class_of(obj)?;
                    let state = marshal.snapshot_state(&weaver, class, obj)?;
                    if remove {
                        weaver.space().remove(obj);
                    }
                    Ok(state)
                })();
                let _ = reply.send(result);
            }
            Request::Restore { class, state, reply } => {
                let result = marshal
                    .class_name(class)
                    .and_then(|name| marshal.restore_state(&weaver, &name, &state));
                let _ = reply.send(result);
            }
            Request::Call { obj, method, args, reply, seq } => {
                // At-most-once: a seq already in the window was executed by
                // an earlier delivery — answer from cache (replied) or drop
                // (oneway) without touching the object again.
                if let Some(seq) = seq {
                    if let Some(cached) = dedup.check(seq) {
                        pool.recycle(args);
                        if let Some(reply) = reply {
                            match cached {
                                Some(outcome) => reply.send(outcome.clone()),
                                // A oneway executed under this seq; a replied
                                // duplicate asking for its result is a
                                // protocol mismatch — fail it loudly.
                                None => reply.send(Err(WeaveError::remote(
                                    "duplicate delivery of a oneway call",
                                ))),
                            }
                        }
                        continue;
                    }
                }
                let woven = woven.load(Ordering::SeqCst);
                let result = execute(&weaver, &marshal, woven, obj, method, &args);
                pool.recycle(args);
                match reply {
                    Some(reply) => {
                        let encoded = result.and_then(|(method, ret)| {
                            let mut buf = pool.take();
                            marshal.encode_ret_id(method, &ret, &mut buf)?;
                            Ok(buf.freeze())
                        });
                        if let Some(seq) = seq {
                            dedup.record(seq, Some(encoded.clone()));
                        }
                        reply.send(encoded);
                    }
                    None => {
                        // Oneway: failures have nowhere to go; drop them like
                        // a lost datagram (the paper's MPP send has the same
                        // property).
                        let _ = result;
                        if let Some(seq) = seq {
                            dedup.record(seq, None);
                        }
                    }
                }
            }
            Request::CallPack { frame } => {
                let woven = woven.load(Ordering::SeqCst);
                match PackReader::new(frame.clone()) {
                    Ok(reader) => {
                        for entry in reader {
                            // Entries are oneway: malformed frames and failed
                            // calls alike are dropped datagrams.
                            let Ok((obj, method, args)) = entry else { break };
                            let _ = execute(&weaver, &marshal, woven, obj, method, &args);
                        }
                    }
                    Err(_) => { /* truncated header: drop the pack */ }
                }
                pool.recycle(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use weavepar_weave::WeaveResult as WR;

    struct Adder {
        total: u64,
    }

    weavepar_weave::weaveable! {
        class Adder as AdderProxy {
            fn new(start: u64) -> Self { Adder { total: start } }
            fn add(&mut self, x: u64) -> u64 {
                self.total += x;
                self.total
            }
        }
    }

    static GATE_OPEN: AtomicBool = AtomicBool::new(false);

    struct Blocker;

    weavepar_weave::weaveable! {
        class Blocker as BlockerProxy {
            fn new() -> Self { Blocker }
            fn block(&mut self) -> u64 {
                while !super::tests::GATE_OPEN.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                1
            }
        }
    }

    fn marshal() -> MarshalRegistry {
        let m = MarshalRegistry::new();
        m.register::<(u64,), ()>("Adder", "new");
        m.register::<(u64,), u64>("Adder", "add");
        m.register::<(), ()>("Blocker", "new");
        m.register::<(), u64>("Blocker", "block");
        m
    }

    fn construct(node: &NodeRuntime, m: &MarshalRegistry, class: &str, args: Bytes) -> WR<ObjId> {
        let (tx, rx) = bounded(1);
        node.submit(Request::Construct { ctor: m.method_id(class, "new")?, args, reply: tx })?;
        rx.recv().map_err(|_| weavepar_weave::WeaveError::remote("no reply"))?
    }

    fn construct_adder(node: &NodeRuntime, m: &MarshalRegistry, start: u64) -> WR<ObjId> {
        let args = m.encode_args("Adder", "new", &weavepar_weave::args![start]).unwrap();
        construct(node, m, "Adder", args)
    }

    fn add_args(m: &MarshalRegistry, x: u64) -> Bytes {
        m.encode_args("Adder", "add", &weavepar_weave::args![x]).unwrap()
    }

    #[test]
    fn construct_and_call_roundtrip() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let obj = construct_adder(&node, &m, 10).unwrap();

        let (tx, rx) = bounded(1);
        node.submit(Request::Call {
            obj,
            method: m.method_id("Adder", "add").unwrap(),
            args: add_args(&m, 5),
            reply: Some(ReplySink::Channel(tx)),
            seq: None,
        })
        .unwrap();
        let ret = rx.recv().unwrap().unwrap();
        let v = m.decode_ret("Adder", "add", &ret).unwrap();
        assert_eq!(*v.downcast::<u64>().unwrap(), 15);
    }

    #[test]
    fn oneway_calls_execute() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let obj = construct_adder(&node, &m, 0).unwrap();
        let add = m.method_id("Adder", "add").unwrap();
        for _ in 0..3 {
            node.submit(Request::Call {
                obj,
                method: add,
                args: add_args(&m, 1),
                reply: None,
                seq: None,
            })
            .unwrap();
        }
        // Synchronise via a replied call.
        let (tx, rx) = bounded(1);
        node.submit(Request::Call {
            obj,
            method: add,
            args: add_args(&m, 0),
            reply: Some(ReplySink::Channel(tx)),
            seq: None,
        })
        .unwrap();
        let ret = rx.recv().unwrap().unwrap();
        let v = m.decode_ret("Adder", "add", &ret).unwrap();
        assert_eq!(*v.downcast::<u64>().unwrap(), 3);
    }

    #[test]
    fn call_pack_executes_all_entries() {
        use crate::wire::PackFrame;
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let obj = construct_adder(&node, &m, 0).unwrap();
        let add = m.method_id("Adder", "add").unwrap();
        let mut frame = PackFrame::new(bytes::BytesMut::new());
        for _ in 0..10 {
            frame.push(obj, add, &m, &weavepar_weave::args![1u64]).unwrap();
        }
        node.submit(Request::CallPack { frame: frame.finish() }).unwrap();
        // Synchronise via a replied call: queue order is execution order.
        let (tx, rx) = bounded(1);
        node.submit(Request::Call {
            obj,
            method: add,
            args: add_args(&m, 0),
            reply: Some(ReplySink::Channel(tx)),
            seq: None,
        })
        .unwrap();
        let ret = rx.recv().unwrap().unwrap();
        let v = m.decode_ret("Adder", "add", &ret).unwrap();
        assert_eq!(*v.downcast::<u64>().unwrap(), 10);
    }

    #[test]
    fn unknown_class_fails_cleanly() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        // Class NOT registered on the node.
        let err = construct_adder(&node, &m, 1).unwrap_err();
        assert!(matches!(err, weavepar_weave::WeaveError::Construction(_)));
    }

    #[test]
    fn call_on_missing_object_fails_cleanly() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let (tx, rx) = bounded(1);
        node.submit(Request::Call {
            obj: ObjId::from_raw(404),
            method: m.method_id("Adder", "add").unwrap(),
            args: add_args(&m, 1),
            reply: Some(ReplySink::Channel(tx)),
            seq: None,
        })
        .unwrap();
        assert!(rx.recv().unwrap().is_err());
    }

    #[test]
    fn killed_node_rejects_new_requests() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let obj = construct_adder(&node, &m, 0).unwrap();
        assert!(!node.is_down());
        node.kill();
        assert!(node.is_down());
        let (tx, _rx) = bounded(1);
        let err = node
            .submit(Request::Call {
                obj,
                method: m.method_id("Adder", "add").unwrap(),
                args: add_args(&m, 1),
                reply: Some(ReplySink::Channel(tx)),
                seq: None,
            })
            .unwrap_err();
        assert!(matches!(err, weavepar_weave::WeaveError::NodeDown { node: 0 }));
    }

    #[test]
    fn kill_fails_queued_requests_promptly() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        node.register_class::<Blocker>();
        let adder = construct_adder(&node, &m, 0).unwrap();
        let blocker = construct(
            &node,
            &m,
            "Blocker",
            m.encode_args("Blocker", "new", &weavepar_weave::args![]).unwrap(),
        )
        .unwrap();
        GATE_OPEN.store(false, Ordering::SeqCst);
        // Occupy the serve loop with a blocking oneway call...
        node.submit(Request::Call {
            obj: blocker,
            method: m.method_id("Blocker", "block").unwrap(),
            args: m.encode_args("Blocker", "block", &weavepar_weave::args![]).unwrap(),
            reply: None,
            seq: None,
        })
        .unwrap();
        // ...queue a replied call behind it...
        let (tx, rx) = bounded(1);
        node.submit(Request::Call {
            obj: adder,
            method: m.method_id("Adder", "add").unwrap(),
            args: add_args(&m, 1),
            reply: Some(ReplySink::Channel(tx)),
            seq: None,
        })
        .unwrap();
        // ...kill the node while the call is queued, then release the gate.
        node.kill();
        GATE_OPEN.store(true, Ordering::SeqCst);
        // The queued caller must be failed, not executed or stranded.
        let err = rx.recv().expect("reply delivered").unwrap_err();
        assert!(matches!(err, weavepar_weave::WeaveError::NodeDown { node: 0 }));
    }

    #[test]
    fn kill_linearises_against_concurrent_submits() {
        // A submit racing the kill must either be rejected up front or have
        // its request drained-and-failed — never stranded in a queue nobody
        // serves. Run several rounds; each round hammers submits from two
        // threads while the main thread kills the node, then asserts every
        // accepted replied call got an answer.
        for _round in 0..8 {
            let m = marshal();
            let node = Arc::new(NodeRuntime::spawn(3, m.clone()));
            node.register_class::<Adder>();
            let obj = construct_adder(&node, &m, 0).unwrap();
            let add = m.method_id("Adder", "add").unwrap();
            let stop = Arc::new(AtomicBool::new(false));
            let mut submitters = Vec::new();
            for _ in 0..2 {
                let node = node.clone();
                let m = m.clone();
                let stop = stop.clone();
                submitters.push(std::thread::spawn(move || {
                    let mut accepted = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        let (tx, rx) = bounded(1);
                        let sent = node.submit(Request::Call {
                            obj,
                            method: add,
                            args: m
                                .encode_args("Adder", "add", &weavepar_weave::args![1u64])
                                .unwrap(),
                            reply: Some(ReplySink::Channel(tx)),
                            seq: None,
                        });
                        if sent.is_ok() {
                            accepted.push(rx);
                        }
                    }
                    accepted
                }));
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            node.kill();
            stop.store(true, Ordering::SeqCst);
            for handle in submitters {
                for rx in handle.join().unwrap() {
                    // Every accepted call gets a reply (value before the kill,
                    // NodeDown after) within a bounded wait — no stranding.
                    let _ = rx
                        .recv_timeout(std::time::Duration::from_secs(5))
                        .expect("accepted call must be answered");
                }
            }
            // And the node still shuts down cleanly.
            drop(node);
        }
    }

    #[test]
    fn server_side_weaving_applies_node_aspects() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use weavepar_weave::prelude::*;

        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let fired = std::sync::Arc::new(AtomicU64::new(0));
        let fired2 = fired.clone();
        node.weaver().plug(
            Aspect::named("ServerLogging")
                .before(Pointcut::call("Adder.add"), move |_| {
                    fired2.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                })
                .build(),
        );
        let obj = construct_adder(&node, &m, 0).unwrap();
        let send = |obj| {
            let (tx, rx) = bounded(1);
            node.submit(Request::Call {
                obj,
                method: m.method_id("Adder", "add").unwrap(),
                args: add_args(&m, 1),
                reply: Some(ReplySink::Channel(tx)),
                seq: None,
            })
            .unwrap();
            rx.recv().unwrap().unwrap();
        };
        // Unwoven (default): server aspects do not apply.
        send(obj);
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        // Woven: they do.
        node.set_woven(true);
        send(obj);
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        node.set_woven(false);
        send(obj);
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn dedup_window_suppresses_duplicate_deliveries() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let obj = construct_adder(&node, &m, 0).unwrap();
        let add = m.method_id("Adder", "add").unwrap();
        // Same seq delivered twice as a oneway: the add executes once.
        for _ in 0..2 {
            node.submit(Request::Call {
                obj,
                method: add,
                args: add_args(&m, 5),
                reply: None,
                seq: Some(7),
            })
            .unwrap();
        }
        // A replied call duplicated under one seq: executed once, the second
        // delivery answered from the cached reply.
        let mut replies = Vec::new();
        for _ in 0..2 {
            let (tx, rx) = bounded(1);
            node.submit(Request::Call {
                obj,
                method: add,
                args: add_args(&m, 1),
                reply: Some(ReplySink::Channel(tx)),
                seq: Some(8),
            })
            .unwrap();
            replies.push(rx);
        }
        for rx in replies {
            let ret = rx.recv().unwrap().unwrap();
            let v = m.decode_ret("Adder", "add", &ret).unwrap();
            // 0 + 5 (executed once) + 1 (executed once) — both deliveries of
            // the replied call see the same total.
            assert_eq!(*v.downcast::<u64>().unwrap(), 6);
        }
    }

    #[test]
    fn dedup_window_evicts_oldest_entries() {
        let mut w = DedupWindow::new(2);
        w.record(1, None);
        w.record(2, None);
        w.record(3, None);
        assert!(w.check(1).is_none(), "oldest entry evicted at capacity");
        assert!(w.check(2).is_some());
        assert!(w.check(3).is_some());
    }

    #[test]
    fn drop_shuts_the_node_down() {
        let m = marshal();
        let node = NodeRuntime::spawn(7, m);
        assert_eq!(node.id(), 7);
        drop(node); // must join without hanging
    }
}
