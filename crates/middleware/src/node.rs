//! A simulated cluster node: one thread, one weaver, one request loop.
//!
//! This is the paper's Figure 15 server side — `PrimeFilter.main` with a
//! receive loop that takes messages off the wire and dispatches them to the
//! local object — generalised to serve constructions and arbitrary method
//! calls for any registered class.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use weavepar_weave::{ObjId, WeaveError, WeaveResult, Weaveable, Weaver};

use crate::wire::MarshalRegistry;

/// A request arriving at a node.
pub enum Request {
    /// Create an instance of `class` from marshalled constructor arguments.
    Construct {
        /// Class name (must be registered on the node's weaver).
        class: String,
        /// Marshalled constructor arguments.
        args: Bytes,
        /// Reply channel carrying the new object's id.
        reply: Sender<WeaveResult<ObjId>>,
    },
    /// Snapshot (and optionally remove) an object's state for migration.
    Snapshot {
        /// Object to snapshot.
        obj: ObjId,
        /// Remove the object after snapshotting (move semantics).
        remove: bool,
        /// Reply channel with the marshalled state.
        reply: Sender<WeaveResult<Bytes>>,
    },
    /// Rebuild an instance of `class` from snapshotted state.
    Restore {
        /// Class name (must have a registered state codec).
        class: String,
        /// Marshalled state.
        state: Bytes,
        /// Reply channel with the new object's id.
        reply: Sender<WeaveResult<ObjId>>,
    },
    /// Invoke `method` on object `obj` with marshalled arguments.
    Call {
        /// Target object on this node.
        obj: ObjId,
        /// Method name.
        method: String,
        /// Marshalled arguments.
        args: Bytes,
        /// Reply channel for the marshalled return value; `None` makes the
        /// call oneway (MPP-style send).
        reply: Option<Sender<WeaveResult<Bytes>>>,
    },
}

/// One in-process "cluster node".
pub struct NodeRuntime {
    id: usize,
    weaver: Weaver,
    tx: Sender<Request>,
    handle: Mutex<Option<JoinHandle<()>>>,
    down: Arc<AtomicBool>,
    woven: Arc<AtomicBool>,
}

impl NodeRuntime {
    /// Spawn the node's server thread.
    pub fn spawn(id: usize, marshal: MarshalRegistry) -> Self {
        let weaver = Weaver::new();
        let (tx, rx) = unbounded::<Request>();
        let server_weaver = weaver.clone();
        let woven = Arc::new(AtomicBool::new(false));
        let server_woven = woven.clone();
        let handle = std::thread::Builder::new()
            .name(format!("node-{id}"))
            .spawn(move || serve(server_weaver, marshal, rx, server_woven))
            .expect("spawning node thread");
        NodeRuntime {
            id,
            weaver,
            tx,
            handle: Mutex::new(Some(handle)),
            down: Arc::new(AtomicBool::new(false)),
            woven,
        }
    }

    /// Failure injection: mark the node as crashed. Requests already queued
    /// still drain (in-flight packets), but every later submission fails
    /// with a [`WeaveError::Remote`] — the `RemoteException` the paper's
    /// Figure 14 wraps in try/catch.
    pub fn kill(&self) {
        self.down.store(true, Ordering::SeqCst);
    }

    /// Is the node marked as crashed?
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Server-side weaving: when enabled, incoming calls dispatch through
    /// the node weaver's full join-point pipeline, so aspects plugged on the
    /// *node's* weaver apply to remote executions — the paper's MPP sketch,
    /// where the server JVM runs woven code too.
    pub fn set_woven(&self, woven: bool) {
        self.woven.store(woven, Ordering::SeqCst);
    }

    /// This node's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's weaver (its private object space). Exposed so tests and
    /// applications can register classes and inspect server-side state.
    pub fn weaver(&self) -> &Weaver {
        &self.weaver
    }

    /// Register a class on this node so construct/call requests can resolve
    /// it by name.
    pub fn register_class<T: Weaveable>(&self) {
        self.weaver.register_class::<T>();
    }

    /// Submit a request to the node's queue.
    pub fn submit(&self, request: Request) -> WeaveResult<()> {
        if self.is_down() {
            return Err(WeaveError::remote(format!("node {} is down", self.id)));
        }
        self.tx.send(request).map_err(|_| WeaveError::remote(format!("node {} is down", self.id)))
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        // Closing the channel ends the serve loop after the queue drains.
        let (closed_tx, _) = unbounded();
        self.tx = closed_tx;
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("id", &self.id)
            .field("objects", &self.weaver.space().len())
            .finish()
    }
}

/// The receive loop: decode, dispatch unwoven (the weaving happened on the
/// client), encode the reply.
fn serve(weaver: Weaver, marshal: MarshalRegistry, rx: Receiver<Request>, woven: Arc<AtomicBool>) {
    while let Ok(request) = rx.recv() {
        match request {
            Request::Construct { class, args, reply } => {
                let result = marshal
                    .decode_args(&class, "new", &args)
                    .and_then(|args| weaver.construct_dyn_unwoven(&class, args));
                let _ = reply.send(result);
            }
            Request::Snapshot { obj, remove, reply } => {
                let result = (|| {
                    let class = weaver.space().class_of(obj)?;
                    let state = marshal.snapshot_state(&weaver, class, obj)?;
                    if remove {
                        weaver.space().remove(obj);
                    }
                    Ok(state)
                })();
                let _ = reply.send(result);
            }
            Request::Restore { class, state, reply } => {
                let _ = reply.send(marshal.restore_state(&weaver, &class, &state));
            }
            Request::Call { obj, method, args, reply } => {
                let result = (|| {
                    let class = weaver.space().class_of(obj)?;
                    let decoded = marshal.decode_args(class, &method, &args)?;
                    let ret = if woven.load(Ordering::SeqCst) {
                        weaver.invoke_call_dyn(obj, &method, decoded)?
                    } else {
                        weaver.invoke_unwoven(obj, &method, decoded)?
                    };
                    marshal.encode_ret(class, &method, &ret)
                })();
                match reply {
                    Some(reply) => {
                        let _ = reply.send(result);
                    }
                    None => {
                        // Oneway: failures have nowhere to go; drop them like
                        // a lost datagram (the paper's MPP send has the same
                        // property).
                        let _ = result;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use weavepar_weave::WeaveResult as WR;

    struct Adder {
        total: u64,
    }

    weavepar_weave::weaveable! {
        class Adder as AdderProxy {
            fn new(start: u64) -> Self { Adder { total: start } }
            fn add(&mut self, x: u64) -> u64 {
                self.total += x;
                self.total
            }
        }
    }

    fn marshal() -> MarshalRegistry {
        let m = MarshalRegistry::new();
        m.register::<(u64,), ()>("Adder", "new");
        m.register::<(u64,), u64>("Adder", "add");
        m
    }

    fn construct(node: &NodeRuntime, m: &MarshalRegistry, start: u64) -> WR<ObjId> {
        let (tx, rx) = bounded(1);
        let args = m.encode_args("Adder", "new", &weavepar_weave::args![start]).unwrap();
        node.submit(Request::Construct { class: "Adder".into(), args, reply: tx })?;
        rx.recv().map_err(|_| weavepar_weave::WeaveError::remote("no reply"))?
    }

    #[test]
    fn construct_and_call_roundtrip() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let obj = construct(&node, &m, 10).unwrap();

        let (tx, rx) = bounded(1);
        let args = m.encode_args("Adder", "add", &weavepar_weave::args![5u64]).unwrap();
        node.submit(Request::Call { obj, method: "add".into(), args, reply: Some(tx) }).unwrap();
        let ret = rx.recv().unwrap().unwrap();
        let v = m.decode_ret("Adder", "add", &ret).unwrap();
        assert_eq!(*v.downcast::<u64>().unwrap(), 15);
    }

    #[test]
    fn oneway_calls_execute() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let obj = construct(&node, &m, 0).unwrap();
        for _ in 0..3 {
            let args = m.encode_args("Adder", "add", &weavepar_weave::args![1u64]).unwrap();
            node.submit(Request::Call { obj, method: "add".into(), args, reply: None }).unwrap();
        }
        // Synchronise via a replied call.
        let (tx, rx) = bounded(1);
        let args = m.encode_args("Adder", "add", &weavepar_weave::args![0u64]).unwrap();
        node.submit(Request::Call { obj, method: "add".into(), args, reply: Some(tx) }).unwrap();
        let ret = rx.recv().unwrap().unwrap();
        let v = m.decode_ret("Adder", "add", &ret).unwrap();
        assert_eq!(*v.downcast::<u64>().unwrap(), 3);
    }

    #[test]
    fn unknown_class_fails_cleanly() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        // Class NOT registered on the node.
        let err = construct(&node, &m, 1).unwrap_err();
        assert!(matches!(err, weavepar_weave::WeaveError::Construction(_)));
    }

    #[test]
    fn call_on_missing_object_fails_cleanly() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let (tx, rx) = bounded(1);
        let args = m.encode_args("Adder", "add", &weavepar_weave::args![1u64]).unwrap();
        node.submit(Request::Call {
            obj: ObjId::from_raw(404),
            method: "add".into(),
            args,
            reply: Some(tx),
        })
        .unwrap();
        assert!(rx.recv().unwrap().is_err());
    }

    #[test]
    fn killed_node_rejects_new_requests() {
        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let obj = construct(&node, &m, 0).unwrap();
        assert!(!node.is_down());
        node.kill();
        assert!(node.is_down());
        let (tx, _rx) = bounded(1);
        let args = m.encode_args("Adder", "add", &weavepar_weave::args![1u64]).unwrap();
        let err = node
            .submit(Request::Call { obj, method: "add".into(), args, reply: Some(tx) })
            .unwrap_err();
        assert!(matches!(err, weavepar_weave::WeaveError::Remote(_)));
    }

    #[test]
    fn server_side_weaving_applies_node_aspects() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use weavepar_weave::prelude::*;

        let m = marshal();
        let node = NodeRuntime::spawn(0, m.clone());
        node.register_class::<Adder>();
        let fired = std::sync::Arc::new(AtomicU64::new(0));
        let fired2 = fired.clone();
        node.weaver().plug(
            Aspect::named("ServerLogging")
                .before(Pointcut::call("Adder.add"), move |_| {
                    fired2.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                })
                .build(),
        );
        let obj = construct(&node, &m, 0).unwrap();
        let send = |obj| {
            let (tx, rx) = bounded(1);
            let args = m.encode_args("Adder", "add", &weavepar_weave::args![1u64]).unwrap();
            node.submit(Request::Call { obj, method: "add".into(), args, reply: Some(tx) })
                .unwrap();
            rx.recv().unwrap().unwrap();
        };
        // Unwoven (default): server aspects do not apply.
        send(obj);
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        // Woven: they do.
        node.set_woven(true);
        send(obj);
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        node.set_woven(false);
        send(obj);
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_shuts_the_node_down() {
        let m = marshal();
        let node = NodeRuntime::spawn(7, m);
        assert_eq!(node.id(), 7);
        drop(node); // must join without hanging
    }
}
