//! The in-process cluster fabric: N node runtimes plus client-side plumbing.
//!
//! `InProcFabric` is the "cluster" the distribution aspects talk to. Its
//! nodes are real threads with private object spaces; calls are marshalled
//! to bytes and cross channels — functionally a distributed system, minus
//! the 2005 Ethernet (whose costs live in `weavepar-cluster`).
//!
//! The per-call fast path is allocation-free in the steady state:
//! [`InProcFabric::call_id`] takes an interned [`MethodId`] (an array index
//! into the registry, not a string lookup), draws its reply rendezvous from
//! a slab of reusable park/unpark slots instead of a fresh `bounded(1)`
//! channel, and encode/decode frames cycle through a shared [`BufPool`].
//! [`InProcFabric::call_batch`] packs many oneway calls to one node into a
//! single [`Request::CallPack`] frame — one submit, one wakeup.

use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::bounded;

use weavepar_weave::{Args, ObjId, WeaveError, WeaveResult, Weaveable};

use crate::nameserver::NameServer;
use crate::node::{NodeRuntime, ReplySink, Request};
use crate::pool::{BufPool, ReplyPool};
use crate::wire::{ClassId, MarshalRegistry, MethodId, PackFrame};

/// A reference to an object living on a fabric node. Carries the interned
/// class id so method resolution on the stub side never re-hashes the class
/// name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteRef {
    /// Hosting node.
    pub node: usize,
    /// Object id within that node's space.
    pub obj: ObjId,
    /// Interned class of the remote instance.
    pub class: ClassId,
}

/// N in-process nodes, a shared marshalling registry and a name server.
pub struct InProcFabric {
    nodes: Vec<NodeRuntime>,
    marshal: MarshalRegistry,
    nameserver: NameServer,
    buffers: Arc<BufPool>,
    replies: ReplyPool,
}

impl InProcFabric {
    /// Spawn a fabric of `nodes` nodes sharing `marshal` (and one frame
    /// pool spanning clients and servers).
    pub fn new(nodes: usize, marshal: MarshalRegistry) -> Arc<Self> {
        let buffers = Arc::new(BufPool::new());
        let nodes = (0..nodes.max(1))
            .map(|i| NodeRuntime::spawn_with_pool(i, marshal.clone(), buffers.clone()))
            .collect();
        Arc::new(InProcFabric {
            nodes,
            marshal,
            nameserver: NameServer::new(),
            buffers,
            replies: ReplyPool::new(),
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared marshalling registry.
    pub fn marshal(&self) -> &MarshalRegistry {
        &self.marshal
    }

    /// The fabric's name server (used by the RMI-style aspect).
    pub fn nameserver(&self) -> &NameServer {
        &self.nameserver
    }

    /// The shared frame pool — encode argument packs into
    /// [`BufPool::take`]n frames and the fabric recycles them on the far
    /// side.
    pub fn buffers(&self) -> &BufPool {
        &self.buffers
    }

    /// A node's runtime (tests, server-side inspection).
    pub fn node(&self, i: usize) -> WeaveResult<&NodeRuntime> {
        self.nodes.get(i).ok_or_else(|| WeaveError::remote(format!("no node {i}")))
    }

    /// Failure injection: crash a node. Later submissions fail immediately
    /// and requests already queued are failed promptly by the node's serve
    /// loop (see [`NodeRuntime::kill`]) — callers blocked on replies get a
    /// [`WeaveError::Remote`] instead of hanging until fabric teardown.
    pub fn kill_node(&self, i: usize) -> WeaveResult<()> {
        self.node(i)?.kill();
        Ok(())
    }

    /// Register a weaveable class on every node.
    pub fn register_class<T: Weaveable>(&self) {
        for node in &self.nodes {
            node.register_class::<T>();
        }
    }

    /// Create an instance of `class` on `node` from marshalled arguments.
    /// Interns the class's `"new"` method once; hot callers should hold the
    /// [`MethodId`] and use [`InProcFabric::construct_on_id`].
    pub fn construct_on(&self, node: usize, class: &str, args: Bytes) -> WeaveResult<RemoteRef> {
        self.construct_on_id(node, self.marshal.method_id(class, "new")?, args)
    }

    /// Create an instance on `node`; `ctor` is the interned id of the
    /// class's `"new"` method.
    pub fn construct_on_id(
        &self,
        node: usize,
        ctor: MethodId,
        args: Bytes,
    ) -> WeaveResult<RemoteRef> {
        let class = self.marshal.method_entry(ctor)?.class;
        let target = self.node(node)?;
        let (tx, rx) = bounded(1);
        target.submit(Request::Construct { ctor, args, reply: tx })?;
        let obj = rx.recv().map_err(|_| {
            WeaveError::remote(format!("node {node} dropped the construct reply"))
        })??;
        Ok(RemoteRef { node, obj, class })
    }

    /// Snapshot a remote object's state (removing it when `remove`).
    pub fn snapshot(&self, reference: RemoteRef, remove: bool) -> WeaveResult<Bytes> {
        let target = self.node(reference.node)?;
        let (tx, rx) = bounded(1);
        target.submit(Request::Snapshot { obj: reference.obj, remove, reply: tx })?;
        rx.recv().map_err(|_| WeaveError::remote("node dropped the snapshot reply"))?
    }

    /// Rebuild an instance of `class` on `node` from snapshotted state.
    pub fn restore(&self, node: usize, class: &str, state: Bytes) -> WeaveResult<RemoteRef> {
        let class_id = self.marshal.intern_class(class);
        let target = self.node(node)?;
        let (tx, rx) = bounded(1);
        target.submit(Request::Restore { class: class_id, state, reply: tx })?;
        let obj = rx.recv().map_err(|_| WeaveError::remote("node dropped the restore reply"))??;
        Ok(RemoteRef { node, obj, class: class_id })
    }

    /// Move a remote object to another node, preserving its state — the
    /// runtime behind the paper's `Point.migrate` (Figure 2).
    pub fn migrate(&self, reference: RemoteRef, class: &str, to: usize) -> WeaveResult<RemoteRef> {
        if reference.node == to {
            return Ok(reference);
        }
        let state = self.snapshot(reference, true)?;
        self.restore(to, class, state)
    }

    /// Invoke `method` on a remote object by name (resolves the interned id
    /// first — convenience path; stubs on the hot path should cache the
    /// [`MethodId`] and use [`InProcFabric::call_id`]).
    pub fn call(
        &self,
        reference: RemoteRef,
        method: &str,
        args: Bytes,
        want_reply: bool,
    ) -> WeaveResult<Option<Bytes>> {
        let class = self.marshal.class_name(reference.class)?;
        let id = self.marshal.method_id(&class, method)?;
        self.call_id(reference, id, args, want_reply)
    }

    /// Invoke an interned method on a remote object. With `want_reply`,
    /// blocks on a pooled reply slot for the marshalled return value (RMI
    /// semantics); without, returns immediately (MPP oneway send).
    pub fn call_id(
        &self,
        reference: RemoteRef,
        method: MethodId,
        args: Bytes,
        want_reply: bool,
    ) -> WeaveResult<Option<Bytes>> {
        let target = self.node(reference.node)?;
        if want_reply {
            let (ticket, reply) = self.replies.checkout();
            target.submit(Request::Call {
                obj: reference.obj,
                method,
                args,
                reply: Some(ReplySink::Slot(reply)),
            })?;
            let result = ticket.wait();
            self.replies.finish(ticket);
            Ok(Some(result?))
        } else {
            target.submit(Request::Call { obj: reference.obj, method, args, reply: None })?;
            Ok(None)
        }
    }

    /// Ablation backend for the `remote_throughput` bench: identical to
    /// [`InProcFabric::call_id`] but with a fresh `bounded(1)` channel per
    /// replied call — the pre-pooling rendezvous. Not for production use.
    #[doc(hidden)]
    pub fn call_id_channel(
        &self,
        reference: RemoteRef,
        method: MethodId,
        args: Bytes,
        want_reply: bool,
    ) -> WeaveResult<Option<Bytes>> {
        let target = self.node(reference.node)?;
        if want_reply {
            let (tx, rx) = bounded(1);
            target.submit(Request::Call {
                obj: reference.obj,
                method,
                args,
                reply: Some(ReplySink::Channel(tx)),
            })?;
            let bytes = rx.recv().map_err(|_| {
                WeaveError::remote(format!("node {} dropped the call reply", reference.node))
            })??;
            Ok(Some(bytes))
        } else {
            target.submit(Request::Call { obj: reference.obj, method, args, reply: None })?;
            Ok(None)
        }
    }

    /// Pack many oneway calls to one node into a single framed
    /// [`Request::CallPack`]: one submit, one queue wakeup, zero
    /// intermediate allocation on the serving side. Returns the number of
    /// calls shipped; an empty iterator ships nothing.
    pub fn call_batch<I>(&self, node: usize, calls: I) -> WeaveResult<usize>
    where
        I: IntoIterator<Item = (ObjId, MethodId, Args)>,
    {
        let target = self.node(node)?;
        let mut frame = PackFrame::new(self.buffers.take());
        for (obj, method, args) in calls {
            frame.push(obj, method, &self.marshal, &args)?;
        }
        if frame.is_empty() {
            return Ok(0);
        }
        let count = frame.count() as usize;
        target.submit(Request::CallPack { frame: frame.finish() })?;
        Ok(count)
    }

    /// Submit an already-framed pack to `node` (the packing aspect builds
    /// frames incrementally and ships them here).
    pub fn submit_pack(&self, node: usize, frame: PackFrame) -> WeaveResult<usize> {
        if frame.is_empty() {
            return Ok(0);
        }
        let count = frame.count() as usize;
        self.node(node)?.submit(Request::CallPack { frame: frame.finish() })?;
        Ok(count)
    }

    /// Start an empty pack frame backed by the fabric's frame pool.
    pub fn new_pack(&self) -> PackFrame {
        PackFrame::new(self.buffers.take())
    }
}

impl std::fmt::Debug for InProcFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcFabric").field("nodes", &self.nodes.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use weavepar_weave::args;

    struct Echo {
        tag: String,
    }

    weavepar_weave::weaveable! {
        class Echo as EchoProxy {
            fn new(tag: String) -> Self { Echo { tag } }
            fn shout(&mut self, msg: String) -> String {
                format!("{}:{}", self.tag, msg)
            }
        }
    }

    static FABRIC_GATE: AtomicBool = AtomicBool::new(false);

    struct Staller;

    weavepar_weave::weaveable! {
        class Staller as StallerProxy {
            fn new() -> Self { Staller }
            fn stall(&mut self) -> u64 {
                while !crate::fabric::tests::FABRIC_GATE.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                1
            }
        }
    }

    fn fabric() -> Arc<InProcFabric> {
        let m = MarshalRegistry::new();
        m.register::<(String,), ()>("Echo", "new");
        m.register::<(String,), String>("Echo", "shout");
        m.register::<(), ()>("Staller", "new");
        m.register::<(), u64>("Staller", "stall");
        let f = InProcFabric::new(3, m);
        f.register_class::<Echo>();
        f.register_class::<Staller>();
        f
    }

    #[test]
    fn construct_and_call_across_nodes() {
        let f = fabric();
        for node in 0..3 {
            let args = f.marshal().encode_args("Echo", "new", &args![format!("n{node}")]).unwrap();
            let r = f.construct_on(node, "Echo", args).unwrap();
            assert_eq!(r.node, node);
            assert_eq!(r.class, f.marshal().class_id("Echo").unwrap());
            let call_args =
                f.marshal().encode_args("Echo", "shout", &args!["hi".to_string()]).unwrap();
            let reply = f.call(r, "shout", call_args, true).unwrap().unwrap();
            let ret = f.marshal().decode_ret("Echo", "shout", &reply).unwrap();
            assert_eq!(*ret.downcast::<String>().unwrap(), format!("n{node}:hi"));
        }
    }

    #[test]
    fn call_id_matches_string_path() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(0, "Echo", ctor).unwrap();
        let shout = f.marshal().method_id("Echo", "shout").unwrap();
        for msg in ["a", "b", "c"] {
            let mut buf = f.buffers().take();
            f.marshal().encode_args_id(shout, &args![msg.to_string()], &mut buf).unwrap();
            let reply = f.call_id(r, shout, buf.freeze(), true).unwrap().unwrap();
            let ret = f.marshal().decode_ret_id(shout, &mut reply.clone()).unwrap();
            assert_eq!(*ret.downcast::<String>().unwrap(), format!("n:{msg}"));
            f.buffers().recycle(reply);
        }
        // The recycled reply frames are back in the shared pool.
        assert!(f.buffers().pooled() > 0);
    }

    #[test]
    fn objects_live_in_separate_spaces() {
        let f = fabric();
        let a = f.marshal().encode_args("Echo", "new", &args!["a".to_string()]).unwrap();
        let b = f.marshal().encode_args("Echo", "new", &args!["b".to_string()]).unwrap();
        let ra = f.construct_on(0, "Echo", a).unwrap();
        let rb = f.construct_on(1, "Echo", b).unwrap();
        assert_eq!(f.node(0).unwrap().weaver().space().len(), 1);
        assert_eq!(f.node(1).unwrap().weaver().space().len(), 1);
        assert_eq!(f.node(2).unwrap().weaver().space().len(), 0);
        // Calling node 1's object id on node 0 fails: spaces are disjoint.
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let misdirected = RemoteRef { node: 0, obj: rb.obj, class: rb.class };
        // ids happen to collide across spaces (both start at 1), so this is
        // only an error when they don't; assert the *correct* routing works.
        let _ = misdirected;
        let ok = f.call(ra, "shout", call_args, true).unwrap();
        assert!(ok.is_some());
    }

    #[test]
    fn bad_node_index_is_an_error() {
        let f = fabric();
        let args = f.marshal().encode_args("Echo", "new", &args!["x".to_string()]).unwrap();
        assert!(f.construct_on(99, "Echo", args).is_err());
        assert!(f.node(99).is_err());
    }

    #[test]
    fn oneway_send_returns_immediately() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(0, "Echo", ctor).unwrap();
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let reply = f.call(r, "shout", call_args, false).unwrap();
        assert!(reply.is_none());
    }

    #[test]
    fn call_batch_ships_one_pack() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(2, "Echo", ctor).unwrap();
        let shout = f.marshal().method_id("Echo", "shout").unwrap();
        let calls = (0..5).map(|i| (r.obj, shout, args![format!("m{i}")]));
        assert_eq!(f.call_batch(2, calls).unwrap(), 5);
        assert_eq!(f.call_batch(2, std::iter::empty()).unwrap(), 0);
        // Synchronise; the replied call queues behind the pack.
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        assert!(f.call(r, "shout", call_args, true).unwrap().is_some());
    }

    #[test]
    fn remote_errors_propagate_on_replied_calls() {
        let f = fabric();
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let ghost = RemoteRef {
            node: 0,
            obj: ObjId::from_raw(404),
            class: f.marshal().intern_class("Echo"),
        };
        assert!(f.call(ghost, "shout", call_args, true).is_err());
    }

    #[test]
    fn kill_fails_pending_replied_calls_promptly() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Staller", "new", &args![]).unwrap();
        let stall_ref = f.construct_on(0, "Staller", ctor).unwrap();
        let echo_ctor = f.marshal().encode_args("Echo", "new", &args!["e".to_string()]).unwrap();
        let echo_ref = f.construct_on(0, "Echo", echo_ctor).unwrap();

        FABRIC_GATE.store(false, Ordering::SeqCst);
        // Occupy node 0's serve loop with a blocking oneway call.
        let stall_args = f.marshal().encode_args("Staller", "stall", &args![]).unwrap();
        f.call(stall_ref, "stall", stall_args, false).unwrap();

        // Queue replied calls behind it from worker threads; they block on
        // their reply slots.
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let f = f.clone();
                std::thread::spawn(move || {
                    let args =
                        f.marshal().encode_args("Echo", "shout", &args!["hi".to_string()]).unwrap();
                    f.call(echo_ref, "shout", args, true)
                })
            })
            .collect();
        // Give the waiters time to enqueue, then crash the node and release
        // the blocker.
        std::thread::sleep(std::time::Duration::from_millis(20));
        f.kill_node(0).unwrap();
        FABRIC_GATE.store(true, Ordering::SeqCst);

        // Every pending caller is failed promptly with a Remote error —
        // nobody hangs until fabric teardown.
        for waiter in waiters {
            let err = waiter.join().unwrap().unwrap_err();
            assert!(matches!(err, WeaveError::Remote(_)));
        }
        // And new submissions are rejected up front.
        let args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        assert!(matches!(f.call(echo_ref, "shout", args, true), Err(WeaveError::Remote(_))));
    }

    #[test]
    fn nameserver_is_shared() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(1, "Echo", ctor).unwrap();
        let name = f.nameserver().next_name("PS");
        f.nameserver().rebind(&name, r);
        assert_eq!(f.nameserver().lookup(&name).unwrap(), r);
    }
}
