//! The in-process cluster fabric: N node runtimes plus client-side plumbing.
//!
//! `InProcFabric` is the "cluster" the distribution aspects talk to. Its
//! nodes are real threads with private object spaces; calls are marshalled
//! to bytes and cross channels — functionally a distributed system, minus
//! the 2005 Ethernet (whose costs live in `weavepar-cluster`).

use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::bounded;

use weavepar_weave::{ObjId, WeaveError, WeaveResult, Weaveable};

use crate::nameserver::NameServer;
use crate::node::{NodeRuntime, Request};
use crate::wire::MarshalRegistry;

/// A reference to an object living on a fabric node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteRef {
    /// Hosting node.
    pub node: usize,
    /// Object id within that node's space.
    pub obj: ObjId,
}

/// N in-process nodes, a shared marshalling registry and a name server.
pub struct InProcFabric {
    nodes: Vec<NodeRuntime>,
    marshal: MarshalRegistry,
    nameserver: NameServer,
}

impl InProcFabric {
    /// Spawn a fabric of `nodes` nodes sharing `marshal`.
    pub fn new(nodes: usize, marshal: MarshalRegistry) -> Arc<Self> {
        let nodes = (0..nodes.max(1)).map(|i| NodeRuntime::spawn(i, marshal.clone())).collect();
        Arc::new(InProcFabric { nodes, marshal, nameserver: NameServer::new() })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared marshalling registry.
    pub fn marshal(&self) -> &MarshalRegistry {
        &self.marshal
    }

    /// The fabric's name server (used by the RMI-style aspect).
    pub fn nameserver(&self) -> &NameServer {
        &self.nameserver
    }

    /// A node's runtime (tests, server-side inspection).
    pub fn node(&self, i: usize) -> WeaveResult<&NodeRuntime> {
        self.nodes.get(i).ok_or_else(|| WeaveError::remote(format!("no node {i}")))
    }

    /// Failure injection: crash a node (see [`NodeRuntime::kill`]).
    pub fn kill_node(&self, i: usize) -> WeaveResult<()> {
        self.node(i)?.kill();
        Ok(())
    }

    /// Register a weaveable class on every node.
    pub fn register_class<T: Weaveable>(&self) {
        for node in &self.nodes {
            node.register_class::<T>();
        }
    }

    /// Create an instance of `class` on `node` from marshalled arguments.
    pub fn construct_on(&self, node: usize, class: &str, args: Bytes) -> WeaveResult<RemoteRef> {
        let target = self.node(node)?;
        let (tx, rx) = bounded(1);
        target.submit(Request::Construct { class: class.to_string(), args, reply: tx })?;
        let obj = rx.recv().map_err(|_| {
            WeaveError::remote(format!("node {node} dropped the construct reply"))
        })??;
        Ok(RemoteRef { node, obj })
    }

    /// Snapshot a remote object's state (removing it when `remove`).
    pub fn snapshot(&self, reference: RemoteRef, remove: bool) -> WeaveResult<Bytes> {
        let target = self.node(reference.node)?;
        let (tx, rx) = bounded(1);
        target.submit(Request::Snapshot { obj: reference.obj, remove, reply: tx })?;
        rx.recv().map_err(|_| WeaveError::remote("node dropped the snapshot reply"))?
    }

    /// Rebuild an instance of `class` on `node` from snapshotted state.
    pub fn restore(&self, node: usize, class: &str, state: Bytes) -> WeaveResult<RemoteRef> {
        let target = self.node(node)?;
        let (tx, rx) = bounded(1);
        target.submit(Request::Restore { class: class.to_string(), state, reply: tx })?;
        let obj = rx.recv().map_err(|_| WeaveError::remote("node dropped the restore reply"))??;
        Ok(RemoteRef { node, obj })
    }

    /// Move a remote object to another node, preserving its state — the
    /// runtime behind the paper's `Point.migrate` (Figure 2).
    pub fn migrate(&self, reference: RemoteRef, class: &str, to: usize) -> WeaveResult<RemoteRef> {
        if reference.node == to {
            return Ok(reference);
        }
        let state = self.snapshot(reference, true)?;
        self.restore(to, class, state)
    }

    /// Invoke `method` on a remote object. With `want_reply`, blocks for the
    /// marshalled return value (RMI semantics); without, returns immediately
    /// (MPP oneway send).
    pub fn call(
        &self,
        reference: RemoteRef,
        method: &str,
        args: Bytes,
        want_reply: bool,
    ) -> WeaveResult<Option<Bytes>> {
        let target = self.node(reference.node)?;
        if want_reply {
            let (tx, rx) = bounded(1);
            target.submit(Request::Call {
                obj: reference.obj,
                method: method.to_string(),
                args,
                reply: Some(tx),
            })?;
            let bytes = rx.recv().map_err(|_| {
                WeaveError::remote(format!("node {} dropped the call reply", reference.node))
            })??;
            Ok(Some(bytes))
        } else {
            target.submit(Request::Call {
                obj: reference.obj,
                method: method.to_string(),
                args,
                reply: None,
            })?;
            Ok(None)
        }
    }
}

impl std::fmt::Debug for InProcFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcFabric").field("nodes", &self.nodes.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavepar_weave::args;

    struct Echo {
        tag: String,
    }

    weavepar_weave::weaveable! {
        class Echo as EchoProxy {
            fn new(tag: String) -> Self { Echo { tag } }
            fn shout(&mut self, msg: String) -> String {
                format!("{}:{}", self.tag, msg)
            }
        }
    }

    fn fabric() -> Arc<InProcFabric> {
        let m = MarshalRegistry::new();
        m.register::<(String,), ()>("Echo", "new");
        m.register::<(String,), String>("Echo", "shout");
        let f = InProcFabric::new(3, m);
        f.register_class::<Echo>();
        f
    }

    #[test]
    fn construct_and_call_across_nodes() {
        let f = fabric();
        for node in 0..3 {
            let args = f.marshal().encode_args("Echo", "new", &args![format!("n{node}")]).unwrap();
            let r = f.construct_on(node, "Echo", args).unwrap();
            assert_eq!(r.node, node);
            let call_args =
                f.marshal().encode_args("Echo", "shout", &args!["hi".to_string()]).unwrap();
            let reply = f.call(r, "shout", call_args, true).unwrap().unwrap();
            let ret = f.marshal().decode_ret("Echo", "shout", &reply).unwrap();
            assert_eq!(*ret.downcast::<String>().unwrap(), format!("n{node}:hi"));
        }
    }

    #[test]
    fn objects_live_in_separate_spaces() {
        let f = fabric();
        let a = f.marshal().encode_args("Echo", "new", &args!["a".to_string()]).unwrap();
        let b = f.marshal().encode_args("Echo", "new", &args!["b".to_string()]).unwrap();
        let ra = f.construct_on(0, "Echo", a).unwrap();
        let rb = f.construct_on(1, "Echo", b).unwrap();
        assert_eq!(f.node(0).unwrap().weaver().space().len(), 1);
        assert_eq!(f.node(1).unwrap().weaver().space().len(), 1);
        assert_eq!(f.node(2).unwrap().weaver().space().len(), 0);
        // Calling node 1's object id on node 0 fails: spaces are disjoint.
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let misdirected = RemoteRef { node: 0, obj: rb.obj };
        // ids happen to collide across spaces (both start at 1), so this is
        // only an error when they don't; assert the *correct* routing works.
        let _ = misdirected;
        let ok = f.call(ra, "shout", call_args, true).unwrap();
        assert!(ok.is_some());
    }

    #[test]
    fn bad_node_index_is_an_error() {
        let f = fabric();
        let args = f.marshal().encode_args("Echo", "new", &args!["x".to_string()]).unwrap();
        assert!(f.construct_on(99, "Echo", args).is_err());
        assert!(f.node(99).is_err());
    }

    #[test]
    fn oneway_send_returns_immediately() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(0, "Echo", ctor).unwrap();
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let reply = f.call(r, "shout", call_args, false).unwrap();
        assert!(reply.is_none());
    }

    #[test]
    fn remote_errors_propagate_on_replied_calls() {
        let f = fabric();
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let ghost = RemoteRef { node: 0, obj: ObjId::from_raw(404) };
        assert!(f.call(ghost, "shout", call_args, true).is_err());
    }

    #[test]
    fn nameserver_is_shared() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(1, "Echo", ctor).unwrap();
        let name = f.nameserver().next_name("PS");
        f.nameserver().rebind(&name, r);
        assert_eq!(f.nameserver().lookup(&name).unwrap(), r);
    }
}
