//! The in-process cluster fabric: N node runtimes plus client-side plumbing.
//!
//! `InProcFabric` is the "cluster" the distribution aspects talk to. Its
//! nodes are real threads with private object spaces; calls are marshalled
//! to bytes and cross channels — functionally a distributed system, minus
//! the 2005 Ethernet (whose costs live in `weavepar-cluster`).
//!
//! The per-call fast path is allocation-free in the steady state:
//! [`InProcFabric::call_id`] takes an interned [`MethodId`] (an array index
//! into the registry, not a string lookup), draws its reply rendezvous from
//! a slab of reusable park/unpark slots instead of a fresh `bounded(1)`
//! channel, and encode/decode frames cycle through a shared [`BufPool`].
//! [`InProcFabric::call_batch`] packs many oneway calls to one node into a
//! single [`Request::CallPack`] frame — one submit, one wakeup.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::bounded;
use parking_lot::{Mutex, RwLock};

use weavepar_weave::{Args, MetricsRegistry, ObjId, WeaveError, WeaveResult, Weaveable};

use crate::faults::{FaultAction, FaultPlan, RequestClass};
use crate::nameserver::NameServer;
use crate::node::{NodeRuntime, ReplySink, Request};
use crate::policy::CallPolicy;
use crate::pool::{BufPool, ReplyPool};
use crate::wire::{ClassId, MarshalRegistry, MethodId, PackFrame};

/// A reference to an object living on a fabric node. Carries the interned
/// class id so method resolution on the stub side never re-hashes the class
/// name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteRef {
    /// Hosting node.
    pub node: usize,
    /// Object id within that node's space.
    pub obj: ObjId,
    /// Interned class of the remote instance.
    pub class: ClassId,
}

/// Which rendezvous a replied [`InProcFabric::call_id`] parks on. The
/// encoding is a `u32` so the choice can be bound to a tuning cell and
/// flipped at runtime by a feedback controller (or by hand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ReplyBackend {
    /// Pooled park/unpark [`crate::pool::ReplySlot`] (the default).
    Slot = 0,
    /// A fresh `bounded(1)` channel per call.
    Channel = 1,
}

impl ReplyBackend {
    /// Decode a tuning-cell value; anything non-zero selects the channel.
    pub fn from_u32(v: u32) -> Self {
        if v == 0 {
            ReplyBackend::Slot
        } else {
            ReplyBackend::Channel
        }
    }
}

/// Always-on fabric event cells. Plain relaxed `fetch_add`s on `Arc`ed
/// atomics, so a metrics registry can *bind* them by name without the call
/// paths ever consulting the registry — with no registry installed the cost
/// is one uncontended atomic per event, same budget as the fault-plan flag.
#[derive(Default)]
struct FabricStats {
    /// Replied calls issued (RMI semantics).
    calls: Arc<AtomicU64>,
    /// Oneway calls issued individually (MPP semantics, unpacked).
    oneway: Arc<AtomicU64>,
    /// Pack frames shipped (`call_batch` / `submit_pack`).
    packs: Arc<AtomicU64>,
    /// Oneway calls carried inside those pack frames.
    packed_calls: Arc<AtomicU64>,
    /// Retry attempts taken by policy-governed calls.
    retries: Arc<AtomicU64>,
    /// Reply waits that expired against a policy deadline.
    timeouts: Arc<AtomicU64>,
    /// Replied calls currently parked on a reply rendezvous (live gauge).
    in_flight: Arc<AtomicU64>,
}

/// Decrements the in-flight gauge on drop, so every exit path of a replied
/// call — reply, route error, timeout, panic — restores the count.
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// N in-process nodes, a shared marshalling registry and a name server.
pub struct InProcFabric {
    nodes: Vec<NodeRuntime>,
    marshal: MarshalRegistry,
    nameserver: NameServer,
    buffers: Arc<BufPool>,
    replies: ReplyPool,
    /// Installed fault schedule (chaos testing); `None` in production.
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Fast-path flag mirroring `faults.is_some()`: the per-call check is a
    /// single relaxed load, so an un-faulted fabric pays nothing.
    faulty: AtomicBool,
    /// Dedup-key generator for at-most-once call delivery.
    seq: AtomicU64,
    /// Reply rendezvous selector for replied calls (see [`ReplyBackend`]).
    /// An `Arc` so a tuner can hold the cell and adjust it while calls are
    /// in flight; each call reads it once with a relaxed load.
    reply_backend: Arc<AtomicU32>,
    /// Reply senders of channel-backed calls whose request was injected as
    /// lost. Holding them keeps the caller parked until its own deadline —
    /// a dropped datagram is *silent* on both reply backends — instead of a
    /// prompt disconnect. Drained with the plan.
    lost_replies: Mutex<Vec<crossbeam::channel::Sender<WeaveResult<Bytes>>>>,
    /// Always-on event cells a metrics registry can bind by name (see
    /// [`InProcFabric::install_metrics`]).
    stats: FabricStats,
}

impl InProcFabric {
    /// Spawn a fabric of `nodes` nodes sharing `marshal` (and one frame
    /// pool spanning clients and servers).
    pub fn new(nodes: usize, marshal: MarshalRegistry) -> Arc<Self> {
        let buffers = Arc::new(BufPool::new());
        let nodes = (0..nodes.max(1))
            .map(|i| NodeRuntime::spawn_with_pool(i, marshal.clone(), buffers.clone()))
            .collect();
        Arc::new(InProcFabric {
            nodes,
            marshal,
            nameserver: NameServer::new(),
            buffers,
            replies: ReplyPool::new(),
            faults: RwLock::new(None),
            faulty: AtomicBool::new(false),
            seq: AtomicU64::new(1),
            reply_backend: Arc::new(AtomicU32::new(ReplyBackend::Slot as u32)),
            lost_replies: Mutex::new(Vec::new()),
            stats: FabricStats::default(),
        })
    }

    /// Bind the fabric's live event cells into `registry` under `prefix`:
    /// `{prefix}.calls` / `.oneway` / `.packs` / `.packed_calls` /
    /// `.retries` / `.timeouts` counters, an `{prefix}.in_flight` gauge for
    /// replied calls parked on their rendezvous, and an
    /// `{prefix}.reply_slots_pooled` gauge for reply-slot pool occupancy.
    /// The registry reads the same cells the call paths were already
    /// bumping, so installing metrics adds nothing to the per-call cost.
    pub fn install_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.bind_counter(&format!("{prefix}.calls"), self.stats.calls.clone());
        registry.bind_counter(&format!("{prefix}.oneway"), self.stats.oneway.clone());
        registry.bind_counter(&format!("{prefix}.packs"), self.stats.packs.clone());
        registry.bind_counter(&format!("{prefix}.packed_calls"), self.stats.packed_calls.clone());
        registry.bind_counter(&format!("{prefix}.retries"), self.stats.retries.clone());
        registry.bind_counter(&format!("{prefix}.timeouts"), self.stats.timeouts.clone());
        registry.bind_gauge(&format!("{prefix}.in_flight"), self.stats.in_flight.clone());
        registry
            .bind_gauge_usize(&format!("{prefix}.reply_slots_pooled"), self.replies.pooled_cell());
    }

    /// Register one replied call as in flight; the guard's drop ends it.
    fn flight(&self) -> InFlightGuard<'_> {
        self.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard(&self.stats.in_flight)
    }

    /// The reply rendezvous currently used by replied [`InProcFabric::call_id`]s.
    pub fn reply_backend(&self) -> ReplyBackend {
        ReplyBackend::from_u32(self.reply_backend.load(Ordering::Relaxed))
    }

    /// Select the reply rendezvous for subsequent replied calls.
    pub fn set_reply_backend(&self, backend: ReplyBackend) {
        self.reply_backend.store(backend as u32, Ordering::Relaxed);
    }

    /// The raw backend cell, for binding to a tuning controller.
    pub fn reply_backend_cell(&self) -> Arc<AtomicU32> {
        self.reply_backend.clone()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared marshalling registry.
    pub fn marshal(&self) -> &MarshalRegistry {
        &self.marshal
    }

    /// The fabric's name server (used by the RMI-style aspect).
    pub fn nameserver(&self) -> &NameServer {
        &self.nameserver
    }

    /// The shared frame pool — encode argument packs into
    /// [`BufPool::take`]n frames and the fabric recycles them on the far
    /// side.
    pub fn buffers(&self) -> &BufPool {
        &self.buffers
    }

    /// A node's runtime (tests, server-side inspection).
    pub fn node(&self, i: usize) -> WeaveResult<&NodeRuntime> {
        self.nodes.get(i).ok_or_else(|| WeaveError::remote(format!("no node {i}")))
    }

    /// Failure injection: crash a node. Later submissions fail immediately
    /// and requests already queued are failed promptly by the node's serve
    /// loop (see [`NodeRuntime::kill`]) — callers blocked on replies get a
    /// typed [`WeaveError::NodeDown`] instead of hanging until fabric
    /// teardown. The name server is swept in the same stroke: every name
    /// bound to an object on the dead node is tombstoned, so lookups fail
    /// fast with `NodeDown` too.
    pub fn kill_node(&self, i: usize) -> WeaveResult<()> {
        self.node(i)?.kill();
        self.nameserver.unbind_node(i);
        Ok(())
    }

    /// Install a seeded fault schedule; every subsequent outbound request
    /// consults it. Installing a plan also switches replied calls to carry
    /// dedup keys, so duplicated deliveries stay at-most-once.
    pub fn install_faults(&self, plan: Arc<FaultPlan>) {
        *self.faults.write() = Some(plan);
        self.faulty.store(true, Ordering::SeqCst);
    }

    /// Remove the fault schedule (back to a faithful network). Reply
    /// senders parked by injected drops are released here; their callers
    /// have long since timed out against their own deadlines.
    pub fn clear_faults(&self) {
        self.faulty.store(false, Ordering::SeqCst);
        *self.faults.write() = None;
        self.lost_replies.lock().clear();
    }

    /// The installed fault plan, if any (chaos harnesses read its stats).
    pub fn faults(&self) -> Option<Arc<FaultPlan>> {
        self.faults.read().clone()
    }

    /// Next at-most-once dedup key.
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Route one request to `node`, applying the installed fault schedule.
    /// With no plan installed this is exactly `submit`.
    fn route(&self, node: usize, class: RequestClass, request: Request) -> WeaveResult<()> {
        let target = self.node(node)?;
        if self.faulty.load(Ordering::Relaxed) {
            if let Some(plan) = self.faults.read().clone() {
                if let Some(action) = plan.decide(class, node) {
                    return self.inject(node, action, request);
                }
            }
        }
        target.submit(request)
    }

    /// Apply one injected fault to a request.
    fn inject(&self, node: usize, action: FaultAction, request: Request) -> WeaveResult<()> {
        let target = self.node(node)?;
        match action {
            FaultAction::Drop => {
                self.discard(request);
                Ok(())
            }
            FaultAction::Delay(by) => {
                if target.is_down() {
                    return Err(WeaveError::NodeDown { node });
                }
                // Deliver late from a helper thread holding a clone of the
                // live queue sender. If the node dies in the interim the
                // serve loop's down-check fails the request — same as a
                // packet arriving at a dead host.
                let sender = target.sender();
                std::thread::spawn(move || {
                    std::thread::sleep(by);
                    let _ = sender.send(request);
                });
                Ok(())
            }
            FaultAction::Duplicate => {
                // Only oneway calls are duplicated (a replied call owns its
                // single reply slot). The duplicate carries the same dedup
                // key, so a seq-carrying call still executes at most once.
                if let Request::Call { obj, method, ref args, reply: None, seq } = request {
                    let dup = Request::Call { obj, method, args: args.clone(), reply: None, seq };
                    target.submit(dup)?;
                }
                target.submit(request)
            }
            FaultAction::CrashNode => {
                self.kill_node(node)?;
                // The request itself dies with the node.
                target.submit(request)
            }
        }
    }

    /// Lose a request: recycle its frames and silence its reply path. A
    /// pooled reply slot is *discarded*, and a plain channel sender is
    /// parked in `lost_replies` — either way the caller times out against
    /// its own deadline, like a lost datagram, rather than seeing a prompt
    /// disconnect the real network would never deliver.
    fn discard(&self, request: Request) {
        match request {
            Request::Construct { args, .. } => self.buffers.recycle(args),
            Request::Call { args, reply, .. } => {
                self.buffers.recycle(args);
                match reply {
                    Some(ReplySink::Slot(slot)) => slot.discard(),
                    Some(ReplySink::Channel(tx)) => self.lost_replies.lock().push(tx),
                    None => {}
                }
            }
            Request::CallPack { frame } => self.buffers.recycle(frame),
            Request::Snapshot { .. } | Request::Restore { .. } => {}
        }
    }

    /// Register a weaveable class on every node.
    pub fn register_class<T: Weaveable>(&self) {
        for node in &self.nodes {
            node.register_class::<T>();
        }
    }

    /// Create an instance of `class` on `node` from marshalled arguments.
    /// Interns the class's `"new"` method once; hot callers should hold the
    /// [`MethodId`] and use [`InProcFabric::construct_on_id`].
    pub fn construct_on(&self, node: usize, class: &str, args: Bytes) -> WeaveResult<RemoteRef> {
        self.construct_on_id(node, self.marshal.method_id(class, "new")?, args)
    }

    /// Create an instance on `node`; `ctor` is the interned id of the
    /// class's `"new"` method.
    pub fn construct_on_id(
        &self,
        node: usize,
        ctor: MethodId,
        args: Bytes,
    ) -> WeaveResult<RemoteRef> {
        let class = self.marshal.method_entry(ctor)?.class;
        let (tx, rx) = bounded(1);
        self.route(node, RequestClass::Construct, Request::Construct { ctor, args, reply: tx })?;
        let obj = rx.recv().map_err(|_| {
            WeaveError::remote(format!("node {node} dropped the construct reply"))
        })??;
        Ok(RemoteRef { node, obj, class })
    }

    /// Snapshot a remote object's state (removing it when `remove`).
    pub fn snapshot(&self, reference: RemoteRef, remove: bool) -> WeaveResult<Bytes> {
        let (tx, rx) = bounded(1);
        self.route(
            reference.node,
            RequestClass::Snapshot,
            Request::Snapshot { obj: reference.obj, remove, reply: tx },
        )?;
        rx.recv().map_err(|_| WeaveError::remote("node dropped the snapshot reply"))?
    }

    /// Rebuild an instance of `class` on `node` from snapshotted state.
    pub fn restore(&self, node: usize, class: &str, state: Bytes) -> WeaveResult<RemoteRef> {
        let class_id = self.marshal.intern_class(class);
        let (tx, rx) = bounded(1);
        self.route(
            node,
            RequestClass::Restore,
            Request::Restore { class: class_id, state, reply: tx },
        )?;
        let obj = rx.recv().map_err(|_| WeaveError::remote("node dropped the restore reply"))??;
        Ok(RemoteRef { node, obj, class: class_id })
    }

    /// Move a remote object to another node, preserving its state — the
    /// runtime behind the paper's `Point.migrate` (Figure 2).
    ///
    /// Migrating *to* a dead node fails up front with
    /// [`WeaveError::NodeDown`] before any state leaves the source, so the
    /// object stays intact where it was. If the target dies between that
    /// check and the restore, the snapshotted state is restored back onto
    /// the source (under a fresh object id) rather than lost.
    pub fn migrate(&self, reference: RemoteRef, class: &str, to: usize) -> WeaveResult<RemoteRef> {
        if reference.node == to {
            return Ok(reference);
        }
        let target = self.node(to)?;
        if target.is_down() {
            return Err(WeaveError::NodeDown { node: to });
        }
        let state = self.snapshot(reference, true)?;
        match self.restore(to, class, state.clone()) {
            Ok(restored) => Ok(restored),
            Err(err) => {
                let _ = self.restore(reference.node, class, state);
                Err(err)
            }
        }
    }

    /// Invoke `method` on a remote object by name (resolves the interned id
    /// first — convenience path; stubs on the hot path should cache the
    /// [`MethodId`] and use [`InProcFabric::call_id`]).
    pub fn call(
        &self,
        reference: RemoteRef,
        method: &str,
        args: Bytes,
        want_reply: bool,
    ) -> WeaveResult<Option<Bytes>> {
        let class = self.marshal.class_name(reference.class)?;
        let id = self.marshal.method_id(&class, method)?;
        self.call_id(reference, id, args, want_reply)
    }

    /// Invoke an interned method on a remote object. With `want_reply`,
    /// blocks on a pooled reply slot for the marshalled return value (RMI
    /// semantics); without, returns immediately (MPP oneway send).
    pub fn call_id(
        &self,
        reference: RemoteRef,
        method: MethodId,
        args: Bytes,
        want_reply: bool,
    ) -> WeaveResult<Option<Bytes>> {
        // Dedup keys are only minted while a fault plan is installed: the
        // production fast path pays no atomic increment and the serving
        // node's dedup window stays untouched.
        let seq = self.faulty.load(Ordering::Relaxed).then(|| self.next_seq());
        if want_reply {
            self.stats.calls.fetch_add(1, Ordering::Relaxed);
            let _flight = self.flight();
            if self.reply_backend() == ReplyBackend::Channel {
                let (tx, rx) = bounded(1);
                self.route(
                    reference.node,
                    RequestClass::Call,
                    Request::Call {
                        obj: reference.obj,
                        method,
                        args,
                        reply: Some(ReplySink::Channel(tx)),
                        seq,
                    },
                )?;
                let bytes = rx.recv().map_err(|_| {
                    WeaveError::remote(format!("node {} dropped the call reply", reference.node))
                })??;
                return Ok(Some(bytes));
            }
            let (ticket, reply) = self.replies.checkout();
            self.route(
                reference.node,
                RequestClass::Call,
                Request::Call {
                    obj: reference.obj,
                    method,
                    args,
                    reply: Some(ReplySink::Slot(reply)),
                    seq,
                },
            )?;
            let result = ticket.wait();
            self.replies.finish(ticket);
            Ok(Some(result?))
        } else {
            self.stats.oneway.fetch_add(1, Ordering::Relaxed);
            self.route(
                reference.node,
                RequestClass::Oneway,
                Request::Call { obj: reference.obj, method, args, reply: None, seq },
            )?;
            Ok(None)
        }
    }

    /// Invoke an interned method under a [`CallPolicy`]: the synchronous
    /// reply wait gets a real deadline on the pooled reply slot, and
    /// *retryable* failures (timeouts, declared transients — never
    /// [`WeaveError::NodeDown`]) are retried with exponential backoff and
    /// seeded jitter. All attempts share one dedup key, so a retry whose
    /// original delivery actually executed is answered from the node's
    /// at-most-once window instead of executing twice.
    pub fn call_id_with_policy(
        &self,
        reference: RemoteRef,
        method: MethodId,
        args: Bytes,
        want_reply: bool,
        policy: &CallPolicy,
    ) -> WeaveResult<Option<Bytes>> {
        let seq = self.next_seq();
        if !want_reply {
            self.stats.oneway.fetch_add(1, Ordering::Relaxed);
            self.route(
                reference.node,
                RequestClass::Oneway,
                Request::Call { obj: reference.obj, method, args, reply: None, seq: Some(seq) },
            )?;
            return Ok(None);
        }
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let _flight = self.flight();
        // Jitter stream: policy seed mixed with the call's dedup key, so
        // concurrent calls de-synchronise but a given (seed, call) replays.
        let mut rng = policy.seed ^ seq.wrapping_mul(0x9e3779b97f4a7c15);
        let mut attempt = 0u32;
        loop {
            match self.try_call_once(reference, method, args.clone(), seq, policy) {
                Ok(bytes) => return Ok(Some(bytes)),
                Err(err) => {
                    if !policy.should_retry(&err, attempt) {
                        return Err(err);
                    }
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    let pause = policy.backoff.delay(attempt, &mut rng);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }

    /// One attempt of a replied call under a policy: checkout a reply slot,
    /// route the request, park with the policy's deadline.
    fn try_call_once(
        &self,
        reference: RemoteRef,
        method: MethodId,
        args: Bytes,
        seq: u64,
        policy: &CallPolicy,
    ) -> WeaveResult<Bytes> {
        let (ticket, reply) = self.replies.checkout();
        let routed = self.route(
            reference.node,
            RequestClass::Call,
            Request::Call {
                obj: reference.obj,
                method,
                args,
                reply: Some(ReplySink::Slot(reply)),
                seq: Some(seq),
            },
        );
        if let Err(err) = routed {
            // The reply sink died with the request; its drop-guard filled
            // the slot, so finishing the ticket garbage-collects it.
            self.replies.finish(ticket);
            return Err(err);
        }
        let result = match policy.deadline {
            Some(after) => {
                ticket.wait_deadline(Some(Instant::now() + after), after.as_millis() as u64)
            }
            None => ticket.wait(),
        };
        if matches!(result, Err(WeaveError::Timeout { .. })) {
            self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            // A late reply may still land in the slot: drop the ticket
            // (abandoning the slot to garbage collection) instead of
            // finishing it back into the pool where the stale reply would
            // poison the next caller.
            drop(ticket);
        } else {
            self.replies.finish(ticket);
        }
        result
    }

    /// Ablation backend for the `remote_throughput` bench: identical to
    /// [`InProcFabric::call_id`] but with a fresh `bounded(1)` channel per
    /// replied call — the pre-pooling rendezvous. Not for production use.
    #[doc(hidden)]
    pub fn call_id_channel(
        &self,
        reference: RemoteRef,
        method: MethodId,
        args: Bytes,
        want_reply: bool,
    ) -> WeaveResult<Option<Bytes>> {
        let target = self.node(reference.node)?;
        if want_reply {
            let (tx, rx) = bounded(1);
            target.submit(Request::Call {
                obj: reference.obj,
                method,
                args,
                reply: Some(ReplySink::Channel(tx)),
                seq: None,
            })?;
            let bytes = rx.recv().map_err(|_| {
                WeaveError::remote(format!("node {} dropped the call reply", reference.node))
            })??;
            Ok(Some(bytes))
        } else {
            target.submit(Request::Call {
                obj: reference.obj,
                method,
                args,
                reply: None,
                seq: None,
            })?;
            Ok(None)
        }
    }

    /// The channel-rendezvous ablation path under a [`CallPolicy`]: same
    /// deadline/retry/at-most-once semantics as
    /// [`InProcFabric::call_id_with_policy`], parked on a fresh `bounded(1)`
    /// channel (`recv_timeout`) instead of a pooled slot. Chaos tests run
    /// both backends against the same fault schedule.
    #[doc(hidden)]
    pub fn call_id_channel_with_policy(
        &self,
        reference: RemoteRef,
        method: MethodId,
        args: Bytes,
        want_reply: bool,
        policy: &CallPolicy,
    ) -> WeaveResult<Option<Bytes>> {
        let seq = self.next_seq();
        if !want_reply {
            self.stats.oneway.fetch_add(1, Ordering::Relaxed);
            self.route(
                reference.node,
                RequestClass::Oneway,
                Request::Call { obj: reference.obj, method, args, reply: None, seq: Some(seq) },
            )?;
            return Ok(None);
        }
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let _flight = self.flight();
        let mut rng = policy.seed ^ seq.wrapping_mul(0x9e3779b97f4a7c15);
        let mut attempt = 0u32;
        loop {
            let (tx, rx) = bounded(1);
            let routed = self.route(
                reference.node,
                RequestClass::Call,
                Request::Call {
                    obj: reference.obj,
                    method,
                    args: args.clone(),
                    reply: Some(ReplySink::Channel(tx)),
                    seq: Some(seq),
                },
            );
            let result: WeaveResult<Bytes> = match routed {
                Err(err) => Err(err),
                Ok(()) => match policy.deadline {
                    Some(after) => match rx.recv_timeout(after) {
                        Ok(reply) => reply,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                            Err(WeaveError::Timeout { waited_ms: after.as_millis() as u64 })
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            Err(WeaveError::remote(format!(
                                "node {} dropped the call reply",
                                reference.node
                            )))
                        }
                    },
                    None => rx.recv().map_err(|_| {
                        WeaveError::remote(format!(
                            "node {} dropped the call reply",
                            reference.node
                        ))
                    })?,
                },
            };
            match result {
                Ok(bytes) => return Ok(Some(bytes)),
                Err(err) => {
                    if !policy.should_retry(&err, attempt) {
                        return Err(err);
                    }
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    let pause = policy.backoff.delay(attempt, &mut rng);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }

    /// Pack many oneway calls to one node into a single framed
    /// [`Request::CallPack`]: one submit, one queue wakeup, zero
    /// intermediate allocation on the serving side. Returns the number of
    /// calls shipped; an empty iterator ships nothing.
    pub fn call_batch<I>(&self, node: usize, calls: I) -> WeaveResult<usize>
    where
        I: IntoIterator<Item = (ObjId, MethodId, Args)>,
    {
        let mut frame = PackFrame::new(self.buffers.take());
        for (obj, method, args) in calls {
            frame.push(obj, method, &self.marshal, &args)?;
        }
        if frame.is_empty() {
            return Ok(0);
        }
        let count = frame.count() as usize;
        self.route(node, RequestClass::Pack, Request::CallPack { frame: frame.finish() })?;
        self.stats.packs.fetch_add(1, Ordering::Relaxed);
        self.stats.packed_calls.fetch_add(count as u64, Ordering::Relaxed);
        Ok(count)
    }

    /// Submit an already-framed pack to `node` (the packing aspect builds
    /// frames incrementally and ships them here).
    pub fn submit_pack(&self, node: usize, frame: PackFrame) -> WeaveResult<usize> {
        if frame.is_empty() {
            return Ok(0);
        }
        let count = frame.count() as usize;
        self.route(node, RequestClass::Pack, Request::CallPack { frame: frame.finish() })?;
        self.stats.packs.fetch_add(1, Ordering::Relaxed);
        self.stats.packed_calls.fetch_add(count as u64, Ordering::Relaxed);
        Ok(count)
    }

    /// Start an empty pack frame backed by the fabric's frame pool.
    pub fn new_pack(&self) -> PackFrame {
        PackFrame::new(self.buffers.take())
    }
}

impl std::fmt::Debug for InProcFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcFabric").field("nodes", &self.nodes.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use weavepar_weave::args;

    struct Echo {
        tag: String,
    }

    weavepar_weave::weaveable! {
        class Echo as EchoProxy {
            fn new(tag: String) -> Self { Echo { tag } }
            fn shout(&mut self, msg: String) -> String {
                format!("{}:{}", self.tag, msg)
            }
        }
    }

    static FABRIC_GATE: AtomicBool = AtomicBool::new(false);

    struct Staller;

    weavepar_weave::weaveable! {
        class Staller as StallerProxy {
            fn new() -> Self { Staller }
            fn stall(&mut self) -> u64 {
                while !crate::fabric::tests::FABRIC_GATE.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                1
            }
        }
    }

    fn fabric() -> Arc<InProcFabric> {
        let m = MarshalRegistry::new();
        m.register::<(String,), ()>("Echo", "new");
        m.register::<(String,), String>("Echo", "shout");
        m.register::<(), ()>("Staller", "new");
        m.register::<(), u64>("Staller", "stall");
        let f = InProcFabric::new(3, m);
        f.register_class::<Echo>();
        f.register_class::<Staller>();
        f
    }

    #[test]
    fn construct_and_call_across_nodes() {
        let f = fabric();
        for node in 0..3 {
            let args = f.marshal().encode_args("Echo", "new", &args![format!("n{node}")]).unwrap();
            let r = f.construct_on(node, "Echo", args).unwrap();
            assert_eq!(r.node, node);
            assert_eq!(r.class, f.marshal().class_id("Echo").unwrap());
            let call_args =
                f.marshal().encode_args("Echo", "shout", &args!["hi".to_string()]).unwrap();
            let reply = f.call(r, "shout", call_args, true).unwrap().unwrap();
            let ret = f.marshal().decode_ret("Echo", "shout", &reply).unwrap();
            assert_eq!(*ret.downcast::<String>().unwrap(), format!("n{node}:hi"));
        }
    }

    #[test]
    fn call_id_matches_string_path() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(0, "Echo", ctor).unwrap();
        let shout = f.marshal().method_id("Echo", "shout").unwrap();
        for msg in ["a", "b", "c"] {
            let mut buf = f.buffers().take();
            f.marshal().encode_args_id(shout, &args![msg.to_string()], &mut buf).unwrap();
            let reply = f.call_id(r, shout, buf.freeze(), true).unwrap().unwrap();
            let ret = f.marshal().decode_ret_id(shout, &mut reply.clone()).unwrap();
            assert_eq!(*ret.downcast::<String>().unwrap(), format!("n:{msg}"));
            f.buffers().recycle(reply);
        }
        // The recycled reply frames are back in the shared pool.
        assert!(f.buffers().pooled() > 0);
    }

    #[test]
    fn objects_live_in_separate_spaces() {
        let f = fabric();
        let a = f.marshal().encode_args("Echo", "new", &args!["a".to_string()]).unwrap();
        let b = f.marshal().encode_args("Echo", "new", &args!["b".to_string()]).unwrap();
        let ra = f.construct_on(0, "Echo", a).unwrap();
        let rb = f.construct_on(1, "Echo", b).unwrap();
        assert_eq!(f.node(0).unwrap().weaver().space().len(), 1);
        assert_eq!(f.node(1).unwrap().weaver().space().len(), 1);
        assert_eq!(f.node(2).unwrap().weaver().space().len(), 0);
        // Calling node 1's object id on node 0 fails: spaces are disjoint.
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let misdirected = RemoteRef { node: 0, obj: rb.obj, class: rb.class };
        // ids happen to collide across spaces (both start at 1), so this is
        // only an error when they don't; assert the *correct* routing works.
        let _ = misdirected;
        let ok = f.call(ra, "shout", call_args, true).unwrap();
        assert!(ok.is_some());
    }

    #[test]
    fn bad_node_index_is_an_error() {
        let f = fabric();
        let args = f.marshal().encode_args("Echo", "new", &args!["x".to_string()]).unwrap();
        assert!(f.construct_on(99, "Echo", args).is_err());
        assert!(f.node(99).is_err());
    }

    #[test]
    fn oneway_send_returns_immediately() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(0, "Echo", ctor).unwrap();
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let reply = f.call(r, "shout", call_args, false).unwrap();
        assert!(reply.is_none());
    }

    #[test]
    fn call_batch_ships_one_pack() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(2, "Echo", ctor).unwrap();
        let shout = f.marshal().method_id("Echo", "shout").unwrap();
        let calls = (0..5).map(|i| (r.obj, shout, args![format!("m{i}")]));
        assert_eq!(f.call_batch(2, calls).unwrap(), 5);
        assert_eq!(f.call_batch(2, std::iter::empty()).unwrap(), 0);
        // Synchronise; the replied call queues behind the pack.
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        assert!(f.call(r, "shout", call_args, true).unwrap().is_some());
    }

    #[test]
    fn remote_errors_propagate_on_replied_calls() {
        let f = fabric();
        let call_args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let ghost = RemoteRef {
            node: 0,
            obj: ObjId::from_raw(404),
            class: f.marshal().intern_class("Echo"),
        };
        assert!(f.call(ghost, "shout", call_args, true).is_err());
    }

    #[test]
    fn kill_fails_pending_replied_calls_promptly() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Staller", "new", &args![]).unwrap();
        let stall_ref = f.construct_on(0, "Staller", ctor).unwrap();
        let echo_ctor = f.marshal().encode_args("Echo", "new", &args!["e".to_string()]).unwrap();
        let echo_ref = f.construct_on(0, "Echo", echo_ctor).unwrap();

        FABRIC_GATE.store(false, Ordering::SeqCst);
        // Occupy node 0's serve loop with a blocking oneway call.
        let stall_args = f.marshal().encode_args("Staller", "stall", &args![]).unwrap();
        f.call(stall_ref, "stall", stall_args, false).unwrap();

        // Queue replied calls behind it from worker threads; they block on
        // their reply slots.
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let f = f.clone();
                std::thread::spawn(move || {
                    let args =
                        f.marshal().encode_args("Echo", "shout", &args!["hi".to_string()]).unwrap();
                    f.call(echo_ref, "shout", args, true)
                })
            })
            .collect();
        // Give the waiters time to enqueue, then crash the node and release
        // the blocker.
        std::thread::sleep(std::time::Duration::from_millis(20));
        f.kill_node(0).unwrap();
        FABRIC_GATE.store(true, Ordering::SeqCst);

        // Every pending caller is failed promptly with a typed NodeDown —
        // nobody hangs until fabric teardown.
        for waiter in waiters {
            let err = waiter.join().unwrap().unwrap_err();
            assert!(matches!(err, WeaveError::NodeDown { node: 0 }), "{err}");
        }
        // And new submissions are rejected up front.
        let args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        assert!(matches!(
            f.call(echo_ref, "shout", args, true),
            Err(WeaveError::NodeDown { node: 0 })
        ));
    }

    #[test]
    fn kill_node_sweeps_nameserver_bindings() {
        let f = fabric();
        let ctor0 = f.marshal().encode_args("Echo", "new", &args!["a".to_string()]).unwrap();
        let ctor1 = f.marshal().encode_args("Echo", "new", &args!["b".to_string()]).unwrap();
        let r0 = f.construct_on(0, "Echo", ctor0).unwrap();
        let r1 = f.construct_on(1, "Echo", ctor1).unwrap();
        f.nameserver().rebind("PS1", r0);
        f.nameserver().rebind("PS2", r1);
        f.kill_node(0).unwrap();
        // The dead node's binding fails fast and typed; the survivor's holds.
        assert!(matches!(f.nameserver().lookup("PS1"), Err(WeaveError::NodeDown { node: 0 })));
        assert_eq!(f.nameserver().lookup("PS2").unwrap(), r1);
    }

    #[test]
    fn policy_deadline_times_out_on_dropped_replies() {
        use crate::faults::{FaultAction, FaultPlan, FaultRule, RequestClass};
        use crate::policy::CallPolicy;
        use std::time::Duration;

        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(0, "Echo", ctor).unwrap();
        let shout = f.marshal().method_id("Echo", "shout").unwrap();
        // Every replied call's message is silently lost.
        f.install_faults(Arc::new(
            FaultPlan::seeded(77).rule(FaultRule::on(RequestClass::Call, FaultAction::Drop)),
        ));
        let policy = CallPolicy::with_deadline(Duration::from_millis(30));
        let args = f.marshal().encode_args("Echo", "shout", &args!["x".to_string()]).unwrap();
        let start = std::time::Instant::now();
        let err = f.call_id_with_policy(r, shout, args, true, &policy).unwrap_err();
        assert!(matches!(err, WeaveError::Timeout { waited_ms: 30 }), "{err}");
        assert!(start.elapsed() < Duration::from_secs(2));
        assert!(f.faults().unwrap().stats().snapshot().dropped >= 1);
        // Clearing the plan restores the faithful network.
        f.clear_faults();
        let args = f.marshal().encode_args("Echo", "shout", &args!["y".to_string()]).unwrap();
        assert!(f.call_id_with_policy(r, shout, args, true, &policy).unwrap().is_some());
    }

    #[test]
    fn policy_retries_recover_from_transient_drops() {
        use crate::faults::{FaultAction, FaultPlan, FaultRule, RequestClass};
        use crate::policy::{Backoff, CallPolicy};
        use std::time::Duration;

        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(1, "Echo", ctor).unwrap();
        let shout = f.marshal().method_id("Echo", "shout").unwrap();
        // Lose the first two replied deliveries, then behave.
        f.install_faults(Arc::new(
            FaultPlan::seeded(3)
                .rule(FaultRule::on(RequestClass::Call, FaultAction::Drop).times(2)),
        ));
        let policy = CallPolicy::with_deadline(Duration::from_millis(25))
            .retries(3)
            .backoff(Backoff { base: Duration::from_millis(1), max: Duration::from_millis(4) })
            .seed(42);
        let args = f.marshal().encode_args("Echo", "shout", &args!["hi".to_string()]).unwrap();
        let reply = f.call_id_with_policy(r, shout, args, true, &policy).unwrap().unwrap();
        let ret = f.marshal().decode_ret("Echo", "shout", &reply).unwrap();
        assert_eq!(*ret.downcast::<String>().unwrap(), "n:hi");
        assert_eq!(f.faults().unwrap().stats().snapshot().dropped, 2);
    }

    #[test]
    fn migrate_to_dead_node_leaves_source_intact() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["m".to_string()]).unwrap();
        let r = f.construct_on(0, "Echo", ctor).unwrap();
        f.kill_node(2).unwrap();
        let err = f.migrate(r, "Echo", 2).unwrap_err();
        assert!(matches!(err, WeaveError::NodeDown { node: 2 }), "{err}");
        // No state left the source: the original reference still answers.
        let args = f.marshal().encode_args("Echo", "shout", &args!["ok".to_string()]).unwrap();
        let reply = f.call(r, "shout", args, true).unwrap().unwrap();
        let ret = f.marshal().decode_ret("Echo", "shout", &reply).unwrap();
        assert_eq!(*ret.downcast::<String>().unwrap(), "m:ok");
    }

    #[test]
    fn installed_metrics_expose_fabric_traffic() {
        use crate::faults::{FaultAction, FaultPlan, FaultRule, RequestClass};
        use crate::policy::{Backoff, CallPolicy};
        use std::time::Duration;

        let registry = MetricsRegistry::new();
        let f = fabric();
        f.install_metrics(&registry, "fabric");
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(0, "Echo", ctor).unwrap();
        let shout = f.marshal().method_id("Echo", "shout").unwrap();

        // Replied, oneway and packed traffic.
        let args = f.marshal().encode_args("Echo", "shout", &args!["a".to_string()]).unwrap();
        assert!(f.call_id(r, shout, args, true).unwrap().is_some());
        let args = f.marshal().encode_args("Echo", "shout", &args!["b".to_string()]).unwrap();
        assert!(f.call_id(r, shout, args, false).unwrap().is_none());
        let calls = (0..4).map(|i| (r.obj, shout, args![format!("m{i}")]));
        assert_eq!(f.call_batch(0, calls).unwrap(), 4);

        // A retried-then-recovered policy call ticks retries.
        f.install_faults(Arc::new(
            FaultPlan::seeded(3)
                .rule(FaultRule::on(RequestClass::Call, FaultAction::Drop).times(1)),
        ));
        let policy = CallPolicy::with_deadline(Duration::from_millis(25))
            .retries(3)
            .backoff(Backoff { base: Duration::from_millis(1), max: Duration::from_millis(2) })
            .seed(7);
        let args = f.marshal().encode_args("Echo", "shout", &args!["c".to_string()]).unwrap();
        assert!(f.call_id_with_policy(r, shout, args, true, &policy).unwrap().is_some());
        f.clear_faults();

        let snap = registry.snapshot();
        assert_eq!(snap.counter("fabric.calls"), Some(2));
        assert_eq!(snap.counter("fabric.oneway"), Some(1));
        assert_eq!(snap.counter("fabric.packs"), Some(1));
        assert_eq!(snap.counter("fabric.packed_calls"), Some(4));
        assert!(snap.counter("fabric.retries").unwrap() >= 1);
        assert!(snap.counter("fabric.timeouts").unwrap() >= 1);
        assert_eq!(snap.gauge("fabric.in_flight"), Some(0), "nothing parked when idle");
        // The finished replied calls returned their slots to the pool.
        assert_eq!(snap.gauge("fabric.reply_slots_pooled"), Some(f.replies.pooled() as u64));
    }

    #[test]
    fn nameserver_is_shared() {
        let f = fabric();
        let ctor = f.marshal().encode_args("Echo", "new", &args!["n".to_string()]).unwrap();
        let r = f.construct_on(1, "Echo", ctor).unwrap();
        let name = f.nameserver().next_name("PS");
        f.nameserver().rebind(&name, r);
        assert_eq!(f.nameserver().lookup(&name).unwrap(), r);
    }
}
