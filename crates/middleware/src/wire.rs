//! Binary marshalling: the Java-serialisation stand-in.
//!
//! [`Wire`] is a minimal, explicit binary codec (little-endian, length-
//! prefixed containers). [`WireArgs`] lifts it to whole argument packs, and a
//! [`MarshalRegistry`] records, per `(class, method)`, how to convert between
//! [`Args`](weavepar_weave::Args) and bytes — the knowledge the distribution
//! aspect needs to put a call on the wire and a node runtime needs to take it
//! off again.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::RwLock;

use weavepar_weave::{AnyValue, Args, WeaveError, WeaveResult};

/// A value with an explicit binary encoding.
pub trait Wire: Sized + Send + 'static {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode a value from the front of `buf`.
    fn decode(buf: &mut Bytes) -> WeaveResult<Self>;
}

fn short(context: &str) -> WeaveError {
    WeaveError::remote(format!("wire: truncated input while decoding {context}"))
}

macro_rules! impl_wire_int {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {
        $(
            impl Wire for $t {
                fn encode(&self, buf: &mut BytesMut) {
                    buf.$put(*self);
                }
                fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
                    if buf.remaining() < std::mem::size_of::<$t>() {
                        return Err(short(stringify!($t)));
                    }
                    Ok(buf.$get())
                }
            }
        )*
    };
}

impl_wire_int! {
    u8 => put_u8 / get_u8,
    u16 => put_u16_le / get_u16_le,
    u32 => put_u32_le / get_u32_le,
    u64 => put_u64_le / get_u64_le,
    i8 => put_i8 / get_i8,
    i16 => put_i16_le / get_i16_le,
    i32 => put_i32_le / get_i32_le,
    i64 => put_i64_le / get_i64_le,
    f32 => put_f32_le / get_f32_le,
    f64 => put_f64_le / get_f64_le,
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        if buf.remaining() < 1 {
            return Err(short("bool"));
        }
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WeaveError::remote(format!("wire: invalid bool byte {other}"))),
        }
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        if buf.remaining() < 8 {
            return Err(short("usize"));
        }
        Ok(buf.get_u64_le() as usize)
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> WeaveResult<Self> {
        Ok(())
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        let len = u32::decode(buf)? as usize;
        if buf.remaining() < len {
            return Err(short("String"));
        }
        let raw = buf.split_to(len);
        // Validate in place on the split view, then copy once into the
        // `String` — the old `raw.to_vec()` + `String::from_utf8` round-trip
        // copied first and validated after (wasting the copy on bad input).
        std::str::from_utf8(&raw)
            .map(str::to_owned)
            .map_err(|e| WeaveError::remote(format!("wire: invalid utf8: {e}")))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        let len = u32::decode(buf)? as usize;
        // Conservative cap: each element takes at least one byte on the wire
        // for all current `Wire` impls except `()`.
        let mut out = Vec::with_capacity(len.min(buf.remaining().max(16)));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        match bool::decode(buf)? {
            false => Ok(None),
            true => Ok(Some(T::decode(buf)?)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl Wire for weavepar_weave::ObjId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.raw());
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        Ok(weavepar_weave::ObjId::from_raw(u64::decode(buf)?))
    }
}

/// Encode a single value to a standalone buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Decode a single value from a standalone buffer.
pub fn from_bytes<T: Wire>(bytes: &Bytes) -> WeaveResult<T> {
    let mut buf = bytes.clone();
    T::decode(&mut buf)
}

/// A *typed view* of an argument pack: encodes `Args` whose slots hold the
/// tuple's element types, and rebuilds such `Args` from bytes.
pub trait WireArgs: Send + 'static {
    /// Number of argument slots.
    fn arity() -> usize;
    /// Encode the pack (by reference — the live call still needs its args).
    fn encode_args(args: &Args, buf: &mut BytesMut) -> WeaveResult<()>;
    /// Decode a fresh pack.
    fn decode_args(buf: &mut Bytes) -> WeaveResult<Args>;
}

macro_rules! impl_wire_args {
    ($( ($($T:ident @ $idx:tt),*) );* $(;)?) => {
        $(
            impl<$($T: Wire + Clone),*> WireArgs for ($($T,)*) {
                fn arity() -> usize {
                    <[&str]>::len(&[$(stringify!($T)),*])
                }
                #[allow(unused_variables)]
                fn encode_args(args: &Args, buf: &mut BytesMut) -> WeaveResult<()> {
                    $(
                        args.get::<$T>($idx)?.encode(buf);
                    )*
                    Ok(())
                }
                #[allow(unused_mut, unused_variables)]
                fn decode_args(buf: &mut Bytes) -> WeaveResult<Args> {
                    let mut args = Args::empty();
                    $(
                        args.push($T::decode(buf)?);
                    )*
                    Ok(args)
                }
            }
        )*
    };
}

impl_wire_args! {
    ();
    (A @ 0);
    (A @ 0, B @ 1);
    (A @ 0, B @ 1, C @ 2);
    (A @ 0, B @ 1, C @ 2, D @ 3);
}

type ArgsEncoder = Arc<dyn Fn(&Args) -> WeaveResult<Bytes> + Send + Sync>;
type ArgsDecoder = Arc<dyn Fn(&Bytes) -> WeaveResult<Args> + Send + Sync>;
type RetEncoder = Arc<dyn Fn(&AnyValue) -> WeaveResult<Bytes> + Send + Sync>;
type RetDecoder = Arc<dyn Fn(&Bytes) -> WeaveResult<AnyValue> + Send + Sync>;

struct MethodMarshal {
    encode_args: ArgsEncoder,
    decode_args: ArgsDecoder,
    encode_ret: RetEncoder,
    decode_ret: RetDecoder,
}

type StateSnapshot =
    Arc<dyn Fn(&weavepar_weave::Weaver, weavepar_weave::ObjId) -> WeaveResult<Bytes> + Send + Sync>;
type StateRestore = Arc<
    dyn Fn(&weavepar_weave::Weaver, &Bytes) -> WeaveResult<weavepar_weave::ObjId> + Send + Sync,
>;

/// Per-class object-state marshalling (used by migration: snapshot an
/// instance's state to bytes on one node, rebuild it on another).
#[derive(Clone)]
pub struct StateCodec {
    snapshot: StateSnapshot,
    restore: StateRestore,
}

/// Per-`(class, method)` marshalling knowledge — what Java gets from
/// serialisable classes, an application registers here once per remotable
/// method (constructions use method name `"new"`).
/// Marshal table keyed by `(class, method)`.
type MarshalTable = Arc<RwLock<HashMap<(String, String), Arc<MethodMarshal>>>>;

#[derive(Clone, Default)]
pub struct MarshalRegistry {
    inner: MarshalTable,
    states: Arc<RwLock<HashMap<String, StateCodec>>>,
}

impl MarshalRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register marshalling for `class.method` with argument tuple `A` and
    /// return type `R`.
    pub fn register<A: WireArgs, R: Wire>(&self, class: &str, method: &str) {
        let marshal = MethodMarshal {
            encode_args: Arc::new(|args| {
                let mut buf = BytesMut::new();
                A::encode_args(args, &mut buf)?;
                Ok(buf.freeze())
            }),
            decode_args: Arc::new(|bytes| {
                let mut buf = bytes.clone();
                A::decode_args(&mut buf)
            }),
            encode_ret: Arc::new(|ret| {
                let typed = ret.downcast_ref::<R>().ok_or_else(|| WeaveError::TypeMismatch {
                    expected: std::any::type_name::<R>(),
                    context: "marshalling return value".into(),
                })?;
                Ok(to_bytes(typed))
            }),
            decode_ret: Arc::new(|bytes| {
                let v: R = from_bytes(bytes)?;
                Ok(Box::new(v) as AnyValue)
            }),
        };
        self.inner.write().insert((class.to_string(), method.to_string()), Arc::new(marshal));
    }

    fn get(&self, class: &str, method: &str) -> WeaveResult<Arc<MethodMarshal>> {
        self.inner.read().get(&(class.to_string(), method.to_string())).cloned().ok_or_else(|| {
            WeaveError::remote(format!("no marshaller registered for {class}.{method}"))
        })
    }

    /// Encode an argument pack for `class.method`.
    pub fn encode_args(&self, class: &str, method: &str, args: &Args) -> WeaveResult<Bytes> {
        (self.get(class, method)?.encode_args)(args)
    }

    /// Decode an argument pack for `class.method`.
    pub fn decode_args(&self, class: &str, method: &str, bytes: &Bytes) -> WeaveResult<Args> {
        (self.get(class, method)?.decode_args)(bytes)
    }

    /// Encode a return value for `class.method`.
    pub fn encode_ret(&self, class: &str, method: &str, ret: &AnyValue) -> WeaveResult<Bytes> {
        (self.get(class, method)?.encode_ret)(ret)
    }

    /// Decode a return value for `class.method`.
    pub fn decode_ret(&self, class: &str, method: &str, bytes: &Bytes) -> WeaveResult<AnyValue> {
        (self.get(class, method)?.decode_ret)(bytes)
    }

    /// Is marshalling known for `class.method`?
    pub fn knows(&self, class: &str, method: &str) -> bool {
        self.inner.read().contains_key(&(class.to_string(), method.to_string()))
    }

    /// Register object-state marshalling for `T`: `extract` captures the
    /// instance's state as a [`Wire`] value, `rebuild` reconstructs an
    /// instance from it. Required for migration (paper Figure 2's
    /// `Point.migrate`).
    pub fn register_state<T, S, E, R>(&self, extract: E, rebuild: R)
    where
        T: weavepar_weave::Weaveable,
        S: Wire,
        E: Fn(&T) -> S + Send + Sync + 'static,
        R: Fn(S) -> T + Send + Sync + 'static,
    {
        let codec = StateCodec {
            snapshot: Arc::new(move |weaver, obj| {
                let state = weaver.space().with_object::<T, _>(obj, |t| extract(t))?;
                Ok(to_bytes(&state))
            }),
            restore: Arc::new(move |weaver, bytes| {
                let state: S = from_bytes(bytes)?;
                Ok(weaver.space().insert(rebuild(state)))
            }),
        };
        self.states.write().insert(T::CLASS.to_string(), codec);
    }

    /// Snapshot the state of a live object of `class`.
    pub fn snapshot_state(
        &self,
        weaver: &weavepar_weave::Weaver,
        class: &str,
        obj: weavepar_weave::ObjId,
    ) -> WeaveResult<Bytes> {
        let codec = self.states.read().get(class).cloned().ok_or_else(|| {
            WeaveError::remote(format!("no state codec registered for `{class}`"))
        })?;
        (codec.snapshot)(weaver, obj)
    }

    /// Rebuild an instance of `class` from snapshotted state.
    pub fn restore_state(
        &self,
        weaver: &weavepar_weave::Weaver,
        class: &str,
        state: &Bytes,
    ) -> WeaveResult<weavepar_weave::ObjId> {
        let codec = self.states.read().get(class).cloned().ok_or_else(|| {
            WeaveError::remote(format!("no state codec registered for `{class}`"))
        })?;
        (codec.restore)(weaver, state)
    }

    /// Is a state codec known for `class`?
    pub fn knows_state(&self, class: &str) -> bool {
        self.states.read().contains_key(class)
    }
}

impl std::fmt::Debug for MarshalRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarshalRegistry").field("methods", &self.inner.read().len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavepar_weave::args;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug + Clone>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(1234u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX / 3);
        roundtrip(-7i8);
        roundtrip(-30000i16);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(3.25f32);
        roundtrip(-1.5e300f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(42usize);
        roundtrip(());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip("hello wire".to_string());
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(9u8));
        roundtrip(None::<u8>);
        roundtrip((1u8, "two".to_string()));
        roundtrip((1u8, 2u16, vec![3u32]));
        roundtrip(weavepar_weave::ObjId::from_raw(77));
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&123456u32);
        let mut cut = bytes.slice(0..2);
        assert!(u32::decode(&mut cut).is_err());
        let bytes = to_bytes(&"hello".to_string());
        let mut cut = bytes.slice(0..6);
        assert!(String::decode(&mut cut).is_err());
    }

    #[test]
    fn invalid_bool_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        let mut b = buf.freeze();
        assert!(bool::decode(&mut b).is_err());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        let mut b = buf.freeze();
        assert!(String::decode(&mut b).is_err());
    }

    #[test]
    fn wire_args_roundtrip() {
        let args = args![5u64, vec![1u64, 2, 3]];
        let mut buf = BytesMut::new();
        <(u64, Vec<u64>)>::encode_args(&args, &mut buf).unwrap();
        let mut bytes = buf.freeze();
        let back = <(u64, Vec<u64>)>::decode_args(&mut bytes).unwrap();
        assert_eq!(*back.get::<u64>(0).unwrap(), 5);
        assert_eq!(*back.get::<Vec<u64>>(1).unwrap(), vec![1, 2, 3]);
        assert_eq!(<(u64, Vec<u64>)>::arity(), 2);
        assert_eq!(<()>::arity(), 0);
    }

    #[test]
    fn wire_args_type_mismatch() {
        let args = args!["oops".to_string()];
        let mut buf = BytesMut::new();
        assert!(<(u64,)>::encode_args(&args, &mut buf).is_err());
    }

    #[test]
    fn registry_end_to_end() {
        let reg = MarshalRegistry::new();
        reg.register::<(u64, u64), ()>("PrimeFilter", "new");
        reg.register::<(Vec<u64>,), Vec<u64>>("PrimeFilter", "filter");
        assert!(reg.knows("PrimeFilter", "filter"));
        assert!(!reg.knows("PrimeFilter", "other"));

        let args = args![vec![9u64, 15, 21]];
        let bytes = reg.encode_args("PrimeFilter", "filter", &args).unwrap();
        let back = reg.decode_args("PrimeFilter", "filter", &bytes).unwrap();
        assert_eq!(*back.get::<Vec<u64>>(0).unwrap(), vec![9, 15, 21]);

        let ret: AnyValue = Box::new(vec![9u64]);
        let rb = reg.encode_ret("PrimeFilter", "filter", &ret).unwrap();
        let rv = reg.decode_ret("PrimeFilter", "filter", &rb).unwrap();
        assert_eq!(*rv.downcast::<Vec<u64>>().unwrap(), vec![9]);
    }

    #[test]
    fn registry_unknown_method_errors() {
        let reg = MarshalRegistry::new();
        let err = reg.encode_args("X", "y", &args![]).unwrap_err();
        assert!(matches!(err, WeaveError::Remote(_)));
    }

    #[test]
    fn registry_ret_type_mismatch() {
        let reg = MarshalRegistry::new();
        reg.register::<(), u64>("C", "m");
        let ret: AnyValue = Box::new("not a u64".to_string());
        assert!(reg.encode_ret("C", "m", &ret).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn u64_roundtrip(v in any::<u64>()) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<u64>(&b).unwrap(), v);
        }

        #[test]
        fn i64_roundtrip(v in any::<i64>()) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<i64>(&b).unwrap(), v);
        }

        #[test]
        fn f64_roundtrip(v in any::<f64>().prop_filter("not NaN", |f| !f.is_nan())) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<f64>(&b).unwrap(), v);
        }

        #[test]
        fn string_roundtrip(v in ".{0,64}") {
            let s = v.to_string();
            let b = to_bytes(&s);
            prop_assert_eq!(from_bytes::<String>(&b).unwrap(), s);
        }

        #[test]
        fn vec_u64_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..128)) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<Vec<u64>>(&b).unwrap(), v);
        }

        #[test]
        fn nested_roundtrip(v in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..8), 0..8)) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<Vec<Vec<u32>>>(&b).unwrap(), v);
        }

        #[test]
        fn tuple_roundtrip(a in any::<u64>(), s in ".{0,16}", o in proptest::option::of(any::<i32>())) {
            let v = (a, s.to_string(), vec![o]);
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<(u64, String, Vec<Option<i32>>)>(&b).unwrap(), v);
        }

        /// Decoding arbitrary junk never panics.
        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let b = Bytes::from(bytes);
            let _ = from_bytes::<u64>(&b);
            let _ = from_bytes::<String>(&b);
            let _ = from_bytes::<Vec<u64>>(&b);
            let _ = from_bytes::<(u64, String)>(&b);
            let _ = from_bytes::<Option<Vec<u8>>>(&b);
        }
    }
}
