//! Binary marshalling: the Java-serialisation stand-in.
//!
//! [`Wire`] is a minimal, explicit binary codec (little-endian, length-
//! prefixed containers). [`WireArgs`] lifts it to whole argument packs, and a
//! [`MarshalRegistry`] records, per `(class, method)`, how to convert between
//! [`Args`](weavepar_weave::Args) and bytes — the knowledge the distribution
//! aspect needs to put a call on the wire and a node runtime needs to take it
//! off again.
//!
//! ## Interned identifiers
//!
//! Registration hands out dense [`ClassId`]/[`MethodId`] handles. The
//! per-call fast path ([`MarshalRegistry::encode_args_id`] and friends)
//! indexes an append-only slot table — no lock, no string hashing, no
//! allocation. The string-keyed methods remain as conveniences that resolve
//! the id once (two `RwLock` reads + hash lookups) and then take the same
//! indexed path; `Arc<str>` names are kept only at the boundary for error
//! messages and name-based dispatch on the serving node.
//!
//! ## Pack frames
//!
//! [`PackFrame`]/[`PackReader`] define the `CallPack` wire format — many
//! oneway calls to one node in a single frame:
//!
//! ```text
//! count: u32 | count × ( obj: u64 | method: u32 | args_len: u32 | args )
//! ```
//!
//! The reader yields zero-copy sub-views of the frame, so serving a pack
//! never re-allocates the payload.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::{Mutex, RwLock};

use weavepar_weave::{AnyValue, Args, ObjId, WeaveError, WeaveResult};

/// A value with an explicit binary encoding.
pub trait Wire: Sized + Send + 'static {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decode a value from the front of `buf`.
    fn decode(buf: &mut Bytes) -> WeaveResult<Self>;
}

fn short(context: &str) -> WeaveError {
    WeaveError::remote(format!("wire: truncated input while decoding {context}"))
}

macro_rules! impl_wire_int {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {
        $(
            impl Wire for $t {
                fn encode(&self, buf: &mut BytesMut) {
                    buf.$put(*self);
                }
                fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
                    if buf.remaining() < std::mem::size_of::<$t>() {
                        return Err(short(stringify!($t)));
                    }
                    Ok(buf.$get())
                }
            }
        )*
    };
}

impl_wire_int! {
    u8 => put_u8 / get_u8,
    u16 => put_u16_le / get_u16_le,
    u32 => put_u32_le / get_u32_le,
    u64 => put_u64_le / get_u64_le,
    i8 => put_i8 / get_i8,
    i16 => put_i16_le / get_i16_le,
    i32 => put_i32_le / get_i32_le,
    i64 => put_i64_le / get_i64_le,
    f32 => put_f32_le / get_f32_le,
    f64 => put_f64_le / get_f64_le,
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        if buf.remaining() < 1 {
            return Err(short("bool"));
        }
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WeaveError::remote(format!("wire: invalid bool byte {other}"))),
        }
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        if buf.remaining() < 8 {
            return Err(short("usize"));
        }
        Ok(buf.get_u64_le() as usize)
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> WeaveResult<Self> {
        Ok(())
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        let len = u32::decode(buf)? as usize;
        if buf.remaining() < len {
            return Err(short("String"));
        }
        let raw = buf.split_to(len);
        // Validate in place on the split view, then copy once into the
        // `String` — the old `raw.to_vec()` + `String::from_utf8` round-trip
        // copied first and validated after (wasting the copy on bad input).
        std::str::from_utf8(&raw)
            .map(str::to_owned)
            .map_err(|e| WeaveError::remote(format!("wire: invalid utf8: {e}")))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        let len = u32::decode(buf)? as usize;
        // Conservative cap: each element takes at least one byte on the wire
        // for all current `Wire` impls except `()`.
        let mut out = Vec::with_capacity(len.min(buf.remaining().max(16)));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

/// Same wire format as `Vec<u64>`, so a `Pack`-taking method is wire-
/// compatible with its `Vec<u64>` predecessor. Encoding reads straight from
/// the pack's shared range (no intermediate copy); decoding materialises a
/// fresh, unshared pack.
impl Wire for weavepar_weave::Pack {
    fn encode(&self, buf: &mut BytesMut) {
        let items = self.as_slice();
        buf.put_u32_le(items.len() as u32);
        for v in items {
            buf.put_u64_le(*v);
        }
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        let len = u32::decode(buf)? as usize;
        if buf.remaining() < len * 8 {
            return Err(short("Pack"));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(buf.get_u64_le());
        }
        Ok(weavepar_weave::Pack::from_vec(items))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        match bool::decode(buf)? {
            false => Ok(None),
            true => Ok(Some(T::decode(buf)?)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl Wire for ObjId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.raw());
    }
    fn decode(buf: &mut Bytes) -> WeaveResult<Self> {
        Ok(ObjId::from_raw(u64::decode(buf)?))
    }
}

/// Encode a single value to a standalone buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Decode a single value from a standalone buffer.
pub fn from_bytes<T: Wire>(bytes: &Bytes) -> WeaveResult<T> {
    let mut buf = bytes.clone();
    T::decode(&mut buf)
}

/// A *typed view* of an argument pack: encodes `Args` whose slots hold the
/// tuple's element types, and rebuilds such `Args` from bytes.
pub trait WireArgs: Send + 'static {
    /// Number of argument slots.
    fn arity() -> usize;
    /// Encode the pack (by reference — the live call still needs its args).
    fn encode_args(args: &Args, buf: &mut BytesMut) -> WeaveResult<()>;
    /// Decode a fresh pack.
    fn decode_args(buf: &mut Bytes) -> WeaveResult<Args>;
}

macro_rules! impl_wire_args {
    ($( ($($T:ident @ $idx:tt),*) );* $(;)?) => {
        $(
            impl<$($T: Wire + Clone),*> WireArgs for ($($T,)*) {
                fn arity() -> usize {
                    <[&str]>::len(&[$(stringify!($T)),*])
                }
                #[allow(unused_variables)]
                fn encode_args(args: &Args, buf: &mut BytesMut) -> WeaveResult<()> {
                    $(
                        args.get::<$T>($idx)?.encode(buf);
                    )*
                    Ok(())
                }
                #[allow(unused_mut, unused_variables)]
                fn decode_args(buf: &mut Bytes) -> WeaveResult<Args> {
                    let mut args = Args::empty();
                    $(
                        args.push($T::decode(buf)?);
                    )*
                    Ok(args)
                }
            }
        )*
    };
}

impl_wire_args! {
    ();
    (A @ 0);
    (A @ 0, B @ 1);
    (A @ 0, B @ 1, C @ 2);
    (A @ 0, B @ 1, C @ 2, D @ 3);
}

// `ClassId`/`MethodId` are defined in the weave value layer so they can ride
// inline in a `Value` (no box per id); re-exported here at their historical
// home. `intern_class`/`register` hand them out exactly as before.
pub use weavepar_weave::{ClassId, MethodId};

/// Lock-free-on-read, append-only slot table: readers index published slots
/// with two atomic loads; writers serialise on a mutex and publish via a
/// release store of `len`. Storage grows in doubling chunks so published
/// references never move.
struct SlotTable<T> {
    chunks: [OnceLock<Box<[OnceLock<T>]>>; SlotTable::<()>::CHUNKS],
    len: AtomicU32,
    append: Mutex<()>,
}

impl<T> SlotTable<T> {
    const CHUNKS: usize = 16;
    const CHUNK0: usize = 64;

    fn new() -> Self {
        SlotTable {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicU32::new(0),
            append: Mutex::new(()),
        }
    }

    /// Chunk index and offset for slot `i` (chunk `c` holds `64 << c` slots).
    fn locate(i: usize) -> (usize, usize) {
        let chunk = ((i / Self::CHUNK0) + 1).ilog2() as usize;
        let start = Self::CHUNK0 * ((1usize << chunk) - 1);
        (chunk, i - start)
    }

    fn len(&self) -> u32 {
        self.len.load(Ordering::Acquire)
    }

    fn get(&self, i: u32) -> Option<&T> {
        if i >= self.len.load(Ordering::Acquire) {
            return None;
        }
        let (chunk, offset) = Self::locate(i as usize);
        self.chunks[chunk].get()?[offset].get()
    }

    fn push(&self, value: T) -> u32 {
        let _guard = self.append.lock();
        let i = self.len.load(Ordering::Relaxed) as usize;
        let (chunk, offset) = Self::locate(i);
        assert!(chunk < Self::CHUNKS, "slot table full");
        let slots = self.chunks[chunk].get_or_init(|| {
            (0..Self::CHUNK0 << chunk).map(|_| OnceLock::new()).collect::<Vec<_>>().into()
        });
        if slots[offset].set(value).is_err() {
            unreachable!("append slot already occupied");
        }
        self.len.store((i + 1) as u32, Ordering::Release);
        i as u32
    }
}

type ArgsEncoder = Box<dyn Fn(&Args, &mut BytesMut) -> WeaveResult<()> + Send + Sync>;
type ArgsDecoder = Box<dyn Fn(&mut Bytes) -> WeaveResult<Args> + Send + Sync>;
type RetEncoder = Box<dyn Fn(&AnyValue, &mut BytesMut) -> WeaveResult<()> + Send + Sync>;
type RetDecoder = Box<dyn Fn(&mut Bytes) -> WeaveResult<AnyValue> + Send + Sync>;

struct MethodMarshal {
    encode_args: ArgsEncoder,
    decode_args: ArgsDecoder,
    encode_ret: RetEncoder,
    decode_ret: RetDecoder,
}

/// One published method slot: the codec plus the boundary names (`Arc<str>`
/// — cloned only for errors and name-based dispatch on the serving node).
pub(crate) struct MethodEntry {
    pub(crate) class: ClassId,
    pub(crate) class_name: Arc<str>,
    pub(crate) method_name: Arc<str>,
    marshal: MethodMarshal,
}

struct ClassEntry {
    name: Arc<str>,
    /// Method name → id, for the string-keyed slow path.
    methods: RwLock<HashMap<Arc<str>, MethodId>>,
    state: RwLock<Option<StateCodec>>,
}

type StateSnapshot =
    Arc<dyn Fn(&weavepar_weave::Weaver, ObjId) -> WeaveResult<Bytes> + Send + Sync>;
type StateRestore =
    Arc<dyn Fn(&weavepar_weave::Weaver, &Bytes) -> WeaveResult<ObjId> + Send + Sync>;

/// Per-class object-state marshalling (used by migration: snapshot an
/// instance's state to bytes on one node, rebuild it on another).
#[derive(Clone)]
pub struct StateCodec {
    snapshot: StateSnapshot,
    restore: StateRestore,
}

struct RegistryInner {
    classes: SlotTable<ClassEntry>,
    methods: SlotTable<MethodEntry>,
    /// Class name → id, for interning and the string-keyed slow path.
    class_ids: RwLock<HashMap<Arc<str>, ClassId>>,
}

/// Per-`(class, method)` marshalling knowledge — what Java gets from
/// serialisable classes, an application registers here once per remotable
/// method (constructions use method name `"new"`). Registration returns a
/// dense [`MethodId`]; per-call marshalling by id is an array index.
#[derive(Clone)]
pub struct MarshalRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MarshalRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MarshalRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MarshalRegistry {
            inner: Arc::new(RegistryInner {
                classes: SlotTable::new(),
                methods: SlotTable::new(),
                class_ids: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Intern `class`, creating an (empty) class slot on first sight.
    pub fn intern_class(&self, class: &str) -> ClassId {
        if let Some(&id) = self.inner.class_ids.read().get(class) {
            return id;
        }
        let mut ids = self.inner.class_ids.write();
        if let Some(&id) = ids.get(class) {
            return id;
        }
        let name: Arc<str> = Arc::from(class);
        let id = ClassId::from_raw(self.inner.classes.push(ClassEntry {
            name: name.clone(),
            methods: RwLock::new(HashMap::new()),
            state: RwLock::new(None),
        }));
        ids.insert(name, id);
        id
    }

    /// The interned id of `class`, if it has been seen.
    pub fn class_id(&self, class: &str) -> Option<ClassId> {
        self.inner.class_ids.read().get(class).copied()
    }

    /// The name behind an interned class id.
    pub fn class_name(&self, class: ClassId) -> WeaveResult<Arc<str>> {
        self.class_entry(class).map(|e| e.name.clone())
    }

    fn class_entry(&self, class: ClassId) -> WeaveResult<&ClassEntry> {
        self.inner
            .classes
            .get(class.raw())
            .ok_or_else(|| WeaveError::remote(format!("unknown class id {}", class.raw())))
    }

    pub(crate) fn method_entry(&self, method: MethodId) -> WeaveResult<&MethodEntry> {
        self.inner
            .methods
            .get(method.raw())
            .ok_or_else(|| WeaveError::remote(format!("unknown method id {}", method.raw())))
    }

    /// Register marshalling for `class.method` with argument tuple `A` and
    /// return type `R`, returning the method's dense id. Registering an
    /// already-known `(class, method)` returns the existing id unchanged.
    pub fn register<A: WireArgs, R: Wire>(&self, class: &str, method: &str) -> MethodId {
        let class_id = self.intern_class(class);
        let entry = self.class_entry(class_id).expect("freshly interned class");
        let mut methods = entry.methods.write();
        if let Some(&id) = methods.get(method) {
            return id;
        }
        let marshal = MethodMarshal {
            encode_args: Box::new(|args, buf| A::encode_args(args, buf)),
            decode_args: Box::new(|bytes| A::decode_args(bytes)),
            encode_ret: Box::new(|ret, buf| {
                let typed = ret.downcast_ref::<R>().ok_or_else(|| WeaveError::TypeMismatch {
                    expected: std::any::type_name::<R>(),
                    context: "marshalling return value".into(),
                })?;
                typed.encode(buf);
                Ok(())
            }),
            decode_ret: Box::new(|bytes| {
                let v: R = R::decode(bytes)?;
                Ok(AnyValue::new(v))
            }),
        };
        let method_name: Arc<str> = Arc::from(method);
        let id = MethodId::from_raw(self.inner.methods.push(MethodEntry {
            class: class_id,
            class_name: entry.name.clone(),
            method_name: method_name.clone(),
            marshal,
        }));
        methods.insert(method_name, id);
        id
    }

    /// The id of `class.method`, if registered.
    pub fn try_method_id(&self, class: &str, method: &str) -> Option<MethodId> {
        let class_id = self.class_id(class)?;
        let entry = self.inner.classes.get(class_id.raw())?;
        entry.methods.read().get(method).copied()
    }

    /// The id of `class.method`, or a [`WeaveError::Remote`] when unknown.
    pub fn method_id(&self, class: &str, method: &str) -> WeaveResult<MethodId> {
        self.try_method_id(class, method).ok_or_else(|| {
            WeaveError::remote(format!("no marshaller registered for {class}.{method}"))
        })
    }

    /// Is marshalling known for `class.method`?
    pub fn knows(&self, class: &str, method: &str) -> bool {
        self.try_method_id(class, method).is_some()
    }

    /// Number of registered methods.
    pub fn method_count(&self) -> usize {
        self.inner.methods.len() as usize
    }

    // ---- by-id fast path (no lock, no hashing, no allocation) ----

    /// Encode an argument pack into `buf` by method id.
    pub fn encode_args_id(
        &self,
        method: MethodId,
        args: &Args,
        buf: &mut BytesMut,
    ) -> WeaveResult<()> {
        (self.method_entry(method)?.marshal.encode_args)(args, buf)
    }

    /// Decode an argument pack from the front of `bytes` by method id.
    pub fn decode_args_id(&self, method: MethodId, bytes: &mut Bytes) -> WeaveResult<Args> {
        (self.method_entry(method)?.marshal.decode_args)(bytes)
    }

    /// Encode a return value into `buf` by method id.
    pub fn encode_ret_id(
        &self,
        method: MethodId,
        ret: &AnyValue,
        buf: &mut BytesMut,
    ) -> WeaveResult<()> {
        (self.method_entry(method)?.marshal.encode_ret)(ret, buf)
    }

    /// Decode a return value from the front of `bytes` by method id.
    pub fn decode_ret_id(&self, method: MethodId, bytes: &mut Bytes) -> WeaveResult<AnyValue> {
        (self.method_entry(method)?.marshal.decode_ret)(bytes)
    }

    // ---- string-keyed conveniences (resolve the id, then index) ----

    /// Encode an argument pack for `class.method`.
    pub fn encode_args(&self, class: &str, method: &str, args: &Args) -> WeaveResult<Bytes> {
        let id = self.method_id(class, method)?;
        let mut buf = BytesMut::new();
        self.encode_args_id(id, args, &mut buf)?;
        Ok(buf.freeze())
    }

    /// Decode an argument pack for `class.method`.
    pub fn decode_args(&self, class: &str, method: &str, bytes: &Bytes) -> WeaveResult<Args> {
        let id = self.method_id(class, method)?;
        let mut view = bytes.clone();
        self.decode_args_id(id, &mut view)
    }

    /// Encode a return value for `class.method`.
    pub fn encode_ret(&self, class: &str, method: &str, ret: &AnyValue) -> WeaveResult<Bytes> {
        let id = self.method_id(class, method)?;
        let mut buf = BytesMut::new();
        self.encode_ret_id(id, ret, &mut buf)?;
        Ok(buf.freeze())
    }

    /// Decode a return value for `class.method`.
    pub fn decode_ret(&self, class: &str, method: &str, bytes: &Bytes) -> WeaveResult<AnyValue> {
        let id = self.method_id(class, method)?;
        let mut view = bytes.clone();
        self.decode_ret_id(id, &mut view)
    }

    // ---- object-state codecs (migration; cold path, name-keyed) ----

    /// Register object-state marshalling for `T`: `extract` captures the
    /// instance's state as a [`Wire`] value, `rebuild` reconstructs an
    /// instance from it. Required for migration (paper Figure 2's
    /// `Point.migrate`).
    pub fn register_state<T, S, E, R>(&self, extract: E, rebuild: R)
    where
        T: weavepar_weave::Weaveable,
        S: Wire,
        E: Fn(&T) -> S + Send + Sync + 'static,
        R: Fn(S) -> T + Send + Sync + 'static,
    {
        let codec = StateCodec {
            snapshot: Arc::new(move |weaver, obj| {
                let state = weaver.space().with_object::<T, _>(obj, |t| extract(t))?;
                Ok(to_bytes(&state))
            }),
            restore: Arc::new(move |weaver, bytes| {
                let state: S = from_bytes(bytes)?;
                Ok(weaver.space().insert(rebuild(state)))
            }),
        };
        let class = self.intern_class(T::CLASS);
        let entry = self.class_entry(class).expect("freshly interned class");
        *entry.state.write() = Some(codec);
    }

    fn state_codec(&self, class: &str) -> WeaveResult<StateCodec> {
        self.class_id(class)
            .and_then(|id| self.inner.classes.get(id.raw()))
            .and_then(|entry| entry.state.read().clone())
            .ok_or_else(|| WeaveError::remote(format!("no state codec registered for `{class}`")))
    }

    /// Snapshot the state of a live object of `class`.
    pub fn snapshot_state(
        &self,
        weaver: &weavepar_weave::Weaver,
        class: &str,
        obj: ObjId,
    ) -> WeaveResult<Bytes> {
        (self.state_codec(class)?.snapshot)(weaver, obj)
    }

    /// Rebuild an instance of `class` from snapshotted state.
    pub fn restore_state(
        &self,
        weaver: &weavepar_weave::Weaver,
        class: &str,
        state: &Bytes,
    ) -> WeaveResult<ObjId> {
        (self.state_codec(class)?.restore)(weaver, state)
    }

    /// Is a state codec known for `class`?
    pub fn knows_state(&self, class: &str) -> bool {
        self.state_codec(class).is_ok()
    }
}

impl std::fmt::Debug for MarshalRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarshalRegistry")
            .field("classes", &self.inner.classes.len())
            .field("methods", &self.inner.methods.len())
            .finish()
    }
}

/// Builder for one `CallPack` frame: many oneway calls to one node, framed
/// into a single contiguous buffer (see the module docs for the layout).
pub struct PackFrame {
    buf: BytesMut,
    count: u32,
}

impl PackFrame {
    /// Start a frame in `buf` (cleared; its capacity is reused).
    pub fn new(mut buf: BytesMut) -> Self {
        buf.clear();
        buf.put_u32_le(0); // count, patched by `finish`
        PackFrame { buf, count: 0 }
    }

    /// Append one call, encoding `args` in place through the registry. On
    /// encode failure the frame is rolled back to its previous state.
    pub fn push(
        &mut self,
        obj: ObjId,
        method: MethodId,
        registry: &MarshalRegistry,
        args: &Args,
    ) -> WeaveResult<()> {
        let rollback = self.buf.len();
        self.buf.put_u64_le(obj.raw());
        self.buf.put_u32_le(method.raw());
        let len_at = self.buf.len();
        self.buf.put_u32_le(0); // args_len, patched below
        if let Err(e) = registry.encode_args_id(method, args, &mut self.buf) {
            self.buf.truncate(rollback);
            return Err(e);
        }
        let args_len = (self.buf.len() - len_at - 4) as u32;
        self.buf[len_at..len_at + 4].copy_from_slice(&args_len.to_le_bytes());
        self.count += 1;
        Ok(())
    }

    /// Append one call whose arguments are already encoded.
    pub fn push_encoded(&mut self, obj: ObjId, method: MethodId, args: &[u8]) {
        self.buf.put_u64_le(obj.raw());
        self.buf.put_u32_le(method.raw());
        self.buf.put_u32_le(args.len() as u32);
        self.buf.put_slice(args);
        self.count += 1;
    }

    /// Calls in the frame so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when no call has been appended.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Frame size in bytes so far (header included).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Patch the header and freeze the frame for submission.
    pub fn finish(mut self) -> Bytes {
        let count = self.count;
        self.buf[0..4].copy_from_slice(&count.to_le_bytes());
        self.buf.freeze()
    }
}

/// Zero-copy reader over a `CallPack` frame: yields `(obj, method, args)`
/// entries whose `args` are sub-views of the frame. Fuses on the first
/// malformed entry.
pub struct PackReader {
    frame: Bytes,
    remaining: u32,
}

impl PackReader {
    /// Open a frame; fails when even the count header is truncated.
    pub fn new(mut frame: Bytes) -> WeaveResult<Self> {
        let remaining = u32::decode(&mut frame)?;
        Ok(PackReader { frame, remaining })
    }

    /// Entries not yet read.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }
}

impl Iterator for PackReader {
    type Item = WeaveResult<(ObjId, MethodId, Bytes)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let entry = (|| {
            let obj = ObjId::decode(&mut self.frame)?;
            let method = MethodId::from_raw(u32::decode(&mut self.frame)?);
            let len = u32::decode(&mut self.frame)? as usize;
            if self.frame.remaining() < len {
                return Err(short("CallPack entry"));
            }
            Ok((obj, method, self.frame.split_to(len)))
        })();
        if entry.is_err() {
            self.remaining = 0;
        }
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavepar_weave::args;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug + Clone>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    /// Satellite-3 harness: the value must round-trip, and *every* strict
    /// prefix of its encoding must fail to decode. (Only meaningful for
    /// values whose full encoding is needed — i.e. everything but `()`.)
    fn roundtrip_and_truncation_matrix<T: Wire + PartialEq + std::fmt::Debug + Clone>(v: T) {
        let bytes = to_bytes(&v);
        assert!(!bytes.is_empty(), "matrix requires a non-empty encoding");
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
        for cut in 0..bytes.len() {
            let mut prefix = bytes.slice(0..cut);
            assert!(
                T::decode(&mut prefix).is_err(),
                "decoding a {cut}/{} byte prefix of {v:?} must fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(1234u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX / 3);
        roundtrip(-7i8);
        roundtrip(-30000i16);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(3.25f32);
        roundtrip(-1.5e300f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(42usize);
        roundtrip(());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip("hello wire".to_string());
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(9u8));
        roundtrip(None::<u8>);
        roundtrip((1u8, "two".to_string()));
        roundtrip((1u8, 2u16, vec![3u32]));
        roundtrip(ObjId::from_raw(77));
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn truncation_matrix_ints() {
        roundtrip_and_truncation_matrix(0x5Au8);
        roundtrip_and_truncation_matrix(0xBEEFu16);
        roundtrip_and_truncation_matrix(0xDEAD_BEEFu32);
        roundtrip_and_truncation_matrix(u64::MAX - 3);
        roundtrip_and_truncation_matrix(-5i8);
        roundtrip_and_truncation_matrix(-12345i16);
        roundtrip_and_truncation_matrix(i32::MIN + 1);
        roundtrip_and_truncation_matrix(i64::MAX - 9);
        roundtrip_and_truncation_matrix(1.5f32);
        roundtrip_and_truncation_matrix(-2.25f64);
        roundtrip_and_truncation_matrix(7usize);
        roundtrip_and_truncation_matrix(true);
        roundtrip_and_truncation_matrix(false);
        roundtrip_and_truncation_matrix(ObjId::from_raw(404));
    }

    #[test]
    fn truncation_matrix_containers() {
        roundtrip_and_truncation_matrix("hello".to_string());
        roundtrip_and_truncation_matrix(String::new());
        roundtrip_and_truncation_matrix(vec![1u64, 2, 3]);
        roundtrip_and_truncation_matrix(Vec::<u32>::new());
        roundtrip_and_truncation_matrix(vec!["a".to_string(), String::new(), "bc".to_string()]);
        roundtrip_and_truncation_matrix(Some(9u32));
        roundtrip_and_truncation_matrix(None::<u8>);
        roundtrip_and_truncation_matrix(vec![Some(1u8), None, Some(3)]);
        roundtrip_and_truncation_matrix((1u8, "two".to_string()));
        roundtrip_and_truncation_matrix((1u8, 2u16, vec![3u32]));
        roundtrip_and_truncation_matrix(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&123456u32);
        let mut cut = bytes.slice(0..2);
        assert!(u32::decode(&mut cut).is_err());
        let bytes = to_bytes(&"hello".to_string());
        let mut cut = bytes.slice(0..6);
        assert!(String::decode(&mut cut).is_err());
    }

    #[test]
    fn short_container_is_an_error() {
        // A Vec whose header promises more elements than the payload holds.
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_u64_le(1);
        let mut b = buf.freeze();
        assert!(Vec::<u64>::decode(&mut b).is_err());
        // A String whose header promises more bytes than remain.
        let mut buf = BytesMut::new();
        buf.put_u32_le(10);
        buf.put_slice(b"abc");
        let mut b = buf.freeze();
        assert!(String::decode(&mut b).is_err());
    }

    #[test]
    fn invalid_bool_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        let mut b = buf.freeze();
        assert!(bool::decode(&mut b).is_err());
        // And through Option's tag byte too.
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        let mut b = buf.freeze();
        assert!(Option::<u8>::decode(&mut b).is_err());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        let mut b = buf.freeze();
        assert!(String::decode(&mut b).is_err());
    }

    #[test]
    fn wire_args_roundtrip() {
        let args = args![5u64, vec![1u64, 2, 3]];
        let mut buf = BytesMut::new();
        <(u64, Vec<u64>)>::encode_args(&args, &mut buf).unwrap();
        let mut bytes = buf.freeze();
        let back = <(u64, Vec<u64>)>::decode_args(&mut bytes).unwrap();
        assert_eq!(*back.get::<u64>(0).unwrap(), 5);
        assert_eq!(*back.get::<Vec<u64>>(1).unwrap(), vec![1, 2, 3]);
        assert_eq!(<(u64, Vec<u64>)>::arity(), 2);
        assert_eq!(<()>::arity(), 0);
    }

    #[test]
    fn wire_args_type_mismatch() {
        let args = args!["oops".to_string()];
        let mut buf = BytesMut::new();
        assert!(<(u64,)>::encode_args(&args, &mut buf).is_err());
    }

    #[test]
    fn registry_end_to_end() {
        let reg = MarshalRegistry::new();
        reg.register::<(u64, u64), ()>("PrimeFilter", "new");
        reg.register::<(Vec<u64>,), Vec<u64>>("PrimeFilter", "filter");
        assert!(reg.knows("PrimeFilter", "filter"));
        assert!(!reg.knows("PrimeFilter", "other"));

        let args = args![vec![9u64, 15, 21]];
        let bytes = reg.encode_args("PrimeFilter", "filter", &args).unwrap();
        let back = reg.decode_args("PrimeFilter", "filter", &bytes).unwrap();
        assert_eq!(*back.get::<Vec<u64>>(0).unwrap(), vec![9, 15, 21]);

        let ret: AnyValue = AnyValue::new(vec![9u64]);
        let rb = reg.encode_ret("PrimeFilter", "filter", &ret).unwrap();
        let rv = reg.decode_ret("PrimeFilter", "filter", &rb).unwrap();
        assert_eq!(*rv.downcast::<Vec<u64>>().unwrap(), vec![9]);
    }

    #[test]
    fn registry_ids_are_dense_and_stable() {
        let reg = MarshalRegistry::new();
        let a = reg.register::<(u64,), ()>("C", "a");
        let b = reg.register::<(u64,), ()>("C", "b");
        let c = reg.register::<(), ()>("D", "a");
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Re-registration returns the existing id.
        assert_eq!(reg.register::<(u64,), ()>("C", "a"), a);
        assert_eq!(reg.method_id("C", "a").unwrap(), a);
        assert_eq!(reg.method_id("D", "a").unwrap(), c);
        assert_eq!(reg.method_count(), 3);
        // Class ids are interned once.
        assert_eq!(reg.intern_class("C"), reg.class_id("C").unwrap());
        assert_eq!(&*reg.class_name(reg.class_id("D").unwrap()).unwrap(), "D");
    }

    #[test]
    fn registry_by_id_matches_string_path() {
        let reg = MarshalRegistry::new();
        let id = reg.register::<(u64, String), String>("C", "m");
        let args = args![7u64, "x".to_string()];
        let via_string = reg.encode_args("C", "m", &args).unwrap();
        let mut buf = BytesMut::new();
        reg.encode_args_id(id, &args, &mut buf).unwrap();
        assert_eq!(buf.freeze(), via_string);
        let mut view = via_string.clone();
        let back = reg.decode_args_id(id, &mut view).unwrap();
        assert_eq!(*back.get::<u64>(0).unwrap(), 7);
    }

    #[test]
    fn registry_unknown_method_errors() {
        let reg = MarshalRegistry::new();
        let err = reg.encode_args("X", "y", &args![]).unwrap_err();
        assert!(matches!(err, WeaveError::Remote(_)));
        assert!(reg.method_id("X", "y").is_err());
        assert!(reg.decode_args_id(MethodId::from_raw(999), &mut Bytes::new()).is_err());
        assert!(reg.class_name(ClassId::from_raw(999)).is_err());
    }

    #[test]
    fn registry_ret_type_mismatch() {
        let reg = MarshalRegistry::new();
        reg.register::<(), u64>("C", "m");
        let ret: AnyValue = AnyValue::new("not a u64".to_string());
        assert!(reg.encode_ret("C", "m", &ret).is_err());
    }

    #[test]
    fn slot_table_chunk_arithmetic() {
        // Chunk c holds 64 << c slots starting at 64 * (2^c - 1).
        assert_eq!(SlotTable::<()>::locate(0), (0, 0));
        assert_eq!(SlotTable::<()>::locate(63), (0, 63));
        assert_eq!(SlotTable::<()>::locate(64), (1, 0));
        assert_eq!(SlotTable::<()>::locate(191), (1, 127));
        assert_eq!(SlotTable::<()>::locate(192), (2, 0));
        let t: SlotTable<usize> = SlotTable::new();
        for i in 0..300 {
            assert_eq!(t.push(i), i as u32);
        }
        for i in 0..300u32 {
            assert_eq!(t.get(i), Some(&(i as usize)));
        }
        assert_eq!(t.get(300), None);
    }

    #[test]
    fn pack_frame_roundtrip() {
        let reg = MarshalRegistry::new();
        let add = reg.register::<(u64,), u64>("Adder", "add");
        let mut frame = PackFrame::new(BytesMut::new());
        assert!(frame.is_empty());
        for i in 0..5u64 {
            frame.push(ObjId::from_raw(i + 1), add, &reg, &args![i]).unwrap();
        }
        assert_eq!(frame.count(), 5);
        let bytes = frame.finish();
        let reader = PackReader::new(bytes).unwrap();
        assert_eq!(reader.remaining(), 5);
        for (i, entry) in reader.enumerate() {
            let (obj, method, mut argview) = entry.unwrap();
            assert_eq!(obj, ObjId::from_raw(i as u64 + 1));
            assert_eq!(method, add);
            let args = reg.decode_args_id(method, &mut argview).unwrap();
            assert_eq!(*args.get::<u64>(0).unwrap(), i as u64);
        }
    }

    #[test]
    fn pack_frame_push_encoded_matches_push() {
        let reg = MarshalRegistry::new();
        let add = reg.register::<(u64,), u64>("Adder", "add");
        let args = args![9u64];
        let mut a = PackFrame::new(BytesMut::new());
        a.push(ObjId::from_raw(3), add, &reg, &args).unwrap();
        let pre = reg.encode_args("Adder", "add", &args).unwrap();
        let mut b = PackFrame::new(BytesMut::new());
        b.push_encoded(ObjId::from_raw(3), add, &pre);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn pack_frame_rolls_back_failed_pushes() {
        let reg = MarshalRegistry::new();
        let add = reg.register::<(u64,), u64>("Adder", "add");
        let mut frame = PackFrame::new(BytesMut::new());
        frame.push(ObjId::from_raw(1), add, &reg, &args![1u64]).unwrap();
        let len_before = frame.len();
        // Wrong argument type: the push must fail and leave the frame as-is.
        assert!(frame.push(ObjId::from_raw(2), add, &reg, &args!["bad".to_string()]).is_err());
        assert_eq!(frame.len(), len_before);
        assert_eq!(frame.count(), 1);
        let reader = PackReader::new(frame.finish()).unwrap();
        assert_eq!(reader.count(), 1);
    }

    #[test]
    fn pack_frame_truncation_matrix() {
        let reg = MarshalRegistry::new();
        let add = reg.register::<(u64,), u64>("Adder", "add");
        let mut frame = PackFrame::new(BytesMut::new());
        frame.push(ObjId::from_raw(1), add, &reg, &args![1u64]).unwrap();
        frame.push(ObjId::from_raw(2), add, &reg, &args![2u64]).unwrap();
        let bytes = frame.finish();
        for cut in 0..bytes.len() {
            let prefix = bytes.slice(0..cut);
            match PackReader::new(prefix) {
                // Header truncated: the open itself fails.
                Err(_) => assert!(cut < 4),
                // Entries truncated: iteration must surface an error.
                Ok(reader) => {
                    let entries: Vec<_> = reader.collect();
                    assert!(
                        entries.iter().any(|e| e.is_err()),
                        "a {cut}/{} byte prefix must not decode cleanly",
                        bytes.len()
                    );
                }
            }
        }
        // The empty frame is valid and yields nothing.
        let empty = PackFrame::new(BytesMut::new()).finish();
        assert_eq!(PackReader::new(empty).unwrap().count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn u64_roundtrip(v in any::<u64>()) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<u64>(&b).unwrap(), v);
        }

        #[test]
        fn i64_roundtrip(v in any::<i64>()) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<i64>(&b).unwrap(), v);
        }

        #[test]
        fn f64_roundtrip(v in any::<f64>().prop_filter("not NaN", |f| !f.is_nan())) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<f64>(&b).unwrap(), v);
        }

        #[test]
        fn string_roundtrip(v in ".{0,64}") {
            let s = v.to_string();
            let b = to_bytes(&s);
            prop_assert_eq!(from_bytes::<String>(&b).unwrap(), s);
        }

        #[test]
        fn vec_u64_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..128)) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<Vec<u64>>(&b).unwrap(), v);
        }

        #[test]
        fn nested_roundtrip(v in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..8), 0..8)) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<Vec<Vec<u32>>>(&b).unwrap(), v);
        }

        #[test]
        fn tuple_roundtrip(a in any::<u64>(), s in ".{0,16}", o in proptest::option::of(any::<i32>())) {
            let v = (a, s.to_string(), vec![o]);
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<(u64, String, Vec<Option<i32>>)>(&b).unwrap(), v);
        }

        /// Decoding arbitrary junk never panics.
        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let b = Bytes::from(bytes);
            let _ = from_bytes::<u64>(&b);
            let _ = from_bytes::<String>(&b);
            let _ = from_bytes::<Vec<u64>>(&b);
            let _ = from_bytes::<(u64, String)>(&b);
            let _ = from_bytes::<Option<Vec<u8>>>(&b);
        }

        /// Reading arbitrary junk as a pack frame never panics.
        #[test]
        fn pack_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
            if let Ok(reader) = PackReader::new(Bytes::from(bytes)) {
                for entry in reader.take(64) {
                    let _ = entry;
                }
            }
        }

        /// Packed frames round-trip for arbitrary payload sizes.
        #[test]
        fn pack_frame_roundtrips(vals in proptest::collection::vec(any::<u64>(), 0..32)) {
            let reg = MarshalRegistry::new();
            let add = reg.register::<(u64,), u64>("A", "m");
            let mut frame = PackFrame::new(BytesMut::new());
            for (i, v) in vals.iter().enumerate() {
                frame.push(ObjId::from_raw(i as u64), add, &reg, &weavepar_weave::args![*v]).unwrap();
            }
            let reader = PackReader::new(frame.finish()).unwrap();
            let mut seen = Vec::new();
            for entry in reader {
                let (_, method, mut argview) = entry.unwrap();
                let args = reg.decode_args_id(method, &mut argview).unwrap();
                seen.push(*args.get::<u64>(0).unwrap());
            }
            prop_assert_eq!(seen, vals);
        }
    }
}
