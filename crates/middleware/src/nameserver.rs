//! The RMI registry analogue.
//!
//! The paper's Figure 14 registers each remote `PrimeFilter` under an
//! automatically generated name (`PS1`, `PS2`, ...) and clients look the
//! names up to obtain remote references. [`NameServer`] provides exactly
//! that: a process-wide name → [`RemoteRef`] map plus the `PS<n>` name
//! generator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use weavepar_weave::{WeaveError, WeaveResult};

use crate::fabric::RemoteRef;

/// A shared name → remote-reference registry.
#[derive(Clone, Default)]
pub struct NameServer {
    inner: Arc<Inner>,
}

#[derive(Default)]
struct Inner {
    entries: RwLock<HashMap<String, RemoteRef>>,
    /// Names whose binding was swept because its hosting node died, keyed to
    /// the dead node: a later [`NameServer::lookup`] fails fast with a typed
    /// [`WeaveError::NodeDown`] instead of an opaque "not bound", so callers
    /// (and supervisor aspects) can tell node loss from a never-bound name.
    tombstones: RwLock<HashMap<String, usize>>,
    counter: AtomicU64,
}

impl NameServer {
    /// An empty name server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `name` to `reference` (rebinding replaces, like RMI `rebind`).
    /// Rebinding a tombstoned name clears the tombstone — the name now
    /// points at a live replacement.
    pub fn rebind(&self, name: impl Into<String>, reference: RemoteRef) {
        let name = name.into();
        self.inner.tombstones.write().remove(&name);
        self.inner.entries.write().insert(name, reference);
    }

    /// Look up a name.
    pub fn lookup(&self, name: &str) -> WeaveResult<RemoteRef> {
        if let Some(reference) = self.inner.entries.read().get(name).copied() {
            return Ok(reference);
        }
        if let Some(node) = self.inner.tombstones.read().get(name).copied() {
            return Err(WeaveError::NodeDown { node });
        }
        Err(WeaveError::remote(format!("name server: `{name}` not bound")))
    }

    /// Remove a binding. Returns true when it existed.
    pub fn unbind(&self, name: &str) -> bool {
        self.inner.entries.write().remove(name).is_some()
    }

    /// Sweep every binding hosted on `node` (the node died), leaving
    /// tombstones so lookups fail fast with [`WeaveError::NodeDown`] rather
    /// than pretending the name was never bound. Returns the number of
    /// bindings swept.
    pub fn unbind_node(&self, node: usize) -> usize {
        let mut entries = self.inner.entries.write();
        let mut tombstones = self.inner.tombstones.write();
        let dead: Vec<String> =
            entries.iter().filter(|(_, r)| r.node == node).map(|(name, _)| name.clone()).collect();
        for name in &dead {
            entries.remove(name);
            tombstones.insert(name.clone(), node);
        }
        dead.len()
    }

    /// Generate the next automatic name with the given prefix —
    /// the paper's `new String("PS" + (++count))`.
    pub fn next_name(&self, prefix: &str) -> String {
        let n = self.inner.counter.fetch_add(1, Ordering::Relaxed) + 1;
        format!("{prefix}{n}")
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.inner.entries.read().len()
    }

    /// True when no name is bound.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All bound names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.entries.read().keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for NameServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameServer").field("bindings", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavepar_weave::ObjId;

    fn rref(node: usize, obj: u64) -> RemoteRef {
        RemoteRef { node, obj: ObjId::from_raw(obj), class: crate::wire::ClassId::from_raw(0) }
    }

    #[test]
    fn bind_lookup_unbind() {
        let ns = NameServer::new();
        assert!(ns.is_empty());
        ns.rebind("PS1", rref(2, 40));
        assert_eq!(ns.lookup("PS1").unwrap(), rref(2, 40));
        assert!(matches!(ns.lookup("PS2"), Err(WeaveError::Remote(_))));
        assert!(ns.unbind("PS1"));
        assert!(!ns.unbind("PS1"));
        assert!(ns.lookup("PS1").is_err());
    }

    #[test]
    fn rebind_replaces() {
        let ns = NameServer::new();
        ns.rebind("PS1", rref(0, 1));
        ns.rebind("PS1", rref(1, 2));
        assert_eq!(ns.lookup("PS1").unwrap(), rref(1, 2));
        assert_eq!(ns.len(), 1);
    }

    #[test]
    fn automatic_names_are_sequential() {
        let ns = NameServer::new();
        assert_eq!(ns.next_name("PS"), "PS1");
        assert_eq!(ns.next_name("PS"), "PS2");
        assert_eq!(ns.next_name("W"), "W3");
    }

    #[test]
    fn names_are_sorted() {
        let ns = NameServer::new();
        ns.rebind("b", rref(0, 1));
        ns.rebind("a", rref(0, 2));
        assert_eq!(ns.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn unbind_node_sweeps_and_tombstones() {
        let ns = NameServer::new();
        ns.rebind("PS1", rref(0, 1));
        ns.rebind("PS2", rref(1, 2));
        ns.rebind("PS3", rref(1, 3));
        // Sweeping node 1 removes its two bindings, leaves node 0's.
        assert_eq!(ns.unbind_node(1), 2);
        assert_eq!(ns.len(), 1);
        assert_eq!(ns.lookup("PS1").unwrap(), rref(0, 1));
        // Swept names fail fast with the dead node's id, not "not bound".
        assert!(matches!(ns.lookup("PS2"), Err(WeaveError::NodeDown { node: 1 })));
        assert!(matches!(ns.lookup("PS3"), Err(WeaveError::NodeDown { node: 1 })));
        // A never-bound name is still the opaque error.
        assert!(matches!(ns.lookup("PS9"), Err(WeaveError::Remote(_))));
        // Rebinding a swept name to a survivor clears the tombstone.
        ns.rebind("PS2", rref(0, 9));
        assert_eq!(ns.lookup("PS2").unwrap(), rref(0, 9));
        // Sweeping an unknown node is a no-op.
        assert_eq!(ns.unbind_node(7), 0);
    }

    #[test]
    fn clones_share_state() {
        let ns = NameServer::new();
        let ns2 = ns.clone();
        ns.rebind("PS1", rref(3, 9));
        assert_eq!(ns2.lookup("PS1").unwrap(), rref(3, 9));
    }
}
