//! The [`Weaver`]: aspect registry, join-point dispatcher and composition
//! root of the runtime.
//!
//! A weaver owns the object space, the inter-type store, the plugged aspects
//! and (optionally) a trace recorder. All join points — constructions and
//! calls made through [`Handle`](crate::object::Handle)s or the dynamic
//! `invoke_*` entry points — flow through [`Weaver::invoke_call`] /
//! [`Weaver::construct`], which match the plugged advice and walk the chain.
//!
//! Matching results are cached per `(signature, kind, provenance)` in the
//! published [`snapshot`](crate::snapshot) of the aspect set; every mutation
//! of that set (plug, unplug, enable, disable, cache toggle) publishes a new
//! generation-stamped snapshot with a fresh cache, so plugging and unplugging
//! at run time is always honoured without any clear-the-world invalidation.
//! The cache can be disabled for ablation benchmarks
//! ([`Weaver::set_match_cache`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use crate::advice::AdviceEntry;
use crate::aspect::{Aspect, AspectId, PluggedAspect};
use crate::context::{self, Provenance};
use crate::dispatch::{ClassInfo, Weaveable};
use crate::error::{WeaveError, WeaveResult};
use crate::intertype::IntertypeStore;
use crate::invocation::{BaseAction, Invocation, JoinPointKind};
use crate::metrics::{DispatchStats, MetricsRegistry};
use crate::object::{Handle, ObjId, ObjectSpace};
use crate::signature::Signature;
use crate::snapshot::{AspectCell, Chain, MetricsCell, RecorderCell};
use crate::trace::{self, Recorder};
use crate::value::{AnyValue, Args};

struct Slot {
    id: AspectId,
    name: String,
    enabled: bool,
    advice: Vec<Arc<AdviceEntry>>,
}

struct WeaverInner {
    space: ObjectSpace,
    intertype: IntertypeStore,
    /// Master aspect list (administrative operations). The dispatch hot path
    /// never touches this lock: it reads the published snapshot instead.
    aspects: RwLock<Vec<Slot>>,
    snapshot: AspectCell,
    cache_enabled: AtomicBool,
    next_aspect: AtomicU64,
    recorder: RecorderCell,
    metrics: MetricsCell,
    classes: RwLock<HashMap<&'static str, ClassInfo>>,
}

/// The weaving runtime. Cheap to clone (shared internally).
#[derive(Clone)]
pub struct Weaver {
    inner: Arc<WeaverInner>,
}

impl Weaver {
    /// A fresh weaver with no aspects, no objects and no recorder.
    pub fn new() -> Self {
        Weaver {
            inner: Arc::new(WeaverInner {
                space: ObjectSpace::new(),
                intertype: IntertypeStore::new(),
                aspects: RwLock::new(Vec::new()),
                snapshot: AspectCell::new(),
                cache_enabled: AtomicBool::new(true),
                next_aspect: AtomicU64::new(1),
                recorder: RecorderCell::new(),
                metrics: MetricsCell::new(),
                classes: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// The object space holding aspect-managed objects.
    pub fn space(&self) -> &ObjectSpace {
        &self.inner.space
    }

    /// The inter-type declaration store.
    pub fn intertype(&self) -> &IntertypeStore {
        &self.inner.intertype
    }

    // ---- class registry -----------------------------------------------------

    /// Register a weaveable class so it can be resolved by name (required by
    /// distribution middleware on the receiving node). Idempotent.
    pub fn register_class<T: Weaveable>(&self) {
        self.inner.classes.write().entry(T::CLASS).or_insert_with(ClassInfo::of::<T>);
    }

    /// Look up a registered class by name.
    pub fn class_by_name(&self, class: &str) -> Option<ClassInfo> {
        self.inner.classes.read().get(class).copied()
    }

    // ---- aspect lifecycle ----------------------------------------------------

    /// Plug an aspect. Its advice participates in matching immediately.
    pub fn plug(&self, aspect: Aspect) -> PluggedAspect {
        let id = AspectId::from_raw(self.inner.next_aspect.fetch_add(1, Ordering::Relaxed));
        let advice = aspect
            .advice
            .into_iter()
            .enumerate()
            .map(|(index, (pointcut, advice))| {
                Arc::new(AdviceEntry {
                    pointcut,
                    advice,
                    aspect: id,
                    precedence: aspect.precedence,
                    index,
                    fired: std::sync::atomic::AtomicU64::new(0),
                })
            })
            .collect();
        let slot = Slot { id, name: aspect.name.clone(), enabled: true, advice };
        let mut aspects = self.inner.aspects.write();
        aspects.push(slot);
        self.republish(&aspects);
        drop(aspects);
        PluggedAspect { id, name: aspect.name }
    }

    /// Unplug an aspect entirely. Returns true when it was plugged.
    pub fn unplug(&self, plugged: &PluggedAspect) -> bool {
        let mut aspects = self.inner.aspects.write();
        let before = aspects.len();
        aspects.retain(|s| s.id != plugged.id);
        let removed = aspects.len() != before;
        if removed {
            self.republish(&aspects);
        }
        removed
    }

    /// Enable or disable an aspect without unplugging it (the paper's
    /// "(un)plugged on the fly" debugging workflow). Returns true when the
    /// aspect exists.
    pub fn set_enabled(&self, plugged: &PluggedAspect, enabled: bool) -> bool {
        let mut aspects = self.inner.aspects.write();
        match aspects.iter_mut().find(|s| s.id == plugged.id) {
            Some(slot) => slot.enabled = enabled,
            None => return false,
        }
        self.republish(&aspects);
        true
    }

    /// Is the aspect currently plugged (regardless of enablement)?
    pub fn is_plugged(&self, plugged: &PluggedAspect) -> bool {
        self.inner.aspects.read().iter().any(|s| s.id == plugged.id)
    }

    /// Names of all plugged aspects, in plug order.
    pub fn aspect_names(&self) -> Vec<String> {
        self.inner.aspects.read().iter().map(|s| s.name.clone()).collect()
    }

    /// How many times each plugged aspect's advice has fired, by name —
    /// the paper's "understand the overall parallelism structure" debugging
    /// story, quantified: after a run, `FarmThreads` shows e.g.
    /// `Partition.farm: 2, Concurrency.async: 50, ...`.
    pub fn advice_fire_counts(&self) -> Vec<(String, u64)> {
        self.inner
            .aspects
            .read()
            .iter()
            .map(|s| (s.name.clone(), s.advice.iter().map(|a| a.fired()).sum()))
            .collect()
    }

    /// Total advice declarations across enabled aspects.
    pub fn active_advice_count(&self) -> usize {
        self.inner.aspects.read().iter().filter(|s| s.enabled).map(|s| s.advice.len()).sum()
    }

    // ---- recorder ------------------------------------------------------------

    /// Install (or remove) a trace recorder. Publishes a new recorder
    /// snapshot; the advice match cache is untouched.
    pub fn set_recorder(&self, recorder: Option<Recorder>) {
        self.inner.recorder.set(recorder);
    }

    /// The installed recorder, if any.
    pub fn recorder(&self) -> Option<Recorder> {
        self.inner.recorder.exact()
    }

    // ---- metrics -------------------------------------------------------------

    /// Install a metrics registry: every dispatched call and construction is
    /// counted into `weaver.calls` / `weaver.constructs` / `weaver.errors`.
    /// The handles are resolved once here, so the installed-idle dispatch
    /// path is two relaxed sharded increments — no clock reads, no
    /// allocation. With no registry installed the cost is one relaxed load
    /// (the same pre-flight shape as the trace recorder).
    pub fn install_metrics(&self, registry: &MetricsRegistry) {
        self.inner.metrics.set(Some(DispatchStats::new(registry)));
    }

    /// Remove the installed metrics registry.
    pub fn clear_metrics(&self) {
        self.inner.metrics.set(None);
    }

    /// The installed metrics registry, if any.
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.inner.metrics.get().as_ref().as_ref().map(|s| s.registry.clone())
    }

    /// Enable/disable the advice match cache (ablation benchmarks).
    pub fn set_match_cache(&self, enabled: bool) {
        self.inner.cache_enabled.store(enabled, Ordering::Relaxed);
        // Republishing swaps in a snapshot with the new flag (and an empty
        // cache), which is also the invalidation.
        let aspects = self.inner.aspects.write();
        self.republish(&aspects);
    }

    // ---- join points ----------------------------------------------------------

    /// Woven construction of `T`: runs construction advice, then the base
    /// constructor, returning a handle to whatever object the advice chain
    /// decided the client should see.
    pub fn construct<T: Weaveable>(&self, args: Args) -> WeaveResult<Handle<T>> {
        self.register_class::<T>();
        let id = self.construct_info(ClassInfo::of::<T>(), args)?;
        Ok(Handle::from_id(self, id))
    }

    /// Woven construction by class name (middleware receiving side).
    pub fn construct_dyn(&self, class: &str, args: Args) -> WeaveResult<ObjId> {
        let info = self
            .class_by_name(class)
            .ok_or_else(|| WeaveError::Construction(format!("class `{class}` not registered")))?;
        self.construct_info(info, args)
    }

    /// Unwoven construction of `T`: no advice, straight to the constructor.
    pub fn construct_unwoven<T: Weaveable>(&self, args: Args) -> WeaveResult<Handle<T>> {
        self.register_class::<T>();
        let id = self.base_construct(ClassInfo::of::<T>(), args, false, trace::thread_tag())?;
        Ok(Handle::from_id(self, id))
    }

    /// Unwoven construction by class name (what a distribution server does
    /// with a construct request it received off the wire — the weaving
    /// already happened on the client side).
    pub fn construct_dyn_unwoven(&self, class: &str, args: Args) -> WeaveResult<ObjId> {
        let info = self
            .class_by_name(class)
            .ok_or_else(|| WeaveError::Construction(format!("class `{class}` not registered")))?;
        self.base_construct(info, args, false, trace::thread_tag())
    }

    fn construct_info(&self, info: ClassInfo, args: Args) -> WeaveResult<ObjId> {
        let signature = Signature::construction(info.class);
        let provenance = context::current();
        let chain = self.matched_advice(signature, JoinPointKind::Construct, provenance);
        if chain.is_empty() {
            return self.base_construct(info, args, false, trace::thread_tag());
        }
        let ret = Invocation::new(
            self.clone(),
            signature,
            JoinPointKind::Construct,
            None,
            provenance,
            args,
            chain,
            BaseAction::Construct(info),
            false,
        )
        .run()?;
        crate::value::downcast_ret::<ObjId>(ret)
    }

    /// Woven method call: full join-point pipeline.
    pub fn invoke_call(
        &self,
        target: ObjId,
        class: &'static str,
        method: &'static str,
        args: Args,
    ) -> WeaveResult<AnyValue> {
        let signature = Signature::new(class, method);
        let provenance = context::current();
        let chain = self.matched_advice(signature, JoinPointKind::Call, provenance);
        if chain.is_empty() {
            let _cflow = context::push_cflow(signature);
            return self.base_call(signature, target, args, false, trace::thread_tag());
        }
        let _cflow = context::push_cflow(signature);
        Invocation::new(
            self.clone(),
            signature,
            JoinPointKind::Call,
            Some(target),
            provenance,
            args,
            chain,
            BaseAction::Call,
            false,
        )
        .run()
    }

    /// Woven method call with a dynamic method name: the class is resolved
    /// from the live object, the method name from its dispatch table or the
    /// inter-type extensions.
    pub fn invoke_call_dyn(
        &self,
        target: ObjId,
        method: &str,
        args: Args,
    ) -> WeaveResult<AnyValue> {
        let info = self.inner.space.class_info(target)?;
        let method = self.resolve_method_name(&info, method)?;
        self.invoke_call(target, info.class, method, args)
    }

    /// Unwoven method call: no advice, straight to base dispatch (still
    /// traced). This is what a distribution server uses to execute a call it
    /// received off the wire, and what aspect internals use to sidestep
    /// their own pointcuts.
    pub fn invoke_unwoven(&self, target: ObjId, method: &str, args: Args) -> WeaveResult<AnyValue> {
        let info = self.inner.space.class_info(target)?;
        let method = self.resolve_method_name(&info, method)?;
        self.base_call(Signature::new(info.class, method), target, args, false, trace::thread_tag())
    }

    fn resolve_method_name(&self, info: &ClassInfo, method: &str) -> WeaveResult<&'static str> {
        if let Some(m) = info.resolve_method(method) {
            return Ok(m);
        }
        if let Some((_, m)) = self.inner.intertype.resolve_method(info.class, method) {
            return Ok(m);
        }
        Err(WeaveError::NoSuchMethod { class: info.class.into(), method: method.into() })
    }

    // ---- base actions (innermost proceed) --------------------------------------

    pub(crate) fn base_call(
        &self,
        signature: Signature,
        target: ObjId,
        args: Args,
        async_boundary: bool,
        issuer: u64,
    ) -> WeaveResult<AnyValue> {
        // One shard read resolves both the class record and the instance; the
        // monitor is then taken without revisiting the map.
        let (info, instance) = self.inner.space.lookup(target)?;
        let in_table = info.methods.contains(&signature.method);
        // One relaxed load skips all recorder bookkeeping when none is
        // installed — the steady-state dispatch path.
        let recorder_snap =
            if self.inner.recorder.is_installed() { Some(self.inner.recorder.get()) } else { None };
        let recorder = recorder_snap.as_deref().and_then(|r| r.as_ref());
        // Same pre-flight shape for metrics: the uninstalled path pays one
        // relaxed load; the installed-idle path pays sharded relaxed
        // increments and never reads the clock.
        let metrics_snap =
            if self.inner.metrics.is_installed() { Some(self.inner.metrics.get()) } else { None };
        let metrics = metrics_snap.as_deref().and_then(|m| m.as_ref());
        if let Some(stats) = metrics {
            stats.calls.inc();
        }

        let (task, model_cost) = match recorder {
            Some(rec) => {
                let bytes = (info.arg_bytes)(signature.method, &args);
                let model = rec.model_cost(&signature, &args);
                (
                    Some(rec.begin_task(signature, Some(target), bytes, async_boundary, issuer)),
                    model,
                )
            }
            None => (None, None),
        };

        let result = {
            let _prov = context::push(Provenance::Core);
            let _task = trace::push_task(task);
            // The clock is only read when a recorder needs wall-time costs.
            let start = recorder.map(|_| Instant::now());
            let result = if in_table {
                ObjectSpace::dispatch_on(&info, &instance, target, signature.method, args)
            } else {
                drop(instance);
                self.inner.intertype.call_method(
                    self,
                    signature.class,
                    signature.method,
                    target,
                    args,
                )
            };
            if let (Some(rec), Some(task)) = (recorder, task) {
                let cost = model_cost
                    .unwrap_or_else(|| start.expect("clock read when recording").elapsed());
                let ret_bytes =
                    result.as_ref().map(|r| (info.ret_bytes)(signature.method, r)).unwrap_or(0);
                rec.end_task(task, cost, ret_bytes);
            }
            result
        };
        if let (Some(rec), Some(task)) = (recorder, task) {
            // Whatever this thread's advice does next (e.g. forward the
            // result down the pipeline) happens after this task.
            trace::note_completion(rec.id(), task);
        }
        if let (Some(stats), Err(_)) = (metrics, &result) {
            stats.errors.inc();
        }
        result
    }

    pub(crate) fn base_construct(
        &self,
        info: ClassInfo,
        args: Args,
        async_boundary: bool,
        issuer: u64,
    ) -> WeaveResult<ObjId> {
        let signature = Signature::construction(info.class);
        let recorder_snap =
            if self.inner.recorder.is_installed() { Some(self.inner.recorder.get()) } else { None };
        let recorder = recorder_snap.as_deref().and_then(|r| r.as_ref());
        let metrics_snap =
            if self.inner.metrics.is_installed() { Some(self.inner.metrics.get()) } else { None };
        if let Some(stats) = metrics_snap.as_deref().and_then(|m| m.as_ref()) {
            stats.constructs.inc();
        }
        let (bytes, model_cost) = match recorder {
            Some(rec) => {
                ((info.arg_bytes)(Signature::NEW, &args), rec.model_cost(&signature, &args))
            }
            None => (0, None),
        };
        let start = recorder.map(|_| Instant::now());
        let constructed = {
            let _prov = context::push(Provenance::Core);
            (info.construct)(args)
        };
        let boxed = match constructed {
            Ok(boxed) => boxed,
            Err(err) => {
                if let Some(stats) = metrics_snap.as_deref().and_then(|m| m.as_ref()) {
                    stats.errors.inc();
                }
                return Err(err);
            }
        };
        let id = self.inner.space.insert_erased(info, boxed);
        if let Some(rec) = recorder {
            let task = rec.begin_task(signature, Some(id), bytes, async_boundary, issuer);
            let cost =
                model_cost.unwrap_or_else(|| start.expect("clock read when recording").elapsed());
            rec.end_task(task, cost, 0);
            trace::note_completion(rec.id(), task);
        }
        Ok(id)
    }

    // ---- advice matching ---------------------------------------------------------

    fn matched_advice(
        &self,
        signature: Signature,
        kind: JoinPointKind,
        provenance: Provenance,
    ) -> Chain {
        self.inner.snapshot.matched(signature, kind, provenance)
    }

    /// Publish the enabled advice set as a new immutable snapshot. Must be
    /// called with the aspect write lock held, which serialises publications.
    fn republish(&self, aspects: &[Slot]) {
        let advice: Vec<Arc<AdviceEntry>> =
            aspects.iter().filter(|s| s.enabled).flat_map(|s| s.advice.iter().cloned()).collect();
        self.inner.snapshot.publish(self.inner.cache_enabled.load(Ordering::Relaxed), advice);
    }

    /// The published aspect snapshot (tests and diagnostics).
    #[cfg(test)]
    pub(crate) fn debug_snapshot(&self) -> Arc<crate::snapshot::AspectsSnapshot> {
        self.inner.snapshot.snapshot()
    }
}

impl Default for Weaver {
    fn default() -> Self {
        Weaver::new()
    }
}

impl std::fmt::Debug for Weaver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Weaver")
            .field("objects", &self.inner.space.len())
            .field("aspects", &self.inner.aspects.read().len())
            .finish()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::pointcut::Pointcut;
    use crate::value::downcast_ret;
    use crate::{args, ret};
    use parking_lot::Mutex;

    /// Minimal weaveable class used across the registry tests.
    pub(crate) struct Acc {
        pub(crate) total: i64,
    }

    impl Weaveable for Acc {
        const CLASS: &'static str = "Acc";

        fn construct(mut args: Args) -> WeaveResult<Self> {
            Ok(Acc { total: args.take(0)? })
        }

        fn dispatch(&mut self, method: &'static str, mut args: Args) -> WeaveResult<AnyValue> {
            match method {
                "add" => {
                    self.total += args.take::<i64>(0)?;
                    Ok(ret!())
                }
                "total" => Ok(ret!(self.total)),
                _ => Err(WeaveError::NoSuchMethod { class: "Acc".into(), method: method.into() }),
            }
        }

        fn methods() -> &'static [&'static str] {
            &["add", "total"]
        }

        fn arg_bytes(method: &'static str, args: &Args) -> usize {
            match method {
                "add" | Signature::NEW => args.get::<i64>(0).map(|_| 8).unwrap_or(0),
                _ => 0,
            }
        }
    }

    fn total(weaver: &Weaver, h: &Handle<Acc>) -> i64 {
        downcast_ret::<i64>(weaver.invoke_call(h.id(), "Acc", "total", args![]).unwrap()).unwrap()
    }

    #[test]
    fn unwoven_construct_and_call() {
        let weaver = Weaver::new();
        let h = weaver.construct::<Acc>(args![10i64]).unwrap();
        h.call("add", args![5i64]).unwrap();
        assert_eq!(total(&weaver, &h), 15);
    }

    #[test]
    fn around_advice_wraps_calls() {
        let weaver = Weaver::new();
        // Doubling aspect: rewrite the argument before proceeding.
        let doubling = Aspect::named("Doubling")
            .around(Pointcut::call("Acc.add"), |inv: &mut Invocation| {
                let v = *inv.arg::<i64>(0)?;
                inv.args_mut()?.set(0, v * 2)?;
                inv.proceed()
            })
            .build();
        let plugged = weaver.plug(doubling);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![3i64]).unwrap();
        assert_eq!(total(&weaver, &h), 6);
        weaver.unplug(&plugged);
        h.call("add", args![3i64]).unwrap();
        assert_eq!(total(&weaver, &h), 9);
    }

    #[test]
    fn advice_can_replace_the_event() {
        let weaver = Weaver::new();
        let suppress = Aspect::named("Suppress")
            .around(Pointcut::call("Acc.add"), |_inv: &mut Invocation| Ok(ret!()))
            .build();
        weaver.plug(suppress);
        let h = weaver.construct::<Acc>(args![7i64]).unwrap();
        h.call("add", args![100i64]).unwrap();
        assert_eq!(total(&weaver, &h), 7);
    }

    #[test]
    fn construction_advice_object_duplication() {
        // The paper's Figure 8 block 1: one `new` becomes a pipeline of
        // objects; the client receives the first element.
        let weaver = Weaver::new();
        let duplication = Aspect::named("Duplication")
            .around(Pointcut::construct("Acc"), |inv: &mut Invocation| {
                let mut first = None;
                for i in 0..3i64 {
                    let id = inv.construct_sibling(args![i * 100])?;
                    if first.is_none() {
                        first = Some(id);
                    }
                }
                Ok(ret!(first.unwrap()))
            })
            .build();
        weaver.plug(duplication);
        let h = weaver.construct::<Acc>(args![999i64]).unwrap();
        // Three aspect-managed objects exist; the original args were never used.
        assert_eq!(weaver.space().ids_of_class("Acc").len(), 3);
        assert_eq!(total(&weaver, &h), 0);
    }

    #[test]
    fn precedence_orders_the_chain() {
        let weaver = Weaver::new();
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let outer = Aspect::named("Outer")
            .precedence(10)
            .around(Pointcut::call("Acc.add"), move |inv: &mut Invocation| {
                l1.lock().push("outer");
                inv.proceed()
            })
            .build();
        let inner = Aspect::named("Inner")
            .precedence(20)
            .around(Pointcut::call("Acc.add"), move |inv: &mut Invocation| {
                l2.lock().push("inner");
                inv.proceed()
            })
            .build();
        // Plug in reverse order to prove precedence (not plug order) wins.
        weaver.plug(inner);
        weaver.plug(outer);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![1i64]).unwrap();
        assert_eq!(*log.lock(), vec!["outer", "inner"]);
    }

    #[test]
    fn within_core_excludes_aspect_calls() {
        let weaver = Weaver::new();
        let count = Arc::new(AtomicU64::new(0));
        let count2 = count.clone();
        // Advice that counts core-made add calls and re-issues one aspect-made
        // call; the aspect-made call must not be counted again.
        let counting = Aspect::named("Counting")
            .around(
                Pointcut::call("Acc.add").and(Pointcut::within_core()),
                move |inv: &mut Invocation| {
                    count2.fetch_add(1, Ordering::Relaxed);
                    let target = inv.target_required()?;
                    let v = *inv.arg::<i64>(0)?;
                    // Aspect-made call: provenance is Aspect, so the pointcut
                    // does not match and this does not recurse.
                    inv.weaver().invoke_call(target, "Acc", "add", args![v])?;
                    inv.proceed()
                },
            )
            .build();
        weaver.plug(counting);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![5i64]).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert_eq!(total(&weaver, &h), 10); // both calls executed
    }

    #[test]
    fn disable_and_reenable() {
        let weaver = Weaver::new();
        let count = Arc::new(AtomicU64::new(0));
        let count2 = count.clone();
        let counting = Aspect::named("Counting")
            .before(Pointcut::call("Acc.add"), move |_| {
                count2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .build();
        let plugged = weaver.plug(counting);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![1i64]).unwrap();
        assert!(weaver.set_enabled(&plugged, false));
        h.call("add", args![1i64]).unwrap();
        assert!(weaver.set_enabled(&plugged, true));
        h.call("add", args![1i64]).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 2);
        assert!(weaver.is_plugged(&plugged));
        assert_eq!(weaver.aspect_names(), vec!["Counting".to_string()]);
        assert_eq!(weaver.active_advice_count(), 1);
    }

    #[test]
    fn unplug_unknown_aspect_is_false() {
        let weaver = Weaver::new();
        let a = Aspect::named("A").build();
        let plugged = weaver.plug(a);
        assert!(weaver.unplug(&plugged));
        assert!(!weaver.unplug(&plugged));
        assert!(!weaver.set_enabled(&plugged, true));
        assert!(!weaver.is_plugged(&plugged));
    }

    #[test]
    fn call_unwoven_bypasses_advice() {
        let weaver = Weaver::new();
        let boom = Aspect::named("Boom")
            .around(Pointcut::call("Acc.*"), |_inv: &mut Invocation| {
                Err(WeaveError::app("advice must not run"))
            })
            .build();
        weaver.plug(boom);
        let h = weaver.construct_unwoven::<Acc>(args![1i64]).unwrap();
        h.call_unwoven("add", args![2i64]).unwrap();
        let got = h.call_unwoven("total", args![]).unwrap();
        assert_eq!(downcast_ret::<i64>(got).unwrap(), 3);
        // The woven path does hit the advice.
        assert!(h.call("total", args![]).is_err());
    }

    #[test]
    fn dyn_invocation_resolves_names() {
        let weaver = Weaver::new();
        let h = weaver.construct::<Acc>(args![4i64]).unwrap();
        let method = String::from("total");
        let got = weaver.invoke_call_dyn(h.id(), &method, args![]).unwrap();
        assert_eq!(downcast_ret::<i64>(got).unwrap(), 4);
        let err = weaver.invoke_call_dyn(h.id(), "nope", args![]).unwrap_err();
        assert!(matches!(err, WeaveError::NoSuchMethod { .. }));
        let id = weaver.construct_dyn("Acc", args![5i64]).unwrap();
        let got = weaver.invoke_unwoven(id, "total", args![]).unwrap();
        assert_eq!(downcast_ret::<i64>(got).unwrap(), 5);
        assert!(weaver.construct_dyn("Ghost", args![]).is_err());
    }

    #[test]
    fn extension_methods_dispatch_on_table_miss() {
        let weaver = Weaver::new();
        weaver.intertype().add_method(
            "Acc",
            "migrate",
            Arc::new(|_w, obj, mut args: Args| {
                let node: String = args.take(0)?;
                Ok(ret!(format!("{obj} -> {node}")))
            }),
        );
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        let got = weaver.invoke_call_dyn(h.id(), "migrate", args!["n1".to_string()]).unwrap();
        let s = downcast_ret::<String>(got).unwrap();
        assert!(s.ends_with("-> n1"));
    }

    #[test]
    fn recorder_captures_tasks_and_bytes() {
        let weaver = Weaver::new();
        let rec = Recorder::measuring();
        weaver.set_recorder(Some(rec.clone()));
        let h = weaver.construct::<Acc>(args![1i64]).unwrap();
        h.call("add", args![2i64]).unwrap();
        weaver.set_recorder(None);
        h.call("add", args![2i64]).unwrap(); // not recorded
        let g = rec.finish();
        assert_eq!(g.len(), 2); // construction + one add
        let ctor = &g.tasks[0];
        assert!(ctor.signature.is_construction());
        assert_eq!(ctor.args_bytes, 8);
        let call = &g.tasks[1];
        assert_eq!(call.signature, Signature::new("Acc", "add"));
        assert_eq!(call.args_bytes, 8);
        assert!(!call.async_spawn);
    }

    #[test]
    fn installed_metrics_count_dispatches_and_errors() {
        let weaver = Weaver::new();
        assert!(weaver.metrics().is_none());
        let reg = MetricsRegistry::new();
        weaver.install_metrics(&reg);
        assert!(weaver.metrics().is_some_and(|r| r.same_as(&reg)));
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![1i64]).unwrap();
        h.call("add", args![2i64]).unwrap();
        let _ = h.call("add", args!["bad".to_string()]); // base dispatch error
        let snap = reg.snapshot();
        assert_eq!(snap.counter("weaver.constructs"), Some(1));
        assert_eq!(snap.counter("weaver.calls"), Some(3));
        assert_eq!(snap.counter("weaver.errors"), Some(1));
        weaver.clear_metrics();
        h.call("add", args![1i64]).unwrap();
        assert_eq!(reg.snapshot().counter("weaver.calls"), Some(3), "cleared registry is idle");
        assert!(weaver.metrics().is_none());
    }

    #[test]
    fn match_cache_can_be_disabled() {
        let weaver = Weaver::new();
        weaver.set_match_cache(false);
        let count = Arc::new(AtomicU64::new(0));
        let count2 = count.clone();
        let a = Aspect::named("A")
            .before(Pointcut::call("Acc.add"), move |_| {
                count2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .build();
        weaver.plug(a);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        for _ in 0..5 {
            h.call("add", args![1i64]).unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), 5);
        weaver.set_match_cache(true);
        h.call("add", args![1i64]).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn plugging_invalidates_cached_matches() {
        let weaver = Weaver::new();
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        // Prime the cache with an empty chain.
        h.call("add", args![1i64]).unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let count2 = count.clone();
        let a = Aspect::named("A")
            .before(Pointcut::call("Acc.add"), move |_| {
                count2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .build();
        let plugged = weaver.plug(a);
        h.call("add", args![1i64]).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1, "cache not invalidated on plug");
        weaver.unplug(&plugged);
        h.call("add", args![1i64]).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1, "cache not invalidated on unplug");
    }

    #[test]
    fn late_insert_from_unplugged_aspect_set_is_invisible() {
        // Regression for the stale-chain race: a dispatch matches its advice
        // against the pre-unplug aspect set, the unplug lands (old code:
        // cache cleared), then the dispatch inserts its stale chain into the
        // shared cache — which would serve the unplugged advice forever.
        // Snapshot-owned caches make that interleaving structurally inert.
        let weaver = Weaver::new();
        let count = Arc::new(AtomicU64::new(0));
        let count2 = count.clone();
        let a = Aspect::named("A")
            .before(Pointcut::call("Acc.add"), move |_| {
                count2.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .build();
        let plugged = weaver.plug(a);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();

        // An in-flight dispatch pins the pre-unplug snapshot...
        let old_snapshot = weaver.debug_snapshot();

        weaver.unplug(&plugged);

        // ...and completes its lookup+insert only now, after the unplug.
        let sig = Signature::new("Acc", "add");
        let stale = old_snapshot.matched(sig, JoinPointKind::Call, Provenance::Core);
        assert_eq!(stale.len(), 1, "the old view legitimately sees the aspect");

        // Fresh calls must dispatch unwoven: the stale insert went into the
        // retired snapshot's cache, which no new lookup consults.
        h.call("add", args![1i64]).unwrap();
        h.call("add", args![1i64]).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 0, "unplugged advice fired from stale cache");
    }

    #[test]
    fn detached_chain_runs_elsewhere() {
        let weaver = Weaver::new();
        let asynchronise = Aspect::named("Async")
            .around(Pointcut::call("Acc.add"), |inv: &mut Invocation| {
                let detached = inv.detach()?;
                std::thread::spawn(move || detached.run().unwrap()).join().unwrap();
                Ok(ret!())
            })
            .build();
        weaver.plug(asynchronise);
        let rec = Recorder::measuring();
        weaver.set_recorder(Some(rec.clone()));
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![5i64]).unwrap();
        assert_eq!(total(&weaver, &h), 5);
        let g = rec.finish();
        let add = g.tasks.iter().find(|t| t.signature.method == "add").unwrap();
        assert!(add.async_spawn, "detached execution must be recorded as async");
    }

    #[test]
    fn cflow_guard_distinguishes_call_paths() {
        // AspectJ's cflow: advice on Acc.add that applies only when the add
        // happens within the dynamic extent of an Acc.total call — here,
        // never, because core code calls them separately.
        use crate::context::in_cflow_of;
        use crate::signature::MethodPattern;

        let weaver = Weaver::new();
        let inside = Arc::new(AtomicU64::new(0));
        let outside = Arc::new(AtomicU64::new(0));
        let (i2, o2) = (inside.clone(), outside.clone());
        let pattern = MethodPattern::parse("Acc.total");
        let counting = Aspect::named("CflowProbe")
            .before(Pointcut::call("Acc.add"), move |_| {
                if in_cflow_of(&pattern) {
                    i2.fetch_add(1, Ordering::Relaxed);
                } else {
                    o2.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })
            .build();
        weaver.plug(counting);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![1i64]).unwrap();
        assert_eq!(outside.load(Ordering::Relaxed), 1);
        assert_eq!(inside.load(Ordering::Relaxed), 0);

        // Now issue an add from WITHIN advice running inside a total call.
        let nested = Aspect::named("NestedAdder")
            .before(Pointcut::call("Acc.total"), {
                let weaver2 = weaver.clone();
                let h2 = h.id();
                move |_| {
                    weaver2.invoke_call(h2, "Acc", "add", args![1i64])?;
                    Ok(())
                }
            })
            .build();
        weaver.plug(nested);
        h.call("total", args![]).unwrap();
        assert_eq!(inside.load(Ordering::Relaxed), 1, "add within cflow of total");
        assert_eq!(outside.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cflow_survives_async_boundaries() {
        use crate::context::in_cflow_of;
        use crate::signature::MethodPattern;

        let weaver = Weaver::new();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let pattern = MethodPattern::parse("Acc.add");
        // Async aspect: detach and run on another thread; the cflow of the
        // original call must still be visible there.
        let asynchronous = Aspect::named("Async")
            .around(Pointcut::call("Acc.add"), move |inv: &mut Invocation| {
                let detached = inv.detach()?;
                let seen3 = seen2.clone();
                let pattern = pattern.clone();
                std::thread::spawn(move || {
                    if in_cflow_of(&pattern) {
                        seen3.fetch_add(1, Ordering::Relaxed);
                    }
                    detached.run().unwrap();
                })
                .join()
                .unwrap();
                Ok(ret!())
            })
            .build();
        weaver.plug(asynchronous);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![1i64]).unwrap();
        // The spawned closure itself ran before detached.run() pushed the
        // frame, so the signature is only in cflow via the captured context
        // INSIDE run(); assert through the weaving instead: detached.run
        // executed the base (total = 1).
        assert_eq!(total(&weaver, &h), 1);
        let _ = seen; // the direct check above documents the boundary
    }

    #[test]
    fn advice_fire_counts_expose_weaving_structure() {
        let weaver = Weaver::new();
        let logging =
            Aspect::named("Logging").before(Pointcut::call("Acc.add"), |_| Ok(())).build();
        let silent = Aspect::named("NeverMatches")
            .before(Pointcut::call("Acc.nonexistent"), |_| Ok(()))
            .build();
        weaver.plug(logging);
        weaver.plug(silent);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        for _ in 0..5 {
            h.call("add", args![1i64]).unwrap();
        }
        let counts = weaver.advice_fire_counts();
        assert_eq!(counts, vec![("Logging".to_string(), 5), ("NeverMatches".to_string(), 0)]);
    }

    #[test]
    fn guarded_advice_applies_conditionally() {
        // AspectJ's `if()` residue: the guard inspects live arguments.
        let weaver = Weaver::new();
        let guarded = Aspect::named("BigOnly")
            .around_if(
                Pointcut::call("Acc.add"),
                |inv: &Invocation| Ok(*inv.arg::<i64>(0)? >= 10),
                |_inv: &mut Invocation| Ok(ret!()), // suppress big additions
            )
            .build();
        weaver.plug(guarded);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![5i64]).unwrap(); // small: passes through
        h.call("add", args![50i64]).unwrap(); // big: suppressed
        assert_eq!(total(&weaver, &h), 5);
    }

    #[test]
    fn guard_errors_propagate() {
        let weaver = Weaver::new();
        let guarded = Aspect::named("BadGuard")
            .around_if(
                Pointcut::call("Acc.add"),
                |_inv: &Invocation| Err(WeaveError::app("guard exploded")),
                |inv: &mut Invocation| inv.proceed(),
            )
            .build();
        weaver.plug(guarded);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        assert!(matches!(h.call("add", args![1i64]), Err(WeaveError::App(_))));
    }

    #[test]
    fn proceed_twice_without_args_errors() {
        let weaver = Weaver::new();
        let double_proceed = Aspect::named("DoubleProceed")
            .around(Pointcut::call("Acc.add"), |inv: &mut Invocation| {
                let first = inv.proceed()?;
                match inv.proceed() {
                    Err(WeaveError::AlreadyProceeded) => Ok(first),
                    other => panic!("expected AlreadyProceeded, got {other:?}"),
                }
            })
            .build();
        weaver.plug(double_proceed);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![1i64]).unwrap();
        assert_eq!(total(&weaver, &h), 1);
    }

    #[test]
    fn proceed_with_replays_the_chain() {
        let weaver = Weaver::new();
        let twice = Aspect::named("Twice")
            .around(Pointcut::call("Acc.add"), |inv: &mut Invocation| {
                let v = *inv.arg::<i64>(0)?;
                inv.proceed_with(args![v])?;
                inv.proceed_with(args![v])
            })
            .build();
        weaver.plug(twice);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![3i64]).unwrap();
        assert_eq!(total(&weaver, &h), 6);
    }

    #[test]
    fn construct_sibling_rejected_on_calls() {
        let weaver = Weaver::new();
        let bad = Aspect::named("Bad")
            .around(Pointcut::call("Acc.add"), |inv: &mut Invocation| {
                match inv.construct_sibling(args![]) {
                    Err(WeaveError::App(_)) => inv.proceed(),
                    other => panic!("expected App error, got {other:?}"),
                }
            })
            .build();
        weaver.plug(bad);
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        h.call("add", args![1i64]).unwrap();
        assert_eq!(total(&weaver, &h), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::Acc;
    use super::*;
    use crate::pointcut::Pointcut;
    use crate::value::downcast_ret;
    use crate::{args, ret};
    use proptest::prelude::*;

    /// The kinds of semantically-neutral advice a random stack may contain.
    #[derive(Debug, Clone, Copy)]
    enum Neutral {
        Proceed,
        ReadArgThenProceed,
        ProceedWithSameArgs,
        GuardAlwaysFalse,
    }

    fn neutral_aspect(kind: Neutral, index: usize) -> Aspect {
        let name = format!("N{index}");
        match kind {
            Neutral::Proceed => Aspect::named(name)
                .around(Pointcut::call("Acc.*"), |inv: &mut Invocation| inv.proceed())
                .build(),
            Neutral::ReadArgThenProceed => Aspect::named(name)
                .around(Pointcut::call("Acc.add"), |inv: &mut Invocation| {
                    let _peek = *inv.arg::<i64>(0)?;
                    inv.proceed()
                })
                .build(),
            Neutral::ProceedWithSameArgs => Aspect::named(name)
                .around(Pointcut::call("Acc.add"), |inv: &mut Invocation| {
                    let v = *inv.arg::<i64>(0)?;
                    inv.proceed_with(args![v])
                })
                .build(),
            Neutral::GuardAlwaysFalse => Aspect::named(name)
                .around_if(
                    Pointcut::call("Acc.*"),
                    |_inv: &Invocation| Ok(false),
                    |_inv: &mut Invocation| Ok(ret!()),
                )
                .build(),
        }
    }

    fn arb_neutral() -> impl Strategy<Value = Neutral> {
        prop_oneof![
            Just(Neutral::Proceed),
            Just(Neutral::ReadArgThenProceed),
            Just(Neutral::ProceedWithSameArgs),
            Just(Neutral::GuardAlwaysFalse),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any stack of semantically-neutral aspects, at any precedences, is
        /// invisible: the woven program computes exactly what the unwoven
        /// one does.
        #[test]
        fn neutral_stacks_are_invisible(
            kinds in proptest::collection::vec(arb_neutral(), 0..6),
            precedences in proptest::collection::vec(-100i32..400, 0..6),
            adds in proptest::collection::vec(-1000i64..1000, 0..20),
        ) {
            let weaver = Weaver::new();
            for (i, kind) in kinds.iter().enumerate() {
                let mut aspect = neutral_aspect(*kind, i);
                if let Some(p) = precedences.get(i) {
                    aspect.precedence = *p;
                }
                weaver.plug(aspect);
            }
            let h = weaver.construct::<Acc>(args![0i64]).unwrap();
            for v in &adds {
                h.call("add", args![*v]).unwrap();
            }
            let got = downcast_ret::<i64>(h.call("total", args![]).unwrap()).unwrap();
            prop_assert_eq!(got, adds.iter().sum::<i64>());
        }

        /// Plugging then unplugging any neutral stack leaves no residue.
        #[test]
        fn unplug_leaves_no_residue(kinds in proptest::collection::vec(arb_neutral(), 1..5)) {
            let weaver = Weaver::new();
            let tokens: Vec<_> = kinds
                .iter()
                .enumerate()
                .map(|(i, k)| weaver.plug(neutral_aspect(*k, i)))
                .collect();
            let h = weaver.construct::<Acc>(args![0i64]).unwrap();
            h.call("add", args![7i64]).unwrap();
            for t in &tokens {
                prop_assert!(weaver.unplug(t));
            }
            prop_assert_eq!(weaver.aspect_names().len(), 0);
            h.call("add", args![5i64]).unwrap();
            let got = downcast_ret::<i64>(h.call("total", args![]).unwrap()).unwrap();
            prop_assert_eq!(got, 12);
        }
    }
}
