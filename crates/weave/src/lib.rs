//! # weavepar-weave — a dynamic join-point interception runtime
//!
//! This crate is the foundation of the `weavepar` workspace: a Rust substitute for
//! the AspectJ machinery used by Sobral's *"Incrementally Developing Parallel
//! Applications with AspectJ"* (IPPS 2006). It provides:
//!
//! * [`Signature`]s and wildcard [`MethodPattern`]s (`PrimeFilter.filter*`),
//! * [`Pointcut`]s over join points (method calls and object constructions) with
//!   the combinators the paper relies on (`call`, `construct`, `within_core`,
//!   `within_aspect`, `and`/`or`/`not`),
//! * [`Advice`] executed *around* a join point with `proceed` semantics, including
//!   [`Invocation::detach`], which moves the remainder of an advice chain onto
//!   another thread (the mechanism that makes an asynchronous-invocation aspect
//!   expressible),
//! * [`Aspect`]s — named, precedence-ordered bundles of advice that can be
//!   **plugged, unplugged and swapped at run time**,
//! * an [`ObjectSpace`] of aspect-managed objects addressed by [`ObjId`] and
//!   accessed through typed [`Handle`]s,
//! * inter-type declarations (per-object mixin fields and extension methods,
//!   mirroring AspectJ's static crosscutting), and
//! * [`trace`] hooks that record the task/message DAG of a woven execution for
//!   replay on the discrete-event cluster simulator (`weavepar-cluster`).
//!
//! ## Why a dynamic runtime instead of compile-time weaving?
//!
//! Rust has no load-time bytecode weaver. Instead, *weaveable* classes are
//! declared once through the [`weaveable!`] macro, which generates a typed proxy
//! (an extension trait over [`Handle<T>`]). Every construction and method call
//! made through the proxy becomes a join point routed through a [`Weaver`].
//! Everything past that boundary — which concerns exist, in which order they
//! run, whether they are plugged at all — is decided externally, which is the
//! obliviousness property the paper's methodology actually depends on.
//!
//! ## Quick example
//!
//! ```
//! use weavepar_weave::prelude::*;
//!
//! struct Point { x: i64, y: i64 }
//!
//! weavepar_weave::weaveable! {
//!     class Point as PointProxy {
//!         fn new(x: i64, y: i64) -> Self { Point { x, y } }
//!         fn move_x(&mut self, delta: i64) { self.x += delta; }
//!         fn move_y(&mut self, delta: i64) { self.y += delta; }
//!         fn get(&mut self) -> (i64, i64) { (self.x, self.y) }
//!     }
//! }
//!
//! let weaver = Weaver::new();
//!
//! // A logging aspect equivalent to the paper's Figure 3.
//! let log = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
//! let log2 = log.clone();
//! let logging = Aspect::named("Logging")
//!     .around(Pointcut::call("Point.move*"), move |inv: &mut Invocation| {
//!         log2.lock().push(inv.signature().to_string());
//!         inv.proceed()
//!     })
//!     .build();
//! let plugged = weaver.plug(logging);
//!
//! let p = PointProxy::construct(&weaver, 0, 0).unwrap();
//! p.move_x(10).unwrap();
//! p.move_y(5).unwrap();
//! assert_eq!(p.get().unwrap(), (10, 5));
//! assert_eq!(log.lock().len(), 2);
//!
//! // Unplug and the core functionality is back to strictly sequential calls.
//! weaver.unplug(&plugged);
//! p.move_x(1).unwrap();
//! assert_eq!(log.lock().len(), 2);
//! ```

pub mod advice;
pub mod aspect;
pub mod context;
pub mod dispatch;
pub mod error;
pub mod intertype;
pub mod invocation;
pub mod metrics;
pub mod object;
pub mod pointcut;
pub mod registry;
pub mod signature;
pub(crate) mod snapshot;
pub mod trace;
pub mod value;

mod macros;

pub use advice::Advice;
pub use aspect::{Aspect, AspectBuilder, AspectId, PluggedAspect};
pub use context::Provenance;
pub use dispatch::{ConstructorFn, Weaveable};
pub use error::{WeaveError, WeaveResult};
pub use intertype::IntertypeStore;
pub use invocation::{Detached, Invocation, JoinPointKind};
pub use metrics::{
    metrics_aspect, metrics_aspect_at, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, Snapshot,
};
pub use object::{Handle, ObjId, ObjectSpace};
pub use pointcut::Pointcut;
pub use registry::Weaver;
pub use signature::{MethodPattern, Signature};
pub use trace::{CostModel, Recorder, TaskId, TaskRecord, TraceGraph};
pub use value::{AnyValue, Args, ByteSize, ClassId, MethodId, Pack, Value};

/// Commonly used items, for glob import in application and aspect code.
pub mod prelude {
    pub use crate::advice::Advice;
    pub use crate::aspect::{Aspect, AspectId, PluggedAspect};
    pub use crate::context::Provenance;
    pub use crate::dispatch::Weaveable;
    pub use crate::error::{WeaveError, WeaveResult};
    pub use crate::invocation::{Detached, Invocation, JoinPointKind};
    pub use crate::metrics::{metrics_aspect, metrics_aspect_at, MetricsRegistry};
    pub use crate::object::{Handle, ObjId};
    pub use crate::pointcut::Pointcut;
    pub use crate::registry::Weaver;
    pub use crate::signature::{MethodPattern, Signature};
    pub use crate::value::{AnyValue, Args, ByteSize, Pack, Value};
    pub use crate::{args, ret};
}
