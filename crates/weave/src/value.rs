//! Type-erased values and argument packs flowing through join points.
//!
//! Join points carry heterogeneous arguments. The runtime moves them as
//! [`Value`]s: small `Copy` payloads (unit, bool, the primitive integers and
//! floats, [`ObjId`](crate::object::ObjId), [`ClassId`]/[`MethodId`], a few
//! small tuples, and the copy-on-write [`Pack`]) are stored *inline* — a tag
//! plus at most three words, no heap allocation — while everything else
//! falls back to the classic `Box<dyn Any + Send>` representation. Typed
//! access is recovered at the edges exactly as before: the macro-generated
//! dispatch tables *take* arguments by concrete type, and advice code
//! *borrows* them by concrete type before deciding how to proceed.
//!
//! [`Args`] keeps its first four slots in a fixed inline array before
//! spilling to a `Vec`, so a steady-state call with ≤4 scalar arguments and
//! a scalar return touches the allocator zero times end to end.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::{WeaveError, WeaveResult};
use crate::object::ObjId;

/// A type-erased, thread-mobile value (argument or return value).
///
/// Historically `Box<dyn Any + Send>`; now an alias for [`Value`], which
/// keeps small payloads inline. The API surface (`downcast`,
/// `downcast_ref`, `downcast_mut`) mirrors the boxed one so existing advice
/// and dispatch code compiles unchanged.
pub type AnyValue = Value;

/// Build an [`Args`] pack from a list of expressions.
///
/// ```
/// use weavepar_weave::args;
/// let a = args![1u32, "hello".to_string(), vec![1u64, 2]];
/// assert_eq!(a.len(), 3);
/// ```
#[macro_export]
macro_rules! args {
    () => { $crate::value::Args::empty() };
    ($($v:expr),+ $(,)?) => {{
        let mut __args = $crate::value::Args::empty();
        $( __args.push($v); )+
        __args
    }};
}

/// Wrap a value as a type-erased return value (inline when small).
///
/// ```
/// use weavepar_weave::ret;
/// let r = ret!(42u32);
/// assert_eq!(*r.downcast::<u32>().unwrap(), 42);
/// ```
#[macro_export]
macro_rules! ret {
    () => {
        $crate::value::Value::unit()
    };
    ($v:expr) => {
        $crate::value::Value::new($v)
    };
}

/// Dense handle for a registered class (interned by the distribution
/// middleware's marshal registry). Indexes an append-only table; `Copy` and
/// 4 bytes on the wire. Defined here so it can ride inline in a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(u32);

impl ClassId {
    /// The raw table index (wire representation).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild from a raw index (wire decode; validated at use).
    pub fn from_raw(raw: u32) -> Self {
        ClassId(raw)
    }
}

/// Dense handle for a registered `(class, method)` pair. The hot-path key:
/// an array index instead of a string-hashed map lookup under a lock.
/// Defined here so it can ride inline in a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodId(u32);

impl MethodId {
    /// The raw table index (wire representation — `CallPack` entries carry
    /// this).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild from a raw index (wire decode; validated at use).
    pub fn from_raw(raw: u32) -> Self {
        MethodId(raw)
    }
}

/// A copy-on-write pack of `u64` work items: an `Arc<[u64]>` plus a
/// subrange. Splitting a pack into chunks shares the backing allocation, so
/// a pack moves PARTITION → CONCURRENCY → worker by reference instead of
/// being re-cloned at each advice layer; [`Pack::make_mut`] mutates in place
/// when the worker holds the only reference and copies just its subrange
/// otherwise.
#[derive(Clone)]
pub struct Pack {
    data: Arc<[u64]>,
    start: u32,
    len: u32,
}

impl Pack {
    /// Wrap a vector without copying its contents more than once.
    pub fn from_vec(items: Vec<u64>) -> Self {
        Pack::from_arc(Arc::from(items))
    }

    /// Wrap a whole shared allocation.
    pub fn from_arc(data: Arc<[u64]>) -> Self {
        let len = u32::try_from(data.len()).expect("pack longer than u32::MAX items");
        Pack { data, start: 0, len }
    }

    /// Copy a slice into a fresh pack.
    pub fn from_slice(items: &[u64]) -> Self {
        Pack::from_arc(Arc::from(items))
    }

    /// The items in this pack's range.
    pub fn as_slice(&self) -> &[u64] {
        let start = self.start as usize;
        &self.data[start..start + self.len as usize]
    }

    /// Number of items in this pack's range.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Split into packs of at most `chunk` items, **sharing** the backing
    /// allocation (no item is copied).
    pub fn split_chunks(&self, chunk: usize) -> Vec<Pack> {
        let chunk = chunk.max(1);
        let mut out = Vec::with_capacity(self.len().div_ceil(chunk));
        let mut start = self.start as usize;
        let end = self.start as usize + self.len as usize;
        while start < end {
            let n = chunk.min(end - start);
            out.push(Pack { data: self.data.clone(), start: start as u32, len: n as u32 });
            start += n;
        }
        out
    }

    /// Split into (at most) `n` near-equal packs, sharing the allocation.
    pub fn split_packs(&self, n: usize) -> Vec<Pack> {
        self.split_chunks(self.len().div_ceil(n.max(1)))
    }

    /// Split into `[..mid]` and `[mid..]` views sharing the allocation
    /// (the divide-and-conquer divide step; `mid` is clamped to the length).
    pub fn split_at(&self, mid: usize) -> (Pack, Pack) {
        let mid = mid.min(self.len()) as u32;
        (
            Pack { data: self.data.clone(), start: self.start, len: mid },
            Pack { data: self.data.clone(), start: self.start + mid, len: self.len - mid },
        )
    }

    /// Mutable access to this pack's items. In place when this pack holds
    /// the only reference to the allocation; otherwise the subrange (only)
    /// is copied out first, detaching from the shared buffer.
    pub fn make_mut(&mut self) -> &mut [u64] {
        if Arc::get_mut(&mut self.data).is_none() {
            let copied: Arc<[u64]> = Arc::from(self.as_slice());
            self.data = copied;
            self.start = 0;
        }
        let start = self.start as usize;
        let len = self.len as usize;
        &mut Arc::get_mut(&mut self.data).expect("unique after copy")[start..start + len]
    }

    /// Copy the range out as a vector.
    pub fn to_vec(&self) -> Vec<u64> {
        self.as_slice().to_vec()
    }

    /// Concatenate packs into one freshly allocated pack (used by combine
    /// closures gathering worker results).
    pub fn concat(packs: &[Pack]) -> Pack {
        let total: usize = packs.iter().map(Pack::len).sum();
        let mut items = Vec::with_capacity(total);
        for p in packs {
            items.extend_from_slice(p.as_slice());
        }
        Pack::from_vec(items)
    }

    /// True when this pack shares its backing allocation with others.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }
}

impl PartialEq for Pack {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Pack {}

impl std::fmt::Debug for Pack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pack[{} items @ {}..]", self.len, self.start)
    }
}

impl From<Vec<u64>> for Pack {
    fn from(items: Vec<u64>) -> Self {
        Pack::from_vec(items)
    }
}

impl FromIterator<u64> for Pack {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Pack::from_vec(iter.into_iter().collect())
    }
}

/// Ablation switch: when set, [`Value::new`] always boxes and [`Args`]
/// spills straight to its heap vector — together the pre-inline
/// `Vec<Box<dyn Any>>` representation. Used by the `joinpoint_values`
/// bench and the representation-equivalence property tests; not for
/// production code.
static FORCE_BOXED: AtomicBool = AtomicBool::new(false);

#[doc(hidden)]
pub fn set_force_boxed(on: bool) {
    FORCE_BOXED.store(on, Ordering::SeqCst);
}

/// Move a value from one statically known type to another *when they are
/// the same type*, without boxing. `TypeId::of::<Option<S>>() ==
/// TypeId::of::<Option<T>>()` iff `S == T`, and after monomorphization the
/// comparison is a constant, so the misses compile away.
fn steal<T: Any, S: Any>(v: T) -> Result<S, T> {
    let mut slot = Some(v);
    match (&mut slot as &mut dyn Any).downcast_mut::<Option<S>>() {
        Some(s) => Ok(s.take().expect("slot filled above")),
        None => Err(slot.expect("slot untouched on miss")),
    }
}

macro_rules! value_repr {
    ($(($Variant:ident, $ty:ty, $label:literal)),+ $(,)?) => {
        enum Repr {
            $( $Variant($ty), )+
            Boxed(Box<dyn Any + Send>),
        }

        impl Value {
            /// Wrap a value, storing it inline when its type is one of the
            /// small `Copy` payloads (plus [`Pack`]) and boxing otherwise.
            pub fn new<T: Any + Send>(v: T) -> Value {
                if FORCE_BOXED.load(Ordering::Relaxed) {
                    return Value(Repr::Boxed(Box::new(v)));
                }
                $(
                    let v = match steal::<T, $ty>(v) {
                        Ok(x) => return Value(Repr::$Variant(x)),
                        Err(v) => v,
                    };
                )+
                Value(Repr::Boxed(Box::new(v)))
            }

            fn as_any(&self) -> &dyn Any {
                match &self.0 {
                    $( Repr::$Variant(x) => x, )+
                    Repr::Boxed(b) => &**b,
                }
            }

            fn as_any_mut(&mut self) -> &mut dyn Any {
                match &mut self.0 {
                    $( Repr::$Variant(x) => x, )+
                    Repr::Boxed(b) => &mut **b,
                }
            }

            /// Move the value out with its concrete type, returning `self`
            /// unchanged (inline values stay inline) on a type mismatch.
            pub fn into_typed<T: Any>(self) -> Result<T, Value> {
                match self.0 {
                    $(
                        Repr::$Variant(x) => {
                            steal::<$ty, T>(x).map_err(|x| Value(Repr::$Variant(x)))
                        }
                    )+
                    Repr::Boxed(b) => {
                        b.downcast::<T>().map(|b| *b).map_err(|b| Value(Repr::Boxed(b)))
                    }
                }
            }

            /// Short tag name for diagnostics.
            pub fn kind(&self) -> &'static str {
                match &self.0 {
                    $( Repr::$Variant(_) => $label, )+
                    Repr::Boxed(_) => "boxed",
                }
            }
        }
    };
}

value_repr! {
    (Unit, (), "unit"),
    (Bool, bool, "bool"),
    (Char, char, "char"),
    (U8, u8, "u8"),
    (U16, u16, "u16"),
    (U32, u32, "u32"),
    (U64, u64, "u64"),
    (Usize, usize, "usize"),
    (I8, i8, "i8"),
    (I16, i16, "i16"),
    (I32, i32, "i32"),
    (I64, i64, "i64"),
    (Isize, isize, "isize"),
    (F32, f32, "f32"),
    (F64, f64, "f64"),
    (Obj, ObjId, "objid"),
    (Class, ClassId, "classid"),
    (Method, MethodId, "methodid"),
    (PairF64, (f64, f64), "pair_f64"),
    (PairU64, (u64, u64), "pair_u64"),
    (PairU32, (u32, u32), "pair_u32"),
    (PackV, Pack, "pack"),
}

/// A type-erased, thread-mobile value: a tag plus at most three words
/// inline, spilling to `Box<dyn Any + Send>` for anything not in the small
/// set. See the module docs and DESIGN.md §7 for the tag layout and spill
/// rules.
pub struct Value(Repr);

impl Value {
    /// The unit return value (inline, no allocation).
    pub fn unit() -> Value {
        Value(Repr::Unit(()))
    }

    /// Wrap an already-boxed value without re-examining it. The ablation
    /// and compatibility entry point; [`Value::new`] is the fast path.
    pub fn from_box(b: Box<dyn Any + Send>) -> Value {
        Value(Repr::Boxed(b))
    }

    /// True when the payload is stored inline (no heap involvement besides
    /// whatever the payload itself shares, e.g. a [`Pack`]'s `Arc`).
    pub fn is_inline(&self) -> bool {
        !matches!(self.0, Repr::Boxed(_))
    }

    /// True when the payload is of type `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.as_any().is::<T>()
    }

    /// Borrow the payload with its concrete type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.as_any().downcast_ref::<T>()
    }

    /// Mutably borrow the payload with its concrete type.
    pub fn downcast_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.as_any_mut().downcast_mut::<T>()
    }

    /// Move the payload out boxed — the `Box<dyn Any>`-compatible shape, so
    /// existing `value.downcast::<T>()` call sites compile unchanged. The
    /// boxed representation hands back its existing box; inline payloads
    /// allocate one (prefer [`Value::into_typed`] on hot paths).
    pub fn downcast<T: Any>(self) -> Result<Box<T>, Value> {
        match self.0 {
            Repr::Boxed(b) => b.downcast::<T>().map_err(|b| Value(Repr::Boxed(b))),
            other => Value(other).into_typed::<T>().map(Box::new),
        }
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Value({})", self.kind())
    }
}

const INLINE_SLOTS: usize = 4;

/// An ordered pack of type-erased arguments.
///
/// Slots are `Option`al so that dispatch code can *move* each argument out
/// exactly once while advice that ran earlier may have *borrowed* them. The
/// first four slots live in a fixed inline array; longer packs spill the
/// tail to a `Vec`, so the common ≤4-argument call never allocates.
pub struct Args {
    inline: [Option<Value>; INLINE_SLOTS],
    inline_len: u8,
    spill: Vec<Option<Value>>,
}

impl Args {
    /// An empty argument pack.
    pub fn empty() -> Self {
        Args { inline: [None, None, None, None], inline_len: 0, spill: Vec::new() }
    }

    /// Build a pack from already-wrapped values.
    pub fn from_values(values: Vec<AnyValue>) -> Self {
        let mut args = Args::empty();
        for v in values {
            args.push_value(v);
        }
        args
    }

    /// Build a single-slot pack without an intermediate `Vec` (the
    /// reforward fast path).
    pub fn from_value(value: AnyValue) -> Self {
        let mut args = Args::empty();
        args.push_value(value);
        args
    }

    /// Number of slots (including ones already moved out).
    pub fn len(&self) -> usize {
        self.inline_len as usize + self.spill.len()
    }

    /// True when the pack has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot(&self, index: usize) -> Option<&Option<Value>> {
        let il = self.inline_len as usize;
        if index < il {
            Some(&self.inline[index])
        } else {
            self.spill.get(index - il)
        }
    }

    fn slot_mut(&mut self, index: usize) -> Option<&mut Option<Value>> {
        let il = self.inline_len as usize;
        if index < il {
            Some(&mut self.inline[index])
        } else {
            self.spill.get_mut(index - il)
        }
    }

    /// Borrow the argument at `index` with its concrete type.
    pub fn get<T: 'static>(&self, index: usize) -> WeaveResult<&T> {
        let slot = self
            .slot(index)
            .and_then(|s| s.as_ref())
            .ok_or(WeaveError::MissingArg { index, len: self.len() })?;
        slot.downcast_ref::<T>().ok_or_else(|| WeaveError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            context: format!("argument {index}"),
        })
    }

    /// Mutably borrow the argument at `index` with its concrete type.
    pub fn get_mut<T: 'static>(&mut self, index: usize) -> WeaveResult<&mut T> {
        let len = self.len();
        let slot = self
            .slot_mut(index)
            .and_then(|s| s.as_mut())
            .ok_or(WeaveError::MissingArg { index, len })?;
        slot.downcast_mut::<T>().ok_or_else(|| WeaveError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            context: format!("argument {index}"),
        })
    }

    /// Move the argument at `index` out of the pack with its concrete type.
    ///
    /// Subsequent `take`/`get` calls on the same slot fail with
    /// [`WeaveError::MissingArg`].
    pub fn take<T: 'static>(&mut self, index: usize) -> WeaveResult<T> {
        let len = self.len();
        let slot = self.slot_mut(index).ok_or(WeaveError::MissingArg { index, len })?;
        let value = slot.take().ok_or(WeaveError::MissingArg { index, len })?;
        match value.into_typed::<T>() {
            Ok(v) => Ok(v),
            Err(original) => {
                // Put the value back so a retry with the right type still works.
                *slot = Some(original);
                Err(WeaveError::TypeMismatch {
                    expected: std::any::type_name::<T>(),
                    context: format!("argument {index}"),
                })
            }
        }
    }

    /// Replace the argument at `index` with a new value (e.g. advice rewriting
    /// a method-call parameter before proceeding).
    pub fn set<T: Any + Send>(&mut self, index: usize, value: T) -> WeaveResult<()> {
        let len = self.len();
        let slot = self.slot_mut(index).ok_or(WeaveError::MissingArg { index, len })?;
        *slot = Some(Value::new(value));
        Ok(())
    }

    /// Append a new argument slot.
    pub fn push<T: Any + Send>(&mut self, value: T) {
        self.push_value(Value::new(value));
    }

    /// Append an already-wrapped value.
    pub fn push_value(&mut self, value: AnyValue) {
        let il = self.inline_len as usize;
        if il < INLINE_SLOTS && self.spill.is_empty() && !FORCE_BOXED.load(Ordering::Relaxed) {
            self.inline[il] = Some(value);
            self.inline_len += 1;
        } else {
            // Spilled: the ablation path lands here unconditionally, which
            // reproduces the pre-inline `Vec<Box<dyn Any>>` representation.
            self.spill.push(Some(value));
        }
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::empty()
    }
}

impl std::fmt::Debug for Args {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Args[{} slots", self.len())?;
        let taken = (0..self.len()).filter(|&i| matches!(self.slot(i), Some(None))).count();
        if taken > 0 {
            write!(f, ", {taken} taken")?;
        }
        write!(f, "]")
    }
}

/// Downcast a type-erased return value to a concrete type.
pub fn downcast_ret<T: 'static>(value: AnyValue) -> WeaveResult<T> {
    value.into_typed::<T>().map_err(|_| WeaveError::TypeMismatch {
        expected: std::any::type_name::<T>(),
        context: "return value".into(),
    })
}

/// Approximate serialized size of a value, used by the trace recorder to model
/// message sizes without a full marshalling pass.
///
/// The distribution middleware has its own exact codec; `ByteSize` only needs
/// to be proportional to it, which is what the network model consumes.
pub trait ByteSize {
    /// Approximate number of bytes this value would occupy on the wire.
    fn byte_size(&self) -> usize;
}

macro_rules! impl_bytesize_prim {
    ($($t:ty),*) => {
        $(impl ByteSize for $t {
            fn byte_size(&self) -> usize { std::mem::size_of::<$t>() }
        })*
    };
}

impl_bytesize_prim!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

impl ByteSize for () {
    fn byte_size(&self) -> usize {
        0
    }
}

impl ByteSize for String {
    fn byte_size(&self) -> usize {
        4 + self.len()
    }
}

impl ByteSize for &str {
    fn byte_size(&self) -> usize {
        4 + self.len()
    }
}

impl<T: ByteSize> ByteSize for Vec<T> {
    fn byte_size(&self) -> usize {
        4 + self.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

impl<T: ByteSize> ByteSize for Option<T> {
    fn byte_size(&self) -> usize {
        1 + self.as_ref().map_or(0, ByteSize::byte_size)
    }
}

impl<T: ByteSize> ByteSize for Box<T> {
    fn byte_size(&self) -> usize {
        self.as_ref().byte_size()
    }
}

impl<T: ByteSize> ByteSize for Arc<[T]> {
    fn byte_size(&self) -> usize {
        4 + self.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

impl ByteSize for Pack {
    fn byte_size(&self) -> usize {
        4 + 8 * self.len()
    }
}

impl<A: ByteSize, B: ByteSize> ByteSize for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: ByteSize, B: ByteSize, C: ByteSize> ByteSize for (A, B, C) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

impl<A: ByteSize, B: ByteSize, C: ByteSize, D: ByteSize> ByteSize for (A, B, C, D) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size() + self.3.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_macro_and_len() {
        let a = args![1u32, 2u64];
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(args![].is_empty());
    }

    #[test]
    fn get_typed_borrow() {
        let a = args![7u32, "hi".to_string()];
        assert_eq!(*a.get::<u32>(0).unwrap(), 7);
        assert_eq!(a.get::<String>(1).unwrap(), "hi");
    }

    #[test]
    fn get_wrong_type_reports_mismatch() {
        let a = args![7u32];
        let err = a.get::<u64>(0).unwrap_err();
        assert!(matches!(err, WeaveError::TypeMismatch { .. }));
    }

    #[test]
    fn get_out_of_range_reports_missing() {
        let a = args![7u32];
        assert!(matches!(a.get::<u32>(5), Err(WeaveError::MissingArg { index: 5, len: 1 })));
    }

    #[test]
    fn take_moves_once() {
        let mut a = args![vec![1u64, 2, 3]];
        let v: Vec<u64> = a.take(0).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(matches!(a.take::<Vec<u64>>(0), Err(WeaveError::MissingArg { .. })));
    }

    #[test]
    fn take_wrong_type_keeps_value() {
        let mut a = args![42u32];
        assert!(a.take::<u64>(0).is_err());
        // A wrong-typed take must not destroy the argument.
        assert_eq!(a.take::<u32>(0).unwrap(), 42);
    }

    #[test]
    fn set_replaces_and_push_appends() {
        let mut a = args![1u32];
        a.set(0, 9u32).unwrap();
        assert_eq!(*a.get::<u32>(0).unwrap(), 9);
        a.push("x".to_string());
        assert_eq!(a.len(), 2);
        assert_eq!(a.get::<String>(1).unwrap(), "x");
    }

    #[test]
    fn get_mut_allows_in_place_edit() {
        let mut a = args![vec![1u64]];
        a.get_mut::<Vec<u64>>(0).unwrap().push(2);
        assert_eq!(a.get::<Vec<u64>>(0).unwrap().len(), 2);
    }

    #[test]
    fn downcast_ret_roundtrip() {
        let r = ret!(3.5f64);
        assert_eq!(downcast_ret::<f64>(r).unwrap(), 3.5);
        let r = ret!();
        downcast_ret::<()>(r).unwrap();
        let r = ret!(1u8);
        assert!(downcast_ret::<u16>(r).is_err());
    }

    #[test]
    fn scalars_are_inline_and_large_types_box() {
        assert!(Value::new(7u64).is_inline());
        assert!(Value::new(()).is_inline());
        assert!(Value::new(true).is_inline());
        assert!(Value::new(3.5f64).is_inline());
        assert!(Value::new((1.0f64, 2.0f64)).is_inline());
        assert!(Value::new(ObjId::from_raw(4)).is_inline());
        assert!(Value::new(ClassId::from_raw(1)).is_inline());
        assert!(Value::new(MethodId::from_raw(2)).is_inline());
        assert!(Value::new(Pack::from_vec(vec![1, 2])).is_inline());
        assert!(!Value::new("big".to_string()).is_inline());
        assert!(!Value::new(vec![1u64, 2]).is_inline());
        // The whole Value stays small: a tag plus at most three words.
        assert!(std::mem::size_of::<Value>() <= 4 * std::mem::size_of::<usize>());
    }

    #[test]
    fn value_downcast_box_compat() {
        // Inline value through the Box-shaped API.
        let v = Value::new(9u32);
        assert_eq!(*v.downcast::<u32>().unwrap(), 9);
        // Wrong type hands the value back intact (still inline).
        let v = Value::new(9u32);
        let v = v.downcast::<u64>().unwrap_err();
        assert!(v.is_inline());
        assert_eq!(v.into_typed::<u32>().unwrap(), 9);
        // Boxed value reuses its box.
        let v = Value::from_box(Box::new("s".to_string()));
        assert_eq!(*v.downcast::<String>().unwrap(), "s");
    }

    #[test]
    fn value_downcast_ref_and_mut() {
        let mut v = Value::new(5i64);
        assert!(v.is::<i64>());
        assert_eq!(*v.downcast_ref::<i64>().unwrap(), 5);
        *v.downcast_mut::<i64>().unwrap() = 6;
        assert_eq!(v.into_typed::<i64>().unwrap(), 6);
        assert!(Value::new(5i64).downcast_ref::<u64>().is_none());
    }

    #[test]
    fn forced_boxing_is_observationally_identical() {
        set_force_boxed(true);
        let v = Value::new(7u64);
        set_force_boxed(false);
        assert!(!v.is_inline());
        assert_eq!(*v.downcast_ref::<u64>().unwrap(), 7);
        assert_eq!(v.into_typed::<u64>().unwrap(), 7);
    }

    #[test]
    fn pack_split_shares_allocation() {
        let p = Pack::from_vec((0..10).collect());
        let parts = p.split_chunks(4);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].as_slice(), &[0, 1, 2, 3]);
        assert_eq!(parts[2].as_slice(), &[8, 9]);
        assert!(parts.iter().all(Pack::is_shared));
        assert_eq!(Pack::concat(&parts), p);
    }

    #[test]
    fn pack_make_mut_in_place_when_unique() {
        let mut p = Pack::from_vec(vec![1, 2, 3]);
        assert!(!p.is_shared());
        p.make_mut()[0] = 9;
        assert_eq!(p.as_slice(), &[9, 2, 3]);
    }

    #[test]
    fn pack_make_mut_copies_subrange_when_shared() {
        let p = Pack::from_vec((0..8).collect());
        let mut parts = p.split_chunks(4);
        let second = &mut parts[1];
        second.make_mut().iter_mut().for_each(|v| *v += 100);
        assert_eq!(second.as_slice(), &[104, 105, 106, 107]);
        // The original and the sibling are untouched.
        assert_eq!(p.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(parts[0].as_slice(), &[0, 1, 2, 3]);
        // The mutated pack detached: only its own subrange was copied.
        assert!(!parts[1].is_shared());
    }

    #[test]
    fn pack_split_packs_and_empty() {
        let p = Pack::from_vec((0..9).collect());
        let parts = p.split_packs(4);
        assert!(parts.len() <= 4);
        assert_eq!(parts.iter().map(Pack::len).sum::<usize>(), 9);
        let empty = Pack::from_vec(vec![]);
        assert!(empty.is_empty());
        assert!(empty.split_chunks(3).is_empty());
        assert_eq!(format!("{:?}", Pack::from_vec(vec![1])), "Pack[1 items @ 0..]");
    }

    #[test]
    fn args_spill_beyond_inline_slots() {
        let mut a = args![0u8, 1u8, 2u8, 3u8, 4u8, 5u8];
        assert_eq!(a.len(), 6);
        for i in 0..6u8 {
            assert_eq!(*a.get::<u8>(i as usize).unwrap(), i);
        }
        assert_eq!(a.take::<u8>(5).unwrap(), 5);
        assert_eq!(a.take::<u8>(1).unwrap(), 1);
        a.push(9u8);
        assert_eq!(a.len(), 7);
        assert_eq!(*a.get::<u8>(6).unwrap(), 9);
        assert!(matches!(a.get::<u8>(1), Err(WeaveError::MissingArg { .. })));
    }

    #[test]
    fn byte_sizes_are_proportional() {
        assert_eq!(5u64.byte_size(), 8);
        assert_eq!("abc".to_string().byte_size(), 7);
        assert_eq!(vec![1u32, 2, 3].byte_size(), 4 + 12);
        assert_eq!(Some(1u16).byte_size(), 3);
        assert_eq!(None::<u16>.byte_size(), 1);
        assert_eq!((1u8, 2u8, 3u8).byte_size(), 3);
        assert_eq!((1u8, 2u8, 3u8, 4u64).byte_size(), 11);
        assert_eq!(().byte_size(), 0);
        assert_eq!(Box::new(9u32).byte_size(), 4);
        assert_eq!("ab".byte_size(), 6);
        assert_eq!(Pack::from_vec(vec![1, 2]).byte_size(), 4 + 16);
        let halo: Arc<[f64]> = Arc::from(vec![1.0, 2.0]);
        assert_eq!(halo.byte_size(), 4 + 16);
    }

    #[test]
    fn args_debug_shows_taken_slots() {
        let mut a = args![1u8, 2u8];
        let _ = a.take::<u8>(0).unwrap();
        let d = format!("{a:?}");
        assert!(d.contains("2 slots"));
        assert!(d.contains("1 taken"));
    }

    mod representation_equivalence {
        //! Property tests: inline and boxed `Value` representations are
        //! observationally identical through `get`/`get_mut`/`take`/
        //! `downcast_ret` round trips, including cross-thread moves (the
        //! `Send` bound is exercised, not just asserted).
        use super::*;
        use proptest::prelude::*;

        fn assert_send<T: Send>() {}

        #[test]
        fn value_and_args_are_send() {
            assert_send::<Value>();
            assert_send::<Args>();
            assert_send::<Pack>();
        }

        /// Both representations of the same payload, built explicitly (no
        /// global flag, so parallel tests can't interleave).
        fn both<T: Any + Send + Clone>(v: T) -> (Value, Value) {
            (Value::new(v.clone()), Value::from_box(Box::new(v)))
        }

        fn roundtrip_eq<T>(v: T)
        where
            T: Any + Send + Clone + PartialEq + std::fmt::Debug,
        {
            let (inline, boxed) = both(v.clone());
            // get (borrow)
            assert_eq!(inline.downcast_ref::<T>(), boxed.downcast_ref::<T>());
            assert_eq!(inline.downcast_ref::<T>(), Some(&v));
            // wrong-type borrow misses on both
            assert!(inline.downcast_ref::<String>().is_none());
            assert!(boxed.downcast_ref::<String>().is_none());
            // take via Args (wrong type first: the slot must survive)
            for val in [inline, boxed] {
                let mut a = Args::from_value(val);
                assert!(a.take::<String>(0).is_err());
                assert_eq!(a.take::<T>(0).unwrap(), v);
            }
            // get_mut via Args writes through both representations
            let (inline, boxed) = both(v.clone());
            for val in [inline, boxed] {
                let mut a = Args::from_value(val);
                let m = a.get_mut::<T>(0).unwrap();
                *m = v.clone();
                assert_eq!(*a.get::<T>(0).unwrap(), v);
            }
            // downcast_ret
            let (inline, boxed) = both(v.clone());
            assert_eq!(downcast_ret::<T>(inline).unwrap(), v);
            assert_eq!(downcast_ret::<T>(boxed).unwrap(), v);
            // cross-thread move (Send): extract on another thread
            let (inline, boxed) = both(v.clone());
            let got = std::thread::spawn(move || {
                (downcast_ret::<T>(inline).unwrap(), downcast_ret::<T>(boxed).unwrap())
            })
            .join()
            .unwrap();
            assert_eq!(got.0, v);
            assert_eq!(got.1, v);
        }

        proptest! {
            #[test]
            fn u64_roundtrips(v in any::<u64>()) { roundtrip_eq(v); }

            #[test]
            fn i64_roundtrips(v in any::<i64>()) { roundtrip_eq(v); }

            #[test]
            fn u32_roundtrips(v in any::<u32>()) { roundtrip_eq(v); }

            #[test]
            fn f64_roundtrips(v in any::<i64>()) { roundtrip_eq(v as f64); }

            #[test]
            fn bool_roundtrips(v in any::<bool>()) { roundtrip_eq(v); }

            #[test]
            fn pair_roundtrips(a in any::<u64>(), b in any::<u64>()) {
                roundtrip_eq((a, b));
            }

            #[test]
            fn objid_roundtrips(raw in any::<u64>()) {
                roundtrip_eq(ObjId::from_raw(raw));
            }

            #[test]
            fn pack_roundtrips(items in proptest::collection::vec(any::<u64>(), 0..32)) {
                roundtrip_eq(Pack::from_vec(items));
            }

            #[test]
            fn boxed_fallback_roundtrips(items in proptest::collection::vec(any::<u64>(), 0..16)) {
                // Vec<u64> is not in the inline set: Value::new boxes it, and
                // both construction routes must still agree.
                let (a, b) = both(items.clone());
                prop_assert!(!a.is_inline() && !b.is_inline());
                roundtrip_eq(items);
            }

            #[test]
            fn pack_split_concat_identity(
                items in proptest::collection::vec(any::<u64>(), 1..64),
                chunk in 1usize..16,
            ) {
                let p = Pack::from_vec(items.clone());
                let parts = p.split_chunks(chunk);
                prop_assert_eq!(parts.iter().map(Pack::len).sum::<usize>(), items.len());
                prop_assert_eq!(Pack::concat(&parts).to_vec(), items);
            }
        }
    }
}
