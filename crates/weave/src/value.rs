//! Type-erased values and argument packs flowing through join points.
//!
//! Join points carry heterogeneous arguments, so the runtime moves them as
//! `Box<dyn Any + Send>`. Typed access is recovered at the edges: the
//! macro-generated dispatch tables *take* arguments by concrete type, and
//! advice code *borrows* them by concrete type before deciding how to proceed.

use std::any::Any;

use crate::error::{WeaveError, WeaveResult};

/// A type-erased, thread-mobile value (argument or return value).
pub type AnyValue = Box<dyn Any + Send>;

/// Build an [`Args`] pack from a list of expressions.
///
/// ```
/// use weavepar_weave::args;
/// let a = args![1u32, "hello".to_string(), vec![1u64, 2]];
/// assert_eq!(a.len(), 3);
/// ```
#[macro_export]
macro_rules! args {
    () => { $crate::value::Args::empty() };
    ($($v:expr),+ $(,)?) => {
        $crate::value::Args::from_values(vec![$(Box::new($v) as $crate::value::AnyValue),+])
    };
}

/// Box a value as a type-erased return value.
///
/// ```
/// use weavepar_weave::ret;
/// let r = ret!(42u32);
/// assert_eq!(*r.downcast::<u32>().unwrap(), 42);
/// ```
#[macro_export]
macro_rules! ret {
    () => {
        Box::new(()) as $crate::value::AnyValue
    };
    ($v:expr) => {
        Box::new($v) as $crate::value::AnyValue
    };
}

/// An ordered pack of type-erased arguments.
///
/// Slots are `Option`al so that dispatch code can *move* each argument out
/// exactly once while advice that ran earlier may have *borrowed* them.
pub struct Args {
    slots: Vec<Option<AnyValue>>,
}

impl Args {
    /// An empty argument pack.
    pub fn empty() -> Self {
        Args { slots: Vec::new() }
    }

    /// Build a pack from already-boxed values.
    pub fn from_values(values: Vec<AnyValue>) -> Self {
        Args { slots: values.into_iter().map(Some).collect() }
    }

    /// Number of slots (including ones already moved out).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pack has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Borrow the argument at `index` with its concrete type.
    pub fn get<T: 'static>(&self, index: usize) -> WeaveResult<&T> {
        let slot = self
            .slots
            .get(index)
            .and_then(|s| s.as_ref())
            .ok_or(WeaveError::MissingArg { index, len: self.slots.len() })?;
        slot.downcast_ref::<T>().ok_or_else(|| WeaveError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            context: format!("argument {index}"),
        })
    }

    /// Mutably borrow the argument at `index` with its concrete type.
    pub fn get_mut<T: 'static>(&mut self, index: usize) -> WeaveResult<&mut T> {
        let len = self.slots.len();
        let slot = self
            .slots
            .get_mut(index)
            .and_then(|s| s.as_mut())
            .ok_or(WeaveError::MissingArg { index, len })?;
        slot.downcast_mut::<T>().ok_or_else(|| WeaveError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            context: format!("argument {index}"),
        })
    }

    /// Move the argument at `index` out of the pack with its concrete type.
    ///
    /// Subsequent `take`/`get` calls on the same slot fail with
    /// [`WeaveError::MissingArg`].
    pub fn take<T: 'static>(&mut self, index: usize) -> WeaveResult<T> {
        let len = self.slots.len();
        let slot = self.slots.get_mut(index).ok_or(WeaveError::MissingArg { index, len })?;
        let value = slot.take().ok_or(WeaveError::MissingArg { index, len })?;
        match value.downcast::<T>() {
            Ok(v) => Ok(*v),
            Err(original) => {
                // Put the value back so a retry with the right type still works.
                *slot = Some(original);
                Err(WeaveError::TypeMismatch {
                    expected: std::any::type_name::<T>(),
                    context: format!("argument {index}"),
                })
            }
        }
    }

    /// Replace the argument at `index` with a new value (e.g. advice rewriting
    /// a method-call parameter before proceeding).
    pub fn set<T: Any + Send>(&mut self, index: usize, value: T) -> WeaveResult<()> {
        let len = self.slots.len();
        let slot = self.slots.get_mut(index).ok_or(WeaveError::MissingArg { index, len })?;
        *slot = Some(Box::new(value));
        Ok(())
    }

    /// Append a new argument slot.
    pub fn push<T: Any + Send>(&mut self, value: T) {
        self.slots.push(Some(Box::new(value)));
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::empty()
    }
}

impl std::fmt::Debug for Args {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Args[{} slots", self.slots.len())?;
        let taken = self.slots.iter().filter(|s| s.is_none()).count();
        if taken > 0 {
            write!(f, ", {taken} taken")?;
        }
        write!(f, "]")
    }
}

/// Downcast a type-erased return value to a concrete type.
pub fn downcast_ret<T: 'static>(value: AnyValue) -> WeaveResult<T> {
    value.downcast::<T>().map(|b| *b).map_err(|_| WeaveError::TypeMismatch {
        expected: std::any::type_name::<T>(),
        context: "return value".into(),
    })
}

/// Approximate serialized size of a value, used by the trace recorder to model
/// message sizes without a full marshalling pass.
///
/// The distribution middleware has its own exact codec; `ByteSize` only needs
/// to be proportional to it, which is what the network model consumes.
pub trait ByteSize {
    /// Approximate number of bytes this value would occupy on the wire.
    fn byte_size(&self) -> usize;
}

macro_rules! impl_bytesize_prim {
    ($($t:ty),*) => {
        $(impl ByteSize for $t {
            fn byte_size(&self) -> usize { std::mem::size_of::<$t>() }
        })*
    };
}

impl_bytesize_prim!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char
);

impl ByteSize for () {
    fn byte_size(&self) -> usize {
        0
    }
}

impl ByteSize for String {
    fn byte_size(&self) -> usize {
        4 + self.len()
    }
}

impl ByteSize for &str {
    fn byte_size(&self) -> usize {
        4 + self.len()
    }
}

impl<T: ByteSize> ByteSize for Vec<T> {
    fn byte_size(&self) -> usize {
        4 + self.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

impl<T: ByteSize> ByteSize for Option<T> {
    fn byte_size(&self) -> usize {
        1 + self.as_ref().map_or(0, ByteSize::byte_size)
    }
}

impl<T: ByteSize> ByteSize for Box<T> {
    fn byte_size(&self) -> usize {
        self.as_ref().byte_size()
    }
}

impl<A: ByteSize, B: ByteSize> ByteSize for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: ByteSize, B: ByteSize, C: ByteSize> ByteSize for (A, B, C) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

impl<A: ByteSize, B: ByteSize, C: ByteSize, D: ByteSize> ByteSize for (A, B, C, D) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size() + self.3.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_macro_and_len() {
        let a = args![1u32, 2u64];
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(args![].is_empty());
    }

    #[test]
    fn get_typed_borrow() {
        let a = args![7u32, "hi".to_string()];
        assert_eq!(*a.get::<u32>(0).unwrap(), 7);
        assert_eq!(a.get::<String>(1).unwrap(), "hi");
    }

    #[test]
    fn get_wrong_type_reports_mismatch() {
        let a = args![7u32];
        let err = a.get::<u64>(0).unwrap_err();
        assert!(matches!(err, WeaveError::TypeMismatch { .. }));
    }

    #[test]
    fn get_out_of_range_reports_missing() {
        let a = args![7u32];
        assert!(matches!(a.get::<u32>(5), Err(WeaveError::MissingArg { index: 5, len: 1 })));
    }

    #[test]
    fn take_moves_once() {
        let mut a = args![vec![1u64, 2, 3]];
        let v: Vec<u64> = a.take(0).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(matches!(a.take::<Vec<u64>>(0), Err(WeaveError::MissingArg { .. })));
    }

    #[test]
    fn take_wrong_type_keeps_value() {
        let mut a = args![42u32];
        assert!(a.take::<u64>(0).is_err());
        // A wrong-typed take must not destroy the argument.
        assert_eq!(a.take::<u32>(0).unwrap(), 42);
    }

    #[test]
    fn set_replaces_and_push_appends() {
        let mut a = args![1u32];
        a.set(0, 9u32).unwrap();
        assert_eq!(*a.get::<u32>(0).unwrap(), 9);
        a.push("x".to_string());
        assert_eq!(a.len(), 2);
        assert_eq!(a.get::<String>(1).unwrap(), "x");
    }

    #[test]
    fn get_mut_allows_in_place_edit() {
        let mut a = args![vec![1u64]];
        a.get_mut::<Vec<u64>>(0).unwrap().push(2);
        assert_eq!(a.get::<Vec<u64>>(0).unwrap().len(), 2);
    }

    #[test]
    fn downcast_ret_roundtrip() {
        let r = ret!(3.5f64);
        assert_eq!(downcast_ret::<f64>(r).unwrap(), 3.5);
        let r = ret!();
        downcast_ret::<()>(r).unwrap();
        let r = ret!(1u8);
        assert!(downcast_ret::<u16>(r).is_err());
    }

    #[test]
    fn byte_sizes_are_proportional() {
        assert_eq!(5u64.byte_size(), 8);
        assert_eq!("abc".to_string().byte_size(), 7);
        assert_eq!(vec![1u32, 2, 3].byte_size(), 4 + 12);
        assert_eq!(Some(1u16).byte_size(), 3);
        assert_eq!(None::<u16>.byte_size(), 1);
        assert_eq!((1u8, 2u8, 3u8).byte_size(), 3);
        assert_eq!((1u8, 2u8, 3u8, 4u64).byte_size(), 11);
        assert_eq!(().byte_size(), 0);
        assert_eq!(Box::new(9u32).byte_size(), 4);
        assert_eq!("ab".byte_size(), 6);
    }

    #[test]
    fn args_debug_shows_taken_slots() {
        let mut a = args![1u8, 2u8];
        let _ = a.take::<u8>(0).unwrap();
        let d = format!("{a:?}");
        assert!(d.contains("2 slots"));
        assert!(d.contains("1 taken"));
    }
}
