//! Join-point signatures and the wildcard patterns that quantify over them.
//!
//! A [`Signature`] identifies a join point's static shape: the class and the
//! method (constructions use the reserved method name [`Signature::NEW`]).
//! A [`MethodPattern`] is the textual quantification device of the paper —
//! `PrimeFilter.filter*`, `*.new`, `Pipe.compute` — matched structurally
//! against signatures.

use std::fmt;

/// The static identity of a join point: `Class.method`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature {
    /// Class (weaveable type) name.
    pub class: &'static str,
    /// Method name; constructions use [`Signature::NEW`].
    pub method: &'static str,
}

impl Signature {
    /// Reserved method name used for construction join points.
    pub const NEW: &'static str = "new";

    /// Build a signature from class and method names.
    pub const fn new(class: &'static str, method: &'static str) -> Self {
        Signature { class, method }
    }

    /// The construction signature for `class`.
    pub const fn construction(class: &'static str) -> Self {
        Signature { class, method: Self::NEW }
    }

    /// True when this is a construction signature.
    pub fn is_construction(&self) -> bool {
        self.method == Self::NEW
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.method)
    }
}

/// A glob-like pattern over signatures.
///
/// The pattern grammar mirrors what the paper's pointcuts use:
///
/// * `Class.method` — exact match;
/// * `*` in either position matches any name (`*.filter`, `PrimeFilter.*`);
/// * a trailing `*` in a segment matches any suffix (`Point.move*`);
/// * a leading `*` in a segment matches any prefix (`*Filter.filter`);
/// * a single interior `*` matches any infix (`Prime*Filter` ≡ prefix+suffix).
///
/// A pattern without a dot applies the segment to the *method* and matches any
/// class (so `"filter"` ≡ `"*.filter"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodPattern {
    class: SegmentPattern,
    method: SegmentPattern,
}

impl MethodPattern {
    /// Parse a pattern from its textual form. Never fails: every string is a
    /// valid pattern (empty segments match only empty names).
    pub fn parse(pattern: &str) -> Self {
        match pattern.split_once('.') {
            Some((class, method)) => MethodPattern {
                class: SegmentPattern::parse(class),
                method: SegmentPattern::parse(method),
            },
            None => {
                MethodPattern { class: SegmentPattern::Any, method: SegmentPattern::parse(pattern) }
            }
        }
    }

    /// Pattern matching every construction of `class_pattern` (e.g. `Prime*`).
    pub fn construction_of(class_pattern: &str) -> Self {
        MethodPattern {
            class: SegmentPattern::parse(class_pattern),
            method: SegmentPattern::Exact(Signature::NEW.to_string()),
        }
    }

    /// Test a signature against the pattern.
    pub fn matches(&self, sig: &Signature) -> bool {
        self.class.matches(sig.class) && self.method.matches(sig.method)
    }
}

impl From<&str> for MethodPattern {
    fn from(s: &str) -> Self {
        MethodPattern::parse(s)
    }
}

impl fmt::Display for MethodPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.method)
    }
}

/// Pattern for one dot-separated segment (class or method name).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SegmentPattern {
    /// `*`
    Any,
    /// No wildcard.
    Exact(String),
    /// `foo*`
    Prefix(String),
    /// `*foo`
    Suffix(String),
    /// `foo*bar` (single interior star).
    Infix(String, String),
}

impl SegmentPattern {
    fn parse(segment: &str) -> Self {
        if segment == "*" {
            return SegmentPattern::Any;
        }
        match segment.find('*') {
            None => SegmentPattern::Exact(segment.to_string()),
            Some(pos) => {
                let (head, tail) = (&segment[..pos], &segment[pos + 1..]);
                // Additional stars inside `tail` are not part of the paper's
                // pointcut vocabulary; treat them literally.
                if head.is_empty() {
                    SegmentPattern::Suffix(tail.to_string())
                } else if tail.is_empty() {
                    SegmentPattern::Prefix(head.to_string())
                } else {
                    SegmentPattern::Infix(head.to_string(), tail.to_string())
                }
            }
        }
    }

    fn matches(&self, name: &str) -> bool {
        match self {
            SegmentPattern::Any => true,
            SegmentPattern::Exact(s) => name == s,
            SegmentPattern::Prefix(p) => name.starts_with(p),
            SegmentPattern::Suffix(s) => name.ends_with(s),
            SegmentPattern::Infix(p, s) => {
                name.len() >= p.len() + s.len() && name.starts_with(p) && name.ends_with(s)
            }
        }
    }
}

impl fmt::Display for SegmentPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentPattern::Any => write!(f, "*"),
            SegmentPattern::Exact(s) => write!(f, "{s}"),
            SegmentPattern::Prefix(p) => write!(f, "{p}*"),
            SegmentPattern::Suffix(s) => write!(f, "*{s}"),
            SegmentPattern::Infix(p, s) => write!(f, "{p}*{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(class: &'static str, method: &'static str) -> Signature {
        Signature::new(class, method)
    }

    #[test]
    fn exact_match() {
        let p = MethodPattern::parse("PrimeFilter.filter");
        assert!(p.matches(&sig("PrimeFilter", "filter")));
        assert!(!p.matches(&sig("PrimeFilter", "filters")));
        assert!(!p.matches(&sig("Prime", "filter")));
    }

    #[test]
    fn method_prefix_wildcard() {
        // The paper's Figure 3: `Point.move*`.
        let p = MethodPattern::parse("Point.move*");
        assert!(p.matches(&sig("Point", "move_x")));
        assert!(p.matches(&sig("Point", "move")));
        assert!(!p.matches(&sig("Point", "get")));
        assert!(!p.matches(&sig("Line", "move_x")));
    }

    #[test]
    fn class_wildcards() {
        let p = MethodPattern::parse("*.filter");
        assert!(p.matches(&sig("PrimeFilter", "filter")));
        assert!(p.matches(&sig("Anything", "filter")));
        let p = MethodPattern::parse("*Filter.filter");
        assert!(p.matches(&sig("PrimeFilter", "filter")));
        assert!(!p.matches(&sig("Filtering", "filter")));
    }

    #[test]
    fn bare_method_matches_any_class() {
        let p = MethodPattern::parse("filter");
        assert!(p.matches(&sig("A", "filter")));
        assert!(p.matches(&sig("B", "filter")));
        assert!(!p.matches(&sig("A", "compute")));
    }

    #[test]
    fn star_star_matches_everything() {
        let p = MethodPattern::parse("*.*");
        assert!(p.matches(&sig("A", "b")));
        assert!(p.matches(&sig("", "")));
    }

    #[test]
    fn infix_wildcard() {
        let p = MethodPattern::parse("Prime*Filter.run");
        assert!(p.matches(&sig("PrimeNumberFilter", "run")));
        assert!(p.matches(&sig("PrimeFilter", "run")));
        // Overlap must not double-count: "PrimeF" is too short for Prime+Filter.
        assert!(!p.matches(&sig("PrimeF", "run")));
    }

    #[test]
    fn construction_pattern() {
        let p = MethodPattern::construction_of("PrimeFilter");
        assert!(p.matches(&Signature::construction("PrimeFilter")));
        assert!(!p.matches(&sig("PrimeFilter", "filter")));
        let p = MethodPattern::construction_of("*");
        assert!(p.matches(&Signature::construction("Anything")));
    }

    #[test]
    fn construction_signature_properties() {
        let s = Signature::construction("X");
        assert!(s.is_construction());
        assert_eq!(s.to_string(), "X.new");
        assert!(!sig("X", "run").is_construction());
    }

    #[test]
    fn display_roundtrip() {
        for text in ["A.b", "*.b", "A.*", "A.b*", "A.*b", "A.b*c", "*.*"] {
            let p = MethodPattern::parse(text);
            assert_eq!(p.to_string(), text);
        }
        // Bare method normalizes to `*.method`.
        assert_eq!(MethodPattern::parse("filter").to_string(), "*.filter");
    }

    #[test]
    fn empty_segments_match_only_empty() {
        let p = MethodPattern::parse(".x");
        assert!(!p.matches(&sig("A", "x")));
    }

    #[test]
    fn from_str_impl() {
        let p: MethodPattern = "Point.move*".into();
        assert!(p.matches(&sig("Point", "move_y")));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn leak(s: String) -> &'static str {
        Box::leak(s.into_boxed_str())
    }

    proptest! {
        /// An exact pattern built from a signature always matches it.
        #[test]
        fn exact_pattern_matches_self(class in "[A-Za-z_][A-Za-z0-9_]{0,12}",
                                      method in "[a-z_][a-z0-9_]{0,12}") {
            let s = Signature::new(leak(class.clone()), leak(method.clone()));
            let p = MethodPattern::parse(&format!("{class}.{method}"));
            prop_assert!(p.matches(&s));
        }

        /// A prefix pattern matches exactly the names with that prefix.
        #[test]
        fn prefix_semantics(name in "[a-z]{1,10}", cut in 0usize..10) {
            let cut = cut.min(name.len());
            let prefix = &name[..cut];
            let p = MethodPattern::parse(&format!("*.{prefix}*"));
            let s = Signature::new("C", leak(name.clone()));
            prop_assert!(p.matches(&s));
        }

        /// `*.*` matches any signature.
        #[test]
        fn star_star_total(class in "[A-Za-z]{1,8}", method in "[a-z]{1,8}") {
            let s = Signature::new(leak(class), leak(method));
            prop_assert!(MethodPattern::parse("*.*").matches(&s));
        }

        /// Matching is deterministic (pure function of the inputs).
        #[test]
        fn matching_is_pure(pat in "[A-Za-z*]{1,6}\\.[a-z*]{1,6}",
                            class in "[A-Za-z]{1,8}", method in "[a-z]{1,8}") {
            let p = MethodPattern::parse(&pat);
            let s = Signature::new(leak(class), leak(method));
            prop_assert_eq!(p.matches(&s), p.matches(&s));
        }

        /// Parsing then displaying then re-parsing is a fixpoint.
        #[test]
        fn parse_display_fixpoint(pat in "[A-Za-z*]{1,6}\\.[a-z*]{1,6}") {
            let p1 = MethodPattern::parse(&pat);
            let p2 = MethodPattern::parse(&p1.to_string());
            prop_assert_eq!(p1, p2);
        }
    }
}
