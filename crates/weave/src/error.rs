//! Error type shared by the whole weaving runtime.

use std::fmt;

use crate::object::ObjId;

/// Result alias used across the workspace.
pub type WeaveResult<T> = Result<T, WeaveError>;

/// Errors raised by the weaving runtime, advice code or woven applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeaveError {
    /// An [`ObjId`](crate::object::ObjId) did not resolve to a live object.
    NoSuchObject(ObjId),
    /// A method name was not found in a class's dispatch table (nor among the
    /// inter-type extension methods).
    NoSuchMethod {
        /// Class the call targeted.
        class: String,
        /// Method that could not be resolved.
        method: String,
    },
    /// A value extracted from [`Args`](crate::value::Args) or a return value
    /// had an unexpected concrete type.
    TypeMismatch {
        /// The Rust type the caller expected.
        expected: &'static str,
        /// Where the mismatch happened (method, argument index, ...).
        context: String,
    },
    /// An argument index was out of range, or the argument was already moved
    /// out of the argument pack.
    MissingArg {
        /// Index that was requested.
        index: usize,
        /// Number of slots in the pack.
        len: usize,
    },
    /// `proceed` was called after the arguments were already consumed.
    AlreadyProceeded,
    /// The target object was expected on a join point but absent (e.g. advice
    /// on a construction asked for a target).
    NoTarget,
    /// Failure while constructing an object.
    Construction(String),
    /// A distribution middleware failure (connection, marshalling, remote
    /// dispatch). Mirrors Java's `RemoteException` in the paper's Figure 14.
    Remote(String),
    /// A cluster node is known to be dead. Not retryable against the same
    /// node: recovery means picking a *different* node (a supervisor's job),
    /// not submitting the same request again.
    NodeDown {
        /// The dead node's index.
        node: usize,
    },
    /// A call exceeded its deadline. Retryable: the request may have been
    /// lost (or merely delayed — at-most-once dedup on the serving side
    /// makes the retry safe either way).
    Timeout {
        /// How long the caller waited, milliseconds.
        waited_ms: u64,
    },
    /// A transient middleware failure (injected drop, transport hiccup) that
    /// is safe to retry under a [`CallPolicy`]-style backoff.
    Retryable(String),
    /// Error surfaced from aspect or application code.
    App(String),
}

impl WeaveError {
    /// Convenience constructor for application-level errors.
    pub fn app(msg: impl Into<String>) -> Self {
        WeaveError::App(msg.into())
    }

    /// Convenience constructor for remote/middleware errors.
    pub fn remote(msg: impl Into<String>) -> Self {
        WeaveError::Remote(msg.into())
    }

    /// Convenience constructor for transient, retry-safe failures.
    pub fn retryable(msg: impl Into<String>) -> Self {
        WeaveError::Retryable(msg.into())
    }

    /// Would submitting the same request again plausibly succeed?
    /// `Timeout` and `Retryable` qualify; `NodeDown` does not — the node
    /// stays dead, so recovery needs a different placement.
    pub fn is_retryable(&self) -> bool {
        matches!(self, WeaveError::Timeout { .. } | WeaveError::Retryable(_))
    }

    /// Did a node die under this call? Supervisors key their recovery
    /// (restore on a survivor + re-dispatch) on this predicate.
    pub fn is_node_loss(&self) -> bool {
        matches!(self, WeaveError::NodeDown { .. })
    }
}

impl fmt::Display for WeaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeaveError::NoSuchObject(id) => write!(f, "no such object: {id}"),
            WeaveError::NoSuchMethod { class, method } => {
                write!(f, "no method `{method}` on class `{class}`")
            }
            WeaveError::TypeMismatch { expected, context } => {
                write!(f, "type mismatch (expected `{expected}`) in {context}")
            }
            WeaveError::MissingArg { index, len } => {
                write!(f, "argument {index} missing or already taken (pack has {len} slots)")
            }
            WeaveError::AlreadyProceeded => {
                write!(f, "proceed() called but the arguments were already consumed")
            }
            WeaveError::NoTarget => write!(f, "join point has no target object"),
            WeaveError::Construction(msg) => write!(f, "construction failed: {msg}"),
            WeaveError::Remote(msg) => write!(f, "remote invocation failed: {msg}"),
            WeaveError::NodeDown { node } => write!(f, "node {node} is down"),
            WeaveError::Timeout { waited_ms } => {
                write!(f, "call timed out after {waited_ms} ms")
            }
            WeaveError::Retryable(msg) => write!(f, "transient failure (retryable): {msg}"),
            WeaveError::App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl std::error::Error for WeaveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<WeaveError> = vec![
            WeaveError::NoSuchObject(ObjId::from_raw(7)),
            WeaveError::NoSuchMethod { class: "A".into(), method: "m".into() },
            WeaveError::TypeMismatch { expected: "u32", context: "arg 0".into() },
            WeaveError::MissingArg { index: 2, len: 1 },
            WeaveError::AlreadyProceeded,
            WeaveError::NoTarget,
            WeaveError::Construction("boom".into()),
            WeaveError::Remote("link down".into()),
            WeaveError::NodeDown { node: 3 },
            WeaveError::Timeout { waited_ms: 250 },
            WeaveError::Retryable("dropped".into()),
            WeaveError::App("oops".into()),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn retryability_partition() {
        assert!(WeaveError::Timeout { waited_ms: 1 }.is_retryable());
        assert!(WeaveError::retryable("x").is_retryable());
        assert!(!WeaveError::NodeDown { node: 0 }.is_retryable());
        assert!(!WeaveError::remote("x").is_retryable());
        assert!(!WeaveError::app("x").is_retryable());
        assert!(WeaveError::NodeDown { node: 0 }.is_node_loss());
        assert!(!WeaveError::Timeout { waited_ms: 1 }.is_node_loss());
    }

    #[test]
    fn app_and_remote_constructors() {
        assert_eq!(WeaveError::app("x"), WeaveError::App("x".into()));
        assert_eq!(WeaveError::remote("y"), WeaveError::Remote("y".into()));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(WeaveError::AlreadyProceeded, WeaveError::AlreadyProceeded);
        assert_ne!(WeaveError::AlreadyProceeded, WeaveError::NoTarget);
    }
}
