//! Error type shared by the whole weaving runtime.

use std::fmt;

use crate::object::ObjId;

/// Result alias used across the workspace.
pub type WeaveResult<T> = Result<T, WeaveError>;

/// Errors raised by the weaving runtime, advice code or woven applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeaveError {
    /// An [`ObjId`](crate::object::ObjId) did not resolve to a live object.
    NoSuchObject(ObjId),
    /// A method name was not found in a class's dispatch table (nor among the
    /// inter-type extension methods).
    NoSuchMethod {
        /// Class the call targeted.
        class: String,
        /// Method that could not be resolved.
        method: String,
    },
    /// A value extracted from [`Args`](crate::value::Args) or a return value
    /// had an unexpected concrete type.
    TypeMismatch {
        /// The Rust type the caller expected.
        expected: &'static str,
        /// Where the mismatch happened (method, argument index, ...).
        context: String,
    },
    /// An argument index was out of range, or the argument was already moved
    /// out of the argument pack.
    MissingArg {
        /// Index that was requested.
        index: usize,
        /// Number of slots in the pack.
        len: usize,
    },
    /// `proceed` was called after the arguments were already consumed.
    AlreadyProceeded,
    /// The target object was expected on a join point but absent (e.g. advice
    /// on a construction asked for a target).
    NoTarget,
    /// Failure while constructing an object.
    Construction(String),
    /// A distribution middleware failure (connection, marshalling, remote
    /// dispatch). Mirrors Java's `RemoteException` in the paper's Figure 14.
    Remote(String),
    /// Error surfaced from aspect or application code.
    App(String),
}

impl WeaveError {
    /// Convenience constructor for application-level errors.
    pub fn app(msg: impl Into<String>) -> Self {
        WeaveError::App(msg.into())
    }

    /// Convenience constructor for remote/middleware errors.
    pub fn remote(msg: impl Into<String>) -> Self {
        WeaveError::Remote(msg.into())
    }
}

impl fmt::Display for WeaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeaveError::NoSuchObject(id) => write!(f, "no such object: {id}"),
            WeaveError::NoSuchMethod { class, method } => {
                write!(f, "no method `{method}` on class `{class}`")
            }
            WeaveError::TypeMismatch { expected, context } => {
                write!(f, "type mismatch (expected `{expected}`) in {context}")
            }
            WeaveError::MissingArg { index, len } => {
                write!(f, "argument {index} missing or already taken (pack has {len} slots)")
            }
            WeaveError::AlreadyProceeded => {
                write!(f, "proceed() called but the arguments were already consumed")
            }
            WeaveError::NoTarget => write!(f, "join point has no target object"),
            WeaveError::Construction(msg) => write!(f, "construction failed: {msg}"),
            WeaveError::Remote(msg) => write!(f, "remote invocation failed: {msg}"),
            WeaveError::App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl std::error::Error for WeaveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<WeaveError> = vec![
            WeaveError::NoSuchObject(ObjId::from_raw(7)),
            WeaveError::NoSuchMethod { class: "A".into(), method: "m".into() },
            WeaveError::TypeMismatch { expected: "u32", context: "arg 0".into() },
            WeaveError::MissingArg { index: 2, len: 1 },
            WeaveError::AlreadyProceeded,
            WeaveError::NoTarget,
            WeaveError::Construction("boom".into()),
            WeaveError::Remote("link down".into()),
            WeaveError::App("oops".into()),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn app_and_remote_constructors() {
        assert_eq!(WeaveError::app("x"), WeaveError::App("x".into()));
        assert_eq!(WeaveError::remote("y"), WeaveError::Remote("y".into()));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(WeaveError::AlreadyProceeded, WeaveError::AlreadyProceeded);
        assert_ne!(WeaveError::AlreadyProceeded, WeaveError::NoTarget);
    }
}
