//! Aspects: named, precedence-ordered bundles of advice that can be plugged
//! into and unplugged from a [`Weaver`](crate::registry::Weaver) at run time.
//!
//! This is the unit of modularity the paper's methodology revolves around:
//! one aspect per parallelisation concern (partition, concurrency,
//! distribution, optimisation), each independently (un)pluggable.

use std::sync::Arc;

use crate::advice::Advice;
use crate::error::WeaveResult;
use crate::invocation::Invocation;
use crate::pointcut::Pointcut;
use crate::value::AnyValue;

/// Identifier assigned to an aspect when it is plugged into a weaver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AspectId(u64);

impl AspectId {
    /// Build from a raw id (tests, diagnostics).
    pub fn from_raw(raw: u64) -> Self {
        AspectId(raw)
    }

    /// Raw id.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for AspectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "aspect#{}", self.0)
    }
}

/// Default precedences for the paper's concern categories (lower = outermost).
///
/// A full stack weaves each call as:
///
/// ```text
/// async spawn → partition (split / forward) → synchronisation →
///     optimisation → distribution → base
/// ```
///
/// The asynchronous-invocation advice must be *outside* partition forwarding:
/// in the paper's Figure 11 every filter call — including the ones the
/// Partition aspect forwards down the pipeline — runs in its own thread, and
/// the forward of a pack happens only after the previous filter finished it.
/// Synchronisation and distribution run inside the spawned thread (Figure 12:
/// the monitor is held by the worker; Figure 14: each worker performs its own
/// remote call).
pub mod precedence {
    /// Asynchronous method invocation (thread spawn / future).
    pub const ASYNC_INVOCATION: i32 = 50;
    /// Partition aspects (object duplication, call split, forwarding).
    pub const PARTITION: i32 = 100;
    /// Synchronisation advice (per-object monitors).
    pub const SYNCHRONISATION: i32 = 200;
    /// Optimisation aspects (caching, message packing); they sit just outside
    /// distribution so they can elide or batch remote calls.
    pub const OPTIMISATION: i32 = 250;
    /// Supervision aspects (fault detection, worker recovery, task
    /// re-dispatch): outside distribution so a `NodeDown` surfacing from a
    /// remote call is caught and repaired before the partition layer sees it.
    pub const SUPERVISION: i32 = 275;
    /// Distribution aspects (remote redirection), innermost.
    pub const DISTRIBUTION: i32 = 300;
}

/// A declared aspect: advice plus metadata. Build with [`Aspect::named`],
/// then pass to [`Weaver::plug`](crate::registry::Weaver::plug).
pub struct Aspect {
    pub(crate) name: String,
    pub(crate) precedence: i32,
    pub(crate) advice: Vec<(Pointcut, Arc<dyn Advice>)>,
}

impl Aspect {
    /// Start building an aspect.
    pub fn named(name: impl Into<String>) -> AspectBuilder {
        AspectBuilder { name: name.into(), precedence: 0, advice: Vec::new() }
    }

    /// The aspect's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The aspect's precedence (lower = outermost).
    pub fn precedence(&self) -> i32 {
        self.precedence
    }

    /// Number of advice declarations.
    pub fn advice_count(&self) -> usize {
        self.advice.len()
    }
}

impl std::fmt::Debug for Aspect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aspect")
            .field("name", &self.name)
            .field("precedence", &self.precedence)
            .field("advice", &self.advice.len())
            .finish()
    }
}

/// Builder for [`Aspect`].
pub struct AspectBuilder {
    name: String,
    precedence: i32,
    advice: Vec<(Pointcut, Arc<dyn Advice>)>,
}

impl AspectBuilder {
    /// Set the precedence (lower runs outermost). See [`precedence`] for the
    /// conventional values of the four concern categories.
    pub fn precedence(mut self, precedence: i32) -> Self {
        self.precedence = precedence;
        self
    }

    /// Add around advice.
    pub fn around<A: Advice>(mut self, pointcut: Pointcut, advice: A) -> Self {
        self.advice.push((pointcut, Arc::new(advice)));
        self
    }

    /// Add guarded around advice — AspectJ's `if()` pointcut residue: the
    /// pointcut selects statically (cacheable), and `guard` decides per join
    /// point, with access to the live arguments, whether the advice applies
    /// (on `false` the event proceeds untouched).
    pub fn around_if<G, A>(self, pointcut: Pointcut, guard: G, advice: A) -> Self
    where
        G: Fn(&Invocation) -> WeaveResult<bool> + Send + Sync + 'static,
        A: Advice,
    {
        self.around(
            pointcut,
            move |inv: &mut Invocation| {
                if guard(inv)? {
                    advice.around(inv)
                } else {
                    inv.proceed()
                }
            },
        )
    }

    /// Add before advice: runs `f`, then proceeds with the original event.
    pub fn before<F>(self, pointcut: Pointcut, f: F) -> Self
    where
        F: Fn(&mut Invocation) -> WeaveResult<()> + Send + Sync + 'static,
    {
        self.around(pointcut, move |inv: &mut Invocation| {
            f(inv)?;
            inv.proceed()
        })
    }

    /// Add after advice: proceeds with the original event, then runs `f` with
    /// the invocation and the (type-erased) return value.
    pub fn after<F>(self, pointcut: Pointcut, f: F) -> Self
    where
        F: Fn(&mut Invocation, &AnyValue) -> WeaveResult<()> + Send + Sync + 'static,
    {
        self.around(pointcut, move |inv: &mut Invocation| {
            let ret = inv.proceed()?;
            f(inv, &ret)?;
            Ok(ret)
        })
    }

    /// Finish building.
    pub fn build(self) -> Aspect {
        Aspect { name: self.name, precedence: self.precedence, advice: self.advice }
    }
}

/// Token returned by [`Weaver::plug`](crate::registry::Weaver::plug);
/// identifies the plugged aspect for unplug/enable/disable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PluggedAspect {
    pub(crate) id: AspectId,
    pub(crate) name: String,
}

impl PluggedAspect {
    /// The runtime id the weaver assigned.
    pub fn id(&self) -> AspectId {
        self.id
    }

    /// The aspect's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_advice() {
        let a = Aspect::named("Partition")
            .precedence(precedence::PARTITION)
            .around(Pointcut::call("A.m"), |inv: &mut Invocation| inv.proceed())
            .before(Pointcut::call("A.n"), |_inv| Ok(()))
            .after(Pointcut::call("A.o"), |_inv, _ret| Ok(()))
            .build();
        assert_eq!(a.name(), "Partition");
        assert_eq!(a.precedence(), precedence::PARTITION);
        assert_eq!(a.advice_count(), 3);
    }

    #[test]
    fn category_precedences_are_ordered() {
        const { assert!(precedence::ASYNC_INVOCATION < precedence::PARTITION) };
        const { assert!(precedence::PARTITION < precedence::SYNCHRONISATION) };
        const { assert!(precedence::SYNCHRONISATION < precedence::OPTIMISATION) };
        const { assert!(precedence::OPTIMISATION < precedence::DISTRIBUTION) };
    }

    #[test]
    fn aspect_id_display() {
        assert_eq!(AspectId::from_raw(4).to_string(), "aspect#4");
        assert_eq!(AspectId::from_raw(4).raw(), 4);
    }
}
