//! Aspect-managed objects: the [`ObjectSpace`] and typed [`Handle`]s.
//!
//! In the paper, the partition aspect replaces one core object with a *set* of
//! aspect-managed objects whose lifetime the aspect controls (Figure 4). Here
//! those objects live in an [`ObjectSpace`]: a map from [`ObjId`] to a boxed
//! instance behind a **re-entrant per-object monitor**.
//!
//! The monitor plays the role of Java's `synchronized(target)` in the paper's
//! concurrency aspect (Figure 12): the synchronisation advice can hold an
//! object's monitor across `proceed`, and the base dispatch re-acquires it
//! re-entrantly for the actual `&mut` access.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{ReentrantMutex, RwLock};

use crate::dispatch::{ClassInfo, Weaveable};
use crate::error::{WeaveError, WeaveResult};
use crate::registry::Weaver;
use crate::value::{AnyValue, Args};

/// Identity of an object in an [`ObjectSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(u64);

impl ObjId {
    /// Build from a raw id (tests, simulators, wire transfer).
    pub fn from_raw(raw: u64) -> Self {
        ObjId(raw)
    }

    /// Raw id.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ObjId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

pub(crate) type Instance = Arc<ReentrantMutex<RefCell<Box<dyn Any + Send>>>>;

/// Guard holding an object's monitor (the paper's `synchronized(target)`).
///
/// Re-entrant: the thread holding it can still dispatch methods on the same
/// object through the weaver.
pub struct MonitorGuard {
    _guard: parking_lot::ArcReentrantMutexGuard<RefCell<Box<dyn Any + Send>>>,
}

struct Entry {
    info: ClassInfo,
    instance: Instance,
}

/// Number of independent map shards. A power of two so the shard index is a
/// mask of the (sequentially assigned) object id.
const SHARDS: usize = 16;

/// Shared store of aspect-managed objects, sharded by object id.
///
/// All access goes through per-object monitors; the id→instance maps are
/// split into [`SHARDS`] read-write-locked shards so concurrent dispatch —
/// even insert/remove traffic — to *different* objects rarely touches the
/// same lock.
pub struct ObjectSpace {
    shards: [RwLock<HashMap<u64, Entry>>; SHARDS],
    next_id: AtomicU64,
}

impl ObjectSpace {
    /// An empty space.
    pub fn new() -> Self {
        ObjectSpace {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            next_id: AtomicU64::new(1),
        }
    }

    fn shard(&self, raw: u64) -> &RwLock<HashMap<u64, Entry>> {
        &self.shards[(raw as usize) & (SHARDS - 1)]
    }

    /// Insert a typed instance, returning its id.
    pub fn insert<T: Weaveable>(&self, value: T) -> ObjId {
        self.insert_erased(ClassInfo::of::<T>(), Box::new(value))
    }

    /// Insert a type-erased instance with its class record.
    pub fn insert_erased(&self, info: ClassInfo, value: Box<dyn Any + Send>) -> ObjId {
        let id = ObjId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let entry = Entry { info, instance: Arc::new(ReentrantMutex::new(RefCell::new(value))) };
        self.shard(id.raw()).write().insert(id.raw(), entry);
        id
    }

    /// Resolve an object to its class record and instance in one shard read.
    pub(crate) fn lookup(&self, id: ObjId) -> WeaveResult<(ClassInfo, Instance)> {
        self.shard(id.raw())
            .read()
            .get(&id.raw())
            .map(|e| (e.info, e.instance.clone()))
            .ok_or(WeaveError::NoSuchObject(id))
    }

    /// Dispatch `method` on an already-resolved instance, holding its monitor
    /// for the duration of the call.
    pub(crate) fn dispatch_on(
        info: &ClassInfo,
        instance: &Instance,
        id: ObjId,
        method: &'static str,
        args: Args,
    ) -> WeaveResult<AnyValue> {
        let guard = instance.lock();
        let mut borrowed = guard.try_borrow_mut().map_err(|_| {
            WeaveError::app(format!("re-entrant mutable dispatch on {id} ({})", info.class))
        })?;
        (info.dispatch)(&mut **borrowed, method, args)
    }

    /// Class name of a live object.
    pub fn class_of(&self, id: ObjId) -> WeaveResult<&'static str> {
        self.lookup(id).map(|(info, _)| info.class)
    }

    /// Class record of a live object.
    pub fn class_info(&self, id: ObjId) -> WeaveResult<ClassInfo> {
        self.lookup(id).map(|(info, _)| info)
    }

    /// Acquire the object's monitor. The returned guard can be held across
    /// further dispatches to the same object from the same thread.
    pub fn monitor(&self, id: ObjId) -> WeaveResult<MonitorGuard> {
        let (_, instance) = self.lookup(id)?;
        Ok(MonitorGuard { _guard: ReentrantMutex::lock_arc(&instance) })
    }

    /// Invoke `method` on the object, holding its monitor for the duration of
    /// the call. `method` must be one of the class's dispatchable methods.
    pub fn invoke(&self, id: ObjId, method: &'static str, args: Args) -> WeaveResult<AnyValue> {
        let (info, instance) = self.lookup(id)?;
        Self::dispatch_on(&info, &instance, id, method, args)
    }

    /// Run a closure with typed mutable access to the object.
    pub fn with_object<T: Weaveable, R>(
        &self,
        id: ObjId,
        f: impl FnOnce(&mut T) -> R,
    ) -> WeaveResult<R> {
        let (_, instance) = self.lookup(id)?;
        let guard = instance.lock();
        let mut borrowed = guard
            .try_borrow_mut()
            .map_err(|_| WeaveError::app(format!("re-entrant mutable access to {id}")))?;
        let typed = borrowed.downcast_mut::<T>().ok_or_else(|| WeaveError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            context: format!("with_object on {id}"),
        })?;
        Ok(f(typed))
    }

    /// Remove an object; returns true when it was present.
    pub fn remove(&self, id: ObjId) -> bool {
        self.shard(id.raw()).write().remove(&id.raw()).is_some()
    }

    /// True when the object is live.
    pub fn contains(&self, id: ObjId) -> bool {
        self.shard(id.raw()).read().contains_key(&id.raw())
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no object is live.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Ids of all live objects of a class, in id order (used by aspects that
    /// iterate their managed set).
    pub fn ids_of_class(&self, class: &str) -> Vec<ObjId> {
        let mut ids: Vec<ObjId> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .iter()
                    .filter(|(_, e)| e.info.class == class)
                    .map(|(id, _)| ObjId(*id))
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }
}

impl Default for ObjectSpace {
    fn default() -> Self {
        ObjectSpace::new()
    }
}

impl std::fmt::Debug for ObjectSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectSpace").field("len", &self.len()).finish()
    }
}

/// A typed reference to a woven object: the client-side stand-in the paper's
/// core functionality holds after a (possibly intercepted) construction.
///
/// All calls made through a handle are join points.
pub struct Handle<T: Weaveable> {
    weaver: Weaver,
    id: ObjId,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Weaveable> Handle<T> {
    /// Wrap an existing object id. The id is trusted to refer to a `T`; a
    /// mismatch surfaces as a dispatch-time error, not undefined behaviour.
    pub fn from_id(weaver: &Weaver, id: ObjId) -> Self {
        Handle { weaver: weaver.clone(), id, _marker: PhantomData }
    }

    /// The object id this handle refers to.
    pub fn id(&self) -> ObjId {
        self.id
    }

    /// The weaver the handle dispatches through.
    pub fn weaver(&self) -> &Weaver {
        &self.weaver
    }

    /// Make a woven call: full join-point pipeline (matched advice, then base
    /// dispatch).
    pub fn call(&self, method: &'static str, args: Args) -> WeaveResult<AnyValue> {
        self.weaver.invoke_call(self.id, T::CLASS, method, args)
    }

    /// Make an unwoven call: straight to base dispatch, bypassing all advice.
    /// This is the aspect-code escape hatch the paper relies on when aspect
    /// internals must not re-trigger themselves.
    pub fn call_unwoven(&self, method: &'static str, args: Args) -> WeaveResult<AnyValue> {
        self.weaver.invoke_unwoven(self.id, method, args)
    }
}

impl<T: Weaveable> Clone for Handle<T> {
    fn clone(&self) -> Self {
        Handle { weaver: self.weaver.clone(), id: self.id, _marker: PhantomData }
    }
}

impl<T: Weaveable> std::fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle<{}>({})", T::CLASS, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    struct Cell {
        v: u64,
    }

    impl Weaveable for Cell {
        const CLASS: &'static str = "Cell";

        fn construct(mut args: Args) -> WeaveResult<Self> {
            Ok(Cell { v: args.take(0)? })
        }

        fn dispatch(&mut self, method: &'static str, mut args: Args) -> WeaveResult<AnyValue> {
            match method {
                "set" => {
                    self.v = args.take(0)?;
                    Ok(crate::ret!())
                }
                "get" => Ok(crate::ret!(self.v)),
                _ => Err(WeaveError::NoSuchMethod { class: "Cell".into(), method: method.into() }),
            }
        }

        fn methods() -> &'static [&'static str] {
            &["set", "get"]
        }
    }

    #[test]
    fn insert_invoke_roundtrip() {
        let space = ObjectSpace::new();
        let id = space.insert(Cell { v: 1 });
        assert!(space.contains(id));
        assert_eq!(space.class_of(id).unwrap(), "Cell");
        space.invoke(id, "set", args![9u64]).unwrap();
        let got = space.invoke(id, "get", args![]).unwrap();
        assert_eq!(crate::value::downcast_ret::<u64>(got).unwrap(), 9);
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let space = ObjectSpace::new();
        let a = space.insert(Cell { v: 0 });
        let b = space.insert(Cell { v: 0 });
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(space.len(), 2);
    }

    #[test]
    fn missing_object_errors() {
        let space = ObjectSpace::new();
        let ghost = ObjId::from_raw(999);
        assert!(matches!(space.invoke(ghost, "get", args![]), Err(WeaveError::NoSuchObject(_))));
        assert!(matches!(space.class_of(ghost), Err(WeaveError::NoSuchObject(_))));
        assert!(matches!(space.monitor(ghost), Err(WeaveError::NoSuchObject(_))));
        assert!(!space.remove(ghost));
    }

    #[test]
    fn remove_frees_object() {
        let space = ObjectSpace::new();
        let id = space.insert(Cell { v: 1 });
        assert!(space.remove(id));
        assert!(!space.contains(id));
        assert!(space.is_empty());
    }

    #[test]
    fn with_object_typed_access() {
        let space = ObjectSpace::new();
        let id = space.insert(Cell { v: 5 });
        let doubled = space
            .with_object::<Cell, _>(id, |c| {
                c.v *= 2;
                c.v
            })
            .unwrap();
        assert_eq!(doubled, 10);
        let err = space.with_object::<WrongType, _>(id, |_| ()).unwrap_err();
        assert!(matches!(err, WeaveError::TypeMismatch { .. }));
    }

    struct WrongType;
    impl Weaveable for WrongType {
        const CLASS: &'static str = "WrongType";
        fn construct(_: Args) -> WeaveResult<Self> {
            Ok(WrongType)
        }
        fn dispatch(&mut self, m: &'static str, _: Args) -> WeaveResult<AnyValue> {
            Err(WeaveError::NoSuchMethod { class: "WrongType".into(), method: m.into() })
        }
        fn methods() -> &'static [&'static str] {
            &[]
        }
    }

    #[test]
    fn ids_of_class_filters_and_sorts() {
        let space = ObjectSpace::new();
        let a = space.insert(Cell { v: 0 });
        let _w = space.insert(WrongType);
        let b = space.insert(Cell { v: 0 });
        assert_eq!(space.ids_of_class("Cell"), vec![a, b]);
        assert_eq!(space.ids_of_class("Nope"), Vec::<ObjId>::new());
    }

    #[test]
    fn monitor_is_reentrant_for_same_thread() {
        let space = ObjectSpace::new();
        let id = space.insert(Cell { v: 0 });
        let _m1 = space.monitor(id).unwrap();
        // Same thread can re-acquire and still dispatch.
        let _m2 = space.monitor(id).unwrap();
        space.invoke(id, "set", args![3u64]).unwrap();
        let got = space.invoke(id, "get", args![]).unwrap();
        assert_eq!(crate::value::downcast_ret::<u64>(got).unwrap(), 3);
    }

    #[test]
    fn monitor_excludes_other_threads() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let space = Arc::new(ObjectSpace::new());
        let id = space.insert(Cell { v: 0 });
        let guard = space.monitor(id).unwrap();
        let entered = Arc::new(AtomicBool::new(false));
        let (space2, entered2) = (space.clone(), entered.clone());
        let t = std::thread::spawn(move || {
            let _m = space2.monitor(id).unwrap();
            entered2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!entered.load(Ordering::SeqCst), "other thread entered while monitor held");
        drop(guard);
        t.join().unwrap();
        assert!(entered.load(Ordering::SeqCst));
    }

    #[test]
    fn concurrent_dispatch_to_distinct_objects() {
        let space = Arc::new(ObjectSpace::new());
        let ids: Vec<ObjId> = (0..8).map(|_| space.insert(Cell { v: 0 })).collect();
        let mut handles = Vec::new();
        for &id in &ids {
            let space = space.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    space.invoke(id, "set", args![i]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for &id in &ids {
            let got = space.invoke(id, "get", args![]).unwrap();
            assert_eq!(crate::value::downcast_ret::<u64>(got).unwrap(), 99);
        }
    }
}
