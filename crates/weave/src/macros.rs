//! The [`weaveable!`] macro: declares an application class whose
//! constructions and method calls are join points.
//!
//! This is the one-time shim that replaces AspectJ's compile-time weaving
//! (see the crate docs). From a single declaration it generates:
//!
//! 1. an inherent `impl` with the written methods — the class remains a
//!    perfectly ordinary sequential Rust type, directly usable without any
//!    weaver (that *is* the paper's unplugged sequential version);
//! 2. a [`Weaveable`](crate::dispatch::Weaveable) implementation (constructor,
//!    dispatch table, method list, argument/return sizers for the trace
//!    recorder);
//! 3. a typed client proxy whose calls go through the weaver, i.e. through
//!    whatever aspects are currently plugged.
//!
//! All method parameter and return types must implement
//! [`ByteSize`](crate::value::ByteSize) (so traces can model message sizes)
//! and be `Send + 'static` (so calls can cross threads and simulated nodes).

/// Declare a weaveable class. See the [module docs](self) and the crate-level
/// example for the grammar:
///
/// ```ignore
/// weaveable! {
///     class PrimeFilter as PrimeFilterProxy {
///         fn new(pmin: u64, pmax: u64) -> Self { /* ... */ }
///         fn filter(&mut self, nums: Vec<u64>) -> Vec<u64> { /* ... */ }
///     }
/// }
/// ```
#[macro_export]
macro_rules! weaveable {
    (
        class $Class:ident as $Proxy:ident {
            $(#[$cattr:meta])*
            fn new( $($cparam:ident : $cty:ty),* $(,)? ) -> Self $cbody:block
            $(
                $(#[$mattr:meta])*
                fn $method:ident ( &mut $this:ident $(, $param:ident : $pty:ty)* $(,)? ) $(-> $rty:ty)? $mbody:block
            )*
        }
    ) => {
        impl $Class {
            /// Plain sequential constructor (unwoven).
            $(#[$cattr])*
            #[allow(clippy::new_without_default, clippy::too_many_arguments)]
            pub fn new( $($cparam : $cty),* ) -> Self $cbody

            $(
                /// Plain sequential method (unwoven).
                $(#[$mattr])*
                #[allow(clippy::too_many_arguments)]
                pub fn $method(&mut $this $(, $param : $pty)*) $(-> $rty)? $mbody
            )*
        }

        impl $crate::dispatch::Weaveable for $Class {
            const CLASS: &'static str = stringify!($Class);

            #[allow(unused_mut, unused_variables, unused_assignments)]
            fn construct(mut args: $crate::value::Args) -> $crate::error::WeaveResult<Self> {
                let mut __i = 0usize;
                $(
                    let $cparam: $cty = args.take(__i)?;
                    __i += 1;
                )*
                Ok(<$Class>::new($($cparam),*))
            }

            #[allow(unused_mut, unused_variables, unused_assignments)]
            fn dispatch(
                &mut self,
                method: &'static str,
                mut args: $crate::value::Args,
            ) -> $crate::error::WeaveResult<$crate::value::AnyValue> {
                $(
                    if method == stringify!($method) {
                        let mut __i = 0usize;
                        $(
                            let $param: $pty = args.take(__i)?;
                            __i += 1;
                        )*
                        let __result = self.$method($($param),*);
                        return Ok($crate::value::Value::new(__result));
                    }
                )*
                Err($crate::error::WeaveError::NoSuchMethod {
                    class: stringify!($Class).into(),
                    method: method.into(),
                })
            }

            fn methods() -> &'static [&'static str] {
                &[$(stringify!($method)),*]
            }

            #[allow(unused_mut, unused_variables, unused_assignments)]
            fn arg_bytes(method: &'static str, args: &$crate::value::Args) -> usize {
                if method == $crate::signature::Signature::NEW {
                    let mut __total = 0usize;
                    let mut __i = 0usize;
                    $(
                        __total += args
                            .get::<$cty>(__i)
                            .map(|v| $crate::value::ByteSize::byte_size(v))
                            .unwrap_or(0);
                        __i += 1;
                    )*
                    return __total;
                }
                $(
                    if method == stringify!($method) {
                        let mut __total = 0usize;
                        let mut __i = 0usize;
                        $(
                            __total += args
                                .get::<$pty>(__i)
                                .map(|v| $crate::value::ByteSize::byte_size(v))
                                .unwrap_or(0);
                            __i += 1;
                        )*
                        return __total;
                    }
                )*
                0
            }

            #[allow(unused_variables)]
            fn ret_bytes(method: &'static str, ret: &$crate::value::AnyValue) -> usize {
                $(
                    if method == stringify!($method) {
                        $(
                            if let Some(v) = ret.downcast_ref::<$rty>() {
                                return $crate::value::ByteSize::byte_size(v);
                            }
                        )?
                        return 0;
                    }
                )*
                0
            }
        }

        /// Typed client proxy: every call is a join point on the weaver.
        #[derive(Clone)]
        #[allow(private_interfaces)]
        pub struct $Proxy {
            handle: $crate::object::Handle<$Class>,
        }

        #[allow(private_interfaces)]
        impl $Proxy {
            /// Woven construction: runs construction advice, then the base
            /// constructor.
            #[allow(clippy::too_many_arguments)]
            pub fn construct(
                weaver: &$crate::registry::Weaver,
                $($cparam : $cty),*
            ) -> $crate::error::WeaveResult<Self> {
                let handle = weaver.construct::<$Class>($crate::args![$($cparam),*])?;
                Ok(Self { handle })
            }

            /// Wrap an existing handle (e.g. one produced by aspect code).
            pub fn from_handle(handle: $crate::object::Handle<$Class>) -> Self {
                Self { handle }
            }

            /// Wrap an object id.
            pub fn from_id(
                weaver: &$crate::registry::Weaver,
                id: $crate::object::ObjId,
            ) -> Self {
                Self { handle: $crate::object::Handle::from_id(weaver, id) }
            }

            /// The underlying handle.
            pub fn handle(&self) -> &$crate::object::Handle<$Class> {
                &self.handle
            }

            /// The target object id.
            pub fn id(&self) -> $crate::object::ObjId {
                self.handle.id()
            }

            $(
                /// Woven method call (join point).
                #[allow(clippy::too_many_arguments, unused_parens)]
                pub fn $method(&self $(, $param : $pty)*) -> $crate::error::WeaveResult<($($rty)?)> {
                    let __ret = self.handle.call(stringify!($method), $crate::args![$($param),*])?;
                    #[allow(unused_parens)]
                    $crate::value::downcast_ret::<($($rty)?)>(__ret)
                }
            )*
        }

        impl ::std::fmt::Debug for $Proxy {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, "{}({})", stringify!($Proxy), self.handle.id())
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::value::downcast_ret;

    struct Counter {
        n: i64,
        step: i64,
    }

    crate::weaveable! {
        class Counter as CounterProxy {
            fn new(start: i64, step: i64) -> Self {
                Counter { n: start, step }
            }
            fn bump(&mut self) {
                self.n += self.step;
            }
            fn add(&mut self, extra: i64) -> i64 {
                self.n += extra;
                self.n
            }
            fn value(&mut self) -> i64 {
                self.n
            }
        }
    }

    #[test]
    fn sequential_use_without_weaver() {
        let mut c = Counter::new(10, 2);
        c.bump();
        assert_eq!(c.add(3), 15);
        assert_eq!(c.value(), 15);
    }

    #[test]
    fn weaveable_impl_is_generated() {
        assert_eq!(Counter::CLASS, "Counter");
        assert_eq!(Counter::methods(), &["bump", "add", "value"]);
        let mut c = Counter::construct(crate::args![5i64, 1i64]).unwrap();
        let ret = c.dispatch("add", crate::args![2i64]).unwrap();
        assert_eq!(downcast_ret::<i64>(ret).unwrap(), 7);
        assert!(c.dispatch("nope", crate::args![]).is_err());
    }

    #[test]
    fn proxy_roundtrip() {
        let weaver = Weaver::new();
        let p = CounterProxy::construct(&weaver, 100, 10).unwrap();
        p.bump().unwrap();
        assert_eq!(p.add(1).unwrap(), 111);
        assert_eq!(p.value().unwrap(), 111);
        assert_eq!(format!("{p:?}"), format!("CounterProxy({})", p.id()));
    }

    #[test]
    fn proxy_calls_are_join_points() {
        let weaver = Weaver::new();
        let blocked = Aspect::named("Block")
            .around(Pointcut::call("Counter.bump"), |_inv: &mut Invocation| Ok(crate::ret!()))
            .build();
        weaver.plug(blocked);
        let p = CounterProxy::construct(&weaver, 0, 1).unwrap();
        p.bump().unwrap(); // suppressed by advice
        assert_eq!(p.value().unwrap(), 0);
    }

    #[test]
    fn sizers_use_bytesize() {
        let a = crate::args![3i64];
        assert_eq!(Counter::arg_bytes("add", &a), 8);
        let ctor = crate::args![1i64, 2i64];
        assert_eq!(Counter::arg_bytes("new", &ctor), 16);
        assert_eq!(Counter::arg_bytes("value", &crate::args![]), 0);
        let ret: AnyValue = AnyValue::new(42i64);
        assert_eq!(Counter::ret_bytes("add", &ret), 8);
        assert_eq!(Counter::ret_bytes("bump", &ret), 0);
        assert_eq!(Counter::ret_bytes("unknown", &ret), 0);
    }

    #[test]
    fn from_id_and_from_handle() {
        let weaver = Weaver::new();
        let p = CounterProxy::construct(&weaver, 1, 1).unwrap();
        let q = CounterProxy::from_id(&weaver, p.id());
        q.bump().unwrap();
        let r = CounterProxy::from_handle(p.handle().clone());
        assert_eq!(r.value().unwrap(), 2);
    }
}
