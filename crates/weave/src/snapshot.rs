//! Generation-stamped snapshot publication for the dispatch hot path.
//!
//! Aspect mutations (plug/unplug/enable/disable) are rare; join points are
//! constant. This module makes the read side effectively lock-free:
//!
//! * The enabled advice set is published as an immutable [`AspectsSnapshot`]
//!   behind a monotonically increasing generation counter. Each dispatching
//!   thread keeps the current snapshot (and a private chain cache) in
//!   thread-local storage, revalidated with a single atomic load per join
//!   point — no locks on the hot path once warm.
//! * Each snapshot **owns** its sharded advice-chain cache. A chain computed
//!   against snapshot generation G can only ever be inserted into G's cache;
//!   after a mutation publishes G+1, fresh lookups go to G+1's (empty) cache.
//!   This makes the unplug/insert race structurally impossible: there is no
//!   shared cache for a stale computation to poison (previously a chain
//!   matched against the old aspect set could be inserted *after* the
//!   unplug's invalidation and then be served forever).
//! * The trace recorder is published the same way, so the per-call recorder
//!   check is a TLS read instead of a `RwLock` acquisition.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::advice::AdviceEntry;
use crate::context::Provenance;
use crate::invocation::JoinPointKind;
use crate::metrics::DispatchStats;
use crate::pointcut::JoinPointQuery;
use crate::signature::Signature;
use crate::trace::Recorder;

pub(crate) type CacheKey = (Signature, JoinPointKind, Provenance);
pub(crate) type Chain = Arc<[Arc<AdviceEntry>]>;

/// Shards of the per-snapshot chain cache. Threads that miss their local
/// cache contend only on the shard their key hashes to.
const CHAIN_SHARDS: usize = 16;

/// Per-thread cap on cached (weaver, snapshot) entries, so tests that create
/// thousands of weavers on one thread don't grow TLS without bound.
const TLS_CAPACITY: usize = 32;

/// Process-unique identifier for a publication cell. Deliberately *not* the
/// cell's address: a freed weaver's address can be reused, which would let a
/// stale TLS entry validate against an unrelated weaver.
fn next_uid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Multiply-rotate hasher for the chain caches (fxhash-style). Cache keys are
/// short (`two &'static str`s and two discriminants) and looked up once per
/// join point, where SipHash's per-key setup cost is measurable; these keys
/// are never attacker-controlled, so DoS-resistant hashing buys nothing here.
#[derive(Default)]
struct ChainKeyHasher {
    hash: u64,
}

impl ChainKeyHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for ChainKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | b as u64;
        }
        self.mix(tail ^ bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

type ChainHash = BuildHasherDefault<ChainKeyHasher>;
type ChainMap = HashMap<CacheKey, Chain, ChainHash>;

fn shard_of(key: &CacheKey) -> usize {
    let mut hasher = ChainKeyHasher::default();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % CHAIN_SHARDS
}

// ---- aspect snapshots -------------------------------------------------------

/// An immutable view of the enabled advice set, plus the chain cache that is
/// valid exactly as long as this view is current.
pub(crate) struct AspectsSnapshot {
    generation: u64,
    cache_enabled: bool,
    /// Enabled advice in plug order (declaration order within an aspect).
    advice: Vec<Arc<AdviceEntry>>,
    shards: Vec<Mutex<ChainMap>>,
}

impl AspectsSnapshot {
    fn new(generation: u64, cache_enabled: bool, advice: Vec<Arc<AdviceEntry>>) -> Arc<Self> {
        Arc::new(AspectsSnapshot {
            generation,
            cache_enabled,
            advice,
            shards: (0..CHAIN_SHARDS).map(|_| Mutex::new(ChainMap::default())).collect(),
        })
    }

    /// The generation this snapshot was published as.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Look up (or compute and memoise) the advice chain for a join point,
    /// **as seen by this snapshot's aspect set**.
    ///
    /// The insert below cannot poison later aspect sets: the cache lives in
    /// the snapshot, and mutations publish a new snapshot with a fresh cache.
    pub(crate) fn matched(
        &self,
        signature: Signature,
        kind: JoinPointKind,
        provenance: Provenance,
    ) -> Chain {
        if !self.cache_enabled {
            return self.compute(signature, kind, provenance);
        }
        let key = (signature, kind, provenance);
        let shard = &self.shards[shard_of(&key)];
        if let Some(chain) = shard.lock().get(&key) {
            return chain.clone();
        }
        let chain = self.compute(signature, kind, provenance);
        shard.lock().insert(key, chain.clone());
        chain
    }

    fn compute(&self, signature: Signature, kind: JoinPointKind, provenance: Provenance) -> Chain {
        let mut matched: Vec<Arc<AdviceEntry>> = Vec::new();
        for entry in &self.advice {
            let query = JoinPointQuery { signature, kind, provenance, owner: entry.aspect };
            if entry.pointcut.matches(&query) {
                matched.push(entry.clone());
            }
        }
        // Lower precedence runs outermost; plug order and declaration order
        // break ties deterministically.
        matched.sort_by_key(|e| (e.precedence, e.aspect, e.index));
        matched.into()
    }
}

struct AspectTlsEntry {
    uid: u64,
    snap: Arc<AspectsSnapshot>,
    /// Thread-private chain cache, valid for `snap.generation` only.
    chains: ChainMap,
}

/// `(cell uid, generation, recorder)` cached per thread.
type RecorderTlsEntry = (u64, u64, Arc<Option<Recorder>>);

/// `(cell uid, generation, dispatch stats)` cached per thread.
type MetricsTlsEntry = (u64, u64, Arc<Option<DispatchStats>>);

thread_local! {
    static ASPECT_TLS: RefCell<Vec<AspectTlsEntry>> = const { RefCell::new(Vec::new()) };
    static RECORDER_TLS: RefCell<Vec<RecorderTlsEntry>> = const { RefCell::new(Vec::new()) };
    static METRICS_TLS: RefCell<Vec<MetricsTlsEntry>> = const { RefCell::new(Vec::new()) };
}

/// Publication point for [`AspectsSnapshot`]s: one per weaver.
pub(crate) struct AspectCell {
    uid: u64,
    current: RwLock<Arc<AspectsSnapshot>>,
    generation: AtomicU64,
}

impl AspectCell {
    pub(crate) fn new() -> Self {
        AspectCell {
            uid: next_uid(),
            current: RwLock::new(AspectsSnapshot::new(1, true, Vec::new())),
            generation: AtomicU64::new(1),
        }
    }

    /// Publish a new snapshot. The caller must hold the registry's aspect
    /// write lock, which serialises publications and keeps the generation
    /// counter in step with the aspect set's actual history.
    pub(crate) fn publish(&self, cache_enabled: bool, advice: Vec<Arc<AdviceEntry>>) {
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        let snap = AspectsSnapshot::new(generation, cache_enabled, advice);
        *self.current.write() = snap;
        // Publish the snapshot before the generation: a reader that observes
        // the new generation is then guaranteed to fetch a snapshot at least
        // that new.
        self.generation.store(generation, Ordering::Release);
    }

    /// The currently published snapshot (tests and diagnostics).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn snapshot(&self) -> Arc<AspectsSnapshot> {
        self.current.read().clone()
    }

    /// The advice chain for a join point under the *current* aspect set.
    ///
    /// Hot path: one atomic load, one TLS scan, one thread-private hash
    /// lookup — no locks. Falls back to the snapshot's sharded cache (one
    /// shard mutex) and full matching only on cold keys.
    pub(crate) fn matched(
        &self,
        signature: Signature,
        kind: JoinPointKind,
        provenance: Provenance,
    ) -> Chain {
        let generation = self.generation.load(Ordering::Acquire);
        let key = (signature, kind, provenance);

        enum Outcome {
            Hit(Chain),
            Miss(Arc<AspectsSnapshot>),
        }

        // Phase 1 (under the TLS borrow): revalidate the cached snapshot and
        // try the thread-private chain cache.
        let outcome = ASPECT_TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some(entry) = tls.iter_mut().find(|e| e.uid == self.uid) {
                if entry.snap.generation != generation {
                    entry.snap = self.current.read().clone();
                    entry.chains.clear();
                }
                if entry.snap.cache_enabled {
                    if let Some(chain) = entry.chains.get(&key) {
                        return Outcome::Hit(chain.clone());
                    }
                }
                Outcome::Miss(entry.snap.clone())
            } else {
                let snap = self.current.read().clone();
                if tls.len() >= TLS_CAPACITY {
                    tls.remove(0);
                }
                tls.push(AspectTlsEntry {
                    uid: self.uid,
                    snap: snap.clone(),
                    chains: ChainMap::default(),
                });
                Outcome::Miss(snap)
            }
        });

        // Phase 2 (no TLS borrow held — pointcut matching stays re-entrancy
        // safe): consult the snapshot's shared cache or compute the chain.
        match outcome {
            Outcome::Hit(chain) => chain,
            Outcome::Miss(snap) => {
                let chain = snap.matched(signature, kind, provenance);
                if snap.cache_enabled {
                    ASPECT_TLS.with(|tls| {
                        let mut tls = tls.borrow_mut();
                        if let Some(entry) = tls.iter_mut().find(|e| e.uid == self.uid) {
                            // Only memoise against the snapshot the chain was
                            // actually computed for.
                            if entry.snap.generation == snap.generation() {
                                entry.chains.insert(key, chain.clone());
                            }
                        }
                    });
                }
                chain
            }
        }
    }
}

// ---- recorder snapshots -----------------------------------------------------

/// Publication point for the trace recorder: same generation-checked TLS
/// scheme as [`AspectCell`], so the per-join-point recorder check does not
/// take a lock. Swapping the recorder does *not* touch the advice cache.
pub(crate) struct RecorderCell {
    uid: u64,
    current: RwLock<Arc<Option<Recorder>>>,
    generation: AtomicU64,
    installed: AtomicBool,
}

impl RecorderCell {
    pub(crate) fn new() -> Self {
        RecorderCell {
            uid: next_uid(),
            current: RwLock::new(Arc::new(None)),
            generation: AtomicU64::new(1),
            installed: AtomicBool::new(false),
        }
    }

    /// Install (or remove) the recorder.
    pub(crate) fn set(&self, recorder: Option<Recorder>) {
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        self.installed.store(recorder.is_some(), Ordering::Relaxed);
        *self.current.write() = Arc::new(recorder);
        self.generation.store(generation, Ordering::Release);
    }

    /// Cheap pre-flight check: is any recorder installed at all? The common
    /// (unrecorded) dispatch path uses this single relaxed load to skip the
    /// TLS scan and `Arc` traffic of [`RecorderCell::get`] entirely. A call
    /// racing with installation may miss the first few join points — trace
    /// recording is inherently racy with in-flight calls.
    pub(crate) fn is_installed(&self) -> bool {
        self.installed.load(Ordering::Relaxed)
    }

    /// The exact currently installed recorder (administrative read).
    pub(crate) fn exact(&self) -> Option<Recorder> {
        (**self.current.read()).clone()
    }

    /// The recorder as seen by this thread — one atomic load plus a TLS scan
    /// once warm.
    pub(crate) fn get(&self) -> Arc<Option<Recorder>> {
        let generation = self.generation.load(Ordering::Acquire);
        RECORDER_TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some(entry) = tls.iter_mut().find(|e| e.0 == self.uid) {
                if entry.1 != generation {
                    entry.2 = self.current.read().clone();
                    entry.1 = generation;
                }
                return entry.2.clone();
            }
            let snap = self.current.read().clone();
            if tls.len() >= TLS_CAPACITY {
                tls.remove(0);
            }
            tls.push((self.uid, generation, snap.clone()));
            snap
        })
    }
}

// ---- metrics snapshots ------------------------------------------------------

/// Publication point for the weaver's dispatch-stats handles: identical
/// shape to [`RecorderCell`], so the per-join-point metrics check is one
/// relaxed load when nothing is installed, and a TLS scan (no locks, no
/// `Arc` contention) when a registry is.
pub(crate) struct MetricsCell {
    uid: u64,
    current: RwLock<Arc<Option<DispatchStats>>>,
    generation: AtomicU64,
    installed: AtomicBool,
}

impl MetricsCell {
    pub(crate) fn new() -> Self {
        MetricsCell {
            uid: next_uid(),
            current: RwLock::new(Arc::new(None)),
            generation: AtomicU64::new(1),
            installed: AtomicBool::new(false),
        }
    }

    /// Install (or remove) the dispatch stats.
    pub(crate) fn set(&self, stats: Option<DispatchStats>) {
        let generation = self.generation.load(Ordering::Relaxed) + 1;
        self.installed.store(stats.is_some(), Ordering::Relaxed);
        *self.current.write() = Arc::new(stats);
        self.generation.store(generation, Ordering::Release);
    }

    /// Cheap pre-flight: is a registry installed at all? The disabled
    /// dispatch path pays exactly this one relaxed load (the PR-9 recorder
    /// pre-flight shape), keeping it allocation-free and canary-clean.
    pub(crate) fn is_installed(&self) -> bool {
        self.installed.load(Ordering::Relaxed)
    }

    /// The dispatch stats as seen by this thread — one atomic load plus a
    /// TLS scan once warm. A call racing with installation may miss the
    /// first few join points, same contract as the trace recorder.
    pub(crate) fn get(&self) -> Arc<Option<DispatchStats>> {
        let generation = self.generation.load(Ordering::Acquire);
        METRICS_TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some(entry) = tls.iter_mut().find(|e| e.0 == self.uid) {
                if entry.1 != generation {
                    entry.2 = self.current.read().clone();
                    entry.1 = generation;
                }
                return entry.2.clone();
            }
            let snap = self.current.read().clone();
            if tls.len() >= TLS_CAPACITY {
                tls.remove(0);
            }
            tls.push((self.uid, generation, snap.clone()));
            snap
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspect::AspectId;
    use crate::pointcut::Pointcut;

    fn entry(aspect: u64, pattern: &str) -> Arc<AdviceEntry> {
        Arc::new(AdviceEntry {
            pointcut: Pointcut::call(pattern),
            advice: Arc::new(|inv: &mut crate::invocation::Invocation| inv.proceed()),
            aspect: AspectId::from_raw(aspect),
            precedence: 0,
            index: 0,
            fired: AtomicU64::new(0),
        })
    }

    const KEY: (JoinPointKind, Provenance) = (JoinPointKind::Call, Provenance::Core);

    #[test]
    fn publish_bumps_generation_and_resets_cache() {
        let cell = AspectCell::new();
        let sig = Signature::new("Acc", "add");
        assert!(cell.matched(sig, KEY.0, KEY.1).is_empty());

        cell.publish(true, vec![entry(1, "Acc.add")]);
        assert_eq!(cell.snapshot().generation(), 2);
        assert_eq!(cell.matched(sig, KEY.0, KEY.1).len(), 1);

        cell.publish(true, Vec::new());
        assert!(cell.matched(sig, KEY.0, KEY.1).is_empty());
    }

    #[test]
    fn stale_snapshot_insert_cannot_poison_fresh_lookups() {
        // The TOCTOU the snapshot-owned cache eliminates: a dispatch computes
        // a chain against the old aspect set, the aspect is unplugged (cache
        // invalidated), and only then does the dispatch insert its stale
        // chain. With a shared cache that chain would be served forever.
        let cell = AspectCell::new();
        cell.publish(true, vec![entry(1, "Acc.add")]);
        let sig = Signature::new("Acc", "add");

        // In-flight dispatch pins the pre-unplug snapshot...
        let old = cell.snapshot();

        // ...the aspect is unplugged and the new (empty) set published...
        cell.publish(true, Vec::new());

        // ...and the in-flight dispatch completes its lookup+insert late,
        // against the snapshot it pinned. It legitimately sees the old set:
        assert_eq!(old.matched(sig, KEY.0, KEY.1).len(), 1);

        // but fresh dispatches can never observe that insert.
        assert!(cell.matched(sig, KEY.0, KEY.1).is_empty());
        assert!(cell.snapshot().matched(sig, KEY.0, KEY.1).is_empty());
    }

    #[test]
    fn tls_does_not_leak_across_cells() {
        // Two weavers on the same thread with different aspect sets must not
        // see each other's cached chains.
        let a = AspectCell::new();
        let b = AspectCell::new();
        a.publish(true, vec![entry(1, "Acc.*")]);
        b.publish(true, Vec::new());
        let sig = Signature::new("Acc", "add");
        assert_eq!(a.matched(sig, KEY.0, KEY.1).len(), 1);
        assert!(b.matched(sig, KEY.0, KEY.1).is_empty());
        assert_eq!(a.matched(sig, KEY.0, KEY.1).len(), 1);
    }

    #[test]
    fn recorder_cell_roundtrip() {
        let cell = RecorderCell::new();
        assert!(cell.get().is_none());
        assert!(cell.exact().is_none());
        let rec = Recorder::measuring();
        cell.set(Some(rec.clone()));
        assert!(cell.get().is_some());
        assert!(cell.exact().is_some());
        cell.set(None);
        assert!(cell.get().is_none());
    }

    #[test]
    fn metrics_cell_roundtrip() {
        let cell = MetricsCell::new();
        assert!(!cell.is_installed());
        assert!(cell.get().is_none());
        let reg = crate::metrics::MetricsRegistry::new();
        cell.set(Some(DispatchStats::new(&reg)));
        assert!(cell.is_installed());
        cell.get().as_ref().as_ref().unwrap().calls.inc();
        assert_eq!(reg.snapshot().counter("weaver.calls"), Some(1));
        cell.set(None);
        assert!(!cell.is_installed());
        assert!(cell.get().is_none());
    }

    #[test]
    fn disabled_cache_recomputes_every_time() {
        let cell = AspectCell::new();
        cell.publish(false, vec![entry(1, "Acc.add")]);
        let sig = Signature::new("Acc", "add");
        // No caching layer retains the chain; each call matches afresh.
        let c1 = cell.matched(sig, KEY.0, KEY.1);
        let c2 = cell.matched(sig, KEY.0, KEY.1);
        assert_eq!(c1.len(), 1);
        assert_eq!(c2.len(), 1);
        assert!(!Arc::ptr_eq(&c1, &c2), "disabled cache must not memoise");
    }
}
