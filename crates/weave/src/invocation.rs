//! Join-point invocations: the advice chain walker with `proceed` semantics.
//!
//! An [`Invocation`] is handed to around advice. The advice may:
//!
//! * call [`Invocation::proceed`] zero, one or (with explicit arguments,
//!   [`Invocation::proceed_with`]) several times — replacing, executing or
//!   duplicating the original event;
//! * inspect or rewrite the arguments first;
//! * [`Invocation::detach`] the remainder of the chain and run it on another
//!   thread — the primitive the concurrency aspect uses to turn a method call
//!   into an asynchronous invocation;
//! * on construction join points, create extra *aspect-managed* sibling
//!   objects ([`Invocation::construct_sibling`]) exactly like the paper's
//!   Partition aspect creates the pipeline of `PrimeFilter`s.

use std::sync::Arc;

use crate::advice::AdviceEntry;
use crate::context::{self, CurrentContext, Provenance};
use crate::dispatch::ClassInfo;
use crate::error::{WeaveError, WeaveResult};
use crate::object::ObjId;
use crate::registry::Weaver;
use crate::signature::Signature;
use crate::value::{AnyValue, Args};

/// The two join-point kinds the paper's methodology intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinPointKind {
    /// A method call on a woven object.
    Call,
    /// A construction of a woven object.
    Construct,
}

/// What executing the innermost `proceed` does.
#[derive(Clone, Copy)]
pub(crate) enum BaseAction {
    /// Dispatch the method on the target object.
    Call,
    /// Construct an instance of the class and insert it into the object space.
    Construct(ClassInfo),
}

/// A join point in flight, walking its advice chain towards the base event.
pub struct Invocation {
    weaver: Weaver,
    signature: Signature,
    kind: JoinPointKind,
    target: Option<ObjId>,
    caller: Provenance,
    args: Option<Args>,
    chain: Arc<[Arc<AdviceEntry>]>,
    index: usize,
    base: BaseAction,
    async_boundary: bool,
    issuer: u64,
}

impl Invocation {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        weaver: Weaver,
        signature: Signature,
        kind: JoinPointKind,
        target: Option<ObjId>,
        caller: Provenance,
        args: Args,
        chain: Arc<[Arc<AdviceEntry>]>,
        base: BaseAction,
        async_boundary: bool,
    ) -> Self {
        Invocation {
            weaver,
            signature,
            kind,
            target,
            caller,
            args: Some(args),
            chain,
            index: 0,
            base,
            async_boundary,
            issuer: crate::trace::thread_tag(),
        }
    }

    /// Drive the chain from the top.
    pub(crate) fn run(mut self) -> WeaveResult<AnyValue> {
        let args = self.args.take().expect("fresh invocation always has args");
        self.proceed_with(args)
    }

    /// Static signature of the join point.
    pub fn signature(&self) -> Signature {
        self.signature
    }

    /// Call or construction.
    pub fn kind(&self) -> JoinPointKind {
        self.kind
    }

    /// Target object (present on calls; `None` on constructions).
    pub fn target(&self) -> Option<ObjId> {
        self.target
    }

    /// Target object, or an error for advice that requires one.
    pub fn target_required(&self) -> WeaveResult<ObjId> {
        self.target.ok_or(WeaveError::NoTarget)
    }

    /// Provenance of the call site that created this join point.
    pub fn caller(&self) -> Provenance {
        self.caller
    }

    /// The weaver this invocation runs under (for advice that makes further
    /// woven calls, constructs objects or touches inter-type state).
    pub fn weaver(&self) -> &Weaver {
        &self.weaver
    }

    /// True when this invocation crossed an asynchronous boundary (it is the
    /// re-animated remainder of a detached chain).
    pub fn is_async_boundary(&self) -> bool {
        self.async_boundary
    }

    /// Borrow the (not yet consumed) argument pack.
    pub fn args(&self) -> WeaveResult<&Args> {
        self.args.as_ref().ok_or(WeaveError::AlreadyProceeded)
    }

    /// Mutably borrow the argument pack (advice rewriting parameters).
    pub fn args_mut(&mut self) -> WeaveResult<&mut Args> {
        self.args.as_mut().ok_or(WeaveError::AlreadyProceeded)
    }

    /// Borrow argument `i` with its concrete type.
    pub fn arg<T: 'static>(&self, i: usize) -> WeaveResult<&T> {
        self.args()?.get(i)
    }

    /// Run the rest of the chain (and ultimately the base event) with the
    /// original arguments. Consumes the arguments: a second plain `proceed`
    /// fails with [`WeaveError::AlreadyProceeded`].
    pub fn proceed(&mut self) -> WeaveResult<AnyValue> {
        let args = self.args.take().ok_or(WeaveError::AlreadyProceeded)?;
        self.proceed_with(args)
    }

    /// Run the rest of the chain with explicit arguments. May be called
    /// multiple times (AspectJ allows repeated `proceed`); each call replays
    /// the remainder of the chain.
    pub fn proceed_with(&mut self, args: Args) -> WeaveResult<AnyValue> {
        if self.index < self.chain.len() {
            let entry = self.chain[self.index].clone();
            let saved = self.index;
            self.index += 1;
            self.args = Some(args);
            entry.fired.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let result = {
                let _prov = context::push(Provenance::Aspect(entry.aspect));
                entry.advice.around(self)
            };
            self.index = saved;
            result
        } else {
            self.execute_base(args)
        }
    }

    /// Move the remainder of this chain (advice not yet run, plus the base
    /// event) into a [`Detached`] value that can be executed on another
    /// thread. Consumes the arguments.
    pub fn detach(&mut self) -> WeaveResult<Detached> {
        let args = self.args.take().ok_or(WeaveError::AlreadyProceeded)?;
        Ok(Detached {
            weaver: self.weaver.clone(),
            signature: self.signature,
            kind: self.kind,
            target: self.target,
            caller: self.caller,
            args,
            chain: self.chain.clone(),
            index: self.index,
            base: self.base,
            ctx: CurrentContext::capture(),
            issuer: self.issuer,
        })
    }

    /// On a construction join point: create one more instance of the class
    /// being constructed, *without* re-triggering construction advice. This
    /// is the paper's aspect-managed object duplication (Figure 4): the
    /// Partition aspect's loop that builds the pipeline.
    pub fn construct_sibling(&self, args: Args) -> WeaveResult<ObjId> {
        match self.base {
            BaseAction::Construct(info) => {
                self.weaver.base_construct(info, args, false, crate::trace::thread_tag())
            }
            BaseAction::Call => {
                Err(WeaveError::app("construct_sibling is only valid on construction join points"))
            }
        }
    }

    fn execute_base(&mut self, args: Args) -> WeaveResult<AnyValue> {
        match self.base {
            BaseAction::Call => {
                let target = self.target.ok_or(WeaveError::NoTarget)?;
                self.weaver.base_call(
                    self.signature,
                    target,
                    args,
                    self.async_boundary,
                    self.issuer,
                )
            }
            BaseAction::Construct(info) => {
                let id =
                    self.weaver.base_construct(info, args, self.async_boundary, self.issuer)?;
                Ok(crate::ret!(id))
            }
        }
    }
}

impl std::fmt::Debug for Invocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Invocation")
            .field("signature", &self.signature.to_string())
            .field("kind", &self.kind)
            .field("target", &self.target)
            .field("index", &self.index)
            .field("chain_len", &self.chain.len())
            .field("async_boundary", &self.async_boundary)
            .finish()
    }
}

/// The remainder of an advice chain, severed from its original thread.
///
/// Produced by [`Invocation::detach`]; running it executes the not-yet-run
/// advice and the base event. The weaving context (provenance and trace
/// parent) captured at detach time is re-established on the running thread,
/// so causality in recorded traces survives the thread hop.
pub struct Detached {
    weaver: Weaver,
    signature: Signature,
    kind: JoinPointKind,
    target: Option<ObjId>,
    caller: Provenance,
    args: Args,
    chain: Arc<[Arc<AdviceEntry>]>,
    index: usize,
    base: BaseAction,
    ctx: CurrentContext,
    issuer: u64,
}

impl Detached {
    /// Execute the remainder of the chain on the current thread.
    pub fn run(self) -> WeaveResult<AnyValue> {
        let _guards = self.ctx.install();
        let _cflow = context::push_cflow(self.signature);
        let mut inv = Invocation {
            weaver: self.weaver,
            signature: self.signature,
            kind: self.kind,
            target: self.target,
            caller: self.caller,
            args: None,
            chain: self.chain,
            index: self.index,
            base: self.base,
            async_boundary: true,
            issuer: self.issuer,
        };
        inv.proceed_with(self.args)
    }

    /// Signature of the detached join point (for schedulers that route by
    /// class or method).
    pub fn signature(&self) -> Signature {
        self.signature
    }

    /// Target of the detached join point.
    pub fn target(&self) -> Option<ObjId> {
        self.target
    }
}

impl std::fmt::Debug for Detached {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Detached")
            .field("signature", &self.signature.to_string())
            .field("index", &self.index)
            .field("chain_len", &self.chain.len())
            .finish()
    }
}

// Invocation tests live in `registry.rs` (they need a full weaver) and in the
// crate-level integration tests; `Detached` is additionally exercised by
// `weavepar-concurrency`.
