//! Pointcuts: predicates quantifying over join points.
//!
//! The vocabulary follows the paper's usage of AspectJ:
//!
//! * [`Pointcut::call`] — method-call join points matching a pattern;
//! * [`Pointcut::construct`] — construction join points of matching classes;
//! * [`Pointcut::within_core`] / [`Pointcut::within_aspects`] /
//!   [`Pointcut::within_self`] — restrict by the *provenance* of the call
//!   site, the device the paper's Partition aspect needs to apply its split
//!   advice only to core-made calls while letting its forward advice apply
//!   recursively to aspect-made calls (Figure 7);
//! * `and` / `or` / `not` combinators.

use crate::aspect::AspectId;
use crate::context::Provenance;
use crate::invocation::JoinPointKind;
use crate::signature::{MethodPattern, Signature};

/// Everything a pointcut can inspect about a join point at match time.
#[derive(Debug, Clone, Copy)]
pub struct JoinPointQuery {
    /// Static signature.
    pub signature: Signature,
    /// Call or construction.
    pub kind: JoinPointKind,
    /// Provenance of the call site.
    pub provenance: Provenance,
    /// Aspect that owns the advice being matched (for [`Pointcut::within_self`]).
    pub owner: AspectId,
}

/// A predicate over join points.
#[derive(Debug, Clone)]
pub enum Pointcut {
    /// Method-call join points whose signature matches the pattern.
    Call(MethodPattern),
    /// Construction join points whose class matches the pattern.
    Construct(MethodPattern),
    /// Any join point whose signature matches the pattern.
    AnyJoinPoint(MethodPattern),
    /// Join points issued from core functionality (application code or base
    /// method bodies) — AspectJ's `!within(AnyAspect)`.
    WithinCore,
    /// Join points issued from any aspect's advice.
    WithinAspects,
    /// Join points issued from the advice of the aspect that owns this advice.
    WithinSelf,
    /// Both sides must match.
    And(Box<Pointcut>, Box<Pointcut>),
    /// Either side must match.
    Or(Box<Pointcut>, Box<Pointcut>),
    /// Negation.
    Not(Box<Pointcut>),
    /// Matches every join point.
    Always,
    /// Matches nothing (useful as a fold identity).
    Never,
}

impl Pointcut {
    /// Calls matching `pattern` (e.g. `"PrimeFilter.filter"`, `"Point.move*"`).
    pub fn call(pattern: &str) -> Self {
        Pointcut::Call(MethodPattern::parse(pattern))
    }

    /// Calls to exactly `class.method` (convenience for pointcuts assembled
    /// from separately-known class and method names).
    pub fn call_sig(class: &str, method: &str) -> Self {
        Pointcut::Call(MethodPattern::parse(&format!("{class}.{method}")))
    }

    /// Constructions of classes matching `class_pattern` (e.g. `"PrimeFilter"`).
    pub fn construct(class_pattern: &str) -> Self {
        Pointcut::Construct(MethodPattern::construction_of(class_pattern))
    }

    /// Any join point (call or construction) matching `pattern`.
    pub fn any(pattern: &str) -> Self {
        Pointcut::AnyJoinPoint(MethodPattern::parse(pattern))
    }

    /// Join points issued from core functionality.
    pub fn within_core() -> Self {
        Pointcut::WithinCore
    }

    /// Join points issued from aspect advice (any aspect).
    pub fn within_aspects() -> Self {
        Pointcut::WithinAspects
    }

    /// Join points issued from the owning aspect's own advice.
    pub fn within_self() -> Self {
        Pointcut::WithinSelf
    }

    /// Conjunction.
    pub fn and(self, other: Pointcut) -> Self {
        Pointcut::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Pointcut) -> Self {
        Pointcut::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Pointcut::Not(Box::new(self))
    }

    /// Evaluate against a join point.
    pub fn matches(&self, q: &JoinPointQuery) -> bool {
        match self {
            Pointcut::Call(p) => q.kind == JoinPointKind::Call && p.matches(&q.signature),
            Pointcut::Construct(p) => q.kind == JoinPointKind::Construct && p.matches(&q.signature),
            Pointcut::AnyJoinPoint(p) => p.matches(&q.signature),
            Pointcut::WithinCore => q.provenance == Provenance::Core,
            Pointcut::WithinAspects => matches!(q.provenance, Provenance::Aspect(_)),
            Pointcut::WithinSelf => q.provenance == Provenance::Aspect(q.owner),
            Pointcut::And(a, b) => a.matches(q) && b.matches(q),
            Pointcut::Or(a, b) => a.matches(q) || b.matches(q),
            Pointcut::Not(p) => !p.matches(q),
            Pointcut::Always => true,
            Pointcut::Never => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sig: Signature, kind: JoinPointKind, provenance: Provenance) -> JoinPointQuery {
        JoinPointQuery { signature: sig, kind, provenance, owner: AspectId::from_raw(1) }
    }

    const FILTER: Signature = Signature::new("PrimeFilter", "filter");
    const NEW: Signature = Signature::construction("PrimeFilter");

    #[test]
    fn call_matches_only_calls() {
        let pc = Pointcut::call("PrimeFilter.filter");
        assert!(pc.matches(&q(FILTER, JoinPointKind::Call, Provenance::Core)));
        assert!(!pc.matches(&q(NEW, JoinPointKind::Construct, Provenance::Core)));
    }

    #[test]
    fn construct_matches_only_constructions() {
        let pc = Pointcut::construct("PrimeFilter");
        assert!(pc.matches(&q(NEW, JoinPointKind::Construct, Provenance::Core)));
        assert!(!pc.matches(&q(FILTER, JoinPointKind::Call, Provenance::Core)));
        // Construction of a different class does not match.
        let other = Signature::construction("Other");
        assert!(!pc.matches(&q(other, JoinPointKind::Construct, Provenance::Core)));
    }

    #[test]
    fn any_matches_both_kinds() {
        let pc = Pointcut::any("PrimeFilter.*");
        assert!(pc.matches(&q(FILTER, JoinPointKind::Call, Provenance::Core)));
        assert!(pc.matches(&q(NEW, JoinPointKind::Construct, Provenance::Core)));
    }

    #[test]
    fn provenance_designators() {
        let me = AspectId::from_raw(1);
        let other = AspectId::from_raw(2);
        let core = q(FILTER, JoinPointKind::Call, Provenance::Core);
        let from_me = q(FILTER, JoinPointKind::Call, Provenance::Aspect(me));
        let from_other = q(FILTER, JoinPointKind::Call, Provenance::Aspect(other));

        assert!(Pointcut::within_core().matches(&core));
        assert!(!Pointcut::within_core().matches(&from_me));

        assert!(!Pointcut::within_aspects().matches(&core));
        assert!(Pointcut::within_aspects().matches(&from_me));
        assert!(Pointcut::within_aspects().matches(&from_other));

        assert!(Pointcut::within_self().matches(&from_me));
        assert!(!Pointcut::within_self().matches(&from_other));
        assert!(!Pointcut::within_self().matches(&core));
    }

    #[test]
    fn split_vs_forward_scenario() {
        // The paper's Figure 8: split applies to core-made filter calls only,
        // forward applies to *all* filter calls (including aspect-made ones).
        let split = Pointcut::call("PrimeFilter.filter").and(Pointcut::within_core());
        let forward = Pointcut::call("PrimeFilter.filter");

        let from_core = q(FILTER, JoinPointKind::Call, Provenance::Core);
        let from_aspect = q(FILTER, JoinPointKind::Call, Provenance::Aspect(AspectId::from_raw(1)));

        assert!(split.matches(&from_core));
        assert!(!split.matches(&from_aspect));
        assert!(forward.matches(&from_core));
        assert!(forward.matches(&from_aspect));
    }

    #[test]
    fn boolean_algebra() {
        let core = q(FILTER, JoinPointKind::Call, Provenance::Core);
        assert!(Pointcut::Always.matches(&core));
        assert!(!Pointcut::Never.matches(&core));
        assert!(Pointcut::Never.not().matches(&core));
        assert!(Pointcut::Always.and(Pointcut::Always).matches(&core));
        assert!(!Pointcut::Always.and(Pointcut::Never).matches(&core));
        assert!(Pointcut::Never.or(Pointcut::Always).matches(&core));
        assert!(!Pointcut::Never.or(Pointcut::Never).matches(&core));
    }

    #[test]
    fn wildcard_call_pattern() {
        let pc = Pointcut::call("*.filter");
        let other = Signature::new("OtherFilter", "filter");
        assert!(pc.matches(&q(other, JoinPointKind::Call, Provenance::Core)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_query() -> impl Strategy<Value = JoinPointQuery> {
        let sigs = prop_oneof![
            Just(Signature::new("A", "m")),
            Just(Signature::new("B", "m")),
            Just(Signature::new("A", "n")),
            Just(Signature::construction("A")),
        ];
        let kinds = prop_oneof![Just(JoinPointKind::Call), Just(JoinPointKind::Construct)];
        let provs = prop_oneof![
            Just(Provenance::Core),
            Just(Provenance::Aspect(AspectId::from_raw(1))),
            Just(Provenance::Aspect(AspectId::from_raw(2))),
        ];
        (sigs, kinds, provs).prop_map(|(signature, kind, provenance)| JoinPointQuery {
            signature,
            kind,
            provenance,
            owner: AspectId::from_raw(1),
        })
    }

    fn arb_pointcut() -> impl Strategy<Value = Pointcut> {
        let leaf = prop_oneof![
            Just(Pointcut::call("A.m")),
            Just(Pointcut::call("*.m")),
            Just(Pointcut::construct("A")),
            Just(Pointcut::within_core()),
            Just(Pointcut::within_aspects()),
            Just(Pointcut::within_self()),
            Just(Pointcut::Always),
            Just(Pointcut::Never),
        ];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Pointcut::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Pointcut::Or(Box::new(a), Box::new(b))),
                inner.prop_map(|p| Pointcut::Not(Box::new(p))),
            ]
        })
    }

    proptest! {
        /// Double negation is identity.
        #[test]
        fn double_negation(pc in arb_pointcut(), q in arb_query()) {
            let not_not = pc.clone().not().not();
            prop_assert_eq!(pc.matches(&q), not_not.matches(&q));
        }

        /// De Morgan: !(a && b) == !a || !b.
        #[test]
        fn de_morgan(a in arb_pointcut(), b in arb_pointcut(), q in arb_query()) {
            let lhs = a.clone().and(b.clone()).not();
            let rhs = a.not().or(b.not());
            prop_assert_eq!(lhs.matches(&q), rhs.matches(&q));
        }

        /// `and` is commutative; `or` is commutative.
        #[test]
        fn commutativity(a in arb_pointcut(), b in arb_pointcut(), q in arb_query()) {
            prop_assert_eq!(a.clone().and(b.clone()).matches(&q), b.clone().and(a.clone()).matches(&q));
            prop_assert_eq!(a.clone().or(b.clone()).matches(&q), b.or(a).matches(&q));
        }

        /// WithinCore and WithinAspects partition all provenances.
        #[test]
        fn provenance_partition(q in arb_query()) {
            let core = Pointcut::within_core().matches(&q);
            let aspect = Pointcut::within_aspects().matches(&q);
            prop_assert!(core != aspect);
        }
    }
}
