//! Inter-type declarations: the static-crosscutting half of AspectJ.
//!
//! The paper's Figure 2 introduces a `migrate` method and a `Serializable`
//! parent into class `Point` without touching its source. The runtime
//! equivalents here are:
//!
//! * **extension methods** — `(class, method) → closure` entries consulted by
//!   base dispatch when the class's own table misses;
//! * **class tags** — the `declare parents` analogue: named capabilities
//!   attached to a class (e.g. the distribution aspect tagging `PrimeFilter`
//!   as `Remote`);
//! * **per-object fields** — mixin state attached to individual objects
//!   (e.g. the Partition aspect's `next` pipeline pointer from Figure 8).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{WeaveError, WeaveResult};
use crate::object::ObjId;
use crate::registry::Weaver;
use crate::value::{AnyValue, Args};

/// Body of an extension method.
pub type ExtensionFn = Arc<dyn Fn(&Weaver, ObjId, Args) -> WeaveResult<AnyValue> + Send + Sync>;

/// Store of inter-type declarations, shared by all aspects on a weaver.
#[derive(Default)]
pub struct IntertypeStore {
    extensions: RwLock<HashMap<(&'static str, &'static str), ExtensionFn>>,
    class_tags: RwLock<HashSet<(&'static str, &'static str)>>,
    // `Mutex`, not `RwLock`: the boxed values are `Send` but not `Sync`.
    fields: Mutex<HashMap<(ObjId, &'static str), AnyValue>>,
}

impl IntertypeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- extension methods -------------------------------------------------

    /// Introduce `class.method`, dispatched when the class's own table misses.
    /// Replaces any previous extension with the same name.
    pub fn add_method(&self, class: &'static str, method: &'static str, f: ExtensionFn) {
        self.extensions.write().insert((class, method), f);
    }

    /// Remove an extension method. Returns true when present.
    pub fn remove_method(&self, class: &str, method: &str) -> bool {
        let key = match self.resolve_method(class, method) {
            Some(k) => k,
            None => return false,
        };
        self.extensions.write().remove(&key).is_some()
    }

    /// Resolve a (possibly dynamic) class/method pair to the `'static` key it
    /// was registered under.
    pub fn resolve_method(
        &self,
        class: &str,
        method: &str,
    ) -> Option<(&'static str, &'static str)> {
        self.extensions.read().keys().copied().find(|(c, m)| *c == class && *m == method)
    }

    /// Invoke an extension method.
    pub fn call_method(
        &self,
        weaver: &Weaver,
        class: &str,
        method: &str,
        target: ObjId,
        args: Args,
    ) -> WeaveResult<AnyValue> {
        let f = {
            let key = self.resolve_method(class, method).ok_or_else(|| {
                WeaveError::NoSuchMethod { class: class.into(), method: method.into() }
            })?;
            self.extensions.read().get(&key).cloned()
        };
        match f {
            Some(f) => f(weaver, target, args),
            None => Err(WeaveError::NoSuchMethod { class: class.into(), method: method.into() }),
        }
    }

    // ---- class tags (declare parents) --------------------------------------

    /// Declare that `class` carries `tag` (e.g. `"Remote"`).
    pub fn declare_tag(&self, class: &'static str, tag: &'static str) {
        self.class_tags.write().insert((class, tag));
    }

    /// Remove a declared tag. Returns true when present.
    pub fn remove_tag(&self, class: &str, tag: &str) -> bool {
        let key = {
            let tags = self.class_tags.read();
            tags.iter().copied().find(|(c, t)| *c == class && *t == tag)
        };
        match key {
            Some(k) => self.class_tags.write().remove(&k),
            None => false,
        }
    }

    /// Does `class` carry `tag`?
    pub fn has_tag(&self, class: &str, tag: &str) -> bool {
        self.class_tags.read().iter().any(|(c, t)| *c == class && *t == tag)
    }

    // ---- per-object mixin fields -------------------------------------------

    /// Attach (or overwrite) a named field on an object.
    pub fn set_field<T: Send + 'static>(&self, obj: ObjId, key: &'static str, value: T) {
        self.fields.lock().insert((obj, key), crate::value::Value::new(value));
    }

    /// Read a copy of a field.
    pub fn get_field<T: Clone + Send + 'static>(&self, obj: ObjId, key: &str) -> Option<T> {
        let fields = self.fields.lock();
        let (_, v) = fields.iter().find(|((o, k), _)| *o == obj && *k == key)?;
        v.downcast_ref::<T>().cloned()
    }

    /// Run a closure with mutable access to a field.
    pub fn with_field_mut<T: Send + 'static, R>(
        &self,
        obj: ObjId,
        key: &str,
        f: impl FnOnce(&mut T) -> R,
    ) -> WeaveResult<R> {
        let mut fields = self.fields.lock();
        let (_, v) = fields
            .iter_mut()
            .find(|((o, k), _)| *o == obj && *k == key)
            .ok_or_else(|| WeaveError::app(format!("no inter-type field `{key}` on {obj}")))?;
        let typed = v.downcast_mut::<T>().ok_or_else(|| WeaveError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            context: format!("inter-type field `{key}` on {obj}"),
        })?;
        Ok(f(typed))
    }

    /// Does the object carry the field?
    pub fn has_field(&self, obj: ObjId, key: &str) -> bool {
        self.fields.lock().keys().any(|(o, k)| *o == obj && *k == key)
    }

    /// Remove a field. Returns true when present.
    pub fn remove_field(&self, obj: ObjId, key: &str) -> bool {
        let found = {
            let fields = self.fields.lock();
            fields.keys().copied().find(|(o, k)| *o == obj && *k == key)
        };
        match found {
            Some(k) => self.fields.lock().remove(&k).is_some(),
            None => false,
        }
    }

    /// Drop all fields attached to an object (object garbage collection).
    pub fn remove_object(&self, obj: ObjId) {
        self.fields.lock().retain(|(o, _), _| *o != obj);
    }
}

impl std::fmt::Debug for IntertypeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntertypeStore")
            .field("extensions", &self.extensions.read().len())
            .field("class_tags", &self.class_tags.read().len())
            .field("fields", &self.fields.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjId {
        ObjId::from_raw(n)
    }

    #[test]
    fn tags_declare_and_remove() {
        let store = IntertypeStore::new();
        assert!(!store.has_tag("Point", "Serializable"));
        store.declare_tag("Point", "Serializable");
        assert!(store.has_tag("Point", "Serializable"));
        assert!(!store.has_tag("Point", "Remote"));
        assert!(store.remove_tag("Point", "Serializable"));
        assert!(!store.remove_tag("Point", "Serializable"));
        assert!(!store.has_tag("Point", "Serializable"));
    }

    #[test]
    fn fields_set_get_mutate() {
        let store = IntertypeStore::new();
        store.set_field(obj(1), "next", Some(obj(2)));
        assert_eq!(store.get_field::<Option<ObjId>>(obj(1), "next"), Some(Some(obj(2))));
        assert_eq!(store.get_field::<Option<ObjId>>(obj(9), "next"), None);
        store.with_field_mut::<Option<ObjId>, _>(obj(1), "next", |n| *n = None).unwrap();
        assert_eq!(store.get_field::<Option<ObjId>>(obj(1), "next"), Some(None));
    }

    #[test]
    fn field_type_mismatch_is_reported() {
        let store = IntertypeStore::new();
        store.set_field(obj(1), "count", 3u32);
        let err = store.with_field_mut::<String, _>(obj(1), "count", |_| ()).unwrap_err();
        assert!(matches!(err, WeaveError::TypeMismatch { .. }));
        // get_field with the wrong type yields None rather than panicking.
        assert_eq!(store.get_field::<String>(obj(1), "count"), None);
    }

    #[test]
    fn missing_field_is_an_app_error() {
        let store = IntertypeStore::new();
        let err = store.with_field_mut::<u32, _>(obj(1), "nope", |_| ()).unwrap_err();
        assert!(matches!(err, WeaveError::App(_)));
    }

    #[test]
    fn remove_field_and_object_gc() {
        let store = IntertypeStore::new();
        store.set_field(obj(1), "a", 1u8);
        store.set_field(obj(1), "b", 2u8);
        store.set_field(obj(2), "a", 3u8);
        assert!(store.remove_field(obj(1), "a"));
        assert!(!store.remove_field(obj(1), "a"));
        assert!(store.has_field(obj(1), "b"));
        store.remove_object(obj(1));
        assert!(!store.has_field(obj(1), "b"));
        assert!(store.has_field(obj(2), "a"));
    }

    #[test]
    fn extension_methods_register_and_resolve() {
        let store = IntertypeStore::new();
        store.add_method(
            "Point",
            "migrate",
            Arc::new(|_w, _o, _a| Ok(crate::ret!("migrated".to_string()))),
        );
        assert!(store.resolve_method("Point", "migrate").is_some());
        assert!(store.resolve_method("Point", "fly").is_none());
        assert!(store.remove_method("Point", "migrate"));
        assert!(!store.remove_method("Point", "migrate"));
    }

    #[test]
    fn call_unknown_extension_is_no_such_method() {
        let store = IntertypeStore::new();
        let weaver = Weaver::new();
        let err =
            store.call_method(&weaver, "Point", "migrate", obj(1), Args::empty()).unwrap_err();
        assert!(matches!(err, WeaveError::NoSuchMethod { .. }));
    }
}
