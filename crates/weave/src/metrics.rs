//! Observability as a pluggable aspect layer.
//!
//! The paper's whole methodology keeps crosscutting concerns — partition,
//! concurrency, distribution, optimisation — as (un)pluggable modules.
//! Observability is the canonical crosscutting concern: this module reifies
//! it the same way. A [`MetricsRegistry`] names counters, gauges and latency
//! histograms; [`metrics_aspect`] plugs an observer at any depth of a concern
//! stack and attributes latency/throughput/error counts to the concern level
//! it wraps (outside partition it times whole farmed calls, inside it times
//! per-pack work, below distribution it times individual remote calls).
//!
//! # Hot-path discipline
//!
//! * **Counters** are 8-way sharded relaxed atomics (the same layout as the
//!   tuning accumulators): each thread increments a shard picked once per
//!   thread, so hot-path increments never contend on a shared cache line.
//! * **Histograms** use fixed log₂(ns) buckets — recording a sample is a
//!   handful of relaxed `fetch_add`s on this thread's shard, no allocation,
//!   no locks, no floating point.
//! * **Gauges** can *bind* an already-existing atomic cell (an executor's
//!   in-flight counter, a tunable's value cell), so layers keep their cheap
//!   always-on atomics and installing metrics merely names them.
//! * The registry itself is only locked when a metric is first resolved;
//!   aspect and tap code resolves its handles once, outside the hot path.
//!
//! [`Snapshot`] renders the whole registry to text or JSON with
//! deterministic (sorted) ordering, so tests can diff two snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::aspect::Aspect;
use crate::invocation::Invocation;
use crate::pointcut::Pointcut;

/// Shards per counter/histogram. Matches the tuning accumulators: enough to
/// spread a machine's worth of worker threads, small enough to sum cheaply.
const SHARDS: usize = 8;

/// Number of log₂(ns) latency buckets: bucket `k` holds samples in
/// `[2^k, 2^(k+1))` ns, so 40 buckets cover 1 ns to ≈ 18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// This thread's shard, assigned round-robin on first use (same scheme as
/// the tuning accumulators).
fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(idx);
        }
        idx
    })
}

/// One cache line per shard so neighbouring shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

// ---- counter ----------------------------------------------------------------

enum CounterRepr {
    /// Own 8-way sharded storage (hot-path increments never contend).
    Sharded(Box<[PaddedU64]>),
    /// A pre-existing cell owned by another layer (executor, fabric, tuner):
    /// installing metrics names the cell, it does not move the bookkeeping.
    Bound(Arc<AtomicU64>),
}

/// A monotonically increasing counter. Cloning shares the storage.
#[derive(Clone)]
pub struct Counter {
    repr: Arc<CounterRepr>,
}

impl Counter {
    fn sharded() -> Self {
        let shards = (0..SHARDS).map(|_| PaddedU64::default()).collect();
        Counter { repr: Arc::new(CounterRepr::Sharded(shards)) }
    }

    fn bound(cell: Arc<AtomicU64>) -> Self {
        Counter { repr: Arc::new(CounterRepr::Bound(cell)) }
    }

    /// Add 1. Relaxed, allocation-free, shard-local.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Relaxed, allocation-free, shard-local.
    #[inline]
    pub fn add(&self, n: u64) {
        match &*self.repr {
            CounterRepr::Sharded(shards) => {
                shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
            }
            CounterRepr::Bound(cell) => {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Current total (sums the shards).
    pub fn value(&self) -> u64 {
        match &*self.repr {
            CounterRepr::Sharded(shards) => {
                shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
            }
            CounterRepr::Bound(cell) => cell.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter").field("value", &self.value()).finish()
    }
}

// ---- gauge ------------------------------------------------------------------

enum GaugeRepr {
    Owned(AtomicU64),
    BoundU64(Arc<AtomicU64>),
    BoundU32(Arc<AtomicU32>),
    BoundUsize(Arc<AtomicUsize>),
}

/// A point-in-time value (queue depth, pool occupancy, a tunable's current
/// setting). Cloning shares the storage.
#[derive(Clone)]
pub struct Gauge {
    repr: Arc<GaugeRepr>,
}

impl Gauge {
    fn owned() -> Self {
        Gauge { repr: Arc::new(GaugeRepr::Owned(AtomicU64::new(0))) }
    }

    /// Set the gauge. Bound cells are written through, so use owned gauges
    /// for values the metrics layer itself maintains.
    pub fn set(&self, v: u64) {
        match &*self.repr {
            GaugeRepr::Owned(cell) => cell.store(v, Ordering::Relaxed),
            GaugeRepr::BoundU64(cell) => cell.store(v, Ordering::Relaxed),
            GaugeRepr::BoundU32(cell) => cell.store(v as u32, Ordering::Relaxed),
            GaugeRepr::BoundUsize(cell) => cell.store(v as usize, Ordering::Relaxed),
        }
    }

    /// Increment (occupancy-style gauges).
    #[inline]
    pub fn inc(&self) {
        match &*self.repr {
            GaugeRepr::Owned(cell) => cell.fetch_add(1, Ordering::Relaxed),
            GaugeRepr::BoundU64(cell) => cell.fetch_add(1, Ordering::Relaxed),
            GaugeRepr::BoundU32(cell) => cell.fetch_add(1, Ordering::Relaxed) as u64,
            GaugeRepr::BoundUsize(cell) => cell.fetch_add(1, Ordering::Relaxed) as u64,
        };
    }

    /// Decrement (saturating at zero for owned storage misuse is not
    /// defended — occupancy updates must be balanced).
    #[inline]
    pub fn dec(&self) {
        match &*self.repr {
            GaugeRepr::Owned(cell) => cell.fetch_sub(1, Ordering::Relaxed),
            GaugeRepr::BoundU64(cell) => cell.fetch_sub(1, Ordering::Relaxed),
            GaugeRepr::BoundU32(cell) => cell.fetch_sub(1, Ordering::Relaxed) as u64,
            GaugeRepr::BoundUsize(cell) => cell.fetch_sub(1, Ordering::Relaxed) as u64,
        };
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        match &*self.repr {
            GaugeRepr::Owned(cell) => cell.load(Ordering::Relaxed),
            GaugeRepr::BoundU64(cell) => cell.load(Ordering::Relaxed),
            GaugeRepr::BoundU32(cell) => cell.load(Ordering::Relaxed) as u64,
            GaugeRepr::BoundUsize(cell) => cell.load(Ordering::Relaxed) as u64,
        }
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.value()).finish()
    }
}

// ---- histogram --------------------------------------------------------------

struct HistogramShard {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramShard {
    fn default() -> Self {
        HistogramShard {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket for a sample: floor(log₂(ns)), clamped to the table.
#[inline]
fn bucket_of(ns: u64) -> usize {
    ((63 - (ns | 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// A fixed-bucket log₂(ns) latency histogram, 8-way sharded. Recording is a
/// few relaxed adds on this thread's shard: no locks, no allocation.
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<[HistogramShard]>,
}

impl Histogram {
    /// A standalone histogram, not attached to any registry — for embedding
    /// in other instruments (e.g. `weavepar_core`'s `CallLog`). Named,
    /// snapshot-visible histograms come from [`MetricsRegistry::histogram`].
    pub fn new() -> Self {
        Histogram { shards: (0..SHARDS).map(|_| HistogramShard::default()).collect() }
    }

    /// Record one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let shard = &self.shards[shard_index()];
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum_ns.fetch_add(ns, Ordering::Relaxed);
        shard.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.count.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.sum_ns.load(Ordering::Relaxed)).sum()
    }

    /// Zero every shard (administrative; racing recorders may survive).
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            shard.count.store(0, Ordering::Relaxed);
            shard.sum_ns.store(0, Ordering::Relaxed);
            for bucket in &shard.buckets {
                bucket.store(0, Ordering::Relaxed);
            }
        }
    }

    /// A consistent-enough point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut count = 0u64;
        let mut sum_ns = 0u64;
        for shard in self.shards.iter() {
            count += shard.count.load(Ordering::Relaxed);
            sum_ns += shard.sum_ns.load(Ordering::Relaxed);
            for (acc, bucket) in buckets.iter_mut().zip(&shard.buckets) {
                *acc += bucket.load(Ordering::Relaxed);
            }
        }
        HistogramSnapshot { count, sum_ns, buckets }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).finish()
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Bucket `k` holds samples in `[2^k, 2^(k+1))` ns.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (exclusive, ns) of the bucket containing quantile `q`
    /// (`0.0..=1.0`); 0 when empty. Log₂ buckets make this an order-of-
    /// magnitude estimate, which is what a latency histogram is for.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (k + 1);
            }
        }
        1u64 << HISTOGRAM_BUCKETS
    }
}

// ---- registry ---------------------------------------------------------------

#[derive(Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

/// A named collection of [`Counter`]s, [`Gauge`]s and [`Histogram`]s.
/// Cloning shares the registry. Resolution (`counter`, `gauge`,
/// `histogram`, `bind_*`) takes a lock and may allocate — resolve handles
/// once, outside the hot path; the handles themselves are lock-free.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when `other` is a clone of this registry.
    pub fn same_as(&self, other: &MetricsRegistry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Get or create the sharded counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().get(name) {
            return c.clone();
        }
        self.inner.counters.write().entry(name.to_string()).or_insert_with(Counter::sharded).clone()
    }

    /// Register `cell` as the counter `name` (replacing any previous metric
    /// of that name). The layer that owns the cell keeps incrementing it
    /// directly; the registry only reads it at snapshot time.
    pub fn bind_counter(&self, name: &str, cell: Arc<AtomicU64>) -> Counter {
        let c = Counter::bound(cell);
        self.inner.counters.write().insert(name.to_string(), c.clone());
        c
    }

    /// Get or create the owned gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return g.clone();
        }
        self.inner.gauges.write().entry(name.to_string()).or_insert_with(Gauge::owned).clone()
    }

    /// Register a `u64` cell as the gauge `name`.
    pub fn bind_gauge(&self, name: &str, cell: Arc<AtomicU64>) -> Gauge {
        let g = Gauge { repr: Arc::new(GaugeRepr::BoundU64(cell)) };
        self.inner.gauges.write().insert(name.to_string(), g.clone());
        g
    }

    /// Register a `u32` cell (e.g. a tunable's value cell) as the gauge
    /// `name`.
    pub fn bind_gauge_u32(&self, name: &str, cell: Arc<AtomicU32>) -> Gauge {
        let g = Gauge { repr: Arc::new(GaugeRepr::BoundU32(cell)) };
        self.inner.gauges.write().insert(name.to_string(), g.clone());
        g
    }

    /// Register a `usize` cell (e.g. a completion tracker's in-flight count)
    /// as the gauge `name`.
    pub fn bind_gauge_usize(&self, name: &str, cell: Arc<AtomicUsize>) -> Gauge {
        let g = Gauge { repr: Arc::new(GaugeRepr::BoundUsize(cell)) };
        self.inner.gauges.write().insert(name.to_string(), g.clone());
        g
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return h.clone();
        }
        self.inner.histograms.write().entry(name.to_string()).or_default().clone()
    }

    /// A deterministic point-in-time view of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters =
            self.inner.counters.read().iter().map(|(k, c)| (k.clone(), c.value())).collect();
        let gauges = self.inner.gauges.read().iter().map(|(k, g)| (k.clone(), g.value())).collect();
        let histograms =
            self.inner.histograms.read().iter().map(|(k, h)| (k.clone(), h.snapshot())).collect();
        Snapshot { counters, gauges, histograms }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.read().len())
            .field("gauges", &self.inner.gauges.read().len())
            .field("histograms", &self.inner.histograms.read().len())
            .finish()
    }
}

// ---- snapshot ---------------------------------------------------------------

/// Deterministic point-in-time view of a [`MetricsRegistry`]: every vector
/// is sorted by metric name, so two snapshots of the same state render
/// identically and diff cleanly in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, total)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, buckets)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Plain-text rendering, one metric per line, sorted by name.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} mean_ns={} p50_ns<{} p99_ns<{}\n",
                h.count,
                h.mean_ns(),
                h.quantile_ns(0.50),
                h.quantile_ns(0.99),
            ));
        }
        out
    }

    /// JSON rendering: sorted keys, integers only, non-zero histogram
    /// buckets as `[bucket_index, count]` pairs — byte-for-byte identical
    /// for identical registry states.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": {v}", json_escape(name)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": {v}", json_escape(name)));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(k, n)| format!("[{k}, {n}]"))
                .collect();
            out.push_str(&format!(
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"buckets\": [{}]}}",
                json_escape(name),
                h.count,
                h.sum_ns,
                buckets.join(", ")
            ));
        }
        out.push_str(if self.histograms.is_empty() { "}\n" } else { "\n  }\n" });
        out.push('}');
        out
    }
}

// ---- weaver dispatch stats --------------------------------------------------

/// Pre-resolved handles for the weaver's own dispatch tap. Resolved once at
/// [`Weaver::install_metrics`](crate::registry::Weaver::install_metrics), so
/// the installed-idle dispatch path is two relaxed shard increments and zero
/// clock reads.
pub(crate) struct DispatchStats {
    pub(crate) registry: MetricsRegistry,
    pub(crate) calls: Counter,
    pub(crate) constructs: Counter,
    pub(crate) errors: Counter,
}

impl DispatchStats {
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        DispatchStats {
            registry: registry.clone(),
            calls: registry.counter("weaver.calls"),
            constructs: registry.counter("weaver.constructs"),
            errors: registry.counter("weaver.errors"),
        }
    }
}

// ---- metrics aspect ---------------------------------------------------------

/// Build a metrics observer aspect at an explicit precedence: every matched
/// join point is timed around `proceed` into `{name}.latency_ns`, with
/// `{name}.calls` / `{name}.errors` counters. The precedence decides *which
/// concern level* the numbers describe — below
/// [`precedence::PARTITION`](crate::aspect::precedence::PARTITION) the
/// histogram holds whole farmed calls, between partition and distribution it
/// holds per-pack work, above
/// [`precedence::DISTRIBUTION`](crate::aspect::precedence::DISTRIBUTION) it
/// holds individual remote calls.
pub fn metrics_aspect_at(
    name: impl Into<String>,
    pointcut: Pointcut,
    registry: &MetricsRegistry,
    precedence: i32,
) -> Aspect {
    let name = name.into();
    let calls = registry.counter(&format!("{name}.calls"));
    let errors = registry.counter(&format!("{name}.errors"));
    let latency = registry.histogram(&format!("{name}.latency_ns"));
    Aspect::named(name)
        .precedence(precedence)
        .around(pointcut, move |inv: &mut Invocation| {
            let start = Instant::now();
            let result = inv.proceed();
            latency.record(start.elapsed());
            calls.inc();
            if result.is_err() {
                errors.inc();
            }
            result
        })
        .build()
}

/// [`metrics_aspect_at`] at precedence −500: outside every concern aspect
/// (partition, concurrency, distribution — even the autotune observer), so
/// the histogram reflects what the *caller* experiences end to end. Only the
/// logging aspect (−1000) conventionally sits further out.
pub fn metrics_aspect(
    name: impl Into<String>,
    pointcut: Pointcut,
    registry: &MetricsRegistry,
) -> Aspect {
    metrics_aspect_at(name, pointcut, registry, -500)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_and_sum() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Resolving again returns the same storage.
        assert_eq!(reg.counter("hits").value(), 5);
        // Across threads the shards sum correctly.
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 4005);
    }

    #[test]
    fn bound_counter_reads_the_external_cell() {
        let reg = MetricsRegistry::new();
        let cell = Arc::new(AtomicU64::new(7));
        let c = reg.bind_counter("fabric.retries", cell.clone());
        cell.fetch_add(3, Ordering::Relaxed);
        assert_eq!(c.value(), 10);
        assert_eq!(reg.snapshot().counter("fabric.retries"), Some(10));
    }

    #[test]
    fn gauges_track_occupancy_and_bound_cells() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("stage.occupancy");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 1);
        g.set(9);
        assert_eq!(g.value(), 9);

        let cell32 = Arc::new(AtomicU32::new(16));
        let tuned = reg.bind_gauge_u32("tune.packs", cell32.clone());
        assert_eq!(tuned.value(), 16);
        cell32.store(32, Ordering::Relaxed);
        assert_eq!(reg.snapshot().gauge("tune.packs"), Some(32));

        let cellu = Arc::new(AtomicUsize::new(3));
        let depth = reg.bind_gauge_usize("pool.in_flight", cellu.clone());
        cellu.store(5, Ordering::Relaxed);
        assert_eq!(depth.value(), 5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let h = Histogram::new();
        h.record_ns(100); // bucket 6
        h.record_ns(100);
        h.record_ns(1_000_000); // bucket 19
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_ns, 1_000_200);
        assert_eq!(snap.buckets[6], 2);
        assert_eq!(snap.buckets[19], 1);
        assert_eq!(snap.mean_ns(), 333_400);
        // p50 falls in bucket 6 (upper bound 128), p99 in bucket 19.
        assert_eq!(snap.quantile_ns(0.50), 128);
        assert_eq!(snap.quantile_ns(0.99), 1 << 20);
        h.reset();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("m.mid").set(3);
        reg.histogram("lat").record_ns(50);
        let s1 = reg.snapshot();
        let s2 = reg.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.to_json(), s2.to_json());
        assert_eq!(s1.to_text(), s2.to_text());
        let names: Vec<&str> = s1.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"], "sorted by name");
        assert!(s1.to_json().contains("\"a.first\": 2"));
        assert!(s1.to_text().contains("counter   z.last = 1"));
        assert!(s1.to_text().contains("histogram lat count=1"));
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let s = MetricsRegistry::new().snapshot();
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\": {}"));
    }

    #[test]
    fn metrics_aspect_attributes_to_its_level() {
        use crate::registry::tests::Acc;
        use crate::{args, Weaver};

        let weaver = Weaver::new();
        let reg = MetricsRegistry::new();
        weaver.plug(metrics_aspect("obs", Pointcut::call("Acc.add"), &reg));
        let h = weaver.construct::<Acc>(args![0i64]).unwrap();
        for _ in 0..5 {
            h.call("add", args![1i64]).unwrap();
        }
        // A call that fails inside the chain is an error at this level too.
        let _ = h.call("add", args!["wrong type".to_string()]);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("obs.calls"), Some(6));
        assert_eq!(snap.counter("obs.errors"), Some(1));
        let lat = snap.histogram("obs.latency_ns").unwrap();
        assert_eq!(lat.count, 6);
        assert!(lat.sum_ns > 0);
    }
}
