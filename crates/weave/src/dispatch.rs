//! Per-class dispatch: the [`Weaveable`] trait and the class registry.
//!
//! The [`weaveable!`](crate::weaveable) macro implements [`Weaveable`] for an
//! application class. The implementation carries everything the runtime needs
//! to construct and invoke instances through type-erased join points:
//! a constructor, a method-dispatch table, the method list and an argument
//! sizer for the trace recorder.
//!
//! Distribution middleware additionally needs to resolve classes *by name*
//! (a remote node receives `"PrimeFilter"` off the wire), which is what the
//! erased [`ClassInfo`] records registered on a weaver provide.

use std::any::Any;

use crate::error::{WeaveError, WeaveResult};
use crate::value::{AnyValue, Args};

/// Type-erased method dispatch on a live instance.
pub type DispatchFn = fn(&mut (dyn Any + Send), &'static str, Args) -> WeaveResult<AnyValue>;

/// Type-erased constructor producing a boxed instance.
pub type ConstructorFn = fn(Args) -> WeaveResult<Box<dyn Any + Send>>;

/// Approximate wire size of the arguments of a method call.
pub type ArgSizerFn = fn(&'static str, &Args) -> usize;

/// Approximate wire size of a method's return value.
pub type RetSizerFn = fn(&'static str, &AnyValue) -> usize;

/// A class whose constructions and method calls can act as join points.
///
/// Implemented by the [`weaveable!`](crate::weaveable) macro; not intended to
/// be implemented by hand (but doing so is safe — everything is checked at
/// run time).
pub trait Weaveable: Send + Sized + 'static {
    /// Class name used in signatures and pointcut patterns.
    const CLASS: &'static str;

    /// Construct an instance from a type-erased argument pack.
    fn construct(args: Args) -> WeaveResult<Self>;

    /// Invoke `method` with `args` on this instance.
    fn dispatch(&mut self, method: &'static str, args: Args) -> WeaveResult<AnyValue>;

    /// The method names this class dispatches.
    fn methods() -> &'static [&'static str];

    /// Approximate wire size of `args` for `method` (trace/network model).
    /// The default is a conservative zero for classes that opt out.
    fn arg_bytes(_method: &'static str, _args: &Args) -> usize {
        0
    }

    /// Approximate wire size of a method's return value (trace/network model).
    fn ret_bytes(_method: &'static str, _ret: &AnyValue) -> usize {
        0
    }
}

/// Runtime record for one weaveable class, with every entry type-erased so
/// middleware and the object space can work without the concrete type.
#[derive(Clone, Copy)]
pub struct ClassInfo {
    /// Class name ([`Weaveable::CLASS`]).
    pub class: &'static str,
    /// Type-erased constructor.
    pub construct: ConstructorFn,
    /// Type-erased dispatch.
    pub dispatch: DispatchFn,
    /// Method list.
    pub methods: &'static [&'static str],
    /// Argument sizer.
    pub arg_bytes: ArgSizerFn,
    /// Return-value sizer.
    pub ret_bytes: RetSizerFn,
}

impl ClassInfo {
    /// Build the erased record for `T`.
    pub fn of<T: Weaveable>() -> Self {
        ClassInfo {
            class: T::CLASS,
            construct: erased_construct::<T>,
            dispatch: erased_dispatch::<T>,
            methods: T::methods(),
            arg_bytes: T::arg_bytes,
            ret_bytes: T::ret_bytes,
        }
    }

    /// Resolve a dynamic method name (e.g. received over the wire) to the
    /// `'static` name used in signatures.
    pub fn resolve_method(&self, name: &str) -> Option<&'static str> {
        self.methods.iter().copied().find(|m| *m == name)
    }
}

impl std::fmt::Debug for ClassInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassInfo")
            .field("class", &self.class)
            .field("methods", &self.methods)
            .finish()
    }
}

fn erased_construct<T: Weaveable>(args: Args) -> WeaveResult<Box<dyn Any + Send>> {
    Ok(Box::new(T::construct(args)?))
}

fn erased_dispatch<T: Weaveable>(
    obj: &mut (dyn Any + Send),
    method: &'static str,
    args: Args,
) -> WeaveResult<AnyValue> {
    let typed = obj.downcast_mut::<T>().ok_or_else(|| WeaveError::TypeMismatch {
        expected: std::any::type_name::<T>(),
        context: format!("dispatch of {}.{method}", T::CLASS),
    })?;
    typed.dispatch(method, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    struct Counter {
        n: i64,
    }

    impl Weaveable for Counter {
        const CLASS: &'static str = "Counter";

        fn construct(mut args: Args) -> WeaveResult<Self> {
            Ok(Counter { n: args.take(0)? })
        }

        fn dispatch(&mut self, method: &'static str, mut args: Args) -> WeaveResult<AnyValue> {
            match method {
                "add" => {
                    self.n += args.take::<i64>(0)?;
                    Ok(crate::ret!())
                }
                "get" => Ok(crate::ret!(self.n)),
                _ => Err(WeaveError::NoSuchMethod {
                    class: Self::CLASS.into(),
                    method: method.into(),
                }),
            }
        }

        fn methods() -> &'static [&'static str] {
            &["add", "get"]
        }

        fn arg_bytes(method: &'static str, args: &Args) -> usize {
            match method {
                "add" => args.get::<i64>(0).map(|_| 8).unwrap_or(0),
                _ => 0,
            }
        }
    }

    #[test]
    fn erased_construct_and_dispatch() {
        let info = ClassInfo::of::<Counter>();
        let mut boxed = (info.construct)(args![5i64]).unwrap();
        let ret = (info.dispatch)(boxed.as_mut(), "add", args![2i64]).unwrap();
        crate::value::downcast_ret::<()>(ret).unwrap();
        let ret = (info.dispatch)(boxed.as_mut(), "get", args![]).unwrap();
        assert_eq!(crate::value::downcast_ret::<i64>(ret).unwrap(), 7);
    }

    #[test]
    fn dispatch_on_wrong_type_is_reported() {
        let info = ClassInfo::of::<Counter>();
        let mut not_a_counter: Box<dyn Any + Send> = Box::new(17u8);
        let err = (info.dispatch)(not_a_counter.as_mut(), "get", args![]).unwrap_err();
        assert!(matches!(err, WeaveError::TypeMismatch { .. }));
    }

    #[test]
    fn resolve_method_returns_static_name() {
        let info = ClassInfo::of::<Counter>();
        let dynamic = String::from("add");
        assert_eq!(info.resolve_method(&dynamic), Some("add"));
        assert_eq!(info.resolve_method("nope"), None);
    }

    #[test]
    fn arg_sizer_is_exposed() {
        let info = ClassInfo::of::<Counter>();
        assert_eq!((info.arg_bytes)("add", &args![1i64]), 8);
        assert_eq!((info.arg_bytes)("get", &args![]), 0);
    }

    #[test]
    fn unknown_method_errors() {
        let mut c = Counter { n: 0 };
        let err = c.dispatch("nope", args![]).unwrap_err();
        assert!(matches!(err, WeaveError::NoSuchMethod { .. }));
    }
}
