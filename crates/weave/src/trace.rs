//! Execution-trace recording.
//!
//! When a [`Recorder`] is installed on a [`Weaver`](crate::registry::Weaver),
//! every *base* method execution (the innermost `proceed`) is recorded as a
//! **task**: its causal parent (the task whose code issued the call), whether
//! it was reached through an asynchronous boundary
//! ([`Detached`](crate::invocation::Detached)), the approximate wire size of
//! its arguments, and its CPU cost (measured, or supplied by a [`CostModel`]).
//!
//! The resulting [`TraceGraph`] is a task DAG that `weavepar-cluster` replays
//! on a virtual cluster: synchronous edges keep the caller blocked,
//! asynchronous edges let it continue, and edges that cross a node-placement
//! boundary pay the modelled network costs. This is how the repository turns
//! *real executions of the woven code* into the paper's cluster-scale figures
//! without the authors' hardware.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::object::ObjId;
use crate::signature::Signature;
use crate::value::Args;

/// Identifier of a recorded task (base method execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u64);

/// Dense per-process tag for the current thread (stable within a run; used to
/// distinguish the client's main thread from worker threads in traces).
pub fn thread_tag() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TAG: Cell<Option<u64>> = const { Cell::new(None) };
    }
    TAG.with(|t| match t.get() {
        Some(tag) => tag,
        None => {
            let tag = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(Some(tag));
            tag
        }
    })
}

impl TaskId {
    /// Build from a raw index (tests, simulators).
    pub fn from_raw(raw: u64) -> Self {
        TaskId(raw)
    }

    /// Raw index.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One recorded base method execution.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Task identifier (dense, in creation order).
    pub id: TaskId,
    /// Task whose code issued this call, if any.
    pub parent: Option<TaskId>,
    /// Data dependency: a task that had *completed* on the issuing logical
    /// flow before this one was issued (e.g. the previous pipeline stage
    /// whose filtered pack this call forwards). Always a true
    /// happened-after edge.
    pub after: Option<TaskId>,
    /// Join-point signature.
    pub signature: Signature,
    /// Target object of the call, if any (constructions record the new object).
    pub target: Option<ObjId>,
    /// True when the call crossed an asynchronous boundary (the caller did not
    /// block for the result).
    pub async_spawn: bool,
    /// Thread tag of the code that *issued* the call (the join-point entry,
    /// not the executing worker). Lets replay distinguish client-issued root
    /// calls from aspect-issued ones.
    pub issuer: u64,
    /// Approximate wire size of the arguments, in bytes.
    pub args_bytes: usize,
    /// Approximate wire size of the return value, in bytes.
    pub ret_bytes: usize,
    /// CPU cost of the base execution.
    pub cost: Duration,
    /// Global issue order (deterministic tie-breaking during replay).
    pub seq: u64,
}

/// Analytic CPU-cost model: given the join point and its arguments, return the
/// cost to record instead of a wall-clock measurement.
///
/// Used by the benchmark harness for determinism: the prime-sieve apps provide
/// a model calibrated against the paper's Xeon 3.2 GHz timings, so the
/// regenerated figures do not depend on the build machine.
pub type CostModel = Arc<dyn Fn(&Signature, &Args) -> Option<Duration> + Send + Sync>;

/// The completed trace: a task DAG in creation order.
#[derive(Debug, Clone, Default)]
pub struct TraceGraph {
    /// All recorded tasks, indexed by `TaskId::raw()`.
    pub tasks: Vec<TaskRecord>,
}

impl TraceGraph {
    /// Tasks with no recorded parent (issued by top-level application code).
    pub fn roots(&self) -> impl Iterator<Item = &TaskRecord> {
        self.tasks.iter().filter(|t| t.parent.is_none())
    }

    /// Children of `id`, in issue order.
    pub fn children(&self, id: TaskId) -> impl Iterator<Item = &TaskRecord> {
        self.tasks.iter().filter(move |t| t.parent == Some(id))
    }

    /// Sum of all task costs (the sequential work content).
    pub fn total_cost(&self) -> Duration {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// Number of recorded tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Look up a task.
    pub fn get(&self, id: TaskId) -> Option<&TaskRecord> {
        self.tasks.get(id.raw() as usize)
    }

    /// Total bytes that would cross the wire if every call were remote.
    pub fn total_bytes(&self) -> usize {
        self.tasks.iter().map(|t| t.args_bytes + t.ret_bytes).sum()
    }

    /// Thread tag of the client (`main`) — taken from the first recorded
    /// task, which benchmark drivers always issue from their main thread.
    pub fn main_thread(&self) -> Option<u64> {
        self.tasks.first().map(|t| t.issuer)
    }
}

/// Records the task DAG of a woven execution.
///
/// Cloning shares the underlying buffer; a recorder can be installed on a
/// weaver while the caller keeps a handle to later [`Recorder::finish`] it.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

struct RecorderInner {
    id: u64,
    tasks: Mutex<Vec<TaskRecord>>,
    seq: AtomicU64,
    cost_model: Option<CostModel>,
}

fn next_recorder_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Recorder {
    /// A recorder that measures real CPU cost with `Instant`.
    pub fn measuring() -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                id: next_recorder_id(),
                tasks: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                cost_model: None,
            }),
        }
    }

    /// A recorder that asks `model` for task costs, falling back to
    /// measurement when the model declines a join point.
    pub fn with_cost_model(model: CostModel) -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                id: next_recorder_id(),
                tasks: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                cost_model: Some(model),
            }),
        }
    }

    /// This recorder's process-unique id (epoch for thread-local markers).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Model cost for a join point, if a model is installed and covers it.
    pub fn model_cost(&self, sig: &Signature, args: &Args) -> Option<Duration> {
        self.inner.cost_model.as_ref().and_then(|m| m(sig, args))
    }

    /// Record the start of a base execution. Returns the new task id; the
    /// caller must pair it with [`Recorder::end_task`].
    pub fn begin_task(
        &self,
        signature: Signature,
        target: Option<ObjId>,
        args_bytes: usize,
        async_spawn: bool,
        issuer: u64,
    ) -> TaskId {
        let parent = current_task();
        let after = data_dep_for(self.inner.id);
        let mut tasks = self.inner.tasks.lock();
        let id = TaskId(tasks.len() as u64);
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        tasks.push(TaskRecord {
            id,
            parent,
            after,
            signature,
            target,
            async_spawn,
            issuer,
            args_bytes,
            ret_bytes: 0,
            cost: Duration::ZERO,
            seq,
        });
        id
    }

    /// Record the completion of a task with its cost and return size.
    pub fn end_task(&self, id: TaskId, cost: Duration, ret_bytes: usize) {
        let mut tasks = self.inner.tasks.lock();
        if let Some(t) = tasks.get_mut(id.raw() as usize) {
            t.cost = cost;
            t.ret_bytes = ret_bytes;
        }
    }

    /// Number of tasks recorded so far.
    pub fn len(&self) -> usize {
        self.inner.tasks.lock().len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the recorded trace.
    pub fn finish(&self) -> TraceGraph {
        TraceGraph { tasks: self.inner.tasks.lock().clone() }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("tasks", &self.len()).finish()
    }
}

thread_local! {
    static CURRENT_TASK: RefCell<Vec<Option<TaskId>>> = const { RefCell::new(Vec::new()) };
    // Data-dependency marker, tagged with the recorder id it belongs to so a
    // stale marker from an earlier recording session (or a reused pool
    // thread) is never mistaken for an edge in the current trace.
    static DATA_DEP: std::cell::Cell<Option<(u64, TaskId)>> = const { std::cell::Cell::new(None) };
}

/// The raw (recorder id, task) data-dependency marker of this thread.
pub fn data_dep_raw() -> Option<(u64, TaskId)> {
    DATA_DEP.with(|c| c.get())
}

/// The most recent task that completed on this thread's logical flow,
/// *within the given recorder's session*.
pub fn data_dep_for(recorder_id: u64) -> Option<TaskId> {
    DATA_DEP.with(|c| c.get()).and_then(|(id, task)| (id == recorder_id).then_some(task))
}

/// Note that `task` (recorded by `recorder_id`) has completed on this thread:
/// subsequent join points issued here record it as their `after` dependency.
pub fn note_completion(recorder_id: u64, task: TaskId) {
    DATA_DEP.with(|c| c.set(Some((recorder_id, task))));
}

/// RAII guard restoring the previous data-dependency marker.
pub struct DataDepGuard {
    previous: Option<(u64, TaskId)>,
}

impl Drop for DataDepGuard {
    fn drop(&mut self) {
        DATA_DEP.with(|c| c.set(self.previous));
    }
}

/// Install a data-dependency marker (used when a detached chain re-installs
/// its captured context on another thread).
pub fn push_data_dep(dep: Option<(u64, TaskId)>) -> DataDepGuard {
    let previous = data_dep_raw();
    DATA_DEP.with(|c| c.set(dep));
    DataDepGuard { previous }
}

/// The task whose base method body is currently executing on this thread.
pub fn current_task() -> Option<TaskId> {
    CURRENT_TASK.with(|s| s.borrow().last().copied().flatten())
}

/// RAII guard restoring the previous current-task frame.
pub struct TaskGuard {
    pushed: bool,
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        if self.pushed {
            CURRENT_TASK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Push a current-task frame (possibly `None`, masking an outer task).
///
/// Pushing `None` onto an empty stack is elided — the empty stack already
/// reads as "no current task", so the frame would be indistinguishable. This
/// keeps the unrecorded dispatch path to a single thread-local access.
pub fn push_task(task: Option<TaskId>) -> TaskGuard {
    CURRENT_TASK.with(|s| {
        let mut s = s.borrow_mut();
        if task.is_none() && s.is_empty() {
            TaskGuard { pushed: false }
        } else {
            s.push(task);
            TaskGuard { pushed: true }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signature {
        Signature::new("C", "m")
    }

    #[test]
    fn tasks_get_dense_ids_and_seq() {
        let r = Recorder::measuring();
        let a = r.begin_task(sig(), None, 10, false, 0);
        let b = r.begin_task(sig(), None, 20, true, 0);
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        r.end_task(a, Duration::from_millis(5), 1);
        r.end_task(b, Duration::from_millis(7), 2);
        let g = r.finish();
        assert_eq!(g.len(), 2);
        assert_eq!(g.tasks[0].seq, 0);
        assert_eq!(g.tasks[1].seq, 1);
        assert_eq!(g.total_cost(), Duration::from_millis(12));
        assert_eq!(g.total_bytes(), 10 + 20 + 1 + 2);
    }

    #[test]
    fn parent_comes_from_thread_local() {
        let r = Recorder::measuring();
        let root = r.begin_task(sig(), None, 0, false, 0);
        {
            let _g = push_task(Some(root));
            let child = r.begin_task(sig(), None, 0, false, 0);
            let g = r.finish();
            assert_eq!(g.get(child).unwrap().parent, Some(root));
        }
        let after = r.begin_task(sig(), None, 0, false, 0);
        assert_eq!(r.finish().get(after).unwrap().parent, None);
    }

    #[test]
    fn roots_and_children_iterators() {
        let r = Recorder::measuring();
        let root = r.begin_task(sig(), None, 0, false, 0);
        let _g = push_task(Some(root));
        let c1 = r.begin_task(sig(), None, 0, false, 0);
        let c2 = r.begin_task(sig(), None, 0, true, 0);
        let g = r.finish();
        assert_eq!(g.roots().count(), 1);
        let kids: Vec<_> = g.children(root).map(|t| t.id).collect();
        assert_eq!(kids, vec![c1, c2]);
        assert!(g.get(c2).unwrap().async_spawn);
    }

    #[test]
    fn cost_model_is_consulted() {
        let model: CostModel =
            Arc::new(|s: &Signature, _a: &Args| (s.method == "m").then(|| Duration::from_secs(3)));
        let r = Recorder::with_cost_model(model);
        assert_eq!(r.model_cost(&sig(), &Args::empty()), Some(Duration::from_secs(3)));
        assert_eq!(r.model_cost(&Signature::new("C", "other"), &Args::empty()), None);
        assert!(Recorder::measuring().model_cost(&sig(), &Args::empty()).is_none());
    }

    #[test]
    fn none_frame_masks_outer_task() {
        let root = TaskId::from_raw(42);
        let _g1 = push_task(Some(root));
        assert_eq!(current_task(), Some(root));
        {
            let _g2 = push_task(None);
            assert_eq!(current_task(), None);
        }
        assert_eq!(current_task(), Some(root));
    }

    #[test]
    fn empty_graph_queries() {
        let g = TraceGraph::default();
        assert!(g.is_empty());
        assert_eq!(g.total_cost(), Duration::ZERO);
        assert!(g.get(TaskId::from_raw(0)).is_none());
        let r = Recorder::measuring();
        assert!(r.is_empty());
    }
}
