//! Advice: behaviour executed at matched join points.
//!
//! Everything is normalised to *around* advice — the only kind the paper's
//! parallelisation aspects actually need (they replace, duplicate, forward or
//! asynchronise events). `before`/`after` sugar is provided by
//! [`AspectBuilder`](crate::aspect::AspectBuilder).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::aspect::AspectId;
use crate::error::WeaveResult;
use crate::invocation::Invocation;
use crate::pointcut::Pointcut;
use crate::value::AnyValue;

/// Around advice: runs *instead of* the join point and decides if/when the
/// original event executes by calling [`Invocation::proceed`].
pub trait Advice: Send + Sync + 'static {
    /// Execute the advice body.
    fn around(&self, inv: &mut Invocation) -> WeaveResult<AnyValue>;
}

impl<F> Advice for F
where
    F: Fn(&mut Invocation) -> WeaveResult<AnyValue> + Send + Sync + 'static,
{
    fn around(&self, inv: &mut Invocation) -> WeaveResult<AnyValue> {
        self(inv)
    }
}

/// One registered piece of advice, bound to its pointcut and owning aspect.
pub struct AdviceEntry {
    /// Predicate selecting the join points this advice applies to.
    pub pointcut: Pointcut,
    /// The advice body.
    pub advice: Arc<dyn Advice>,
    /// Owning aspect.
    pub aspect: AspectId,
    /// Aspect precedence (lower runs outermost).
    pub precedence: i32,
    /// Declaration order within the aspect (stable tie-break).
    pub index: usize,
    /// Times this advice body has executed (weaving introspection).
    pub fired: AtomicU64,
}

impl AdviceEntry {
    /// Times this advice body has executed.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for AdviceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdviceEntry")
            .field("pointcut", &self.pointcut)
            .field("aspect", &self.aspect)
            .field("precedence", &self.precedence)
            .field("index", &self.index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_advice() {
        // Compile-time check that plain closures satisfy the Advice trait.
        fn assert_advice<A: Advice>(_: &A) {}
        let adv = |inv: &mut Invocation| inv.proceed();
        assert_advice(&adv);
    }

    #[test]
    fn advice_entry_debug_is_informative() {
        let entry = AdviceEntry {
            pointcut: Pointcut::call("A.m"),
            advice: Arc::new(|inv: &mut Invocation| inv.proceed()),
            aspect: AspectId::from_raw(3),
            precedence: -1,
            index: 2,
            fired: AtomicU64::new(0),
        };
        assert_eq!(entry.fired(), 0);
        let s = format!("{entry:?}");
        assert!(s.contains("precedence: -1"));
        assert!(s.contains("index: 2"));
    }
}
