//! Call-site provenance tracking.
//!
//! The paper's pointcuts distinguish *where a call comes from*: the split
//! advice of the Partition aspect applies only to calls made by core
//! functionality, while the forward advice also applies (recursively) to calls
//! the aspect itself makes (Figure 7, block 3). AspectJ gets this from
//! `within(..)`; we reproduce it with a thread-local provenance stack that the
//! runtime pushes around base-method execution and around advice execution.

use std::cell::RefCell;

use crate::aspect::AspectId;
use crate::signature::{MethodPattern, Signature};

/// Who issued the call currently being woven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Top-level application code or a core-functionality method body.
    Core,
    /// Code executing inside an advice body of the given aspect.
    Aspect(AspectId),
}

thread_local! {
    static STACK: RefCell<Vec<Provenance>> = const { RefCell::new(Vec::new()) };
    // The join points currently executing on this thread, outermost first —
    // the dynamic extent AspectJ's `cflow` quantifies over.
    static CFLOW: RefCell<Vec<Signature>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one frame of the control-flow stack.
pub struct CflowGuard {
    _priv: (),
}

impl Drop for CflowGuard {
    fn drop(&mut self) {
        CFLOW.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Push a join point onto the control-flow stack (runtime use).
pub fn push_cflow(sig: Signature) -> CflowGuard {
    CFLOW.with(|s| s.borrow_mut().push(sig));
    CflowGuard { _priv: () }
}

/// Is the current thread executing within the dynamic extent of a join point
/// matching `pattern` — AspectJ's `cflow(call(pattern))`?
///
/// Pointcut *matching* is cached per static signature, so `cflow` cannot be a
/// static designator here; use it as the guard of
/// [`AspectBuilder::around_if`](crate::aspect::AspectBuilder::around_if),
/// which is evaluated per join point.
pub fn in_cflow_of(pattern: &MethodPattern) -> bool {
    CFLOW.with(|s| s.borrow().iter().any(|sig| pattern.matches(sig)))
}

/// Snapshot of the control-flow stack (crossing async boundaries).
pub fn cflow_snapshot() -> Vec<Signature> {
    CFLOW.with(|s| s.borrow().clone())
}

/// Install a captured control-flow stack beneath the current one; frames pop
/// when the guard drops.
pub fn install_cflow(stack: &[Signature]) -> Vec<CflowGuard> {
    stack.iter().map(|sig| push_cflow(*sig)).collect()
}

/// The provenance of the code currently executing on this thread.
///
/// Defaults to [`Provenance::Core`] when nothing has been pushed — top-level
/// application code *is* core functionality.
pub fn current() -> Provenance {
    STACK.with(|s| s.borrow().last().copied().unwrap_or(Provenance::Core))
}

/// Depth of the provenance stack (used in tests and diagnostics).
pub fn depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// RAII guard that restores the previous provenance when dropped.
pub struct ProvenanceGuard {
    pushed: bool,
}

impl Drop for ProvenanceGuard {
    fn drop(&mut self) {
        if self.pushed {
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Push a provenance frame for the duration of the returned guard.
///
/// Pushing `Core` while the current provenance is already `Core` (including
/// onto the empty stack, whose default is `Core`) is elided: `current()`
/// cannot observe the difference, and base-method dispatch pushes exactly
/// this frame on every unwoven call.
pub fn push(p: Provenance) -> ProvenanceGuard {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        if p == Provenance::Core && s.last().is_none_or(|&top| top == Provenance::Core) {
            ProvenanceGuard { pushed: false }
        } else {
            s.push(p);
            ProvenanceGuard { pushed: true }
        }
    })
}

/// Snapshot of the per-thread weaving context, used by
/// [`Detached`](crate::invocation::Detached) to re-establish provenance (and by
/// the trace recorder to re-establish the causal parent) on another thread.
#[derive(Debug, Clone)]
pub struct CurrentContext {
    /// Provenance at capture time.
    pub provenance: Provenance,
    /// Trace task identifier at capture time, if recording.
    pub task: Option<crate::trace::TaskId>,
    /// Data-dependency marker at capture time (see
    /// [`trace::note_completion`](crate::trace::note_completion)).
    pub data_dep: Option<(u64, crate::trace::TaskId)>,
    /// Control-flow stack at capture time (so `cflow` guards keep working
    /// across asynchronous boundaries).
    pub cflow: Vec<Signature>,
}

impl CurrentContext {
    /// Capture the current thread's weaving context.
    pub fn capture() -> Self {
        CurrentContext {
            provenance: current(),
            task: crate::trace::current_task(),
            data_dep: crate::trace::data_dep_raw(),
            cflow: cflow_snapshot(),
        }
    }

    /// Re-establish the captured context on the current thread for the
    /// lifetime of the returned guards.
    pub fn install(
        &self,
    ) -> (ProvenanceGuard, crate::trace::TaskGuard, crate::trace::DataDepGuard, Vec<CflowGuard>)
    {
        (
            push(self.provenance),
            crate::trace::push_task(self.task),
            crate::trace::push_data_dep(self.data_dep),
            install_cflow(&self.cflow),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_core() {
        assert_eq!(current(), Provenance::Core);
        assert_eq!(depth(), 0);
    }

    #[test]
    fn push_pop_nesting() {
        assert_eq!(current(), Provenance::Core);
        {
            let _g1 = push(Provenance::Aspect(AspectId::from_raw(1)));
            assert_eq!(current(), Provenance::Aspect(AspectId::from_raw(1)));
            {
                let _g2 = push(Provenance::Core);
                assert_eq!(current(), Provenance::Core);
                assert_eq!(depth(), 2);
            }
            assert_eq!(current(), Provenance::Aspect(AspectId::from_raw(1)));
        }
        assert_eq!(current(), Provenance::Core);
        assert_eq!(depth(), 0);
    }

    #[test]
    fn contexts_are_per_thread() {
        let _g = push(Provenance::Aspect(AspectId::from_raw(9)));
        let other = std::thread::spawn(current).join().unwrap();
        assert_eq!(other, Provenance::Core);
        assert_eq!(current(), Provenance::Aspect(AspectId::from_raw(9)));
    }

    #[test]
    fn capture_and_install_transfers_provenance() {
        let snap = {
            let _g = push(Provenance::Aspect(AspectId::from_raw(3)));
            CurrentContext::capture()
        };
        assert_eq!(current(), Provenance::Core);
        let _guards = snap.install();
        assert_eq!(current(), Provenance::Aspect(AspectId::from_raw(3)));
    }
}
