//! The logging aspect of the paper's Figure 3, grown into a debugging tool.
//!
//! ```java
//! public aspect Logging {
//!     void around(void Point.move*()) {
//!         System.out.println("Move called");
//!         proceed();
//!     }
//! }
//! ```
//!
//! [`logging_aspect`] records every matched join point — signature, target,
//! call-site provenance, wall time, success — into a shared [`CallLog`],
//! which is exactly the "understand the overall parallelism structure"
//! instrument the paper motivates: plug it under any concern stack, run,
//! and read off who called what, from where, how often and for how long.
//!
//! The log is a **bounded ring**: long-running programs keep the most recent
//! [`capacity`](CallLog::capacity) records, older ones are dropped (and
//! counted), and the aggregate timing survives unbounded in a
//! [`Histogram`] — so leaving the aspect plugged for hours costs a fixed
//! amount of memory.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use weavepar_weave::prelude::*;
use weavepar_weave::{Histogram, ObjId};

/// Retained records when none is specified ([`CallLog::new`]).
pub const DEFAULT_CALL_LOG_CAPACITY: usize = 4096;

/// One logged join point.
#[derive(Debug, Clone)]
pub struct CallRecord {
    /// Signature of the join point.
    pub signature: Signature,
    /// Target object, when present.
    pub target: Option<ObjId>,
    /// Where the call was issued from (core or aspect advice).
    pub caller: Provenance,
    /// Wall time of the remainder of the chain plus base execution.
    pub elapsed: Duration,
    /// Did the event complete without error?
    pub ok: bool,
}

/// A shared, thread-safe, **bounded** log of [`CallRecord`]s.
///
/// The detailed records live in a ring of fixed capacity: once full, each
/// new record evicts the oldest and bumps [`dropped`](CallLog::dropped).
/// Aggregates ([`total_elapsed`], [`latency`]) are fed by every record ever
/// logged, dropped or not, via an embedded latency [`Histogram`].
///
/// [`total_elapsed`]: CallLog::total_elapsed
/// [`latency`]: CallLog::latency
#[derive(Clone)]
pub struct CallLog {
    ring: Arc<Mutex<Ring>>,
    dropped: Arc<AtomicU64>,
    latency: Histogram,
}

struct Ring {
    records: VecDeque<CallRecord>,
    capacity: usize,
}

impl Default for CallLog {
    fn default() -> Self {
        Self::new()
    }
}

impl CallLog {
    /// An empty log retaining [`DEFAULT_CALL_LOG_CAPACITY`] records.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CALL_LOG_CAPACITY)
    }

    /// An empty log retaining at most `capacity` records (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        CallLog {
            ring: Arc::new(Mutex::new(Ring {
                records: VecDeque::with_capacity(capacity),
                capacity,
            })),
            dropped: Arc::new(AtomicU64::new(0)),
            latency: Histogram::new(),
        }
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.ring.lock().capacity
    }

    /// Append one record, evicting the oldest when the ring is full.
    pub fn push(&self, record: CallRecord) {
        self.latency.record(record.elapsed);
        let mut ring = self.ring.lock();
        if ring.records.len() == ring.capacity {
            ring.records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.records.push_back(record);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted from the ring since creation (or the last
    /// [`clear`](CallLog::clear)).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the retained records, in completion order.
    pub fn records(&self) -> Vec<CallRecord> {
        self.ring.lock().records.iter().cloned().collect()
    }

    /// Retained records for one method name.
    pub fn for_method(&self, method: &str) -> Vec<CallRecord> {
        self.ring.lock().records.iter().filter(|r| r.signature.method == method).cloned().collect()
    }

    /// How many retained calls were issued from core vs from aspect advice —
    /// the split/forward structure of a partition becomes directly visible.
    pub fn provenance_split(&self) -> (usize, usize) {
        let ring = self.ring.lock();
        let core = ring.records.iter().filter(|r| r.caller == Provenance::Core).count();
        (core, ring.records.len() - core)
    }

    /// Total logged wall time — over **every** record ever pushed, including
    /// ones the ring has since evicted (read from the latency histogram).
    pub fn total_elapsed(&self) -> Duration {
        Duration::from_nanos(self.latency.sum_ns())
    }

    /// The latency histogram fed by every pushed record; survives ring
    /// eviction, so long runs keep full timing distributions.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Drop all records and reset the dropped counter and the histogram.
    pub fn clear(&self) {
        self.ring.lock().records.clear();
        self.dropped.store(0, Ordering::Relaxed);
        self.latency.reset();
    }

    /// A compact per-signature summary over the retained records:
    /// `(signature, calls, total time)`.
    pub fn summary(&self) -> Vec<(String, usize, Duration)> {
        let ring = self.ring.lock();
        let mut rows: Vec<(String, usize, Duration)> = Vec::new();
        for r in ring.records.iter() {
            let key = r.signature.to_string();
            match rows.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, n, d)) => {
                    *n += 1;
                    *d += r.elapsed;
                }
                None => rows.push((key, 1, r.elapsed)),
            }
        }
        rows
    }
}

impl std::fmt::Debug for CallLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallLog")
            .field("records", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Build the logging aspect: every matched join point proceeds normally and
/// is recorded into `log`. Defaults to a very low precedence (−1000) so it
/// wraps the entire concern stack and sees calls as the caller issued them.
pub fn logging_aspect(name: impl Into<String>, pointcut: Pointcut, log: CallLog) -> Aspect {
    Aspect::named(name)
        .precedence(-1000)
        .around(pointcut, move |inv: &mut Invocation| {
            let signature = inv.signature();
            let target = inv.target();
            let caller = inv.caller();
            let start = Instant::now();
            let result = inv.proceed();
            log.push(CallRecord {
                signature,
                target,
                caller,
                elapsed: start.elapsed(),
                ok: result.is_ok(),
            });
            result
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavepar_weave::args;

    struct Point {
        x: i64,
    }

    weavepar_weave::weaveable! {
        class Point as PointProxy {
            fn new() -> Self { Point { x: 0 } }
            fn move_x(&mut self, d: i64) { self.x += d; }
            fn move_y(&mut self, _d: i64) {}
            fn get(&mut self) -> i64 { self.x }
        }
    }

    #[test]
    fn figure3_logging() {
        let weaver = Weaver::new();
        let log = CallLog::new();
        weaver.plug(logging_aspect("Logging", Pointcut::call("Point.move*"), log.clone()));
        let p = PointProxy::construct(&weaver).unwrap();
        p.move_x(10).unwrap();
        p.move_y(5).unwrap();
        p.get().unwrap(); // not matched
        assert_eq!(log.len(), 2);
        let records = log.records();
        assert_eq!(records[0].signature.to_string(), "Point.move_x");
        assert_eq!(records[1].signature.to_string(), "Point.move_y");
        assert!(records.iter().all(|r| r.ok && r.caller == Provenance::Core));
        assert_eq!(log.for_method("move_x").len(), 1);
    }

    #[test]
    fn provenance_split_reveals_partition_structure() {
        // An aspect that fans one call out into three: the log shows 1 core
        // call and 3 aspect calls.
        let weaver = Weaver::new();
        let log = CallLog::new();
        weaver.plug(logging_aspect("Logging", Pointcut::call("Point.move_x"), log.clone()));
        weaver.plug(
            Aspect::named("FanOut")
                .around(
                    Pointcut::call("Point.move_x").and(Pointcut::within_core()),
                    |inv: &mut Invocation| {
                        let target = inv.target_required()?;
                        for _ in 0..3 {
                            inv.weaver().invoke_call(target, "Point", "move_x", args![1i64])?;
                        }
                        Ok(weavepar_weave::ret!())
                    },
                )
                .build(),
        );
        let p = PointProxy::construct(&weaver).unwrap();
        p.move_x(99).unwrap();
        let (core, aspect) = log.provenance_split();
        assert_eq!((core, aspect), (1, 3));
        assert_eq!(p.get().unwrap(), 3, "the original 99 was replaced by 3×1");
    }

    #[test]
    fn summary_aggregates_per_signature() {
        let weaver = Weaver::new();
        let log = CallLog::new();
        weaver.plug(logging_aspect("Logging", Pointcut::call("Point.*"), log.clone()));
        let p = PointProxy::construct(&weaver).unwrap();
        p.move_x(1).unwrap();
        p.move_x(2).unwrap();
        p.get().unwrap();
        let summary = log.summary();
        assert_eq!(summary.len(), 2);
        let move_row = summary.iter().find(|(k, _, _)| k == "Point.move_x").unwrap();
        assert_eq!(move_row.1, 2);
        assert!(log.total_elapsed() >= move_row.2);
    }

    #[test]
    fn failures_are_logged_as_not_ok() {
        let weaver = Weaver::new();
        let log = CallLog::new();
        weaver.plug(logging_aspect("Logging", Pointcut::call("Point.move_x"), log.clone()));
        let p = PointProxy::construct(&weaver).unwrap();
        // Wrong argument type: base dispatch fails.
        assert!(p.handle().call("move_x", args!["nope".to_string()]).is_err());
        let records = log.records();
        assert_eq!(records.len(), 1);
        assert!(!records[0].ok);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let weaver = Weaver::new();
        let log = CallLog::with_capacity(2);
        weaver.plug(logging_aspect("Logging", Pointcut::call("Point.move_x"), log.clone()));
        let p = PointProxy::construct(&weaver).unwrap();
        for d in 0..5 {
            p.move_x(d).unwrap();
        }
        // Only the 2 most recent records survive; the 3 evicted ones are
        // counted, and the histogram still saw all 5.
        assert_eq!(log.len(), 2);
        assert_eq!(log.capacity(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.latency().count(), 5);
        assert!(log.total_elapsed() > Duration::ZERO);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.latency().count(), 0);
    }
}
