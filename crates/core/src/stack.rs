//! The concern stack: the methodology's plug / unplug / swap lifecycle.
//!
//! The paper's development process is incremental: start from the sequential
//! core, plug a partition module, then a concurrency module, then a
//! distribution module, then optimisations — and unplug any of them at any
//! time for debugging, or swap one strategy for another (pipeline ⇄ farm,
//! RMI ⇄ MPP). [`ConcernStack`] tracks which aspects are plugged under which
//! of the four concern categories on a single weaver, making those moves
//! one-liners (and making the paper's Table 1 combinations enumerable — see
//! the `weavepar-bench` harness).

use std::collections::HashMap;

use parking_lot::Mutex;

use weavepar_weave::{Aspect, PluggedAspect, Weaver};

/// The paper's four parallelisation-concern categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Concern {
    /// Functional or/and data partition (§4.1).
    Partition,
    /// Concurrency: asynchronous invocation + synchronisation (§4.2).
    Concurrency,
    /// Distribution over a middleware (§4.3).
    Distribution,
    /// Platform optimisations (§4.4).
    Optimisation,
}

impl Concern {
    /// All categories, in weaving-relevance order.
    pub const ALL: [Concern; 4] =
        [Concern::Partition, Concern::Concurrency, Concern::Distribution, Concern::Optimisation];
}

impl std::fmt::Display for Concern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Concern::Partition => "partition",
            Concern::Concurrency => "concurrency",
            Concern::Distribution => "distribution",
            Concern::Optimisation => "optimisation",
        };
        write!(f, "{s}")
    }
}

/// A weaver plus the bookkeeping of which aspects realise which concern.
pub struct ConcernStack {
    weaver: Weaver,
    plugged: Mutex<HashMap<Concern, Vec<PluggedAspect>>>,
}

impl ConcernStack {
    /// A stack over a fresh weaver.
    pub fn new() -> Self {
        Self::over(Weaver::new())
    }

    /// A stack over an existing weaver.
    pub fn over(weaver: Weaver) -> Self {
        ConcernStack { weaver, plugged: Mutex::new(HashMap::new()) }
    }

    /// The underlying weaver (construct proxies against this).
    pub fn weaver(&self) -> &Weaver {
        &self.weaver
    }

    /// Plug one aspect under a concern category.
    pub fn plug(&self, concern: Concern, aspect: Aspect) -> PluggedAspect {
        let token = self.weaver.plug(aspect);
        self.plugged.lock().entry(concern).or_default().push(token.clone());
        token
    }

    /// Plug several aspects under a concern category (e.g. the two-aspect
    /// concurrency module).
    pub fn plug_all(&self, concern: Concern, aspects: impl IntoIterator<Item = Aspect>) {
        for aspect in aspects {
            self.plug(concern, aspect);
        }
    }

    /// Unplug everything under a concern category. Returns true when
    /// anything was plugged.
    pub fn unplug(&self, concern: Concern) -> bool {
        let tokens = self.plugged.lock().remove(&concern).unwrap_or_default();
        let mut any = false;
        for token in tokens {
            any |= self.weaver.unplug(&token);
        }
        any
    }

    /// Replace the aspects under a concern category — the paper's
    /// "exchanging a pipeline by a farm partition".
    pub fn swap(&self, concern: Concern, aspects: impl IntoIterator<Item = Aspect>) {
        self.unplug(concern);
        self.plug_all(concern, aspects);
    }

    /// Temporarily disable a concern without unplugging (debugging aid).
    pub fn set_enabled(&self, concern: Concern, enabled: bool) -> bool {
        let plugged = self.plugged.lock();
        let Some(tokens) = plugged.get(&concern) else {
            return false;
        };
        let mut any = false;
        for token in tokens {
            any |= self.weaver.set_enabled(token, enabled);
        }
        any
    }

    /// Names of the aspects plugged under a concern.
    pub fn plugged_names(&self, concern: Concern) -> Vec<String> {
        self.plugged
            .lock()
            .get(&concern)
            .map(|v| v.iter().map(|t| t.name().to_string()).collect())
            .unwrap_or_default()
    }

    /// Is anything plugged under the concern?
    pub fn is_plugged(&self, concern: Concern) -> bool {
        self.plugged.lock().get(&concern).is_some_and(|v| !v.is_empty())
    }

    /// Human-readable configuration summary, e.g. `"partition=[Farm] concurrency=[] ..."`.
    pub fn describe(&self) -> String {
        Concern::ALL
            .iter()
            .map(|c| format!("{c}={:?}", self.plugged_names(*c)))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl Default for ConcernStack {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ConcernStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConcernStack({})", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use weavepar_weave::{Invocation, Pointcut};

    struct Probe;

    weavepar_weave::weaveable! {
        class Probe as ProbeProxy {
            fn new() -> Self { Probe }
            fn ping(&mut self) -> u64 { 1 }
        }
    }

    fn counting_aspect(name: &str, hits: Arc<AtomicU64>) -> Aspect {
        Aspect::named(name)
            .around(Pointcut::call("Probe.ping"), move |inv: &mut Invocation| {
                hits.fetch_add(1, Ordering::Relaxed);
                inv.proceed()
            })
            .build()
    }

    #[test]
    fn plug_and_unplug_by_concern() {
        let stack = ConcernStack::new();
        let hits = Arc::new(AtomicU64::new(0));
        stack.plug(Concern::Partition, counting_aspect("Pipeline", hits.clone()));
        assert!(stack.is_plugged(Concern::Partition));
        assert!(!stack.is_plugged(Concern::Concurrency));

        let p = ProbeProxy::construct(stack.weaver()).unwrap();
        p.ping().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);

        assert!(stack.unplug(Concern::Partition));
        assert!(!stack.unplug(Concern::Partition));
        p.ping().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn swap_exchanges_strategies() {
        let stack = ConcernStack::new();
        let pipe_hits = Arc::new(AtomicU64::new(0));
        let farm_hits = Arc::new(AtomicU64::new(0));
        stack.plug(Concern::Partition, counting_aspect("Pipeline", pipe_hits.clone()));
        let p = ProbeProxy::construct(stack.weaver()).unwrap();
        p.ping().unwrap();

        stack.swap(Concern::Partition, [counting_aspect("Farm", farm_hits.clone())]);
        assert_eq!(stack.plugged_names(Concern::Partition), vec!["Farm".to_string()]);
        p.ping().unwrap();
        assert_eq!(pipe_hits.load(Ordering::Relaxed), 1);
        assert_eq!(farm_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn enable_disable_concern() {
        let stack = ConcernStack::new();
        let hits = Arc::new(AtomicU64::new(0));
        stack.plug(Concern::Concurrency, counting_aspect("Async", hits.clone()));
        let p = ProbeProxy::construct(stack.weaver()).unwrap();
        assert!(stack.set_enabled(Concern::Concurrency, false));
        p.ping().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        assert!(stack.set_enabled(Concern::Concurrency, true));
        p.ping().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert!(!stack.set_enabled(Concern::Distribution, true));
    }

    #[test]
    fn describe_lists_all_concerns() {
        let stack = ConcernStack::new();
        stack.plug(Concern::Optimisation, counting_aspect("Cache", Arc::new(AtomicU64::new(0))));
        let d = stack.describe();
        assert!(d.contains("partition=[]"));
        assert!(d.contains("optimisation=[\"Cache\"]"));
        assert!(format!("{stack:?}").contains("ConcernStack"));
    }

    #[test]
    fn plug_all_plugs_modules() {
        let stack = ConcernStack::new();
        let h = Arc::new(AtomicU64::new(0));
        stack.plug_all(
            Concern::Concurrency,
            [counting_aspect("A", h.clone()), counting_aspect("B", h.clone())],
        );
        assert_eq!(stack.plugged_names(Concern::Concurrency).len(), 2);
        let p = ProbeProxy::construct(stack.weaver()).unwrap();
        p.ping().unwrap();
        assert_eq!(h.load(Ordering::Relaxed), 2);
        stack.unplug(Concern::Concurrency);
        assert!(!stack.is_plugged(Concern::Concurrency));
    }
}
