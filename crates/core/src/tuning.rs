//! Adaptive grain-size autotuning as a pluggable optimisation aspect.
//!
//! The paper's experiments (§6) fix each skeleton's granularity — packs per
//! farm call, batch sizes, packing thresholds — by hand, per machine. This
//! module closes that loop at run time: skeletons and aspects register
//! **tunables** (live `AtomicU32` cells such as a farm's pack count, the
//! executor's batch grain, the message packer's flush thresholds, or the
//! fabric's reply backend), completed calls report **observations** into
//! lock-free sharded accumulators, and a feedback **controller** adjusts one
//! tunable at a time toward the throughput gradient.
//!
//! The controller is a seeded coordinate-descent hill climber with
//! hysteresis: every epoch (a fixed number of observations) it scores the
//! workload as completions per unit of service time, compares against the
//! previous epoch, and either keeps climbing the active coordinate, or
//! reverts the probe, flips direction and rotates to the next coordinate.
//! All decisions are a pure function of `(seed, observation sequence)` —
//! epochs are triggered by observation *count*, never wall-clock — so a
//! trajectory replays exactly under a fixed seed.
//!
//! In keeping with the paper's methodology the whole mechanism is exposed as
//! a plain aspect, [`autotune_aspect`], at `OPTIMISATION` precedence: plug
//! it to start adapting, unplug it to stop. **Unplug semantics** (documented
//! choice): tunables keep their last adapted values — the tuned
//! configuration is the artefact the controller produced — and
//! [`Autotuner::reset_all`] restores every registered cell to its default.
//! The optional background controller thread holds only a [`Weak`] reference
//! and stops via [`Autotuner::stop`] or when the tuner is dropped, so no
//! thread outlives the tuner.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;

/// How a tunable moves between values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Additive steps: `v ± k` (k ≥ 1).
    Add(u32),
    /// Geometric steps: `v * k` / `v / k` (k ≥ 2) — the natural scale for
    /// pack counts and batch sizes, where interesting values span decades.
    Mul(u32),
}

impl Step {
    fn up(self, v: u32) -> u32 {
        match self {
            Step::Add(k) => v.saturating_add(k.max(1)),
            Step::Mul(k) => v.max(1).saturating_mul(k.max(2)),
        }
    }

    fn down(self, v: u32) -> u32 {
        match self {
            Step::Add(k) => v.saturating_sub(k.max(1)),
            Step::Mul(k) => v / k.max(2),
        }
    }
}

/// One adjustable parameter: a named, range-clamped `AtomicU32` cell.
///
/// The cell can be owned by the tunable or **bound** to one that already
/// exists elsewhere — the message packer's `max_calls` cell, the pool's
/// batch-grain cell, the fabric's reply-backend selector — so the consumer
/// keeps reading its own atomic and never learns a tuner exists.
#[derive(Clone)]
pub struct Tunable {
    name: &'static str,
    cell: Arc<AtomicU32>,
    default: u32,
    min: u32,
    max: u32,
    step: Step,
}

impl Tunable {
    /// A tunable owning a fresh cell initialised to `default`.
    pub fn new(name: &'static str, default: u32, min: u32, max: u32, step: Step) -> Self {
        Self::bound(name, Arc::new(AtomicU32::new(default)), default, min, max, step)
    }

    /// A tunable driving an existing cell (the cell is set to `default`).
    pub fn bound(
        name: &'static str,
        cell: Arc<AtomicU32>,
        default: u32,
        min: u32,
        max: u32,
        step: Step,
    ) -> Self {
        let (min, max) = (min.min(max), max.max(min));
        let default = default.clamp(min, max);
        cell.store(default, Ordering::Relaxed);
        Tunable { name, cell, default, min, max, step }
    }

    /// The tunable's name (diagnostics and trajectories).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The live cell, for handing to the consuming subsystem.
    pub fn cell(&self) -> Arc<AtomicU32> {
        self.cell.clone()
    }

    /// Current value.
    pub fn get(&self) -> u32 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Set (clamped to the tunable's range).
    pub fn set(&self, v: u32) {
        self.cell.store(v.clamp(self.min, self.max), Ordering::Relaxed);
    }

    /// Restore the default value.
    pub fn reset(&self) {
        self.cell.store(self.default, Ordering::Relaxed);
    }

    /// The default value.
    pub fn default_value(&self) -> u32 {
        self.default
    }

    fn moved(&self, v: u32, dir: i8) -> u32 {
        let next = if dir > 0 { self.step.up(v) } else { self.step.down(v) };
        next.clamp(self.min, self.max)
    }
}

impl std::fmt::Debug for Tunable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tunable({}={} in {}..={}, {:?})",
            self.name,
            self.get(),
            self.min,
            self.max,
            self.step
        )
    }
}

/// Controller configuration.
#[derive(Clone, Copy, Debug)]
pub struct TuneConfig {
    /// Observations per controller epoch (decision cadence).
    pub epoch_calls: u32,
    /// Seed for the initial probe directions; the whole trajectory is a pure
    /// function of `(seed, observations)`.
    pub seed: u64,
    /// Relative improvement a probe must show to be accepted (e.g. `0.05` =
    /// 5%). The guard against chasing measurement noise.
    pub hysteresis: f64,
    /// Epochs to discard after each move before judging it, letting queues
    /// drain into the new regime.
    pub settle: u32,
    /// Epochs to sit at the incumbent configuration after a rejected probe
    /// before probing again. Larger values spend more of the workload at
    /// the best-known configuration (tighter steady-state medians) at the
    /// cost of slower re-adaptation when the workload shifts.
    pub dwell: u32,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig { epoch_calls: 64, seed: 42, hysteresis: 0.05, settle: 0, dwell: 1 }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const SHARDS: usize = 8;

/// One observation accumulator shard: plain `fetch_add` counters, no locks
/// on the completion path.
#[derive(Default)]
struct Shard {
    count: AtomicU64,
    service_ns: AtomicU64,
    queue: AtomicU64,
    bytes: AtomicU64,
}

fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static MINE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    MINE.with(|m| {
        let mut idx = m.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            m.set(idx);
        }
        idx
    })
}

/// Totals drained at one epoch boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochStats {
    /// Completions observed this epoch.
    pub count: u64,
    /// Summed service time, nanoseconds.
    pub service_ns: u64,
    /// Summed reported queue depths.
    pub queue: u64,
    /// Summed reported payload bytes.
    pub bytes: u64,
    /// Throughput proxy the controller scored: completions per service-µs.
    pub score: f64,
}

/// Hill-climb phase bookkeeping, all under one mutex the observation hot
/// path only ever `try_lock`s.
struct CtlState {
    dirs: Vec<i8>,
    coord: usize,
    baseline: Option<f64>,
    pre_move: Option<(usize, u32)>,
    settle_left: u32,
    idle_left: u32,
    rng: u64,
    last_epoch: EpochStats,
    trajectory: Vec<(&'static str, u32)>,
}

const TRAJECTORY_CAP: usize = 4096;

/// The feedback controller: registered tunables + sharded observation
/// accumulators + the seeded hill climber.
pub struct Autotuner {
    config: TuneConfig,
    shards: [Shard; SHARDS],
    pending: AtomicU64,
    /// In their own `Arc`s so a metrics registry can bind them as live
    /// counters without the controller updating anything twice.
    epochs: Arc<AtomicU64>,
    accepted: Arc<AtomicU64>,
    tunables: Mutex<Vec<Tunable>>,
    state: Mutex<CtlState>,
    stop: Arc<AtomicBool>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Autotuner {
    /// A controller with no tunables yet (register them with
    /// [`Autotuner::register`]).
    pub fn new(config: TuneConfig) -> Arc<Self> {
        Arc::new(Autotuner {
            config,
            shards: Default::default(),
            pending: AtomicU64::new(0),
            epochs: Arc::new(AtomicU64::new(0)),
            accepted: Arc::new(AtomicU64::new(0)),
            tunables: Mutex::new(Vec::new()),
            state: Mutex::new(CtlState {
                dirs: Vec::new(),
                coord: 0,
                baseline: None,
                pre_move: None,
                settle_left: 0,
                idle_left: 0,
                rng: config.seed,
                last_epoch: EpochStats::default(),
                trajectory: Vec::new(),
            }),
            stop: Arc::new(AtomicBool::new(false)),
            thread: Mutex::new(None),
        })
    }

    /// Register a tunable; its initial probe direction comes from the seed.
    /// Returns the tunable back for convenient chaining.
    pub fn register(&self, tunable: Tunable) -> Tunable {
        let mut st = self.state.lock();
        let dir = if splitmix(&mut st.rng) & 1 == 0 { 1 } else { -1 };
        st.dirs.push(dir);
        self.tunables.lock().push(tunable.clone());
        tunable
    }

    /// Report one completed call: its service time plus optional queue-depth
    /// and payload-byte context. Lock-free except at an epoch boundary,
    /// where one caller (never more) takes the controller mutex.
    pub fn observe(&self, service: Duration, queue_depth: u64, bytes: u64) {
        let shard = &self.shards[shard_index()];
        shard.count.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(service.as_nanos()).unwrap_or(u64::MAX);
        shard.service_ns.fetch_add(ns, Ordering::Relaxed);
        shard.queue.fetch_add(queue_depth, Ordering::Relaxed);
        shard.bytes.fetch_add(bytes, Ordering::Relaxed);
        if self.pending.fetch_add(1, Ordering::Relaxed) + 1 >= u64::from(self.config.epoch_calls) {
            self.maybe_tick();
        }
    }

    fn maybe_tick(&self) {
        // try_lock: if another thread is mid-decision, this boundary is its.
        if let Some(mut st) = self.state.try_lock() {
            if self.pending.load(Ordering::Relaxed) >= u64::from(self.config.epoch_calls) {
                self.pending.store(0, Ordering::Relaxed);
                self.tick_locked(&mut st);
            }
        }
    }

    /// Force an epoch decision now if any observations are pending — what
    /// the background controller thread calls on its period, and what tests
    /// call to drive the climber deterministically.
    pub fn force_tick(&self) {
        let mut st = self.state.lock();
        if self.pending.swap(0, Ordering::Relaxed) > 0 {
            self.tick_locked(&mut st);
        }
    }

    fn tick_locked(&self, st: &mut CtlState) {
        let mut totals = EpochStats::default();
        for shard in &self.shards {
            totals.count += shard.count.swap(0, Ordering::Relaxed);
            totals.service_ns += shard.service_ns.swap(0, Ordering::Relaxed);
            totals.queue += shard.queue.swap(0, Ordering::Relaxed);
            totals.bytes += shard.bytes.swap(0, Ordering::Relaxed);
        }
        if totals.count == 0 {
            return;
        }
        // Completions per service-microsecond: invariant to epoch length,
        // monotone in throughput for a fixed offered load.
        totals.score = totals.count as f64 * 1e3 / totals.service_ns.max(1) as f64;
        st.last_epoch = totals;
        self.epochs.fetch_add(1, Ordering::Relaxed);
        if st.settle_left > 0 {
            st.settle_left -= 1;
            return;
        }
        let tunables = self.tunables.lock();
        if tunables.is_empty() {
            return;
        }
        let score = totals.score;
        match st.pre_move {
            None => {
                // Incumbent epoch: refresh the reference score. Blending
                // lets the reference drift with a shifting workload instead
                // of pinning to one lucky epoch.
                st.baseline = Some(match st.baseline {
                    None => score,
                    Some(base) => 0.5 * base + 0.5 * score,
                });
                if st.idle_left > 0 {
                    st.idle_left -= 1;
                    return;
                }
                self.apply_move(st, &tunables);
            }
            Some((c, prev)) => {
                let base = st.baseline.unwrap_or(score);
                if score > base * (1.0 + self.config.hysteresis) {
                    // Probe won: keep the move and keep climbing the same
                    // coordinate in the same direction, immediately.
                    self.accepted.fetch_add(1, Ordering::Relaxed);
                    st.baseline = Some(score);
                    st.pre_move = None;
                    self.apply_move(st, &tunables);
                } else {
                    // Probe lost: revert it, flip the direction, rotate to
                    // the next coordinate, and dwell at the incumbent so
                    // steady state spends most epochs at the best-known
                    // configuration.
                    tunables[c].set(prev);
                    Self::record(st, tunables[c].name(), prev);
                    st.dirs[c] = -st.dirs[c];
                    st.coord = (st.coord + 1) % tunables.len();
                    st.pre_move = None;
                    st.idle_left = self.config.dwell;
                }
            }
        }
    }

    fn apply_move(&self, st: &mut CtlState, tunables: &[Tunable]) {
        let c = st.coord;
        let t = &tunables[c];
        let cur = t.get();
        let mut next = t.moved(cur, st.dirs[c]);
        if next == cur {
            // Pinned at a bound: flip and try the other way once.
            st.dirs[c] = -st.dirs[c];
            next = t.moved(cur, st.dirs[c]);
        }
        if next == cur {
            // Frozen coordinate (min == max): skip it this epoch.
            st.coord = (st.coord + 1) % tunables.len();
            st.pre_move = None;
            return;
        }
        st.pre_move = Some((c, cur));
        t.set(next);
        Self::record(st, t.name(), next);
        st.settle_left = self.config.settle;
    }

    fn record(st: &mut CtlState, name: &'static str, value: u32) {
        if st.trajectory.len() < TRAJECTORY_CAP {
            st.trajectory.push((name, value));
        }
    }

    /// Every value the controller has applied, in order (capped; used by the
    /// determinism tests and diagnostics).
    pub fn trajectory(&self) -> Vec<(&'static str, u32)> {
        self.state.lock().trajectory.clone()
    }

    /// Decisions taken so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Probe moves the controller has accepted (kept) so far.
    pub fn moves_accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Bind the controller's live state into `registry` under `prefix`:
    /// every registered tunable's cell as a `{prefix}.cell.<name>` gauge,
    /// plus `{prefix}.epochs` and `{prefix}.moves_accepted` counters. The
    /// registry reads the same atomics the controller drives, so installing
    /// metrics adds nothing to the observation hot path. Tunables registered
    /// *after* this call are not bound — install metrics last, or call again.
    pub fn install_metrics(&self, registry: &weavepar_weave::MetricsRegistry, prefix: &str) {
        registry.bind_counter(&format!("{prefix}.epochs"), self.epochs.clone());
        registry.bind_counter(&format!("{prefix}.moves_accepted"), self.accepted.clone());
        for t in self.tunables.lock().iter() {
            registry.bind_gauge_u32(&format!("{prefix}.cell.{}", t.name()), t.cell());
        }
    }

    /// The totals and score of the most recent epoch.
    pub fn last_epoch(&self) -> EpochStats {
        self.state.lock().last_epoch
    }

    /// Snapshot of the registered tunables.
    pub fn tunables(&self) -> Vec<Tunable> {
        self.tunables.lock().clone()
    }

    /// Restore every registered tunable to its default value.
    pub fn reset_all(&self) {
        let mut st = self.state.lock();
        st.baseline = None;
        st.pre_move = None;
        st.settle_left = 0;
        st.idle_left = 0;
        for t in self.tunables.lock().iter() {
            t.reset();
        }
    }

    /// Start the background controller: every `period` it forces an epoch
    /// decision if observations are pending. Idempotent while running. The
    /// thread holds only a [`Weak`] reference, so dropping the tuner (or
    /// calling [`Autotuner::stop`]) ends it.
    pub fn start(self: &Arc<Self>, period: Duration) {
        let mut slot = self.thread.lock();
        if slot.is_some() {
            return;
        }
        self.stop.store(false, Ordering::Relaxed);
        let stop = self.stop.clone();
        let weak: Weak<Autotuner> = Arc::downgrade(self);
        let tick = period.min(Duration::from_millis(20)).max(Duration::from_millis(1));
        *slot = Some(
            std::thread::Builder::new()
                .name("weavepar-autotune".into())
                .spawn(move || {
                    let mut since = Duration::ZERO;
                    loop {
                        std::thread::sleep(tick);
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        since += tick;
                        if since >= period {
                            since = Duration::ZERO;
                            match weak.upgrade() {
                                Some(tuner) => tuner.force_tick(),
                                None => return,
                            }
                        }
                    }
                })
                .expect("spawn autotune controller"),
        );
    }

    /// Stop and join the background controller, if running.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// True while the background controller thread is alive.
    pub fn is_running(&self) -> bool {
        self.thread.lock().is_some()
    }
}

impl Drop for Autotuner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.get_mut().take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Autotuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Autotuner(epochs={}, tunables={:?})",
            self.epochs(),
            self.tunables
                .lock()
                .iter()
                .map(|t| format!("{}={}", t.name(), t.get()))
                .collect::<Vec<_>>()
        )
    }
}

/// The self-tuning optimisation aspect: matched calls are timed around
/// `proceed` and reported to the controller. Plug it over the same pointcut
/// the skeleton splits (the farmed method, the executor-backed call) and the
/// controller adapts every registered tunable; unplug it and observation
/// stops, leaving the tunables at their last adapted values (call
/// [`Autotuner::reset_all`] to restore defaults).
pub fn autotune_aspect(
    name: impl Into<String>,
    pointcut: Pointcut,
    tuner: Arc<Autotuner>,
) -> Aspect {
    autotune_aspect_at(name, pointcut, tuner, precedence::OPTIMISATION)
}

/// [`autotune_aspect`] at an explicit precedence. The default OPTIMISATION
/// slot sits *inside* the partition layer; when the tunable being driven is
/// the partition grain itself, plug the observer *outside* it (a precedence
/// below [`precedence::PARTITION`]) so each observation covers the whole
/// split/dispatch/combine the grain controls.
pub fn autotune_aspect_at(
    name: impl Into<String>,
    pointcut: Pointcut,
    tuner: Arc<Autotuner>,
    precedence: i32,
) -> Aspect {
    Aspect::named(name)
        .precedence(precedence)
        .around(pointcut, move |inv: &mut Invocation| {
            let start = std::time::Instant::now();
            let ret = inv.proceed()?;
            tuner.observe(start.elapsed(), 0, 0);
            Ok(ret)
        })
        .build()
}

/// The mutex+condvar pair is here so `optimisation.rs`'s single-flight cache
/// and any future in-crate waiters share one vetted implementation.
pub(crate) struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    pub(crate) fn new() -> Self {
        Flight { done: Mutex::new(false), cv: Condvar::new() }
    }

    pub(crate) fn complete(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }

    pub(crate) fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a tuner with a synthetic workload whose per-call service time
    /// is a function of the tunable's current value, one epoch per step.
    fn drive(
        tuner: &Arc<Autotuner>,
        tunable: &Tunable,
        epochs: usize,
        cost_ns: impl Fn(u32) -> u64,
    ) {
        for _ in 0..epochs {
            let v = tunable.get();
            for _ in 0..tuner.config.epoch_calls {
                tuner.observe(Duration::from_nanos(cost_ns(v)), 0, 0);
            }
            tuner.force_tick();
        }
    }

    /// U-shaped cost: too-fine grain pays per-pack overhead, too-coarse
    /// grain starves workers. Minimum near `v = 32`.
    fn u_cost(v: u32) -> u64 {
        1_000_000 / u64::from(v.max(1)) + 1_000 * u64::from(v)
    }

    fn packs_tunable() -> Tunable {
        Tunable::new("packs", 1, 1, 64, Step::Mul(2))
    }

    #[test]
    fn same_seed_same_trajectory() {
        let run = |seed: u64| {
            let tuner = Autotuner::new(TuneConfig { epoch_calls: 8, seed, ..Default::default() });
            let t = tuner.register(packs_tunable());
            let q = tuner.register(Tunable::new("grain", 4, 1, 256, Step::Mul(2)));
            drive(&tuner, &t, 24, |v| u_cost(v) + u64::from(q.get()) * 100);
            (tuner.trajectory(), t.get(), q.get())
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "identical seed + observations must replay identically");
        let c = run(8);
        // A different seed may legally coincide, but the controller must
        // still have *decided* something both times.
        assert!(!c.0.is_empty() && !a.0.is_empty());
    }

    #[test]
    fn stationary_workload_oscillates_within_one_step() {
        let tuner = Autotuner::new(TuneConfig { epoch_calls: 8, seed: 3, ..Default::default() });
        let t = tuner.register(Tunable::new("packs", 16, 1, 256, Step::Mul(2)));
        // Constant score: no probe is ever accepted, so the climber must
        // keep reverting — the value may only ever be the default or one
        // probe step away from it.
        drive(&tuner, &t, 64, |_| 50_000);
        for (_, v) in tuner.trajectory() {
            assert!((8..=32).contains(&v), "oscillation exceeded ±1 step: {v}");
        }
        assert!((8..=32).contains(&t.get()));
    }

    #[test]
    fn climbs_a_u_shaped_cost_toward_the_optimum() {
        let seed = std::env::var("TUNE_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42u64);
        let tuner = Autotuner::new(TuneConfig { epoch_calls: 8, seed, ..Default::default() });
        let t = tuner.register(packs_tunable());
        drive(&tuner, &t, 40, u_cost);
        let v = t.get();
        // Optimum of u_cost is ~31.6; Mul(2) grid point 32, accept within
        // one step either side.
        assert!(
            (16..=64).contains(&v),
            "TUNE_SEED={seed}: expected convergence near 32, got {v} \
             (trajectory: {:?})",
            tuner.trajectory()
        );
        assert!(tuner.epochs() >= 40);
    }

    #[test]
    fn bound_cell_is_driven_and_reset() {
        let cell = Arc::new(AtomicU32::new(99));
        let tuner = Autotuner::new(TuneConfig { epoch_calls: 4, ..Default::default() });
        let t = tuner.register(Tunable::bound("flush", cell.clone(), 8, 1, 64, Step::Add(4)));
        assert_eq!(cell.load(Ordering::Relaxed), 8, "binding installs the default");
        drive(&tuner, &t, 10, |v| 10_000 + u64::from(v));
        tuner.reset_all();
        assert_eq!(cell.load(Ordering::Relaxed), 8, "reset_all restores the default");
    }

    #[test]
    fn plug_unplug_mid_run_leaves_sane_values() {
        struct Crunch;
        weavepar_weave::weaveable! {
            class Crunch as CrunchProxy {
                fn new() -> Self { Crunch }
                fn go(&mut self, x: u64) -> u64 { x + 1 }
            }
        }

        let tuner = Autotuner::new(TuneConfig { epoch_calls: 4, ..Default::default() });
        let t = tuner.register(Tunable::new("packs", 8, 1, 64, Step::Mul(2)));
        tuner.start(Duration::from_millis(2));
        assert!(tuner.is_running());

        let weaver = Weaver::new();
        let plugged =
            weaver.plug(autotune_aspect("Autotune", Pointcut::call("Crunch.go"), tuner.clone()));
        let c = CrunchProxy::construct(&weaver).unwrap();
        for i in 0..200 {
            assert_eq!(c.go(i).unwrap(), i + 1);
        }
        // Unplug mid-run: calls keep working, the tunable holds a sane
        // in-range value, and stopping the controller joins its thread.
        assert!(weaver.unplug(&plugged));
        for i in 0..50 {
            assert_eq!(c.go(i).unwrap(), i + 1);
        }
        let v = t.get();
        assert!((1..=64).contains(&v), "tunable out of range after unplug: {v}");
        tuner.stop();
        assert!(!tuner.is_running());
        tuner.reset_all();
        assert_eq!(t.get(), 8, "reset after unplug restores the default");
    }

    #[test]
    fn dropping_the_tuner_ends_the_controller_thread() {
        let tuner = Autotuner::new(TuneConfig::default());
        tuner.register(Tunable::new("x", 1, 1, 8, Step::Add(1)));
        tuner.start(Duration::from_millis(1));
        drop(tuner); // Drop joins: returning at all is the assertion.
    }

    #[test]
    fn installed_metrics_track_cells_and_decisions() {
        let registry = weavepar_weave::MetricsRegistry::new();
        let tuner = Autotuner::new(TuneConfig { epoch_calls: 8, seed: 42, ..Default::default() });
        let t = tuner.register(packs_tunable());
        tuner.install_metrics(&registry, "tune");
        drive(&tuner, &t, 40, u_cost);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("tune.cell.packs"), Some(u64::from(t.get())));
        assert_eq!(snap.counter("tune.epochs"), Some(tuner.epochs()));
        assert_eq!(snap.counter("tune.moves_accepted"), Some(tuner.moves_accepted()));
        // Climbing a U-shaped cost from the far edge must accept something.
        assert!(tuner.moves_accepted() >= 1, "no probe accepted while climbing");
        assert!(tuner.moves_accepted() <= tuner.epochs());
    }

    #[test]
    fn step_math_clamps_at_bounds() {
        let t = Tunable::new("t", 4, 2, 16, Step::Mul(2));
        assert_eq!(t.moved(16, 1), 16, "up clamps at max");
        assert_eq!(t.moved(2, -1), 2, "down clamps at min");
        assert_eq!(t.moved(4, 1), 8);
        assert_eq!(t.moved(4, -1), 2);
        let a = Tunable::new("a", 5, 0, 10, Step::Add(3));
        assert_eq!(a.moved(9, 1), 10);
        assert_eq!(a.moved(1, -1), 0);
    }
}
