//! # weavepar — incrementally developing parallel applications with
//! (un)pluggable aspects
//!
//! A Rust reproduction of J. L. Sobral, *"Incrementally Developing Parallel
//! Applications with AspectJ"* (IPPS 2006). The methodology: implement the
//! application's **core functionality** as ordinary sequential objects, then
//! plug the parallelisation concerns — **partition**, **concurrency**,
//! **distribution** and **optimisation** — as separate aspect modules that
//! intercept the core's constructions and method calls. Each module can be
//! plugged, unplugged and swapped at run time, so the same core runs
//! sequentially (for debugging), threaded on one machine, or distributed over
//! a middleware, without source changes.
//!
//! ## Crate map
//!
//! | module | provides |
//! |---|---|
//! | [`weave`] | join points, pointcuts, advice, aspects, object space, traces |
//! | [`concurrency`] | futures, executors, async/synchronisation aspects (§4.2) |
//! | [`distribution`] | wire codec, name server, node fabric, RMI/MPP aspects (§4.3) |
//! | [`skeletons`] | reusable partition protocols: pipeline, farm, dynamic farm, heartbeat (§4.1) |
//! | [`cluster`] | deterministic discrete-event cluster simulator for the paper's testbed (§6) |
//! | [`stack`] | [`ConcernStack`]: the plug/unplug lifecycle of the four concern categories |
//! | [`optimisation`] | optimisation aspects: object cache, call batching, pooled execution (§4.4) |
//! | [`tuning`] | adaptive grain-size autotuning: tunables, feedback controller, autotune aspect |
//! | [`logging`] | the Figure 3 logging aspect as a structure-inspection tool |
//!
//! ## Quickstart
//!
//! ```
//! use weavepar::prelude::*;
//!
//! // 1. Core functionality: a perfectly ordinary sequential class.
//! struct Squarer;
//! weavepar::weaveable! {
//!     class Squarer as SquarerProxy {
//!         fn new() -> Self { Squarer }
//!         fn compute(&mut self, xs: Vec<u64>) -> Vec<u64> {
//!             xs.into_iter().map(|x| x * x).collect()
//!         }
//!     }
//! }
//!
//! // 2. A concern stack over a weaver.
//! let stack = ConcernStack::new();
//!
//! // 3. Plug a farm partition (4 workers, 8 packs) — configs are builders:
//! //    mandatory protocol in `new`, options chained, `.aspect(name)` last.
//! use std::sync::Arc;
//! let farm = FarmConfig::new(Protocol {
//!     class: "Squarer",
//!     method: "compute",
//!     workers: 4,
//!     worker_args: Arc::new(|_r, _n, _o| Ok(weavepar::args![])),
//!     split: Arc::new(|a: &Args| {
//!         let xs = a.get::<Vec<u64>>(0)?;
//!         Ok(xs.chunks(xs.len().div_ceil(8).max(1)).map(|c| weavepar::args![c.to_vec()]).collect())
//!     }),
//!     reforward: Arc::new(|v| Ok(Args::from_values(vec![v]))),
//!     combine: Arc::new(|vs| {
//!         let mut all = Vec::new();
//!         for v in vs { all.extend(weavepar::weave::value::downcast_ret::<Vec<u64>>(v)?); }
//!         Ok(weavepar::ret!(all))
//!     }),
//! })
//! .aspect("Partition");
//! stack.plug(Concern::Partition, farm);
//!
//! // 4. Core code is oblivious: same call, now farmed out.
//! let s = SquarerProxy::construct(stack.weaver()).unwrap();
//! assert_eq!(s.compute(vec![1, 2, 3]).unwrap(), vec![1, 4, 9]);
//!
//! // 5. Unplug and the application is sequential again.
//! stack.unplug(Concern::Partition);
//! let s2 = SquarerProxy::construct(stack.weaver()).unwrap();
//! assert_eq!(s2.compute(vec![4]).unwrap(), vec![16]);
//! ```

pub mod logging;
pub mod optimisation;
pub mod stack;
pub mod tuning;

pub use logging::{logging_aspect, CallLog, CallRecord};
pub use stack::{Concern, ConcernStack};
pub use tuning::{autotune_aspect, autotune_aspect_at, Autotuner, Step, Tunable, TuneConfig};

// Re-export the sub-crates under stable names.
pub use weavepar_cluster as cluster;
pub use weavepar_concurrency as concurrency;
pub use weavepar_middleware as distribution;
pub use weavepar_skeletons as skeletons;
pub use weavepar_weave as weave;

// The macros live in `weavepar_weave` and refer to `$crate` internally, so
// they work through the re-export as well.
pub use weavepar_weave::{args, ret, weaveable};

/// One-stop imports for applications: the weave vocabulary, the concern
/// stack, executors, every skeleton config builder, the distribution
/// builders, and the observability layer. One `use weavepar::prelude::*;`
/// covers a whole example.
pub mod prelude {
    pub use crate::logging::{logging_aspect, CallLog, CallRecord};
    pub use crate::stack::{Concern, ConcernStack};
    pub use crate::tuning::{autotune_aspect, Autotuner, Step, Tunable, TuneConfig};
    pub use weavepar_concurrency::{
        active_object_aspect, future_concurrency_aspect, future_ret, resolve_any, Executor,
        FutureOrNow,
    };
    pub use weavepar_middleware::{
        message_packing_aspect, CallPolicy, InProcFabric, MarshalRegistry, MppConfig, NameServer,
        Policy, ReplyBackend, RmiConfig,
    };
    pub use weavepar_skeletons::{
        hints, DivideConquerConfig, DynamicFarmConfig, FarmConfig, HeartbeatConfig, PipelineConfig,
        Protocol,
    };
    pub use weavepar_weave::prelude::*;
    pub use weavepar_weave::{Counter, Gauge, Histogram, Snapshot};
}
