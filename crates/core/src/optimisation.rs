//! Optimisation aspects (paper §4.4).
//!
//! "Aspects provide a way to modularise optimisations, becoming easier to
//! experiment various alternative optimisations, by plugging or unplugging
//! each optimisation aspect. However, only optimisations based in joinpoints
//! can be modularised by aspects. Examples are: thread pools, cache objects,
//! communication packing and replicated computation."
//!
//! Realisations here:
//!
//! * **thread pools** — [`pooled_invocation_aspect`]: a drop-in replacement
//!   for the thread-per-call asynchronous-invocation aspect that runs on a
//!   shared [`ThreadPool`] instead (plug one *or* the other). The pool is
//!   backed by a work-stealing scheduler (per-worker LIFO deques, global
//!   injector, pack-granular `spawn_batch`); the aspect's plugging story is
//!   unchanged — the optimisation just got faster;
//! * **cache objects** — [`object_cache_aspect`]: memoises matched calls per
//!   `(target, argument-key)` and answers repeats without `proceed` — in a
//!   distributed stack it sits outside the distribution aspect and therefore
//!   elides remote calls;
//! * **communication packing** — [`CallBatcher`]: buffers matched oneway
//!   calls and flushes them as one merged call per target.
//!
//! The fourth example, *replicated computation*, is exhibited by the
//! distribution aspect itself in this reproduction: the client-side stub
//! constructor re-runs the (cheap) constructor computation locally instead of
//! shipping its state — see `weavepar-middleware`'s design notes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use weavepar_concurrency::{future_aspect, Executor, ThreadPool};
use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;
use weavepar_weave::ObjId;

/// Thread-pool optimisation: asynchronous invocation on a shared pool.
/// Semantically identical to the future-returning concurrency aspect; the
/// optimisation is purely in *how* the work executes.
pub fn pooled_invocation_aspect(
    name: impl Into<String>,
    pointcut: Pointcut,
    pool: Arc<ThreadPool>,
) -> Aspect {
    future_aspect(name, pointcut, Executor::Pool(pool))
}

/// How an application describes cacheable calls to [`object_cache_aspect`]:
/// a stable key for the arguments and a way to duplicate a result (results
/// are handed out both to the caller and to the cache).
/// Derives a stable cache key from a call's arguments.
pub type CacheKeyFn = Arc<dyn Fn(&Args) -> WeaveResult<String> + Send + Sync>;

/// Duplicates a (type-erased) result.
pub type CloneRetFn = Arc<dyn Fn(&AnyValue) -> WeaveResult<AnyValue> + Send + Sync>;

#[derive(Clone)]
pub struct CachePolicy {
    /// Derive a stable cache key from the call's arguments.
    pub key: CacheKeyFn,
    /// Duplicate a (type-erased) result.
    pub clone_ret: CloneRetFn,
}

impl CachePolicy {
    /// Policy for methods whose single argument and result are both `T`.
    pub fn unary<T: Clone + Send + std::fmt::Debug + 'static, R: Clone + Send + 'static>() -> Self {
        CachePolicy {
            key: Arc::new(|args: &Args| Ok(format!("{:?}", args.get::<T>(0)?))),
            clone_ret: Arc::new(|ret: &AnyValue| {
                let typed = ret.downcast_ref::<R>().ok_or_else(|| WeaveError::TypeMismatch {
                    expected: std::any::type_name::<R>(),
                    context: "cache clone".into(),
                })?;
                Ok(AnyValue::new(typed.clone()))
            }),
        }
    }
}

/// Statistics handle of a plugged cache aspect.
#[derive(Clone, Default)]
pub struct CacheStats {
    inner: Arc<Mutex<(u64, u64)>>, // (hits, misses)
}

impl CacheStats {
    /// Calls answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.lock().0
    }

    /// Calls that had to proceed.
    pub fn misses(&self) -> u64 {
        self.inner.lock().1
    }
}

impl std::fmt::Debug for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CacheStats(hits={}, misses={})", self.hits(), self.misses())
    }
}

/// The cache-objects optimisation: matched calls are memoised per
/// `(target, key)`, unbounded. Returns the aspect and its statistics handle.
/// See [`object_cache_aspect_bounded`] for the capacity-limited variant —
/// both share the single-flight miss path.
pub fn object_cache_aspect(
    name: impl Into<String>,
    pointcut: Pointcut,
    policy: CachePolicy,
) -> (Aspect, CacheStats) {
    object_cache_aspect_bounded(name, pointcut, policy, usize::MAX)
}

/// Entries plus the LRU clock, under one mutex.
struct CacheStore {
    map: HashMap<(ObjId, String), (AnyValue, u64)>,
    tick: u64,
}

impl CacheStore {
    fn touch(&mut self, key: &(ObjId, String)) -> Option<&AnyValue> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            &*v
        })
    }

    fn insert_bounded(&mut self, key: (ObjId, String), value: AnyValue, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if self.map.len() >= capacity && !self.map.contains_key(&key) {
            // Evict the least-recently-used entry (min stamp). A linear scan
            // is fine at the capacities this aspect targets: eviction runs
            // only on an over-capacity *miss*, which just paid a `proceed`.
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(key, (value, tick));
    }
}

/// [`object_cache_aspect`] with a bounded capacity (LRU eviction) and a
/// **single-flight** miss path: when several threads miss the same
/// `(target, key)` at once, exactly one proceeds while the rest wait for its
/// result — the point of a cache in front of an expensive (possibly remote)
/// call is precisely *not* to issue it N times. If the leader's call fails,
/// waiters retry (one becomes the next leader); errors are never cached.
pub fn object_cache_aspect_bounded(
    name: impl Into<String>,
    pointcut: Pointcut,
    policy: CachePolicy,
    capacity: usize,
) -> (Aspect, CacheStats) {
    let stats = CacheStats::default();
    let stats_inner = stats.clone();
    let cache = Arc::new(Mutex::new(CacheStore { map: HashMap::new(), tick: 0 }));
    type InflightMap = HashMap<(ObjId, String), Arc<crate::tuning::Flight>>;
    let inflight: Arc<Mutex<InflightMap>> = Arc::new(Mutex::new(HashMap::new()));
    let aspect = Aspect::named(name)
        .precedence(precedence::OPTIMISATION)
        .around(pointcut, move |inv: &mut Invocation| {
            let target = inv.target_required()?;
            let key = (policy.key)(inv.args()?)?;
            let key = (target, key);
            loop {
                if let Some(hit) = cache.lock().touch(&key) {
                    stats_inner.inner.lock().0 += 1;
                    return (policy.clone_ret)(hit);
                }
                // Miss: elect a leader for this key.
                let flight = {
                    let mut inflight = inflight.lock();
                    match inflight.get(&key) {
                        Some(f) => Some(f.clone()),
                        None => {
                            inflight.insert(key.clone(), Arc::new(crate::tuning::Flight::new()));
                            None
                        }
                    }
                };
                let Some(flight) = flight else {
                    // Leader: proceed with no locks held, then publish the
                    // entry *before* releasing the flight so woken waiters
                    // find it on their re-check.
                    let result = inv.proceed().and_then(|ret| {
                        let copy = (policy.clone_ret)(&ret)?;
                        Ok((ret, copy))
                    });
                    let ret = match result {
                        Ok((ret, copy)) => {
                            cache.lock().insert_bounded(key.clone(), copy, capacity);
                            stats_inner.inner.lock().1 += 1;
                            Ok(ret)
                        }
                        // Failure: nothing is cached; releasing the flight
                        // lets a waiter retry as the next leader.
                        Err(e) => Err(e),
                    };
                    let f = inflight.lock().remove(&key);
                    if let Some(f) = f {
                        f.complete();
                    }
                    return ret;
                };
                // Follower: wait for the leader, then re-check the cache (a
                // failed leader leaves it empty, and the loop elects anew).
                flight.wait();
            }
        })
        .build();
    (aspect, stats)
}

/// The communication-packing optimisation: buffer matched *oneway* calls
/// (they return `()` immediately) and flush them as one merged call per
/// target. Plug [`CallBatcher::aspect`] and call [`CallBatcher::flush`] at
/// the application's natural synchronisation points.
#[derive(Clone)]
pub struct CallBatcher {
    buffered: Arc<Mutex<Vec<(ObjId, Args)>>>,
    class: &'static str,
    method: &'static str,
    merge: Arc<dyn Fn(Vec<Args>) -> WeaveResult<Args> + Send + Sync>,
    id: Arc<Mutex<Option<weavepar_weave::AspectId>>>,
}

impl CallBatcher {
    /// A batcher for `class.method`, merging buffered argument packs with
    /// `merge`.
    pub fn new(
        class: &'static str,
        method: &'static str,
        merge: Arc<dyn Fn(Vec<Args>) -> WeaveResult<Args> + Send + Sync>,
    ) -> Self {
        CallBatcher {
            buffered: Arc::new(Mutex::new(Vec::new())),
            class,
            method,
            merge,
            id: Arc::new(Mutex::new(None)),
        }
    }

    /// Build and plug the buffering aspect. The calls [`CallBatcher::flush`]
    /// issues carry this aspect's provenance, so the `within_self().not()`
    /// pointcut below keeps them from being re-buffered while still letting
    /// other aspects (synchronisation, distribution) apply to them.
    pub fn plug(&self, weaver: &Weaver, name: impl Into<String>) -> PluggedAspect {
        let batcher = self.clone();
        let aspect = Aspect::named(name)
            .precedence(precedence::OPTIMISATION)
            .around(
                Pointcut::call_sig(self.class, self.method).and(Pointcut::within_self().not()),
                move |inv: &mut Invocation| {
                    let target = inv.target_required()?;
                    let args = std::mem::take(inv.args_mut()?);
                    batcher.buffered.lock().push((target, args));
                    Ok(weavepar_weave::ret!())
                },
            )
            .build();
        let token = weaver.plug(aspect);
        *self.id.lock() = Some(token.id());
        token
    }

    /// Number of buffered calls.
    pub fn pending(&self) -> usize {
        self.buffered.lock().len()
    }

    /// Merge and issue the buffered calls — one call per distinct target,
    /// in first-buffered order. Returns how many merged calls were issued.
    pub fn flush(&self, weaver: &Weaver) -> WeaveResult<usize> {
        let drained = std::mem::take(&mut *self.buffered.lock());
        if drained.is_empty() {
            return Ok(0);
        }
        let mut order: Vec<ObjId> = Vec::new();
        let mut per_target: HashMap<ObjId, Vec<Args>> = HashMap::new();
        for (target, args) in drained {
            if !per_target.contains_key(&target) {
                order.push(target);
            }
            per_target.entry(target).or_default().push(args);
        }
        let issued = order.len();
        // Issue the merged calls under this aspect's provenance so they are
        // not re-buffered by our own advice.
        let id = self.id.lock().ok_or_else(|| {
            WeaveError::app("CallBatcher::flush before the batching aspect was plugged")
        })?;
        let _prov = weavepar_weave::context::push(Provenance::Aspect(id));
        for target in order {
            let packs = per_target.remove(&target).expect("target recorded");
            let merged = (self.merge)(packs)?;
            weaver.invoke_call(target, self.class, self.method, merged)?;
        }
        Ok(issued)
    }

    /// Like [`CallBatcher::flush`], but merged calls whose targets are
    /// remote stubs ship through the wire as one
    /// [`CallPack`](weavepar_middleware::PackFrame) frame per destination
    /// node — one submit and one wakeup for the whole node's batch —
    /// instead of one woven call (and thus one `Request::Call`) each.
    /// Targets without a remote reference are issued through the weaver
    /// exactly as in `flush`. Packed calls bypass the client-side advice
    /// chain (they already ran through it when buffered), so use this only
    /// when the distribution aspect is the sole remaining stage below the
    /// batcher. Returns `(merged_local_calls, packed_remote_calls)`.
    pub fn flush_remote(
        &self,
        weaver: &Weaver,
        fabric: &weavepar_middleware::InProcFabric,
    ) -> WeaveResult<(usize, usize)> {
        use weavepar_middleware::aspects::REMOTE_FIELD;
        use weavepar_middleware::RemoteRef;

        let drained = std::mem::take(&mut *self.buffered.lock());
        if drained.is_empty() {
            return Ok((0, 0));
        }
        let mut order: Vec<ObjId> = Vec::new();
        let mut per_target: HashMap<ObjId, Vec<Args>> = HashMap::new();
        for (target, args) in drained {
            if !per_target.contains_key(&target) {
                order.push(target);
            }
            per_target.entry(target).or_default().push(args);
        }
        let method_id = fabric.marshal().method_id(self.class, self.method)?;
        let mut local = 0usize;
        let mut packed = 0usize;
        // One frame per destination node, filled in first-buffered order.
        let mut frames: HashMap<usize, weavepar_middleware::PackFrame> = HashMap::new();
        let id = self.id.lock().ok_or_else(|| {
            WeaveError::app("CallBatcher::flush_remote before the batching aspect was plugged")
        })?;
        let _prov = weavepar_weave::context::push(Provenance::Aspect(id));
        for target in order {
            let packs = per_target.remove(&target).expect("target recorded");
            let merged = (self.merge)(packs)?;
            match weaver.intertype().get_field::<RemoteRef>(target, REMOTE_FIELD) {
                Some(remote) => {
                    let frame = frames.entry(remote.node).or_insert_with(|| fabric.new_pack());
                    frame.push(remote.obj, method_id, fabric.marshal(), &merged)?;
                    packed += 1;
                }
                None => {
                    weaver.invoke_call(target, self.class, self.method, merged)?;
                    local += 1;
                }
            }
        }
        for (node, frame) in frames {
            fabric.submit_pack(node, frame)?;
        }
        Ok((local, packed))
    }
}

impl std::fmt::Debug for CallBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CallBatcher({}.{}, pending={})", self.class, self.method, self.pending())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Expensive {
        executions: Arc<AtomicU64>,
    }

    thread_local! {
        static EXEC_COUNTER: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    }

    weavepar_weave::weaveable! {
        class Expensive as ExpensiveProxy {
            fn new() -> Self {
                Expensive { executions: EXEC_COUNTER.with(|c| c.clone()) }
            }
            fn work(&mut self, xs: Vec<u64>) -> Vec<u64> {
                self.executions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                xs.into_iter().map(|x| x + 1).collect()
            }
        }
    }

    fn executions() -> u64 {
        EXEC_COUNTER.with(|c| c.load(Ordering::Relaxed))
    }

    #[test]
    fn cache_answers_repeats_without_proceeding() {
        let weaver = Weaver::new();
        let (aspect, stats) = object_cache_aspect(
            "Cache",
            Pointcut::call("Expensive.work"),
            CachePolicy::unary::<Vec<u64>, Vec<u64>>(),
        );
        weaver.plug(aspect);
        let e = ExpensiveProxy::construct(&weaver).unwrap();
        let before = executions();
        assert_eq!(e.work(vec![1, 2]).unwrap(), vec![2, 3]);
        assert_eq!(e.work(vec![1, 2]).unwrap(), vec![2, 3]);
        assert_eq!(e.work(vec![1, 2]).unwrap(), vec![2, 3]);
        assert_eq!(executions() - before, 1, "only the first call executes");
        assert_eq!(stats.hits(), 2);
        assert_eq!(stats.misses(), 1);
        // A different argument misses.
        assert_eq!(e.work(vec![9]).unwrap(), vec![10]);
        assert_eq!(stats.misses(), 2);
    }

    static SLOW_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

    struct Slow;

    weavepar_weave::weaveable! {
        class Slow as SlowProxy {
            fn new() -> Self { Slow }
            fn work(&mut self, x: u64) -> u64 {
                SLOW_EXECUTIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(40));
                x * 2
            }
        }
    }

    #[test]
    fn racing_misses_are_single_flight() {
        let weaver = Weaver::new();
        let (aspect, stats) = object_cache_aspect_bounded(
            "Cache",
            Pointcut::call("Slow.work"),
            CachePolicy::unary::<u64, u64>(),
            16,
        );
        weaver.plug(aspect);
        let s = SlowProxy::construct(&weaver).unwrap();
        let target = s.id();
        let before = SLOW_EXECUTIONS.load(Ordering::Relaxed);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let weaver = weaver.clone();
                std::thread::spawn(move || {
                    let ret = weaver
                        .invoke_call(target, "Slow", "work", weavepar_weave::args![21u64])
                        .unwrap();
                    *ret.downcast::<u64>().unwrap()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 42);
        }
        assert_eq!(
            SLOW_EXECUTIONS.load(Ordering::Relaxed) - before,
            1,
            "racing misses on one key must collapse to a single proceed"
        );
        assert_eq!(stats.misses(), 1);
        assert_eq!(stats.hits(), 3, "the three waiters are answered from the cache");
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let weaver = Weaver::new();
        let (aspect, stats) = object_cache_aspect_bounded(
            "Cache",
            Pointcut::call("Expensive.work"),
            CachePolicy::unary::<Vec<u64>, Vec<u64>>(),
            2,
        );
        weaver.plug(aspect);
        let e = ExpensiveProxy::construct(&weaver).unwrap();
        let before = executions();
        e.work(vec![1]).unwrap(); // miss: {1}
        e.work(vec![2]).unwrap(); // miss: {1, 2}
        e.work(vec![1]).unwrap(); // hit, refreshes 1
        e.work(vec![3]).unwrap(); // miss: evicts LRU {2} -> {1, 3}
        assert_eq!(e.work(vec![1]).unwrap(), vec![2], "recently used survives");
        assert_eq!(stats.hits(), 2);
        e.work(vec![2]).unwrap(); // miss again: 2 was the evictee
        assert_eq!(stats.misses(), 4);
        assert_eq!(executions() - before, 4);
    }

    #[test]
    fn cache_is_per_target() {
        let weaver = Weaver::new();
        let (aspect, stats) = object_cache_aspect(
            "Cache",
            Pointcut::call("Expensive.work"),
            CachePolicy::unary::<Vec<u64>, Vec<u64>>(),
        );
        weaver.plug(aspect);
        let a = ExpensiveProxy::construct(&weaver).unwrap();
        let b = ExpensiveProxy::construct(&weaver).unwrap();
        a.work(vec![5]).unwrap();
        b.work(vec![5]).unwrap();
        assert_eq!(stats.misses(), 2, "distinct targets must not share entries");
    }

    #[test]
    fn pooled_invocation_runs_on_the_pool() {
        let weaver = Weaver::new();
        let pool = ThreadPool::new(2, "opt");
        weaver.plug(pooled_invocation_aspect(
            "PooledAsync",
            Pointcut::call("Expensive.work"),
            pool.clone(),
        ));
        let e = ExpensiveProxy::construct(&weaver).unwrap();
        let before = executions();
        let ret = e.handle().call("work", weavepar_weave::args![vec![1u64]]).unwrap();
        let out = weavepar_concurrency::resolve_any(ret).unwrap();
        assert_eq!(*out.downcast::<Vec<u64>>().unwrap(), vec![2]);
        pool.wait_idle();
        assert_eq!(executions() - before, 1);
    }

    #[test]
    fn batcher_buffers_and_flushes_merged_calls() {
        let weaver = Weaver::new();
        let batcher = CallBatcher::new(
            "Expensive",
            "work",
            Arc::new(|packs: Vec<Args>| {
                let mut merged: Vec<u64> = Vec::new();
                for p in packs {
                    merged.extend(p.get::<Vec<u64>>(0)?.iter().copied());
                }
                Ok(weavepar_weave::args![merged])
            }),
        );
        batcher.plug(&weaver, "Packing");
        let e = ExpensiveProxy::construct(&weaver).unwrap();
        let before = executions();
        // Buffered: returns unit immediately, nothing executes.
        let r1 = e.handle().call("work", weavepar_weave::args![vec![1u64, 2]]).unwrap();
        assert!(r1.downcast::<()>().is_ok());
        e.handle().call("work", weavepar_weave::args![vec![3u64]]).unwrap();
        assert_eq!(executions() - before, 0);
        assert_eq!(batcher.pending(), 2);
        // One merged execution on flush.
        let issued = batcher.flush(&weaver).unwrap();
        assert_eq!(issued, 1);
        assert_eq!(executions() - before, 1);
        assert_eq!(batcher.pending(), 0);
        // Idempotent flush.
        assert_eq!(batcher.flush(&weaver).unwrap(), 0);
    }

    #[test]
    fn batcher_keeps_targets_separate() {
        let weaver = Weaver::new();
        let batcher = CallBatcher::new(
            "Expensive",
            "work",
            Arc::new(|packs: Vec<Args>| {
                let mut merged: Vec<u64> = Vec::new();
                for p in packs {
                    merged.extend(p.get::<Vec<u64>>(0)?.iter().copied());
                }
                Ok(weavepar_weave::args![merged])
            }),
        );
        batcher.plug(&weaver, "Packing");
        let a = ExpensiveProxy::construct(&weaver).unwrap();
        let b = ExpensiveProxy::construct(&weaver).unwrap();
        let before = executions();
        a.handle().call("work", weavepar_weave::args![vec![1u64]]).unwrap();
        b.handle().call("work", weavepar_weave::args![vec![2u64]]).unwrap();
        a.handle().call("work", weavepar_weave::args![vec![3u64]]).unwrap();
        assert_eq!(batcher.flush(&weaver).unwrap(), 2, "one merged call per target");
        assert_eq!(executions() - before, 2);
    }

    struct Sink {
        taken: u64,
    }

    weavepar_weave::weaveable! {
        class Sink as SinkProxy {
            fn new() -> Self { Sink { taken: 0 } }
            fn absorb(&mut self, xs: Vec<u64>) -> u64 {
                self.taken += xs.len() as u64;
                self.taken
            }
            fn taken(&mut self) -> u64 {
                self.taken
            }
        }
    }

    #[test]
    fn batcher_flush_remote_packs_per_node() {
        use weavepar_middleware::aspects::REMOTE_FIELD;
        use weavepar_middleware::{MppConfig, Policy, RemoteRef};

        let weaver = Weaver::new();
        let m = weavepar_middleware::MarshalRegistry::new();
        m.register::<(), ()>("Sink", "new");
        m.register::<(Vec<u64>,), u64>("Sink", "absorb");
        m.register::<(), u64>("Sink", "taken");
        let f = weavepar_middleware::InProcFabric::new(2, m);
        f.register_class::<Sink>();

        let batcher = CallBatcher::new(
            "Sink",
            "absorb",
            Arc::new(|packs: Vec<Args>| {
                let mut merged: Vec<u64> = Vec::new();
                for p in packs {
                    merged.extend(p.get::<Vec<u64>>(0)?.iter().copied());
                }
                Ok(weavepar_weave::args![merged])
            }),
        );
        batcher.plug(&weaver, "Packing");
        // Constructed before distribution is plugged: stays local.
        let local = SinkProxy::construct(&weaver).unwrap();
        weaver.plug(
            MppConfig::new(
                "Sink",
                Pointcut::call("Sink.absorb").or(Pointcut::call("Sink.taken")),
                f.clone(),
            )
            .placement(Policy::round_robin())
            .oneway(true)
            .aspect("DistributionMPP"),
        );
        let a = SinkProxy::construct(&weaver).unwrap();
        let b = SinkProxy::construct(&weaver).unwrap();

        // Buffer two calls per remote target and one on the local object.
        for sink in [&a, &b] {
            sink.handle().call("absorb", weavepar_weave::args![vec![1u64, 2]]).unwrap();
            sink.handle().call("absorb", weavepar_weave::args![vec![3u64]]).unwrap();
        }
        local.handle().call("absorb", weavepar_weave::args![vec![9u64]]).unwrap();
        assert_eq!(batcher.pending(), 5);

        let (local_calls, packed) = batcher.flush_remote(&weaver, &f).unwrap();
        assert_eq!(local_calls, 1);
        assert_eq!(packed, 2, "one merged packed call per remote target");
        assert_eq!(batcher.pending(), 0);

        // Each remote instance absorbed its merged batch of 3 values; the
        // replied `taken` call synchronises behind the pack frame (FIFO).
        for stub in [&a, &b] {
            let remote =
                weaver.intertype().get_field::<RemoteRef>(stub.id(), REMOTE_FIELD).unwrap();
            let args = f.marshal().encode_args("Sink", "taken", &weavepar_weave::args![]).unwrap();
            let reply = f.call(remote, "taken", args, true).unwrap().unwrap();
            let taken = f.marshal().decode_ret("Sink", "taken", &reply).unwrap();
            assert_eq!(*taken.downcast::<u64>().unwrap(), 3);
        }
        let local_taken = weaver.space().with_object::<Sink, _>(local.id(), |s| s.taken).unwrap();
        assert_eq!(local_taken, 1, "local target executed through the weaver");
    }
}
