//! # weavepar-concurrency — the concurrency substrate (paper §4.2)
//!
//! The paper's programming model rests on **asynchronous method invocation**:
//! a client proceeds while the server object executes the requested method in
//! parallel, with *futures* for calls whose result is needed later, and
//! *synchronisation* (Java monitors) protecting non-thread-safe objects.
//!
//! This crate provides those primitives and packages them as (un)pluggable
//! aspects over `weavepar-weave` join points:
//!
//! * [`FutureValue`] / [`FutureAny`] — one-shot futures: write once, block on
//!   read until the value is available (ABCL-style, as described in the
//!   paper's related-work section);
//! * [`ThreadPool`] and [`Executor`] — thread-per-call (the paper's
//!   `new Thread()` in Figure 12) or a pooled executor backed by a
//!   work-stealing scheduler (the thread-pool *optimisation* aspect of §4.4
//!   simply swaps the executor); [`BatchScope`] defers spawns so a skeleton
//!   submits each pack of tasks as one batch;
//! * [`CompletionTracker`] — quiescence detection so clients can wait for all
//!   outstanding asynchronous invocations;
//! * [`aspects`] — the pluggable concurrency aspects:
//!   [`aspects::oneway_aspect`] (spawn and forget),
//!   [`aspects::future_aspect`] (spawn and return a future),
//!   [`aspects::synchronized_aspect`] (hold the target's monitor around
//!   `proceed`), and [`aspects::concurrency_aspect`] — the paper's Figure 12
//!   combination of the first and the last.

pub mod active;
pub mod aspects;
pub mod batch;
pub mod executor;
pub mod future;
pub mod pool;
pub mod tracker;

pub use active::{active_object_aspect, ActiveRuntime};
pub use aspects::{
    concurrency_aspect, future_aspect, future_concurrency_aspect, oneway_aspect,
    synchronized_aspect, ErrorSink,
};
pub use batch::{on_scope_flush, scope_active, BatchScope};
pub use executor::Executor;
pub use future::{
    future_ret, resolve_any, resolve_any_deadline, FutureAny, FutureOrNow, FutureValue,
};
pub use pool::{Scheduler, ThreadPool};
pub use tracker::CompletionTracker;
