//! The pluggable concurrency aspects (paper §4.2, Figure 12).
//!
//! ```text
//! aspect Concurrency {
//!     void around( PrimeFilter.filter(..) ) {           // oneway advice
//!         (new Thread() { void run() { proceed(); } }).start();
//!     }
//!     void around( PrimeFilter.filter(..) ) {           // synchronised advice
//!         synchronized(/* target */) { proceed(); }
//!     }
//! }
//! ```
//!
//! [`concurrency_aspect`] is a faithful transcription: the first advice
//! detaches the remainder of the chain onto an [`Executor`], the second holds
//! the target object's monitor across `proceed`. Each is also available as a
//! standalone aspect so the combinations in the paper's Table 1 can be
//! assembled piecemeal, and [`future_aspect`] provides the future-returning
//! variant of asynchronous invocation (ref [3]).

use std::sync::Arc;

use parking_lot::Mutex;

use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;

use crate::executor::Executor;
use crate::future::FutureAny;

/// Collects errors raised by asynchronous invocations whose caller has long
/// moved on (the oneway aspect has nowhere to report failures inline).
#[derive(Clone, Default)]
pub struct ErrorSink {
    errors: Arc<Mutex<Vec<WeaveError>>>,
}

impl ErrorSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an error.
    pub fn push(&self, e: WeaveError) {
        self.errors.lock().push(e);
    }

    /// Number of recorded errors.
    pub fn len(&self) -> usize {
        self.errors.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Move all recorded errors out.
    pub fn drain(&self) -> Vec<WeaveError> {
        std::mem::take(&mut *self.errors.lock())
    }

    /// Fail with the first recorded error, if any (test/assert helper).
    pub fn check(&self) -> WeaveResult<()> {
        match self.errors.lock().first() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for ErrorSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErrorSink").field("errors", &self.len()).finish()
    }
}

/// Asynchronous *oneway* invocation: the matched calls return `()`
/// immediately while the event executes on `executor`. Failures go to
/// `sink`. Only suitable for methods whose (ignored) result type is `()` —
/// which is exactly the paper's `void filter(int num[])` shape.
///
/// The spawn participates in [`BatchScope`](crate::BatchScope) deferral: a
/// skeleton issuing many matched calls under a scope submits them to the
/// executor as one pack-granular batch at flush time.
pub fn oneway_aspect(
    name: impl Into<String>,
    pointcut: Pointcut,
    executor: Executor,
    sink: ErrorSink,
) -> Aspect {
    Aspect::named(name)
        .precedence(precedence::ASYNC_INVOCATION)
        .around(pointcut, move |inv: &mut Invocation| {
            let detached = inv.detach()?;
            let sink = sink.clone();
            executor.spawn(move || {
                if let Err(e) = detached.run() {
                    sink.push(e);
                }
            });
            Ok(weavepar_weave::ret!())
        })
        .build()
}

/// Asynchronous invocation with a future result: the matched calls
/// immediately return a [`FutureAny`] carrying the eventual result. Clients
/// consume it through [`future_ret`](crate::future::future_ret), which also
/// transparently accepts the synchronous value when this aspect is unplugged.
///
/// Like [`oneway_aspect`], the spawn is [`BatchScope`](crate::BatchScope)-
/// aware — under an active scope the detached chain is buffered and the
/// whole pack is submitted in one batch; callers must flush the scope before
/// blocking on a returned future.
pub fn future_aspect(name: impl Into<String>, pointcut: Pointcut, executor: Executor) -> Aspect {
    Aspect::named(name)
        .precedence(precedence::ASYNC_INVOCATION)
        .around(pointcut, move |inv: &mut Invocation| {
            let detached = inv.detach()?;
            let future = FutureAny::new();
            let setter = future.clone();
            executor.spawn(move || {
                setter.fulfill(detached.run());
            });
            Ok(weavepar_weave::ret!(future))
        })
        .build()
}

/// Synchronisation advice: hold the target object's monitor across the rest
/// of the chain — the paper's `synchronized(target) { proceed(); }`.
pub fn synchronized_aspect(name: impl Into<String>, pointcut: Pointcut) -> Aspect {
    Aspect::named(name)
        .precedence(precedence::SYNCHRONISATION)
        .around(pointcut, move |inv: &mut Invocation| {
            let target = inv.target_required()?;
            let _monitor = inv.weaver().space().monitor(target)?;
            inv.proceed()
        })
        .build()
}

/// The paper's complete Concurrency module (Figure 12): oneway invocation
/// plus per-target synchronisation. Returned as two aspects so that a
/// partition aspect can weave *between* them (spawn outside the forwarding,
/// monitor inside the spawned thread — the structure Figure 11 depicts);
/// plug both, unplug both.
pub fn concurrency_aspect(
    name: impl Into<String>,
    pointcut: Pointcut,
    executor: Executor,
    sink: ErrorSink,
) -> [Aspect; 2] {
    let name = name.into();
    [
        oneway_aspect(format!("{name}.async"), pointcut.clone(), executor, sink),
        synchronized_aspect(format!("{name}.sync"), pointcut),
    ]
}

/// The future-returning Concurrency module: like [`concurrency_aspect`] but
/// matched calls return a [`FutureAny`] instead of `()`, which is what
/// result-carrying partition protocols (pipeline/farm `combine`) require —
/// the ref-[3] pattern of §4.2.
pub fn future_concurrency_aspect(
    name: impl Into<String>,
    pointcut: Pointcut,
    executor: Executor,
) -> [Aspect; 2] {
    let name = name.into();
    [
        future_aspect(format!("{name}.async"), pointcut.clone(), executor),
        synchronized_aspect(format!("{name}.sync"), pointcut),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::future_ret;
    use std::time::Duration;
    use weavepar_weave::{args, Weaver};

    struct Slowpoke {
        log: Vec<u64>,
    }

    weavepar_weave::weaveable! {
        class Slowpoke as SlowpokeProxy {
            fn new() -> Self { Slowpoke { log: Vec::new() } }
            fn work(&mut self, id: u64, millis: u64) {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                self.log.push(id);
            }
            fn compute(&mut self, x: u64) -> u64 {
                x * 2
            }
            fn log_len(&mut self) -> u64 {
                self.log.len() as u64
            }
            fn fail(&mut self) {
                // Dispatch-level failures come from bad arguments; emulate an
                // application failure through a monitored panic-free path is
                // not possible here, so this method exists for the dyn-call
                // error tests that pass a wrong argument type.
            }
        }
    }

    #[test]
    fn oneway_returns_immediately_and_completes() {
        let weaver = Weaver::new();
        let executor = Executor::thread_per_call();
        let sink = ErrorSink::new();
        weaver.plug(oneway_aspect(
            "Concurrency",
            Pointcut::call("Slowpoke.work"),
            executor.clone(),
            sink.clone(),
        ));
        let p = SlowpokeProxy::construct(&weaver).unwrap();
        let start = std::time::Instant::now();
        for i in 0..4 {
            p.work(i, 80).unwrap();
        }
        let issue_time = start.elapsed();
        assert!(issue_time < Duration::from_millis(80), "calls did not return immediately");
        executor.wait_idle();
        sink.check().unwrap();
        assert_eq!(p.log_len().unwrap(), 4);
    }

    #[test]
    fn oneway_parallelism_beats_sequential() {
        let weaver = Weaver::new();
        let executor = Executor::thread_per_call();
        let sink = ErrorSink::new();
        for a in concurrency_aspect(
            "Concurrency",
            Pointcut::call("Slowpoke.work"),
            executor.clone(),
            sink.clone(),
        ) {
            weaver.plug(a);
        }
        // Four independent objects, 60 ms each: parallel wall time must be
        // well under the 240 ms sequential time.
        let objs: Vec<_> = (0..4).map(|_| SlowpokeProxy::construct(&weaver).unwrap()).collect();
        let start = std::time::Instant::now();
        for (i, o) in objs.iter().enumerate() {
            o.work(i as u64, 60).unwrap();
        }
        executor.wait_idle();
        let elapsed = start.elapsed();
        sink.check().unwrap();
        assert!(elapsed < Duration::from_millis(200), "no parallel speedup: {elapsed:?}");
    }

    #[test]
    fn synchronized_serialises_per_object() {
        let weaver = Weaver::new();
        let executor = Executor::thread_per_call();
        let sink = ErrorSink::new();
        for a in concurrency_aspect(
            "Concurrency",
            Pointcut::call("Slowpoke.work"),
            executor.clone(),
            sink.clone(),
        ) {
            weaver.plug(a);
        }
        let p = SlowpokeProxy::construct(&weaver).unwrap();
        for i in 0..6 {
            p.work(i, 5).unwrap();
        }
        executor.wait_idle();
        sink.check().unwrap();
        // All six writes landed despite racing threads.
        assert_eq!(p.log_len().unwrap(), 6);
    }

    #[test]
    fn future_aspect_roundtrip() {
        let weaver = Weaver::new();
        let executor = Executor::pool(2, "fut");
        weaver.plug(future_aspect("Futures", Pointcut::call("Slowpoke.compute"), executor));
        let p = SlowpokeProxy::construct(&weaver).unwrap();
        // The typed proxy method would downcast to u64 and fail; the future
        // protocol goes through the raw handle.
        let ret = p.handle().call("compute", args![21u64]).unwrap();
        let f = future_ret::<u64>(ret).unwrap();
        assert_eq!(f.take().unwrap(), 42);
    }

    #[test]
    fn future_ret_handles_unplugged_case() {
        let weaver = Weaver::new();
        let p = SlowpokeProxy::construct(&weaver).unwrap();
        let ret = p.handle().call("compute", args![5u64]).unwrap();
        let f = future_ret::<u64>(ret).unwrap();
        assert!(f.is_ready());
        assert_eq!(f.take().unwrap(), 10);
    }

    #[test]
    fn oneway_errors_reach_the_sink() {
        let weaver = Weaver::new();
        let executor = Executor::thread_per_call();
        let sink = ErrorSink::new();
        weaver.plug(oneway_aspect(
            "Concurrency",
            Pointcut::call("Slowpoke.work"),
            executor.clone(),
            sink.clone(),
        ));
        let p = SlowpokeProxy::construct(&weaver).unwrap();
        // Wrong argument type: dispatch fails inside the detached chain.
        p.handle().call("work", args!["wrong".to_string()]).unwrap();
        executor.wait_idle();
        assert_eq!(sink.len(), 1);
        assert!(sink.check().is_err());
        let drained = sink.drain();
        assert_eq!(drained.len(), 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn unplugging_concurrency_restores_sequential_debuggability() {
        let weaver = Weaver::new();
        let executor = Executor::thread_per_call();
        let sink = ErrorSink::new();
        let plugged: Vec<_> = concurrency_aspect(
            "Concurrency",
            Pointcut::call("Slowpoke.work"),
            executor.clone(),
            sink.clone(),
        )
        .into_iter()
        .map(|a| weaver.plug(a))
        .collect();
        let p = SlowpokeProxy::construct(&weaver).unwrap();
        p.work(1, 10).unwrap();
        executor.wait_idle();
        for p in &plugged {
            weaver.unplug(p);
        }
        // Now strictly synchronous: effects are visible immediately.
        p.work(2, 0).unwrap();
        assert_eq!(p.log_len().unwrap(), 2);
        sink.check().unwrap();
    }
}
