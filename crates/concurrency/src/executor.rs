//! Execution policies for asynchronous invocations.
//!
//! The concurrency aspect decides *that* a call runs asynchronously; the
//! [`Executor`] decides *how*: a fresh thread per call (the paper's
//! Figure 12) or a shared work-stealing [`ThreadPool`] (the §4.4 thread-pool
//! optimisation). Swapping one for the other is a one-line change — or, at
//! the aspect level, the plugging of a different optimisation module.
//!
//! [`Executor::spawn`] cooperates with [`BatchScope`](crate::BatchScope):
//! while a scope is active on the calling thread, spawns are buffered and
//! later submitted through [`Executor::spawn_batch`], which registers and
//! enqueues a whole pack of tasks at once.

use std::sync::Arc;

use crate::pool::{Scheduler, ThreadPool};
use crate::tracker::CompletionTracker;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// How asynchronous work is executed.
#[derive(Clone, Debug)]
pub enum Executor {
    /// Spawn a dedicated OS thread per call.
    ThreadPerCall(CompletionTracker),
    /// Run on a shared fixed-size pool.
    Pool(Arc<ThreadPool>),
}

impl Executor {
    /// Thread-per-call executor with a fresh tracker.
    pub fn thread_per_call() -> Self {
        Executor::ThreadPerCall(CompletionTracker::new())
    }

    /// Pooled executor with `size` workers (work-stealing scheduler).
    pub fn pool(size: usize, name: &str) -> Self {
        Executor::Pool(ThreadPool::new(size, name))
    }

    /// Pooled executor on an explicit scheduler (the single-queue variant
    /// exists for the throughput ablation).
    pub fn pool_with_scheduler(size: usize, name: &str, scheduler: Scheduler) -> Self {
        Executor::Pool(ThreadPool::with_scheduler(size, name, scheduler))
    }

    /// Run `f` asynchronously under this policy. Inside an active
    /// [`BatchScope`](crate::BatchScope) on this thread, the job is buffered
    /// and submitted at the scope's flush instead.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        if let Some(job) = crate::batch::defer(self, Box::new(f)) {
            self.spawn_boxed(job);
        }
    }

    fn spawn_boxed(&self, job: Job) {
        match self {
            Executor::ThreadPerCall(tracker) => {
                let token = tracker.begin();
                std::thread::spawn(move || {
                    let _token = token;
                    job();
                });
            }
            Executor::Pool(pool) => pool.spawn(job),
        }
    }

    /// Run a whole pack of jobs asynchronously: tracker registration and (on
    /// a pooled executor) queue submission happen once for the entire batch.
    pub fn spawn_batch<I>(&self, jobs: I)
    where
        I: IntoIterator,
        I::Item: FnOnce() + Send + 'static,
    {
        self.spawn_batch_boxed(jobs.into_iter().map(|j| Box::new(j) as Job).collect());
    }

    pub(crate) fn spawn_batch_boxed(&self, jobs: Vec<Job>) {
        match self {
            Executor::ThreadPerCall(tracker) => {
                let tokens = tracker.begin_many(jobs.len());
                for (token, job) in tokens.into_iter().zip(jobs) {
                    std::thread::spawn(move || {
                        let _token = token;
                        job();
                    });
                }
            }
            Executor::Pool(pool) => pool.spawn_batch_boxed(jobs),
        }
    }

    /// The pooled backend's batch-submission grain cell (0 = whole-batch
    /// submission), for binding to a tuning controller. `None` for the
    /// thread-per-call executor, which has no queue to chunk.
    pub fn batch_grain_cell(&self) -> Option<Arc<std::sync::atomic::AtomicU32>> {
        match self {
            Executor::ThreadPerCall(_) => None,
            Executor::Pool(pool) => Some(pool.batch_grain_cell()),
        }
    }

    /// Bind this executor's scheduler counters and queue depth into
    /// `registry` under `prefix` (see
    /// [`ThreadPool::install_metrics`](crate::pool::ThreadPool::install_metrics)).
    /// The thread-per-call executor has no scheduler, so only the
    /// `{prefix}.in_flight` gauge is bound.
    pub fn install_metrics(&self, registry: &weavepar_weave::MetricsRegistry, prefix: &str) {
        match self {
            Executor::ThreadPerCall(tracker) => {
                registry.bind_gauge_usize(&format!("{prefix}.in_flight"), tracker.in_flight_cell());
            }
            Executor::Pool(pool) => pool.install_metrics(registry, prefix),
        }
    }

    /// True when `other` is a clone of this executor (same tracker/pool).
    pub fn same_as(&self, other: &Executor) -> bool {
        match (self, other) {
            (Executor::ThreadPerCall(a), Executor::ThreadPerCall(b)) => a.same_as(b),
            (Executor::Pool(a), Executor::Pool(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Block until all work spawned through this executor has finished.
    pub fn wait_idle(&self) {
        match self {
            Executor::ThreadPerCall(tracker) => tracker.wait_idle(),
            Executor::Pool(pool) => pool.wait_idle(),
        }
    }

    /// The tracker covering this executor's in-flight work.
    pub fn tracker(&self) -> &CompletionTracker {
        match self {
            Executor::ThreadPerCall(tracker) => tracker,
            Executor::Pool(pool) => pool.tracker(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn exercise(executor: &Executor) {
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let h = hits.clone();
            executor.spawn(move || {
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        executor.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
        assert_eq!(executor.tracker().in_flight(), 0);
    }

    #[test]
    fn thread_per_call_executes_everything() {
        exercise(&Executor::thread_per_call());
    }

    #[test]
    fn pool_executes_everything() {
        exercise(&Executor::pool(3, "exec-test"));
    }

    #[test]
    fn single_queue_pool_executes_everything() {
        exercise(&Executor::pool_with_scheduler(3, "exec-sq", Scheduler::SingleQueue));
    }

    #[test]
    fn spawn_batch_executes_everything() {
        for executor in [Executor::thread_per_call(), Executor::pool(3, "exec-batch")] {
            let hits = Arc::new(AtomicUsize::new(0));
            executor.spawn_batch((0..64).map(|_| {
                let h = hits.clone();
                move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            }));
            executor.wait_idle();
            assert_eq!(hits.load(Ordering::Relaxed), 64);
            assert_eq!(executor.tracker().in_flight(), 0);
        }
    }

    #[test]
    fn clones_share_the_tracker() {
        let e = Executor::thread_per_call();
        let e2 = e.clone();
        assert!(e.same_as(&e2));
        assert!(!e.same_as(&Executor::thread_per_call()));
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        e2.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            h.fetch_add(1, Ordering::Relaxed);
        });
        e.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
