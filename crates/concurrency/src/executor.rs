//! Execution policies for asynchronous invocations.
//!
//! The concurrency aspect decides *that* a call runs asynchronously; the
//! [`Executor`] decides *how*: a fresh thread per call (the paper's
//! Figure 12) or a shared [`ThreadPool`] (the §4.4 thread-pool optimisation).
//! Swapping one for the other is a one-line change — or, at the aspect level,
//! the plugging of a different optimisation module.

use std::sync::Arc;

use crate::pool::ThreadPool;
use crate::tracker::CompletionTracker;

/// How asynchronous work is executed.
#[derive(Clone, Debug)]
pub enum Executor {
    /// Spawn a dedicated OS thread per call.
    ThreadPerCall(CompletionTracker),
    /// Run on a shared fixed-size pool.
    Pool(Arc<ThreadPool>),
}

impl Executor {
    /// Thread-per-call executor with a fresh tracker.
    pub fn thread_per_call() -> Self {
        Executor::ThreadPerCall(CompletionTracker::new())
    }

    /// Pooled executor with `size` workers.
    pub fn pool(size: usize, name: &str) -> Self {
        Executor::Pool(ThreadPool::new(size, name))
    }

    /// Run `f` asynchronously under this policy.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        match self {
            Executor::ThreadPerCall(tracker) => {
                let token = tracker.begin();
                std::thread::spawn(move || {
                    let _token = token;
                    f();
                });
            }
            Executor::Pool(pool) => pool.spawn(f),
        }
    }

    /// Block until all work spawned through this executor has finished.
    pub fn wait_idle(&self) {
        match self {
            Executor::ThreadPerCall(tracker) => tracker.wait_idle(),
            Executor::Pool(pool) => pool.wait_idle(),
        }
    }

    /// The tracker covering this executor's in-flight work.
    pub fn tracker(&self) -> &CompletionTracker {
        match self {
            Executor::ThreadPerCall(tracker) => tracker,
            Executor::Pool(pool) => pool.tracker(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn exercise(executor: &Executor) {
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let h = hits.clone();
            executor.spawn(move || {
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        executor.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 50);
        assert_eq!(executor.tracker().in_flight(), 0);
    }

    #[test]
    fn thread_per_call_executes_everything() {
        exercise(&Executor::thread_per_call());
    }

    #[test]
    fn pool_executes_everything() {
        exercise(&Executor::pool(3, "exec-test"));
    }

    #[test]
    fn clones_share_the_tracker() {
        let e = Executor::thread_per_call();
        let e2 = e.clone();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        e2.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            h.fetch_add(1, Ordering::Relaxed);
        });
        e.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
