//! Active objects — the ABCL model the paper builds on (§2).
//!
//! "One of the most relevant works was ABCL, which provided active objects
//! to model concurrent activities. Each active object can be implemented by
//! a process and inter-object communication can be performed by asynchronous
//! or synchronous method invocation."
//!
//! [`active_object_aspect`] turns the matched calls of a class into exactly
//! that: each target object gets its own mailbox and a dedicated server
//! thread draining it **in issue order** (a stronger guarantee than the
//! monitor-based concurrency aspect, whose lock acquisition order is
//! scheduler-dependent). Calls return [`FutureAny`] — synchronous use is
//! taking the future immediately, asynchronous use is taking it later.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;
use weavepar_weave::ObjId;

use crate::future::FutureAny;
use crate::tracker::CompletionTracker;

type Mail = (Detached, FutureAny, crate::tracker::TaskToken);

struct Mailbox {
    tx: Sender<Mail>,
    handle: JoinHandle<()>,
}

/// Handle on the mailboxes and server threads behind an active-object
/// aspect. Keep it around to [`ActiveRuntime::wait_idle`] and
/// [`ActiveRuntime::shutdown`].
#[derive(Clone)]
pub struct ActiveRuntime {
    inner: Arc<Inner>,
}

struct Inner {
    mailboxes: Mutex<HashMap<ObjId, Mailbox>>,
    tracker: CompletionTracker,
}

impl ActiveRuntime {
    fn new() -> Self {
        ActiveRuntime {
            inner: Arc::new(Inner {
                mailboxes: Mutex::new(HashMap::new()),
                tracker: CompletionTracker::new(),
            }),
        }
    }

    /// Enqueue a detached invocation into the target's mailbox, creating the
    /// object's server thread on first use.
    fn post(&self, target: ObjId, mail: Mail) -> WeaveResult<()> {
        let mut mailboxes = self.inner.mailboxes.lock();
        let mailbox = mailboxes.entry(target).or_insert_with(|| {
            let (tx, rx) = unbounded::<Mail>();
            let handle = std::thread::Builder::new()
                .name(format!("active-{}", target.raw()))
                .spawn(move || {
                    while let Ok((detached, future, token)) = rx.recv() {
                        future.fulfill(detached.run());
                        drop(token); // one invocation done, even on failure
                    }
                })
                .expect("spawning active-object server");
            Mailbox { tx, handle }
        });
        mailbox
            .tx
            .send(mail)
            .map_err(|_| WeaveError::app(format!("active object {target} is shut down")))
    }

    /// Number of live active objects (server threads).
    pub fn active_objects(&self) -> usize {
        self.inner.mailboxes.lock().len()
    }

    /// Block until every posted invocation has completed.
    pub fn wait_idle(&self) {
        self.inner.tracker.wait_idle();
    }

    /// The tracker counting in-flight invocations.
    pub fn tracker(&self) -> &CompletionTracker {
        &self.inner.tracker
    }

    /// Stop all server threads after their mailboxes drain.
    pub fn shutdown(&self) {
        let drained: Vec<Mailbox> = {
            let mut mailboxes = self.inner.mailboxes.lock();
            mailboxes.drain().map(|(_, m)| m).collect()
        };
        for mailbox in drained {
            drop(mailbox.tx); // closes the channel; the loop ends after the queue
            let _ = mailbox.handle.join();
        }
    }
}

impl std::fmt::Debug for ActiveRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveRuntime")
            .field("active_objects", &self.active_objects())
            .field("in_flight", &self.inner.tracker.in_flight())
            .finish()
    }
}

/// Turn the matched calls into active-object sends: per-target mailbox,
/// issue-order execution, future results. Returns the aspect and the runtime
/// handle.
pub fn active_object_aspect(
    name: impl Into<String>,
    pointcut: Pointcut,
) -> (Aspect, ActiveRuntime) {
    let runtime = ActiveRuntime::new();
    let rt = runtime.clone();
    let aspect = Aspect::named(name)
        .precedence(precedence::ASYNC_INVOCATION)
        .around(pointcut, move |inv: &mut Invocation| {
            let target = inv.target_required()?;
            let detached = inv.detach()?;
            let future = FutureAny::new();
            // The token travels in the mailbox message and is dropped by the
            // server after fulfilment, so `wait_idle` covers queued work.
            let token = rt.inner.tracker.begin();
            rt.post(target, (detached, future.clone(), token))?;
            Ok(weavepar_weave::ret!(future))
        })
        .build();
    (aspect, runtime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::resolve_any;
    use weavepar_weave::{args, value::downcast_ret};

    struct Logger {
        seen: Vec<u64>,
    }

    weavepar_weave::weaveable! {
        class Logger as LoggerProxy {
            fn new() -> Self { Logger { seen: Vec::new() } }
            fn record(&mut self, x: u64) -> u64 {
                // A tiny sleep makes out-of-order execution likely if the
                // implementation does not guarantee issue order.
                std::thread::sleep(std::time::Duration::from_micros(200));
                self.seen.push(x);
                x
            }
            fn seen(&mut self) -> Vec<u64> {
                self.seen.clone()
            }
        }
    }

    #[test]
    fn calls_execute_in_issue_order() {
        let weaver = Weaver::new();
        let (aspect, runtime) = active_object_aspect("Active", Pointcut::call("Logger.record"));
        weaver.plug(aspect);
        let l = LoggerProxy::construct(&weaver).unwrap();
        for i in 0..50u64 {
            l.handle().call("record", args![i]).unwrap();
        }
        runtime.wait_idle();
        let seen = l.seen().unwrap();
        assert_eq!(seen, (0..50).collect::<Vec<u64>>(), "active objects preserve issue order");
        runtime.shutdown();
    }

    #[test]
    fn futures_carry_results() {
        let weaver = Weaver::new();
        let (aspect, runtime) = active_object_aspect("Active", Pointcut::call("Logger.record"));
        weaver.plug(aspect);
        let l = LoggerProxy::construct(&weaver).unwrap();
        let ret = l.handle().call("record", args![7u64]).unwrap();
        let v = downcast_ret::<u64>(resolve_any(ret).unwrap()).unwrap();
        assert_eq!(v, 7);
        runtime.shutdown();
    }

    #[test]
    fn objects_run_concurrently_with_each_other() {
        let weaver = Weaver::new();
        let (aspect, runtime) = active_object_aspect("Active", Pointcut::call("Logger.record"));
        weaver.plug(aspect);
        let objs: Vec<_> = (0..4).map(|_| LoggerProxy::construct(&weaver).unwrap()).collect();
        let start = std::time::Instant::now();
        for o in &objs {
            for i in 0..100u64 {
                o.handle().call("record", args![i]).unwrap();
            }
        }
        runtime.wait_idle();
        let elapsed = start.elapsed();
        // 4 × 100 × 200 µs = 80 ms serial; concurrent across objects should
        // be well under half of that even with scheduling slack.
        assert!(elapsed.as_millis() < 60, "no inter-object concurrency: {elapsed:?}");
        assert_eq!(runtime.active_objects(), 4);
        for o in &objs {
            assert_eq!(o.seen().unwrap().len(), 100);
        }
        runtime.shutdown();
        assert_eq!(runtime.active_objects(), 0);
    }

    #[test]
    fn shutdown_drains_before_stopping() {
        let weaver = Weaver::new();
        let (aspect, runtime) = active_object_aspect("Active", Pointcut::call("Logger.record"));
        weaver.plug(aspect);
        let l = LoggerProxy::construct(&weaver).unwrap();
        for i in 0..10u64 {
            l.handle().call("record", args![i]).unwrap();
        }
        runtime.shutdown(); // must not lose queued work
        assert_eq!(l.seen().unwrap().len(), 10);
    }

    #[test]
    fn post_after_shutdown_errors() {
        let weaver = Weaver::new();
        let (aspect, runtime) = active_object_aspect("Active", Pointcut::call("Logger.record"));
        weaver.plug(aspect);
        let l = LoggerProxy::construct(&weaver).unwrap();
        l.handle().call("record", args![1u64]).unwrap();
        runtime.shutdown();
        // The mailbox is gone; a new one is created transparently.
        l.handle().call("record", args![2u64]).unwrap();
        runtime.wait_idle();
        assert_eq!(l.seen().unwrap().len(), 2);
        runtime.shutdown();
    }
}
