//! Pack-granular submission: defer [`Executor::spawn`]s and flush them as one
//! batch.
//!
//! The skeleton layer submits one asynchronous invocation per pack, but each
//! of those goes through a woven advice chain that ends in an
//! `executor.spawn(...)` — per-task queue traffic the submitter cannot batch
//! from the outside. A [`BatchScope`] fixes that at the executor boundary:
//! while a scope is active on the current thread, `Executor::spawn` buffers
//! the job instead of submitting it, and [`BatchScope::flush`] (or dropping
//! the scope) hands the whole buffer to [`Executor::spawn_batch`] — one
//! tracker increment, one queue lock, one wakeup per pack.
//!
//! Scopes nest with stack discipline: an inner scope only defers (and only
//! flushes) spawns made after it was entered, so a divide-and-conquer advice
//! running inside a farm's scope batches its own sub-problems independently.
//!
//! **Callers must flush before blocking on any result of a deferred spawn**
//! (the skeletons flush between submitting their packs and resolving the
//! returned futures); the RAII flush-on-drop exists so an error path cannot
//! strand buffered work, not as the primary API.

use std::cell::{Cell, RefCell};

use crate::executor::Executor;

type Job = Box<dyn FnOnce() + Send + 'static>;
type FlushHook = Box<dyn FnOnce()>;

thread_local! {
    /// Depth of nested scopes; `Executor::spawn` defers only when > 0.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Jobs deferred on this thread, tagged with their destination executor.
    static DEFERRED: RefCell<Vec<(Executor, Job)>> = const { RefCell::new(Vec::new()) };
    /// Hooks to run when the innermost owning scope flushes (message
    /// packing registers one per destination node to ship its pack with the
    /// batch).
    static HOOKS: RefCell<Vec<FlushHook>> = const { RefCell::new(Vec::new()) };
}

/// Is a [`BatchScope`] active on the current thread?
pub fn scope_active() -> bool {
    DEPTH.with(|d| d.get()) > 0
}

/// Run `hook` when the innermost active scope on this thread flushes (after
/// its deferred jobs are submitted). Without an active scope the hook runs
/// immediately — callers can register unconditionally.
pub fn on_scope_flush(hook: impl FnOnce() + 'static) {
    if scope_active() {
        HOOKS.with(|hooks| hooks.borrow_mut().push(Box::new(hook)));
    } else {
        hook();
    }
}

/// Buffer a job if a batch scope is active on this thread. Returns the job
/// back when no scope is active (the caller submits it directly).
pub(crate) fn defer(executor: &Executor, job: Job) -> Option<Job> {
    if DEPTH.with(|d| d.get()) == 0 {
        return Some(job);
    }
    DEFERRED.with(|buf| buf.borrow_mut().push((executor.clone(), job)));
    None
}

/// RAII marker making [`Executor::spawn`] on this thread buffer jobs until
/// [`flush`](BatchScope::flush) — see the module docs.
pub struct BatchScope {
    /// Buffer length at entry: this scope owns everything past it.
    start: usize,
    /// Hook-list length at entry, same ownership rule.
    hooks_start: usize,
    flushed: bool,
}

impl BatchScope {
    /// Start deferring `Executor::spawn`s on the current thread.
    pub fn enter() -> BatchScope {
        DEPTH.with(|d| d.set(d.get() + 1));
        BatchScope {
            start: DEFERRED.with(|buf| buf.borrow().len()),
            hooks_start: HOOKS.with(|hooks| hooks.borrow().len()),
            flushed: false,
        }
    }

    /// Submit everything deferred under this scope, grouping consecutive
    /// jobs bound for the same executor into one `spawn_batch`.
    pub fn flush(mut self) {
        self.flush_inner();
    }

    fn flush_inner(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        DEPTH.with(|d| d.set(d.get() - 1));
        let drained: Vec<(Executor, Job)> =
            DEFERRED.with(|buf| buf.borrow_mut().split_off(self.start));
        let mut drained = drained.into_iter().peekable();
        while let Some((executor, job)) = drained.next() {
            let mut group = vec![job];
            while drained.peek().is_some_and(|(e, _)| e.same_as(&executor)) {
                group.push(drained.next().expect("peeked").1);
            }
            executor.spawn_batch_boxed(group);
        }
        let hooks: Vec<FlushHook> =
            HOOKS.with(|hooks| hooks.borrow_mut().split_off(self.hooks_start));
        for hook in hooks {
            hook();
        }
    }
}

impl Drop for BatchScope {
    fn drop(&mut self) {
        self.flush_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn spawns_are_deferred_until_flush() {
        let executor = Executor::pool(2, "defer");
        let hits = Arc::new(AtomicUsize::new(0));
        let scope = BatchScope::enter();
        for _ in 0..10 {
            let h = hits.clone();
            executor.spawn(move || {
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Nothing registered yet: the jobs sit in the thread-local buffer.
        assert_eq!(executor.tracker().in_flight(), 0);
        scope.flush();
        executor.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn drop_flushes_stranded_work() {
        let executor = Executor::pool(1, "strand");
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let _scope = BatchScope::enter();
            let h = hits.clone();
            executor.spawn(move || {
                h.fetch_add(1, Ordering::Relaxed);
            });
            // Early exit (as on an error path): the scope drops unflushed.
        }
        executor.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_scopes_flush_their_own_spawns_only() {
        let executor = Executor::pool(2, "nest");
        let hits = Arc::new(AtomicUsize::new(0));
        let outer = BatchScope::enter();
        let h = hits.clone();
        executor.spawn(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        {
            let inner = BatchScope::enter();
            let h = hits.clone();
            executor.spawn(move || {
                h.fetch_add(10, Ordering::Relaxed);
            });
            inner.flush();
            executor.wait_idle();
            // Only the inner spawn ran; the outer one is still buffered.
            assert_eq!(hits.load(Ordering::Relaxed), 10);
        }
        outer.flush();
        executor.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn flush_hooks_run_after_scope_jobs_or_immediately() {
        // No scope: the hook runs on the spot.
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        assert!(!scope_active());
        on_scope_flush(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);

        // Active scope: the hook runs at flush, after the deferred jobs are
        // submitted.
        let executor = Executor::pool(1, "hook");
        let hits = Arc::new(AtomicUsize::new(0));
        let scope = BatchScope::enter();
        assert!(scope_active());
        let h = hits.clone();
        executor.spawn(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let r = ran.clone();
        on_scope_flush(move || {
            r.fetch_add(10, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1, "hook deferred while scope is active");
        scope.flush();
        assert_eq!(ran.load(Ordering::Relaxed), 11);
        executor.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mixed_executors_group_consecutively() {
        let a = Executor::pool(1, "mix-a");
        let b = Executor::thread_per_call();
        let hits = Arc::new(AtomicUsize::new(0));
        let scope = BatchScope::enter();
        for i in 0..6 {
            let h = hits.clone();
            let job = move || {
                h.fetch_add(1, Ordering::Relaxed);
            };
            if i % 2 == 0 {
                a.spawn(job);
            } else {
                b.spawn(job);
            }
        }
        scope.flush();
        a.wait_idle();
        b.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 6);
    }
}
