//! A fixed-size thread pool.
//!
//! The paper's §4.4 lists *thread pools* among the optimisations that can be
//! modularised as aspects: the concurrency aspect spawns a thread per call
//! (Figure 12), and a separately pluggable optimisation aspect replaces that
//! with pooled execution. Both styles are exposed uniformly through
//! [`Executor`](crate::executor::Executor).

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use crate::tracker::CompletionTracker;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads consuming a shared job queue.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    tracker: CompletionTracker,
    size: usize,
}

impl ThreadPool {
    /// Spawn `size` workers (at least one) named `{name}-{i}`.
    pub fn new(size: usize, name: &str) -> Arc<Self> {
        let size = size.max(1);
        let (tx, rx) = unbounded::<Job>();
        let mut workers = Vec::with_capacity(size);
        for i in 0..size {
            let rx = rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // A panicking job must not kill the worker: the pool
                        // would silently lose capacity (and a 1-worker pool
                        // would deadlock every later caller).
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    }
                })
                .expect("spawning pool worker");
            workers.push(handle);
        }
        Arc::new(ThreadPool {
            tx: Some(tx),
            workers: Mutex::new(workers),
            tracker: CompletionTracker::new(),
            size,
        })
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Enqueue a job. Never blocks (unbounded queue).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let token = self.tracker.begin();
        let wrapped: Job = Box::new(move || {
            let _token = token; // released when the job ends, even on panic
            job();
        });
        self.tx
            .as_ref()
            .expect("pool sender present until drop")
            .send(wrapped)
            .expect("pool workers alive until drop");
    }

    /// Jobs queued or running.
    pub fn in_flight(&self) -> usize {
        self.tracker.in_flight()
    }

    /// Block until every submitted job (including jobs submitted by other
    /// jobs) has finished.
    pub fn wait_idle(&self) {
        self.tracker.wait_idle();
    }

    /// The pool's completion tracker (shared with
    /// [`Executor`](crate::executor::Executor)).
    pub fn tracker(&self) -> &CompletionTracker {
        &self.tracker
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel stops the workers after the queue drains.
        self.tx = None;
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_jobs() {
        let pool = ThreadPool::new(4, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn size_is_clamped_to_one() {
        let pool = ThreadPool::new(0, "tiny");
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.spawn(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jobs_actually_run_in_parallel() {
        let pool = ThreadPool::new(4, "par");
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let (running, peak) = (running.clone(), peak.clone());
            pool.spawn(move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(50));
                running.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert!(peak.load(Ordering::SeqCst) >= 2, "no overlap observed");
    }

    #[test]
    fn nested_submission_is_tracked() {
        let pool = ThreadPool::new(2, "nest");
        let hits = Arc::new(AtomicUsize::new(0));
        let (p2, h2) = (pool.clone(), hits.clone());
        pool.spawn(move || {
            h2.fetch_add(1, Ordering::Relaxed);
            let h3 = h2.clone();
            p2.spawn(move || {
                h3.fetch_add(1, Ordering::Relaxed);
            });
        });
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn panicking_job_does_not_wedge_the_pool() {
        let pool = ThreadPool::new(1, "panicky");
        pool.spawn(|| panic!("boom"));
        assert!(pool.tracker().wait_idle_timeout(Duration::from_millis(500)));
        // The single worker survived the panic and keeps serving jobs.
        let ok = Arc::new(AtomicUsize::new(0));
        let ok2 = ok.clone();
        pool.spawn(move || {
            ok2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2, "drop");
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let h = hits.clone();
            pool.spawn(move || {
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(hits.load(Ordering::Relaxed), 10, "queued jobs drain before drop completes");
    }
}
