//! A fixed-size thread pool with a work-stealing scheduler.
//!
//! The paper's §4.4 lists *thread pools* among the optimisations that can be
//! modularised as aspects: the concurrency aspect spawns a thread per call
//! (Figure 12), and a separately pluggable optimisation aspect replaces that
//! with pooled execution. Both styles are exposed uniformly through
//! [`Executor`](crate::executor::Executor).
//!
//! # Scheduling
//!
//! The default backend ([`Scheduler::WorkStealing`]) is a Cilk-style
//! work-stealing scheduler: every worker owns a LIFO deque, tasks submitted
//! from outside the pool land in a shared FIFO injector, and tasks spawned
//! *by* a pool worker (divide-and-conquer recursion generates these heavily)
//! go to that worker's own deque, where the LIFO pop keeps the most recently
//! spawned — cache-hot — task first. Idle workers steal batches from the
//! injector or from a peer's deque, so a burst of nested spawns seeded on a
//! single worker spreads across the pool without any submitter-side routing.
//! Idle workers park on a condition variable behind an atomic sleeper count:
//! submitters skip the wakeup entirely while every worker is busy, which
//! keeps the submission fast path lock-free with respect to parking.
//!
//! [`ThreadPool::spawn_batch`] submits a whole pack of tasks with one
//! completion-tracker increment, one queue-lock acquisition and one wakeup —
//! the skeleton layer (farm, divide-and-conquer) uses it to submit
//! pack-granular batches instead of per-task sends.
//!
//! The previous single-shared-queue backend is kept as
//! [`Scheduler::SingleQueue`] so the `executor_throughput` bench can ablate
//! stealing against the old design (see EXPERIMENTS.md).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

use weavepar_weave::metrics::MetricsRegistry;

use crate::tracker::{CompletionTracker, TaskToken};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One queued unit of work: the job plus its completion-tracker token, kept
/// side by side so the batch path does not re-box the job to attach the
/// token.
struct Task {
    token: TaskToken,
    job: Job,
}

impl Task {
    fn run(self) {
        let _token = self.token; // released when the job ends, even on panic
        (self.job)();
    }
}

/// Which scheduler backs a [`ThreadPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Per-worker deques + global injector + stealing (the default).
    WorkStealing,
    /// One shared FIFO channel all workers receive from (the pre-stealing
    /// design; kept for the throughput ablation).
    SingleQueue,
}

/// Process-unique pool ids, so the thread-local worker context can tell
/// *which* pool's worker the current thread is.
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// `(pool id, worker index)` of the pool worker running on this thread.
    static WORKER_CTX: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Always-on scheduler event counters, cheap relaxed atomics held in `Arc`s
/// so a metrics registry can bind them by name ([`ThreadPool::install_metrics`])
/// without the scheduler double-bookkeeping.
#[derive(Clone, Default)]
struct PoolStats {
    /// Task batches stolen from a peer worker's deque.
    steals: Arc<AtomicU64>,
    /// Times a worker parked on the condition variable.
    parks: Arc<AtomicU64>,
    /// Times a submitter issued a wakeup (notify) toward parked workers.
    wakeups: Arc<AtomicU64>,
}

/// Shared state of the work-stealing backend.
struct StealCore {
    id: usize,
    /// FIFO entry queue for tasks submitted from outside the pool.
    injector: Injector<Task>,
    /// One LIFO deque per worker. Indexed by worker; a worker pushes nested
    /// spawns here and pops its own end, peers steal the other end.
    locals: Vec<Worker<Task>>,
    stealers: Vec<Stealer<Task>>,
    /// Number of workers currently parked (or about to park) — submitters
    /// only touch the park lock when this is non-zero.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    park_lock: Mutex<()>,
    unpark: Condvar,
    stats: PoolStats,
}

impl StealCore {
    fn has_work(&self) -> bool {
        !self.injector.is_empty() || self.locals.iter().any(|w| !w.is_empty())
    }

    /// Wake one parked worker if any worker is parked.
    fn wake_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            let _guard = self.park_lock.lock();
            self.unpark.notify_one();
        }
    }

    /// Wake every parked worker (batch submission, shutdown).
    fn wake_all(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            let _guard = self.park_lock.lock();
            self.unpark.notify_all();
        }
    }

    /// Next task for worker `idx`: own deque first (LIFO — cache-hot nested
    /// spawns), then a batch from the injector, then a batch stolen from a
    /// peer (rotating the starting victim so thieves spread out).
    fn find_task(&self, idx: usize) -> Option<Task> {
        if let Some(task) = self.locals[idx].pop() {
            return Some(task);
        }
        loop {
            match self.injector.steal_batch_and_pop(&self.locals[idx]) {
                Steal::Success(task) => return Some(task),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let n = self.stealers.len();
        for offset in 1..n {
            let victim = (idx + offset) % n;
            loop {
                match self.stealers[victim].steal_batch_and_pop(&self.locals[idx]) {
                    Steal::Success(task) => {
                        self.stats.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(task);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    fn worker_loop(self: &Arc<Self>, idx: usize) {
        WORKER_CTX.with(|ctx| ctx.set(Some((self.id, idx))));
        loop {
            if let Some(task) = self.find_task(idx) {
                // A panicking job must not kill the worker: the pool would
                // silently lose capacity (and a 1-worker pool would deadlock
                // every later caller).
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.run()));
                continue;
            }
            // Park. The sleeper count is incremented under the park lock and
            // *before* the queues are re-checked; a submitter pushes first
            // and reads the count second. Whichever critical section runs
            // first, either the submitter observes the sleeper and notifies,
            // or this worker's re-check observes the pushed task — a missed
            // wakeup requires both to lose, which the lock ordering forbids.
            let mut guard = self.park_lock.lock();
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.has_work() {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                // Queues drained and the pool is going away.
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            // The timeout is a pure backstop: a (theoretically impossible,
            // see above) missed wakeup would cost 10 ms of latency, never a
            // hang.
            self.stats.parks.fetch_add(1, Ordering::Relaxed);
            self.unpark.wait_for(&mut guard, Duration::from_millis(10));
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

enum Backend {
    Single { tx: Option<Sender<Task>> },
    Stealing(Arc<StealCore>),
}

/// A fixed set of worker threads consuming work-stealing deques (or, for the
/// ablation backend, one shared job queue).
pub struct ThreadPool {
    backend: Backend,
    workers: Mutex<Vec<JoinHandle<()>>>,
    tracker: CompletionTracker,
    size: usize,
    /// Batch-submission grain: a `spawn_batch` larger than this is pushed to
    /// the injector in chunks of `grain` tasks so stealers start draining
    /// before the whole pack is enqueued. `0` (the default) submits the
    /// batch whole. Held in a shared cell for runtime tuning.
    grain: Arc<AtomicU32>,
    /// Scheduler event counters (shared with the stealing core; all zero on
    /// the single-queue backend, which has no stealing or parking).
    stats: PoolStats,
}

impl ThreadPool {
    /// Spawn `size` workers (at least one) named `{name}-{i}` on the default
    /// work-stealing scheduler.
    pub fn new(size: usize, name: &str) -> Arc<Self> {
        Self::with_scheduler(size, name, Scheduler::WorkStealing)
    }

    /// The pre-stealing single-shared-queue pool (ablation / comparison).
    pub fn single_queue(size: usize, name: &str) -> Arc<Self> {
        Self::with_scheduler(size, name, Scheduler::SingleQueue)
    }

    /// Spawn `size` workers (at least one) named `{name}-{i}` on the chosen
    /// scheduler.
    pub fn with_scheduler(size: usize, name: &str, scheduler: Scheduler) -> Arc<Self> {
        let size = size.max(1);
        let stats = PoolStats::default();
        let mut workers = Vec::with_capacity(size);
        let backend = match scheduler {
            Scheduler::SingleQueue => {
                let (tx, rx) = unbounded::<Task>();
                for i in 0..size {
                    let rx = rx.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("{name}-{i}"))
                        .spawn(move || {
                            while let Ok(task) = rx.recv() {
                                let _ =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        task.run()
                                    }));
                            }
                        })
                        .expect("spawning pool worker");
                    workers.push(handle);
                }
                Backend::Single { tx: Some(tx) }
            }
            Scheduler::WorkStealing => {
                let locals: Vec<Worker<Task>> = (0..size).map(|_| Worker::new_lifo()).collect();
                let stealers = locals.iter().map(|w| w.stealer()).collect();
                let core = Arc::new(StealCore {
                    id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
                    injector: Injector::new(),
                    locals,
                    stealers,
                    sleepers: AtomicUsize::new(0),
                    shutdown: AtomicBool::new(false),
                    park_lock: Mutex::new(()),
                    unpark: Condvar::new(),
                    stats: stats.clone(),
                });
                for i in 0..size {
                    let core = core.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("{name}-{i}"))
                        .spawn(move || core.worker_loop(i))
                        .expect("spawning pool worker");
                    workers.push(handle);
                }
                Backend::Stealing(core)
            }
        };
        Arc::new(ThreadPool {
            backend,
            workers: Mutex::new(workers),
            tracker: CompletionTracker::new(),
            size,
            grain: Arc::new(AtomicU32::new(0)),
            stats,
        })
    }

    /// The batch-submission grain cell (0 = submit batches whole), for
    /// binding to a tuning controller.
    pub fn batch_grain_cell(&self) -> Arc<AtomicU32> {
        self.grain.clone()
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The scheduler backing this pool.
    pub fn scheduler(&self) -> Scheduler {
        match self.backend {
            Backend::Single { .. } => Scheduler::SingleQueue,
            Backend::Stealing(_) => Scheduler::WorkStealing,
        }
    }

    /// Enqueue a job. Never blocks (unbounded queues). Called from a pool
    /// worker, the job goes to that worker's own deque (LIFO, cache-hot);
    /// called from anywhere else it goes to the shared injector.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let task = Task { token: self.tracker.begin(), job: Box::new(job) };
        self.push_task(task);
    }

    /// Enqueue a whole pack of jobs: one tracker increment, one queue-lock
    /// acquisition (work-stealing backend) and one wakeup for the entire
    /// batch. Semantically identical to calling [`spawn`](Self::spawn) once
    /// per job.
    pub fn spawn_batch<I>(&self, jobs: I)
    where
        I: IntoIterator,
        I::Item: FnOnce() + Send + 'static,
    {
        self.spawn_batch_boxed(jobs.into_iter().map(|j| Box::new(j) as Job).collect());
    }

    pub(crate) fn spawn_batch_boxed(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let tokens = self.tracker.begin_many(jobs.len());
        let tasks = tokens.into_iter().zip(jobs).map(|(token, job)| Task { token, job });
        match &self.backend {
            Backend::Single { tx } => {
                let tx = tx.as_ref().expect("pool sender present until drop");
                for task in tasks {
                    tx.send(task).expect("pool workers alive until drop");
                }
            }
            Backend::Stealing(core) => {
                match WORKER_CTX.with(|ctx| ctx.get()) {
                    Some((id, idx)) if id == core.id => {
                        for task in tasks {
                            core.locals[idx].push(task);
                        }
                        core.wake_all();
                    }
                    _ => {
                        let grain = self.grain.load(Ordering::Relaxed) as usize;
                        if grain == 0 {
                            core.injector.push_batch(tasks);
                            core.wake_all();
                        } else {
                            // Tuned grain: release the batch in chunks, waking
                            // workers per chunk so the first tasks start while
                            // the rest are still being enqueued.
                            let mut chunk = Vec::with_capacity(grain);
                            for task in tasks {
                                chunk.push(task);
                                if chunk.len() >= grain {
                                    core.injector.push_batch(chunk.drain(..));
                                    core.wake_all();
                                }
                            }
                            if !chunk.is_empty() {
                                core.injector.push_batch(chunk);
                                core.wake_all();
                            }
                        }
                    }
                }
            }
        }
    }

    fn push_task(&self, task: Task) {
        match &self.backend {
            Backend::Single { tx } => {
                tx.as_ref()
                    .expect("pool sender present until drop")
                    .send(task)
                    .expect("pool workers alive until drop");
            }
            Backend::Stealing(core) => {
                match WORKER_CTX.with(|ctx| ctx.get()) {
                    Some((id, idx)) if id == core.id => core.locals[idx].push(task),
                    _ => core.injector.push(task),
                }
                core.wake_one();
            }
        }
    }

    /// Jobs queued or running.
    pub fn in_flight(&self) -> usize {
        self.tracker.in_flight()
    }

    /// Block until every submitted job (including jobs submitted by other
    /// jobs) has finished.
    pub fn wait_idle(&self) {
        self.tracker.wait_idle();
    }

    /// The pool's completion tracker (shared with
    /// [`Executor`](crate::executor::Executor)).
    pub fn tracker(&self) -> &CompletionTracker {
        &self.tracker
    }

    /// Bind this pool's always-on scheduler counters into `registry` under
    /// `{prefix}.steals` / `{prefix}.parks` / `{prefix}.wakeups`, plus the
    /// live queue depth as the gauge `{prefix}.in_flight`. The scheduler
    /// keeps incrementing its own relaxed atomics; installation only names
    /// the cells, so an uninstalled pool pays nothing extra.
    pub fn install_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.bind_counter(&format!("{prefix}.steals"), self.stats.steals.clone());
        registry.bind_counter(&format!("{prefix}.parks"), self.stats.parks.clone());
        registry.bind_counter(&format!("{prefix}.wakeups"), self.stats.wakeups.clone());
        registry.bind_gauge_usize(&format!("{prefix}.in_flight"), self.tracker.in_flight_cell());
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        match &mut self.backend {
            // Closing the channel stops the workers after the queue drains.
            Backend::Single { tx } => *tx = None,
            Backend::Stealing(core) => {
                core.shutdown.store(true, Ordering::SeqCst);
                let _guard = core.park_lock.lock();
                core.unpark.notify_all();
            }
        }
        // Take the handles out before joining: joining while holding the
        // `workers` mutex would deadlock a concurrent `Debug`-format or
        // `size()` caller for the whole shutdown.
        let handles = std::mem::take(self.workers.get_mut());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .field("scheduler", &self.scheduler())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn both_schedulers() -> [Arc<ThreadPool>; 2] {
        [ThreadPool::new(4, "steal"), ThreadPool::single_queue(4, "single")]
    }

    #[test]
    fn runs_jobs() {
        for pool in both_schedulers() {
            let counter = Arc::new(AtomicUsize::new(0));
            for _ in 0..100 {
                let c = counter.clone();
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
            assert_eq!(counter.load(Ordering::Relaxed), 100, "{:?}", pool.scheduler());
        }
    }

    #[test]
    fn size_is_clamped_to_one() {
        let pool = ThreadPool::new(0, "tiny");
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.spawn(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jobs_actually_run_in_parallel() {
        let pool = ThreadPool::new(4, "par");
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let (running, peak) = (running.clone(), peak.clone());
            pool.spawn(move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(50));
                running.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert!(peak.load(Ordering::SeqCst) >= 2, "no overlap observed");
    }

    #[test]
    fn nested_submission_is_tracked() {
        for pool in both_schedulers() {
            let hits = Arc::new(AtomicUsize::new(0));
            let (p2, h2) = (pool.clone(), hits.clone());
            pool.spawn(move || {
                h2.fetch_add(1, Ordering::Relaxed);
                let h3 = h2.clone();
                p2.spawn(move || {
                    h3.fetch_add(1, Ordering::Relaxed);
                });
            });
            pool.wait_idle();
            assert_eq!(hits.load(Ordering::Relaxed), 2, "{:?}", pool.scheduler());
        }
    }

    #[test]
    fn panicking_job_does_not_wedge_the_pool() {
        for pool in [ThreadPool::new(1, "panicky"), ThreadPool::single_queue(1, "panicky-sq")] {
            pool.spawn(|| panic!("boom"));
            assert!(pool.tracker().wait_idle_timeout(Duration::from_millis(500)));
            // The single worker survived the panic and keeps serving jobs.
            let ok = Arc::new(AtomicUsize::new(0));
            let ok2 = ok.clone();
            pool.spawn(move || {
                ok2.fetch_add(1, Ordering::Relaxed);
            });
            pool.wait_idle();
            assert_eq!(ok.load(Ordering::Relaxed), 1, "{:?}", pool.scheduler());
        }
    }

    #[test]
    fn drop_joins_workers() {
        for pool in [ThreadPool::new(2, "drop"), ThreadPool::single_queue(2, "drop-sq")] {
            let hits = Arc::new(AtomicUsize::new(0));
            for _ in 0..10 {
                let h = hits.clone();
                pool.spawn(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
            drop(pool);
            assert_eq!(hits.load(Ordering::Relaxed), 10, "queued jobs drain before drop completes");
        }
    }

    #[test]
    fn spawn_batch_runs_every_job() {
        for pool in both_schedulers() {
            let counter = Arc::new(AtomicUsize::new(0));
            pool.spawn_batch((0..250).map(|_| {
                let c = counter.clone();
                move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }));
            pool.wait_idle();
            assert_eq!(counter.load(Ordering::Relaxed), 250, "{:?}", pool.scheduler());
            assert_eq!(pool.in_flight(), 0);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = ThreadPool::new(2, "empty");
        pool.spawn_batch(std::iter::empty::<fn()>());
        pool.wait_idle();
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn nested_spawns_seeded_on_one_worker_are_stolen() {
        // One externally submitted job fans out nested spawns; they all land
        // on that worker's local deque, so any parallelism proves stealing.
        let pool = ThreadPool::new(4, "thief");
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let p2 = pool.clone();
        let (r2, k2) = (running.clone(), peak.clone());
        pool.spawn(move || {
            for _ in 0..8 {
                let (r3, k3) = (r2.clone(), k2.clone());
                p2.spawn(move || {
                    let now = r3.fetch_add(1, Ordering::SeqCst) + 1;
                    k3.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    r3.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        pool.wait_idle();
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "idle peers must steal from the seeding worker's deque"
        );
    }

    #[test]
    fn installed_metrics_expose_scheduler_events() {
        let pool = ThreadPool::new(4, "metered");
        let reg = MetricsRegistry::new();
        pool.install_metrics(&reg, "pool");
        // Replay the stealing scenario: one externally submitted job fans out
        // nested spawns, so idle peers must steal (and park/wake around it).
        let p2 = pool.clone();
        pool.spawn(move || {
            for _ in 0..16 {
                p2.spawn(|| std::thread::sleep(Duration::from_millis(5)));
            }
        });
        pool.wait_idle();
        let snap = reg.snapshot();
        assert!(snap.counter("pool.steals").unwrap() >= 1, "peers must steal: {snap:?}");
        assert!(snap.counter("pool.parks").unwrap() >= 1, "idle workers park");
        assert!(snap.counter("pool.wakeups").unwrap() >= 1, "submitters wake sleepers");
        assert_eq!(snap.gauge("pool.in_flight"), Some(0), "idle pool has empty queue");
    }

    #[test]
    fn lifo_local_order_fifo_injector_order() {
        // Single worker: injector submissions run FIFO; nested spawns run
        // LIFO (most recent first). Observable only with one worker.
        let pool = ThreadPool::new(1, "order");
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let p2 = pool.clone();
        let o2 = order.clone();
        pool.spawn(move || {
            for i in 0..3 {
                let o3 = o2.clone();
                p2.spawn(move || o3.lock().push(i));
            }
        });
        pool.wait_idle();
        assert_eq!(*order.lock(), vec![2, 1, 0], "nested spawns pop LIFO");
    }
}
