//! One-shot futures: the paper's *future variables*.
//!
//! "When a return value is required the client provides a variable, called
//! future, to store the return value. If the client attempts to use this
//! variable before its value becomes available it will be automatically
//! blocked, until the value is computed." — paper §2, describing ABCL; §4.2
//! notes the concurrency module can introduce future-type calls
//! transparently (ref [3]).
//!
//! Two flavours:
//!
//! * [`FutureValue<T>`] — a typed one-shot future for direct application use;
//! * [`FutureAny`] — the type-erased future the
//!   [`future_aspect`](crate::aspects::future_aspect) threads through join
//!   points; [`future_ret`] recovers a typed view on the client side whether
//!   or not the concurrency aspect is currently plugged.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use weavepar_weave::{AnyValue, WeaveError, WeaveResult};

enum State<T> {
    Pending,
    Ready(T),
    Taken,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// A typed, write-once, blocking-read future.
///
/// Cloning shares the same slot; any clone may fulfil it, any clone may take
/// the value (exactly one take succeeds).
pub struct FutureValue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for FutureValue<T> {
    fn clone(&self) -> Self {
        FutureValue { shared: self.shared.clone() }
    }
}

impl<T> Default for FutureValue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FutureValue<T> {
    /// A pending future.
    pub fn new() -> Self {
        FutureValue {
            shared: Arc::new(Shared { state: Mutex::new(State::Pending), cv: Condvar::new() }),
        }
    }

    /// Fulfil the future. Returns `false` (and drops `value`) if it was
    /// already fulfilled — write-once semantics.
    pub fn fulfill(&self, value: T) -> bool {
        let mut state = self.shared.state.lock();
        match *state {
            State::Pending => {
                *state = State::Ready(value);
                self.shared.cv.notify_all();
                true
            }
            _ => false,
        }
    }

    /// True when a value is available (and not yet taken).
    pub fn is_ready(&self) -> bool {
        matches!(*self.shared.state.lock(), State::Ready(_))
    }

    /// Block until the value is available, then move it out. A second take
    /// fails with an application error.
    pub fn take(&self) -> WeaveResult<T> {
        let mut state = self.shared.state.lock();
        loop {
            match std::mem::replace(&mut *state, State::Taken) {
                State::Ready(v) => return Ok(v),
                State::Taken => return Err(WeaveError::app("future already taken")),
                State::Pending => {
                    *state = State::Pending;
                    self.shared.cv.wait(&mut state);
                }
            }
        }
    }

    /// Like [`FutureValue::take`] but gives up after `timeout` with a typed
    /// [`WeaveError::Timeout`] (retryable under a call policy).
    pub fn take_timeout(&self, timeout: Duration) -> WeaveResult<T> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            match std::mem::replace(&mut *state, State::Taken) {
                State::Ready(v) => return Ok(v),
                State::Taken => return Err(WeaveError::app("future already taken")),
                State::Pending => {
                    *state = State::Pending;
                    if self.shared.cv.wait_until(&mut state, deadline).timed_out() {
                        return Err(WeaveError::Timeout { waited_ms: timeout.as_millis() as u64 });
                    }
                }
            }
        }
    }

    /// Non-blocking take: `None` while pending.
    pub fn try_take(&self) -> WeaveResult<Option<T>> {
        let mut state = self.shared.state.lock();
        match std::mem::replace(&mut *state, State::Taken) {
            State::Ready(v) => Ok(Some(v)),
            State::Taken => Err(WeaveError::app("future already taken")),
            State::Pending => {
                *state = State::Pending;
                Ok(None)
            }
        }
    }
}

impl<T> std::fmt::Debug for FutureValue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock();
        let s = match *state {
            State::Pending => "pending",
            State::Ready(_) => "ready",
            State::Taken => "taken",
        };
        write!(f, "FutureValue({s})")
    }
}

/// The type-erased future that flows through join points as a return value.
///
/// Carries a `WeaveResult<AnyValue>` so asynchronous failures surface at the
/// point where the client finally consumes the result — the analogue of the
/// paper's `RemoteException` reaching the caller.
#[derive(Clone, Debug)]
pub struct FutureAny {
    inner: FutureValue<WeaveResult<AnyValue>>,
}

impl Default for FutureAny {
    fn default() -> Self {
        Self::new()
    }
}

impl FutureAny {
    /// A pending erased future.
    pub fn new() -> Self {
        FutureAny { inner: FutureValue::new() }
    }

    /// Fulfil with a result.
    pub fn fulfill(&self, value: WeaveResult<AnyValue>) -> bool {
        self.inner.fulfill(value)
    }

    /// True when fulfilled (and not yet taken).
    pub fn is_ready(&self) -> bool {
        self.inner.is_ready()
    }

    /// Block until fulfilled, then move the result out.
    pub fn take(&self) -> WeaveResult<AnyValue> {
        self.inner.take()?
    }

    /// Blocking take with timeout.
    pub fn take_timeout(&self, timeout: Duration) -> WeaveResult<AnyValue> {
        self.inner.take_timeout(timeout)?
    }
}

/// Deadline-aware [`resolve_any`]: unwraps chained futures, but gives up
/// with a typed [`WeaveError::Timeout`] once `deadline` has elapsed in
/// total across the chain. `None` waits forever (plain `resolve_any`).
pub fn resolve_any_deadline(
    mut ret: AnyValue,
    deadline: Option<Duration>,
) -> WeaveResult<AnyValue> {
    let Some(total) = deadline else { return resolve_any(ret) };
    let start = Instant::now();
    loop {
        match ret.downcast::<FutureAny>() {
            Ok(f) => {
                let left = total
                    .checked_sub(start.elapsed())
                    .ok_or(WeaveError::Timeout { waited_ms: total.as_millis() as u64 })?;
                ret = f.take_timeout(left)?;
            }
            Err(value) => return Ok(value),
        }
    }
}

/// The client-side view of a possibly-asynchronous call result.
///
/// When the concurrency aspect is unplugged the call was synchronous and the
/// value is already here; when plugged, it is a future. Client code written
/// against `FutureOrNow` works identically in both configurations — the
/// transparency property §4.2 asks the partition code to be designed for.
#[derive(Debug)]
pub enum FutureOrNow<T> {
    /// The call executed synchronously.
    Now(T),
    /// The call is in flight; taking blocks.
    Later(FutureAny),
}

impl<T: Send + 'static> FutureOrNow<T> {
    /// Block (if needed) and return the value.
    pub fn take(self) -> WeaveResult<T> {
        match self {
            FutureOrNow::Now(v) => Ok(v),
            FutureOrNow::Later(f) => weavepar_weave::value::downcast_ret::<T>(f.take()?),
        }
    }

    /// True when no blocking would occur.
    pub fn is_ready(&self) -> bool {
        match self {
            FutureOrNow::Now(_) => true,
            FutureOrNow::Later(f) => f.is_ready(),
        }
    }
}

/// Resolve a join-point return value to its final concrete value, blocking
/// through any number of chained futures.
///
/// Pipeline forwarding returns the *downstream* call's result, which — when
/// the concurrency aspect is plugged — is itself a future; resolving a pack
/// therefore means unwrapping futures until a non-future value appears.
pub fn resolve_any(mut ret: AnyValue) -> WeaveResult<AnyValue> {
    loop {
        match ret.downcast::<FutureAny>() {
            Ok(f) => ret = f.take()?,
            Err(value) => return Ok(value),
        }
    }
}

/// Interpret a join-point return value as a possibly-asynchronous `T`.
///
/// Accepts either a plain `T` (no future aspect plugged) or a [`FutureAny`]
/// (future aspect plugged).
pub fn future_ret<T: Send + 'static>(ret: AnyValue) -> WeaveResult<FutureOrNow<T>> {
    match ret.downcast::<T>() {
        Ok(v) => Ok(FutureOrNow::Now(*v)),
        Err(other) => match other.downcast::<FutureAny>() {
            Ok(f) => Ok(FutureOrNow::Later(*f)),
            Err(_) => Err(WeaveError::TypeMismatch {
                expected: std::any::type_name::<T>(),
                context: "future_ret: neither the value nor a future".into(),
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fulfil_then_take() {
        let f = FutureValue::new();
        assert!(!f.is_ready());
        assert!(f.fulfill(42));
        assert!(f.is_ready());
        assert_eq!(f.take().unwrap(), 42);
        assert!(f.take().is_err());
    }

    #[test]
    fn write_once() {
        let f = FutureValue::new();
        assert!(f.fulfill(1));
        assert!(!f.fulfill(2));
        assert_eq!(f.take().unwrap(), 1);
    }

    #[test]
    fn take_blocks_until_fulfilled() {
        let f = FutureValue::new();
        let f2 = f.clone();
        let t = thread::spawn(move || f2.take().unwrap());
        thread::sleep(Duration::from_millis(30));
        f.fulfill("done".to_string());
        assert_eq!(t.join().unwrap(), "done");
    }

    #[test]
    fn try_take_is_nonblocking() {
        let f = FutureValue::<u8>::new();
        assert_eq!(f.try_take().unwrap(), None);
        f.fulfill(9);
        assert_eq!(f.try_take().unwrap(), Some(9));
        assert!(f.try_take().is_err());
    }

    #[test]
    fn take_timeout_expires() {
        let f = FutureValue::<u8>::new();
        let err = f.take_timeout(Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, WeaveError::Timeout { .. }), "typed timeout: {err:?}");
        assert!(err.is_retryable());
        f.fulfill(1);
        assert_eq!(f.take_timeout(Duration::from_millis(20)).unwrap(), 1);
    }

    #[test]
    fn resolve_any_deadline_times_out_and_resolves() {
        // Pending future: the deadline expires with a typed Timeout.
        let f = FutureAny::new();
        let ret: AnyValue = AnyValue::new(f.clone());
        let err = resolve_any_deadline(ret, Some(Duration::from_millis(15))).unwrap_err();
        assert!(matches!(err, WeaveError::Timeout { .. }));
        // Fulfilled chain: resolves like resolve_any, deadline untouched.
        let inner = FutureAny::new();
        inner.fulfill(Ok(AnyValue::new(9u32)));
        let outer = FutureAny::new();
        outer.fulfill(Ok(AnyValue::new(inner)));
        let ret: AnyValue = AnyValue::new(outer);
        let v = resolve_any_deadline(ret, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(*v.downcast::<u32>().unwrap(), 9);
        // None deadline degrades to plain resolve_any.
        let plain: AnyValue = AnyValue::new(3u32);
        assert_eq!(*resolve_any_deadline(plain, None).unwrap().downcast::<u32>().unwrap(), 3);
    }

    #[test]
    fn future_any_carries_errors() {
        let f = FutureAny::new();
        f.fulfill(Err(WeaveError::app("remote blew up")));
        assert!(matches!(f.take(), Err(WeaveError::App(_))));
    }

    #[test]
    fn future_ret_now_path() {
        let ret: AnyValue = AnyValue::new(7u32);
        let v = future_ret::<u32>(ret).unwrap();
        assert!(v.is_ready());
        assert_eq!(v.take().unwrap(), 7);
    }

    #[test]
    fn future_ret_later_path() {
        let fut = FutureAny::new();
        let ret: AnyValue = AnyValue::new(fut.clone());
        let v = future_ret::<u32>(ret).unwrap();
        assert!(!v.is_ready());
        fut.fulfill(Ok(AnyValue::new(11u32)));
        assert_eq!(v.take().unwrap(), 11);
    }

    #[test]
    fn resolve_any_unwraps_chains() {
        // value -> future(value) -> future(future(value))
        let plain: AnyValue = AnyValue::new(5u32);
        assert_eq!(*resolve_any(plain).unwrap().downcast::<u32>().unwrap(), 5);

        let inner = FutureAny::new();
        inner.fulfill(Ok(AnyValue::new(6u32)));
        let outer = FutureAny::new();
        outer.fulfill(Ok(AnyValue::new(inner)));
        let ret: AnyValue = AnyValue::new(outer);
        assert_eq!(*resolve_any(ret).unwrap().downcast::<u32>().unwrap(), 6);
    }

    #[test]
    fn resolve_any_propagates_errors() {
        let f = FutureAny::new();
        f.fulfill(Err(WeaveError::app("downstream failed")));
        let ret: AnyValue = AnyValue::new(f);
        assert!(matches!(resolve_any(ret), Err(WeaveError::App(_))));
    }

    #[test]
    fn future_ret_type_mismatch() {
        let ret: AnyValue = AnyValue::new("string".to_string());
        assert!(future_ret::<u32>(ret).is_err());
    }

    #[test]
    fn many_waiters_one_winner() {
        let f = FutureValue::<u64>::new();
        let mut joins = Vec::new();
        for _ in 0..4 {
            let f = f.clone();
            joins.push(thread::spawn(move || f.take().is_ok()));
        }
        thread::sleep(Duration::from_millis(20));
        f.fulfill(5);
        let winners = joins.into_iter().map(|j| j.join().unwrap()).filter(|ok| *ok).count();
        assert_eq!(winners, 1, "exactly one taker must win");
    }

    #[test]
    fn debug_states() {
        let f = FutureValue::<u8>::new();
        assert_eq!(format!("{f:?}"), "FutureValue(pending)");
        f.fulfill(1);
        assert_eq!(format!("{f:?}"), "FutureValue(ready)");
        let _ = f.take();
        assert_eq!(format!("{f:?}"), "FutureValue(taken)");
    }
}
