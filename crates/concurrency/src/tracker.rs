//! Quiescence detection for asynchronous invocations.
//!
//! Asynchronous method calls return before the work is done, so clients (and
//! tests, and the benchmark harness) need a way to wait for *all* outstanding
//! work — including work transitively spawned by other asynchronous work.
//! A [`CompletionTracker`] counts in-flight tasks; [`CompletionTracker::wait_idle`]
//! blocks until the count reaches zero.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Counts in-flight tasks and lets callers block until none remain.
///
/// Cloning shares the counter. Registering and finishing a task is a single
/// atomic op — the asynchronous-invocation aspect calls `begin` once per
/// woven call, so the common path must not serialise spawners on a lock.
/// The mutex exists only to park waiters in `wait_idle`.
#[derive(Clone)]
pub struct CompletionTracker {
    inner: Arc<Inner>,
}

struct Inner {
    /// In its own `Arc` so a metrics registry can bind the live count as a
    /// queue-depth gauge without the tracker updating anything twice.
    count: Arc<AtomicUsize>,
    idle_lock: Mutex<()>,
    cv: Condvar,
}

/// RAII token for one in-flight task; dropping it marks the task finished.
pub struct TaskToken {
    inner: Arc<Inner>,
}

impl Drop for TaskToken {
    fn drop(&mut self) {
        // Release pairs with the Acquire load in `wait_idle`: a waiter woken
        // by the count reaching zero also sees the task's side effects.
        if self.inner.count.fetch_sub(1, Ordering::Release) == 1 {
            // Take the waiters' lock before notifying so a waiter cannot slip
            // between its count check and `cv.wait` and miss this wakeup.
            let _guard = self.inner.idle_lock.lock();
            self.inner.cv.notify_all();
        }
    }
}

impl CompletionTracker {
    /// A tracker with nothing in flight.
    pub fn new() -> Self {
        CompletionTracker {
            inner: Arc::new(Inner {
                count: Arc::new(AtomicUsize::new(0)),
                idle_lock: Mutex::new(()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Register one in-flight task. The returned token must travel with the
    /// task and be dropped when it finishes (a panic unwinding through the
    /// task still drops it, so a crashing task cannot wedge `wait_idle`).
    pub fn begin(&self) -> TaskToken {
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        TaskToken { inner: self.inner.clone() }
    }

    /// Register `n` in-flight tasks with a single counter increment — the
    /// batch-submission path (`spawn_batch`) registers a whole pack of tasks
    /// without `n` round-trips on the shared counter's cache line. Each
    /// returned token behaves exactly like one from [`begin`](Self::begin).
    pub fn begin_many(&self, n: usize) -> Vec<TaskToken> {
        if n == 0 {
            return Vec::new();
        }
        self.inner.count.fetch_add(n, Ordering::Relaxed);
        (0..n).map(|_| TaskToken { inner: self.inner.clone() }).collect()
    }

    /// True when `other` shares this tracker's counter (clone identity).
    pub fn same_as(&self, other: &CompletionTracker) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of tasks currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inner.count.load(Ordering::Acquire)
    }

    /// The live in-flight count cell, for binding as a queue-depth gauge in
    /// a metrics registry. Read-only use expected.
    pub fn in_flight_cell(&self) -> Arc<AtomicUsize> {
        self.inner.count.clone()
    }

    /// Block until no task is in flight.
    pub fn wait_idle(&self) {
        let mut guard = self.inner.idle_lock.lock();
        while self.inner.count.load(Ordering::Acquire) > 0 {
            self.inner.cv.wait(&mut guard);
        }
    }

    /// Block until idle or the timeout elapses; returns true when idle.
    pub fn wait_idle_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.inner.idle_lock.lock();
        while self.inner.count.load(Ordering::Acquire) > 0 {
            if self.inner.cv.wait_until(&mut guard, deadline).timed_out() {
                return self.inner.count.load(Ordering::Acquire) == 0;
            }
        }
        true
    }
}

impl Default for CompletionTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CompletionTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionTracker").field("in_flight", &self.in_flight()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_idle() {
        let t = CompletionTracker::new();
        assert_eq!(t.in_flight(), 0);
        t.wait_idle(); // must not block
    }

    #[test]
    fn token_lifecycle() {
        let t = CompletionTracker::new();
        let tok = t.begin();
        assert_eq!(t.in_flight(), 1);
        drop(tok);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn begin_many_mints_independent_tokens() {
        let t = CompletionTracker::new();
        let tokens = t.begin_many(5);
        assert_eq!(t.in_flight(), 5);
        for tok in tokens {
            drop(tok);
        }
        assert_eq!(t.in_flight(), 0);
        assert!(t.begin_many(0).is_empty());
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn wait_idle_blocks_until_tokens_dropped() {
        let t = CompletionTracker::new();
        let tok = t.begin();
        let t2 = t.clone();
        let waiter = thread::spawn(move || {
            t2.wait_idle();
            Instant::now()
        });
        thread::sleep(Duration::from_millis(40));
        let released_at = Instant::now();
        drop(tok);
        let woke_at = waiter.join().unwrap();
        assert!(woke_at >= released_at);
    }

    #[test]
    fn nested_spawns_are_covered() {
        let t = CompletionTracker::new();
        let outer = t.begin();
        let t2 = t.clone();
        thread::spawn(move || {
            let _outer = outer; // finishes only after inner is registered
            let inner = t2.begin();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(30));
                drop(inner);
            });
        });
        t.wait_idle();
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn timeout_reports_busy() {
        let t = CompletionTracker::new();
        let _tok = t.begin();
        assert!(!t.wait_idle_timeout(Duration::from_millis(20)));
        drop(_tok);
        assert!(t.wait_idle_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn panic_in_task_still_releases() {
        let t = CompletionTracker::new();
        let tok = t.begin();
        let handle = thread::spawn(move || {
            let _tok = tok;
            panic!("task crashed");
        });
        assert!(handle.join().is_err());
        assert!(t.wait_idle_timeout(Duration::from_millis(200)));
    }
}
