//! Mandelbrot rendering — the farm-with-separable-dependencies category.
//!
//! Core functionality: [`Mandelbrot`] renders iteration counts for a row
//! range of the complex plane. Rows are independent, so a farm aspect (or a
//! dynamic farm — row costs are wildly uneven near the set boundary, the
//! textbook case for demand-driven assignment) parallelises it without core
//! changes.

use std::sync::Arc;

use weavepar::concurrency::resolve_any;
use weavepar::prelude::*;
use weavepar::weave::value::downcast_ret;
use weavepar::weave::Pack;
use weavepar::{args, ret, weaveable};

/// Escape-iteration count for one point (the classic inner loop).
pub fn escape_count(cx: f64, cy: f64, max_iter: u64) -> u64 {
    let (mut x, mut y) = (0.0f64, 0.0f64);
    let mut i = 0;
    while i < max_iter && x * x + y * y <= 4.0 {
        let nx = x * x - y * y + cx;
        y = 2.0 * x * y + cy;
        x = nx;
        i += 1;
    }
    i
}

/// The sequential renderer: a fixed viewport on the complex plane.
pub struct Mandelbrot {
    width: u64,
    height: u64,
    max_iter: u64,
}

weaveable! {
    class Mandelbrot as MandelbrotProxy {
        fn new(width: u64, height: u64, max_iter: u64) -> Self {
            Mandelbrot { width, height, max_iter }
        }

        /// Render the given rows; returns `rows.len() * width` iteration
        /// counts in row-major order.
        fn render_rows(&mut self, rows: Pack) -> Pack {
            let mut out = Vec::with_capacity(rows.len() * self.width as usize);
            for row in rows.as_slice().iter().copied() {
                let cy = -1.25 + 2.5 * (row as f64) / (self.height.max(1) as f64);
                for col in 0..self.width {
                    let cx = -2.0 + 2.75 * (col as f64) / (self.width.max(1) as f64);
                    out.push(escape_count(cx, cy, self.max_iter));
                }
            }
            Pack::from_vec(out)
        }
    }
}

/// Render the whole image sequentially (reference implementation).
pub fn render_sequential(width: u64, height: u64, max_iter: u64) -> Vec<u64> {
    let mut m = Mandelbrot::new(width, height, max_iter);
    m.render_rows((0..height).collect::<Pack>()).to_vec()
}

/// The farm protocol for the renderer: `workers` broadcast-constructed
/// renderers, the row list split into `packs` row blocks, outputs
/// concatenated in row order.
pub fn mandel_protocol(workers: usize, packs: usize) -> Protocol {
    Protocol {
        class: "Mandelbrot",
        method: "render_rows",
        workers,
        worker_args: Arc::new(|_rank, _n, orig: &Args| {
            Ok(args![*orig.get::<u64>(0)?, *orig.get::<u64>(1)?, *orig.get::<u64>(2)?])
        }),
        split: Arc::new(move |a: &Args| {
            let rows = a.get::<Pack>(0)?;
            if rows.is_empty() {
                return Ok(Vec::new());
            }
            let chunk = rows.len().div_ceil(packs.max(1)).max(1);
            // Copy-on-write split: row blocks alias the row list's allocation.
            Ok(rows.split_chunks(chunk).into_iter().map(|p| args![p]).collect())
        }),
        reforward: Arc::new(|v: AnyValue| Ok(Args::from_value(v))),
        combine: Arc::new(|vs: Vec<AnyValue>| {
            let mut parts = Vec::with_capacity(vs.len());
            for v in vs {
                parts.push(downcast_ret::<Pack>(v)?);
            }
            Ok(ret!(Pack::concat(&parts)))
        }),
    }
}

/// Render with a static farm (optionally with the concurrency module).
pub fn render_farmed(
    width: u64,
    height: u64,
    max_iter: u64,
    workers: usize,
    packs: usize,
    concurrent: bool,
) -> WeaveResult<Vec<u64>> {
    let stack = ConcernStack::new();
    stack.plug(
        Concern::Partition,
        FarmConfig::new(mandel_protocol(workers, packs)).aspect("Partition.farm"),
    );
    let executor = if concurrent {
        let executor = Executor::thread_per_call();
        stack.plug_all(
            Concern::Concurrency,
            future_concurrency_aspect(
                "Concurrency",
                Pointcut::call("Mandelbrot.render_rows"),
                executor.clone(),
            ),
        );
        Some(executor)
    } else {
        None
    };
    let m = MandelbrotProxy::construct(stack.weaver(), width, height, max_iter)?;
    let raw = m.handle().call("render_rows", args![(0..height).collect::<Pack>()])?;
    let image: Pack = downcast_ret(resolve_any(raw)?)?;
    if let Some(executor) = executor {
        executor.wait_idle();
    }
    Ok(image.to_vec())
}

/// Render with the dynamic farm (demand-driven row blocks).
pub fn render_dynamic(
    width: u64,
    height: u64,
    max_iter: u64,
    workers: usize,
    packs: usize,
) -> WeaveResult<Vec<u64>> {
    let stack = ConcernStack::new();
    stack.plug(
        Concern::Partition,
        DynamicFarmConfig::new(mandel_protocol(workers, packs)).aspect("Partition.dynamic-farm"),
    );
    let m = MandelbrotProxy::construct(stack.weaver(), width, height, max_iter)?;
    let image = m.render_rows((0..height).collect::<Pack>())?;
    Ok(image.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_count_basics() {
        // The origin never escapes.
        assert_eq!(escape_count(0.0, 0.0, 100), 100);
        // Far outside the set, escapes immediately.
        assert_eq!(escape_count(10.0, 10.0, 100), 1);
    }

    #[test]
    fn sequential_render_shape() {
        let img = render_sequential(16, 8, 50);
        assert_eq!(img.len(), 16 * 8);
        // Interior points reach max_iter, exterior don't: image not constant.
        assert!(img.contains(&50));
        assert!(img.iter().any(|c| *c < 50));
    }

    #[test]
    fn farmed_matches_sequential() {
        let reference = render_sequential(24, 12, 40);
        for (workers, packs, concurrent) in [(1, 1, false), (3, 4, false), (4, 6, true)] {
            let farmed = render_farmed(24, 12, 40, workers, packs, concurrent).unwrap();
            assert_eq!(farmed, reference, "workers={workers} packs={packs} conc={concurrent}");
        }
    }

    #[test]
    fn dynamic_matches_sequential() {
        let reference = render_sequential(20, 10, 30);
        let dynamic = render_dynamic(20, 10, 30, 3, 5).unwrap();
        assert_eq!(dynamic, reference);
    }

    #[test]
    fn empty_image() {
        assert_eq!(render_sequential(8, 0, 10), Vec::<u64>::new());
        assert_eq!(render_farmed(8, 0, 10, 2, 2, false).unwrap(), Vec::<u64>::new());
    }
}
