//! 2-D heat diffusion (Jacobi, 5-point stencil) on the heartbeat protocol.
//!
//! The full-strength heartbeat: the grid is split into **row blocks**, and
//! every iteration exchanges whole boundary *rows* between neighbouring
//! blocks before stepping — §4.1's "full data set ... initially distributed
//! into several objects in a block fashion; between iterations, the
//! partition code must exchange updated data among objects".

use std::sync::Arc;

use weavepar::concurrency::resolve_any;
use weavepar::prelude::*;
use weavepar::weave::value::downcast_ret;
use weavepar::{args, ret, weaveable};

/// A horizontal slab of the grid with halo rows above and below.
/// Side boundaries are fixed at 0.
///
/// Halo rows are `Arc<[f64]>` so the per-iteration exchange shares one
/// allocation between the publishing slab and both neighbours instead of
/// cloning each row per receiver; `next` is a persistent scratch buffer so
/// `step` swaps instead of allocating.
pub struct Slab {
    width: u64,
    cells: Vec<f64>, // rows × width, row-major
    next: Vec<f64>,
    top_halo: Arc<[f64]>,
    bottom_halo: Arc<[f64]>,
}

impl Slab {
    fn rows(&self) -> usize {
        if self.width == 0 {
            0
        } else {
            self.cells.len() / self.width as usize
        }
    }
}

weaveable! {
    class Slab as SlabProxy {
        fn new(width: u64, height: u64, initial: f64, top: f64, bottom: f64) -> Self {
            Slab {
                width,
                cells: vec![initial; (width * height) as usize],
                next: vec![initial; (width * height) as usize],
                top_halo: vec![top; width as usize].into(),
                bottom_halo: vec![bottom; width as usize].into(),
            }
        }

        fn set_halo_rows(&mut self, top: Arc<[f64]>, bottom: Arc<[f64]>) {
            if top.len() == self.top_halo.len() {
                self.top_halo = top;
            }
            if bottom.len() == self.bottom_halo.len() {
                self.bottom_halo = bottom;
            }
        }

        fn edge_rows(&mut self) -> (Arc<[f64]>, Arc<[f64]>) {
            let w = self.width as usize;
            let rows = self.rows();
            if rows == 0 {
                return (self.top_halo.clone(), self.bottom_halo.clone());
            }
            // One shared allocation per edge row; both neighbours keep an
            // Arc handle instead of their own copy.
            (self.cells[..w].into(), self.cells[(rows - 1) * w..].into())
        }

        fn step(&mut self) {
            let w = self.width as usize;
            let rows = self.rows();
            if w == 0 || rows == 0 {
                return;
            }
            for r in 0..rows {
                for c in 0..w {
                    let up = if r == 0 { self.top_halo[c] } else { self.cells[(r - 1) * w + c] };
                    let down =
                        if r + 1 == rows { self.bottom_halo[c] } else { self.cells[(r + 1) * w + c] };
                    let left = if c == 0 { 0.0 } else { self.cells[r * w + c - 1] };
                    let right = if c + 1 == w { 0.0 } else { self.cells[r * w + c + 1] };
                    self.next[r * w + c] = (up + down + left + right) / 4.0;
                }
            }
            std::mem::swap(&mut self.cells, &mut self.next);
        }

        fn snapshot(&mut self) -> Vec<f64> {
            self.cells.clone()
        }

        fn run(&mut self, iterations: u64) -> Vec<f64> {
            for _ in 0..iterations {
                self.step();
            }
            self.cells.clone()
        }
    }
}

/// Sequential reference: one slab covering the whole grid.
pub fn solve2d_sequential(
    width: u64,
    height: u64,
    initial: f64,
    top: f64,
    bottom: f64,
    iterations: u64,
) -> Vec<f64> {
    let mut slab = Slab::new(width, height, initial, top, bottom);
    slab.run(iterations)
}

/// The heartbeat configuration for the 2-D grid: row-block partition,
/// halo-row exchange, row-major reassembly.
pub fn heat2d_config(workers: usize) -> HeartbeatConfig {
    HeartbeatConfig {
        class: "Slab",
        workers,
        worker_args: Arc::new(move |rank, n, orig: &Args| {
            let width = *orig.get::<u64>(0)?;
            let height = *orig.get::<u64>(1)?;
            let initial = *orig.get::<f64>(2)?;
            let top = *orig.get::<f64>(3)?;
            let bottom = *orig.get::<f64>(4)?;
            let base = height / n as u64;
            let extra = (height % n as u64) as usize;
            let block = base + u64::from(rank < extra);
            // Interior halos start at the initial temperature; the exchange
            // phase refreshes them before the first step.
            let top_halo = if rank == 0 { top } else { initial };
            let bottom_halo = if rank + 1 == n { bottom } else { initial };
            Ok(args![width, block, initial, top_halo, bottom_halo])
        }),
        run_method: "run",
        iterations: Arc::new(|a: &Args| Ok(*a.get::<u64>(0)?)),
        step_method: "step",
        step_args: Arc::new(|_iter| Ok(args![])),
        exchange: Arc::new(|weaver: &Weaver, workers: &[ObjId], _iter| {
            let mut edges = Vec::with_capacity(workers.len());
            for &w in workers {
                let raw = weaver.invoke_call(w, "Slab", "edge_rows", args![])?;
                edges.push(downcast_ret::<(Arc<[f64]>, Arc<[f64]>)>(resolve_any(raw)?)?);
            }
            let empty: Arc<[f64]> = Arc::from(&[][..]);
            for (i, &w) in workers.iter().enumerate() {
                // Cloning an Arc shares the published row; no data copies.
                let top = if i == 0 {
                    empty.clone() // keep the fixed boundary halo
                } else {
                    edges[i - 1].1.clone()
                };
                let bottom =
                    if i + 1 == workers.len() { empty.clone() } else { edges[i + 1].0.clone() };
                if !top.is_empty() || !bottom.is_empty() {
                    // Empty rows are ignored by set_halo_rows (length
                    // mismatch), preserving fixed outer halos.
                    let raw = weaver.invoke_call(w, "Slab", "set_halo_rows", args![top, bottom])?;
                    resolve_any(raw)?;
                }
            }
            Ok(())
        }),
        collect: Arc::new(|weaver: &Weaver, workers: &[ObjId]| {
            let mut all = Vec::new();
            for &w in workers {
                let raw = weaver.invoke_call(w, "Slab", "snapshot", args![])?;
                all.extend(downcast_ret::<Vec<f64>>(resolve_any(raw)?)?);
            }
            Ok(ret!(all))
        }),
    }
}

/// Solve the 2-D problem over `workers` row blocks.
pub fn solve2d_heartbeat(
    width: u64,
    height: u64,
    initial: f64,
    top: f64,
    bottom: f64,
    iterations: u64,
    workers: usize,
) -> WeaveResult<Vec<f64>> {
    // Never create empty row blocks: a slab with no rows cannot relay halo
    // rows, which would break the exchange chain.
    let workers = workers.clamp(1, height.max(1) as usize);
    let stack = ConcernStack::new();
    stack.plug(Concern::Partition, heat2d_config(workers).aspect("Partition.heartbeat2d"));
    let slab = SlabProxy::construct(stack.weaver(), width, height, initial, top, bottom)?;
    slab.run(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn stencil_basics() {
        // A single cell surrounded by halos top=4, bottom=8, sides 0:
        // one step gives (4+8+0+0)/4 = 3.
        let mut s = Slab::new(1, 1, 0.0, 4.0, 8.0);
        s.step();
        assert_eq!(s.snapshot(), vec![3.0]);
    }

    #[test]
    fn edge_rows_and_halos() {
        let mut s = Slab::new(3, 2, 1.0, 9.0, 9.0);
        let (top, bottom) = s.edge_rows();
        assert_eq!(&top[..], &[1.0; 3]);
        assert_eq!(&bottom[..], &[1.0; 3]);
        s.set_halo_rows(vec![2.0; 3].into(), vec![4.0; 3].into());
        s.step();
        // Middle cell of top row: (2 + 1 + 1 + 1)/4 = 1.25.
        assert_eq!(s.snapshot()[1], 1.25);
        // Mismatched halo length is ignored.
        s.set_halo_rows(vec![0.0; 2].into(), Vec::new().into());
        let snap_before = s.snapshot();
        s.step();
        assert_ne!(s.snapshot(), snap_before); // still stepping with old halos
    }

    #[test]
    fn heartbeat2d_matches_sequential() {
        let reference = solve2d_sequential(8, 12, 0.0, 10.0, 2.0, 30);
        for workers in [1usize, 2, 3, 4] {
            let got = solve2d_heartbeat(8, 12, 0.0, 10.0, 2.0, 30, workers).unwrap();
            assert!(close(&got, &reference), "workers={workers}");
        }
    }

    #[test]
    fn uneven_row_blocks() {
        // 7 rows over 3 workers: blocks of 3, 2, 2.
        let reference = solve2d_sequential(5, 7, 0.5, 1.0, -1.0, 20);
        let got = solve2d_heartbeat(5, 7, 0.5, 1.0, -1.0, 20, 3).unwrap();
        assert!(close(&got, &reference));
    }

    #[test]
    fn zero_iterations_identity() {
        let got = solve2d_heartbeat(4, 4, 0.25, 0.0, 0.0, 0, 2).unwrap();
        assert_eq!(got, vec![0.25; 16]);
    }

    #[test]
    fn long_run_converges_towards_harmonic_profile() {
        // With top=1, bottom=0 and zero sides, the steady state is harmonic;
        // at least verify monotone vertical ordering in the middle column.
        let width = 9u64;
        let height = 9u64;
        let out = solve2d_sequential(width, height, 0.0, 1.0, 0.0, 3_000);
        let mid = (width / 2) as usize;
        for r in 0..(height as usize - 1) {
            let upper = out[r * width as usize + mid];
            let lower = out[(r + 1) * width as usize + mid];
            assert!(upper >= lower - 1e-12, "row {r}: {upper} < {lower}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Heartbeat decomposition is exact for any worker count and shape.
        #[test]
        fn decomposition_is_exact(width in 1u64..8, height in 1u64..10,
                                  workers in 1usize..5, iterations in 0u64..12,
                                  top in -2.0f64..2.0, bottom in -2.0f64..2.0) {
            let reference = solve2d_sequential(width, height, 0.0, top, bottom, iterations);
            let got = solve2d_heartbeat(width, height, 0.0, top, bottom, iterations, workers).unwrap();
            prop_assert_eq!(reference.len(), got.len());
            for (a, b) in reference.iter().zip(&got) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
