//! # weavepar-apps — the case-study applications
//!
//! Three applications, one per partition-strategy category named in the
//! paper's conclusion ("pipeline, farm with separable dependencies and
//! heartbeat"):
//!
//! * [`sieve`] — the paper's §5 case study: a prime-number sieve whose
//!   sequential core (`PrimeFilter`) is parallelised by plugging pipeline /
//!   farm / dynamic-farm partition aspects, the concurrency module, and the
//!   RMI- or MPP-style distribution aspects — every combination of the
//!   paper's Table 1, plus the hand-coded RMI baseline of Figure 16;
//! * [`mandel`] — a Mandelbrot renderer farmed over row blocks (farm with
//!   separable dependencies);
//! * [`heat`] — a 1-D Jacobi heat-diffusion solver on the heartbeat
//!   protocol (block partition + per-iteration boundary exchange);
//! * [`sort`] — merge sort on the divide-and-conquer protocol (§4.1's
//!   object-creation-at-call-join-points remark).
//!
//! Each application keeps its core functionality as a perfectly ordinary
//! sequential type (directly usable — and unit-tested — without any weaver)
//! and exposes `build`/`run` helpers that assemble the requested concern
//! stack.

pub mod heat;
pub mod heat2d;
pub mod mandel;
pub mod sieve;
pub mod sort;

pub use sieve::{build_sieve, run_sieve, Middleware, PartitionStrategy, SieveConfig, SieveRun};
