//! The sieve's core functionality (paper §5.1).
//!
//! ```java
//! public class PrimeFilter {
//!     // calculates primes between [pmin,pmax]
//!     public PrimeFilter(int pmin, int pmax);
//!     // remove non-primes from num list
//!     public void filter(int num[]);
//! }
//! ```
//!
//! The one deviation from the Java sketch: `filter` *returns* the surviving
//! candidates instead of mutating a shared array — Rust (like RMI!) passes
//! arrays by value, so survivors must flow explicitly. The pipeline's
//! forward advice forwards each stage's output, which is also the only
//! reading under which the paper's by-value RMI variant computes correct
//! results.

use weavepar::weave::Pack;
use weavepar::weaveable;

/// Integer square root (largest `r` with `r*r <= n`).
pub fn isqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    // Float guess, corrected with overflow-checked arithmetic (a saturating
    // square cannot distinguish "overflowed" from "equals u64::MAX").
    let mut r = (n as f64).sqrt() as u64;
    while r.checked_mul(r).is_none_or(|sq| sq > n) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= n) {
        r += 1;
    }
    r
}

/// All primes `<= n`, by a plain sieve of Eratosthenes (the pre-calculation
/// step of §5: "pre-calculates the primes up to the square root of the
/// largest number").
pub fn primes_upto(n: u64) -> Vec<u64> {
    if n < 2 {
        return Vec::new();
    }
    let n = n as usize;
    let mut composite = vec![false; n + 1];
    let mut primes = Vec::new();
    for p in 2..=n {
        if !composite[p] {
            primes.push(p as u64);
            let mut multiple = p * p;
            while multiple <= n {
                composite[multiple] = true;
                multiple += p;
            }
        }
    }
    primes
}

/// The candidate list the paper sends through the pipeline: "only odd
/// numbers are sent" — odd numbers in `[3, max]`.
pub fn candidates(max: u64) -> Vec<u64> {
    (3..=max).step_by(2).collect()
}

/// The sieve's core class.
pub struct PrimeFilter {
    primes: Vec<u64>,
}

impl PrimeFilter {
    /// The primes this filter divides by (used by tests and the handcoded
    /// baseline).
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Rebuild a filter from a snapshotted prime set (migration support).
    pub fn from_primes(primes: Vec<u64>) -> Self {
        PrimeFilter { primes }
    }
}

weaveable! {
    class PrimeFilter as PrimeFilterProxy {
        fn new(pmin: u64, pmax: u64) -> Self {
            // Primes in [pmin, pmax]: the range of divisors this filter owns.
            let primes = primes_upto(pmax).into_iter().filter(|p| *p >= pmin).collect();
            PrimeFilter { primes }
        }

        fn filter(&mut self, nums: Pack) -> Pack {
            // Remove every multiple of one of our primes; a number equal to
            // the prime itself is of course kept. The input pack is a shared
            // view (splits alias one allocation); survivors go to a fresh
            // pack, since the length shrinks.
            nums.as_slice()
                .iter()
                .copied()
                .filter(|n| self.primes.iter().all(|p| n % p != 0 || n == p))
                .collect()
        }
    }
}

/// The fully sequential sieve of §5.1's `main`: one `PrimeFilter` over the
/// whole pre-prime range, filtering the whole candidate list in one call.
/// Returns all primes `<= max`.
pub fn sequential_sieve(max: u64) -> Vec<u64> {
    if max < 2 {
        return Vec::new();
    }
    let mut filter = PrimeFilter::new(2, isqrt(max));
    let survivors = filter.filter(Pack::from_vec(candidates(max)));
    let mut primes = vec![2];
    primes.extend_from_slice(survivors.as_slice());
    primes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_basics() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(2), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(10_000_000), 3162);
        assert_eq!(isqrt(u64::MAX), u32::MAX as u64);
    }

    #[test]
    fn primes_upto_small() {
        assert_eq!(primes_upto(0), Vec::<u64>::new());
        assert_eq!(primes_upto(1), Vec::<u64>::new());
        assert_eq!(primes_upto(2), vec![2]);
        assert_eq!(primes_upto(20), vec![2, 3, 5, 7, 11, 13, 17, 19]);
        assert_eq!(primes_upto(3162).len(), 446, "the paper's pre-prime count for 10M");
    }

    #[test]
    fn candidates_are_odd_and_bounded() {
        assert_eq!(candidates(10), vec![3, 5, 7, 9]);
        assert_eq!(candidates(2), Vec::<u64>::new());
        assert!(candidates(101).contains(&101));
    }

    #[test]
    fn filter_removes_multiples_keeps_primes() {
        let mut f = PrimeFilter::new(2, 5);
        assert_eq!(f.primes(), &[2, 3, 5]);
        let out = f.filter(Pack::from_slice(&[3, 5, 7, 9, 15, 25, 49, 121]));
        // 3 and 5 equal a divisor: kept. 9=3·3, 15, 25 removed. 49, 121
        // survive (7 and 11 are outside this filter's range).
        assert_eq!(out.to_vec(), vec![3, 5, 7, 49, 121]);
    }

    #[test]
    fn filter_range_restricts_divisors() {
        let mut f = PrimeFilter::new(5, 11);
        assert_eq!(f.primes(), &[5, 7, 11]);
        // 9 survives: 3 is not among this filter's divisors.
        assert_eq!(f.filter(Pack::from_slice(&[9, 25, 35, 13])).to_vec(), vec![9, 13]);
    }

    #[test]
    fn sequential_sieve_matches_reference() {
        for max in [2u64, 3, 10, 100, 1000, 7919] {
            assert_eq!(sequential_sieve(max), primes_upto(max), "max={max}");
        }
        assert!(sequential_sieve(1).is_empty());
    }

    #[test]
    fn paper_scale_counts() {
        // π(10^6) = 78498 — checks the core at a meaningful size.
        assert_eq!(sequential_sieve(1_000_000).len(), 78_498);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn is_prime_naive(n: u64) -> bool {
        if n < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= n {
            if n.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    }

    proptest! {
        /// The sequential sieve agrees with naive primality testing.
        #[test]
        fn sieve_equals_naive(max in 2u64..3000) {
            let sieved = sequential_sieve(max);
            let naive: Vec<u64> = (2..=max).filter(|n| is_prime_naive(*n)).collect();
            prop_assert_eq!(sieved, naive);
        }

        /// isqrt is exact.
        #[test]
        fn isqrt_exact(n in 0u64..u64::MAX / 2) {
            let r = isqrt(n);
            prop_assert!(r * r <= n);
            prop_assert!((r + 1).saturating_mul(r + 1) > n);
        }

        /// Filtering is idempotent and order-preserving.
        #[test]
        fn filter_idempotent(max in 10u64..500) {
            let mut f = PrimeFilter::new(2, isqrt(max));
            let once = f.filter(Pack::from_vec(candidates(max)));
            let twice = f.filter(once.clone());
            prop_assert_eq!(once.clone(), twice);
            let mut sorted = once.to_vec();
            sorted.sort_unstable();
            prop_assert_eq!(once.to_vec(), sorted);
        }

        /// Splitting the divisor range across two filters composes to the
        /// same result as one filter over the whole range — the invariant
        /// that makes the pipeline partition correct.
        #[test]
        fn range_split_composes(max in 10u64..2000, cut_frac in 0.0f64..1.0) {
            let sqrt = isqrt(max);
            let cut = 2 + ((sqrt.saturating_sub(2)) as f64 * cut_frac) as u64;
            let mut whole = PrimeFilter::new(2, sqrt);
            let mut lo = PrimeFilter::new(2, cut);
            let mut hi = PrimeFilter::new(cut + 1, sqrt);
            let cands = Pack::from_vec(candidates(max));
            let expect = whole.filter(cands.clone());
            let composed = hi.filter(lo.filter(cands));
            prop_assert_eq!(expect, composed);
        }
    }
}
