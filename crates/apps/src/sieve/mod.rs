//! The paper's §5 case study: the prime-number sieve.
//!
//! * [`core`] — the sequential core functionality (`PrimeFilter`), exactly
//!   the two-method shape of §5.1;
//! * [`variants`] — assembly of every module combination in the paper's
//!   Table 1 by plugging partition / concurrency / distribution aspects;
//! * [`handcoded`] — the hand-written RMI pipeline used as the "Java"
//!   baseline in Figure 16 (no weaving anywhere).

pub mod core;
pub mod handcoded;
pub mod variants;

pub use self::core::{
    candidates, isqrt, primes_upto, sequential_sieve, PrimeFilter, PrimeFilterProxy,
};
pub use handcoded::run_handcoded_rmi;
pub use variants::{build_sieve, run_sieve, Middleware, PartitionStrategy, SieveConfig, SieveRun};
