//! The hand-coded RMI pipeline — Figure 16's "Java" baseline.
//!
//! This is what the paper compares the woven version against: the same
//! pipeline-over-RMI structure written directly against the middleware, with
//! the partition, threading and distribution logic tangled into the driver —
//! no weaver, no aspects, no join points. Functionally identical output;
//! structurally everything the methodology argues against.

use crossbeam::channel::unbounded;

use weavepar::args;
use weavepar::distribution::{InProcFabric, MarshalRegistry, RemoteRef};
use weavepar::weave::{Pack, WeaveError, WeaveResult};

use super::core::{candidates, isqrt, PrimeFilter};
use super::variants::stage_ranges;

fn marshal() -> MarshalRegistry {
    let m = MarshalRegistry::new();
    m.register::<(u64, u64), ()>("PrimeFilter", "new");
    m.register::<(Pack,), Pack>("PrimeFilter", "filter");
    m
}

/// Run the hand-coded RMI pipeline: `filters` stages spread round-robin over
/// `nodes` nodes, `packs` packs pushed through by one client thread per pack.
/// Returns all primes `<= max`.
pub fn run_handcoded_rmi(
    max: u64,
    filters: usize,
    packs: usize,
    nodes: usize,
) -> WeaveResult<Vec<u64>> {
    if max < 2 {
        return Ok(Vec::new());
    }
    if max == 2 {
        return Ok(vec![2]);
    }

    let fabric = InProcFabric::new(nodes, marshal());
    fabric.register_class::<PrimeFilter>();

    // Server side: create and register each stage (Figure 14's main).
    let mut stages: Vec<RemoteRef> = Vec::with_capacity(filters);
    for (i, (lo, hi)) in stage_ranges(2, isqrt(max), filters).into_iter().enumerate() {
        let ctor = fabric.marshal().encode_args("PrimeFilter", "new", &args![lo, hi])?;
        let remote = fabric.construct_on(i % nodes.max(1), "PrimeFilter", ctor)?;
        let name = fabric.nameserver().next_name("PS");
        fabric.nameserver().rebind(&name, remote);
        // Client side: obtain the reference through the name server.
        stages.push(fabric.nameserver().lookup(&name)?);
    }

    // Client side: one thread per pack pushes it through every stage.
    let cands = candidates(max);
    if cands.is_empty() {
        return Ok(vec![2]);
    }
    let chunk = cands.len().div_ceil(packs.max(1)).max(1);
    let (tx, rx) = unbounded::<(usize, WeaveResult<Pack>)>();
    let mut spawned = 0usize;
    std::thread::scope(|scope| {
        for (index, pack) in cands.chunks(chunk).enumerate() {
            spawned += 1;
            let tx = tx.clone();
            let fabric = fabric.clone();
            let stages = stages.clone();
            let pack = Pack::from_slice(pack);
            scope.spawn(move || {
                let result = (|| {
                    let mut data = pack;
                    for stage in &stages {
                        let bytes =
                            fabric.marshal().encode_args("PrimeFilter", "filter", &args![data])?;
                        let reply = fabric
                            .call(*stage, "filter", bytes, true)?
                            .ok_or_else(|| WeaveError::remote("missing reply"))?;
                        let ret = fabric.marshal().decode_ret("PrimeFilter", "filter", &reply)?;
                        data = *ret
                            .downcast::<Pack>()
                            .map_err(|_| WeaveError::remote("bad filter reply type"))?;
                    }
                    Ok(data)
                })();
                let _ = tx.send((index, result));
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<Pack>> = vec![None; spawned];
    for (index, result) in rx {
        slots[index] = Some(result?);
    }
    let mut primes = vec![2];
    for slot in slots {
        primes.extend_from_slice(slot.ok_or_else(|| WeaveError::remote("lost a pack"))?.as_slice());
    }
    Ok(primes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sieve::core::sequential_sieve;

    #[test]
    fn handcoded_matches_sequential() {
        for (filters, packs, nodes) in [(1, 1, 1), (3, 4, 2), (4, 8, 3), (7, 5, 7)] {
            let got = run_handcoded_rmi(3_000, filters, packs, nodes).unwrap();
            assert_eq!(
                got,
                sequential_sieve(3_000),
                "filters={filters} packs={packs} nodes={nodes}"
            );
        }
    }

    #[test]
    fn handcoded_tiny_maxima() {
        assert_eq!(run_handcoded_rmi(0, 2, 2, 2).unwrap(), Vec::<u64>::new());
        assert_eq!(run_handcoded_rmi(2, 2, 2, 2).unwrap(), vec![2]);
        assert_eq!(run_handcoded_rmi(3, 2, 2, 2).unwrap(), vec![2, 3]);
    }

    #[test]
    fn handcoded_matches_woven_piperri() {
        use crate::sieve::variants::{build_sieve, run_sieve, SieveConfig};
        let woven = build_sieve(SieveConfig { packs: 6, nodes: 3, ..SieveConfig::pipe_rmi(4) });
        let a = run_sieve(&woven, 2_000).unwrap();
        let b = run_handcoded_rmi(2_000, 4, 6, 3).unwrap();
        assert_eq!(a, b, "hand-coded and woven pipelines must agree");
    }
}
