//! Assembly of the paper's Table 1 module combinations.
//!
//! | label       | partition    | concurrency | distribution |
//! |-------------|--------------|-------------|--------------|
//! | FarmThreads | Farm         | yes         | –            |
//! | PipeRMI     | Pipeline     | yes         | RMI          |
//! | FarmRMI     | Farm         | yes         | RMI          |
//! | FarmDRMI    | Dynamic farm | (merged)    | RMI          |
//! | FarmMPP     | Farm         | yes         | MPP          |
//!
//! Each combination is obtained purely by plugging aspects into a
//! [`ConcernStack`]; the core functionality ([`PrimeFilter`]) and the driver
//! ([`run_sieve`]) are byte-for-byte identical across all of them — the
//! paper's central claim.

use std::sync::Arc;

use weavepar::concurrency::resolve_any;
use weavepar::prelude::*;
use weavepar::skeletons::RankedArgsFn;
use weavepar::weave::value::downcast_ret;
use weavepar::{args, ret};

use super::core::{candidates, isqrt, primes_upto, PrimeFilter, PrimeFilterProxy};

/// Which partition aspect to plug (§4.1, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Each filter owns a contiguous range of the pre-primes; packs traverse
    /// the whole chain (Figure 7).
    Pipeline,
    /// Every filter owns all pre-primes; each pack goes to one filter
    /// (Figure 10).
    Farm,
    /// Farm with demand-driven pack assignment (partition and concurrency
    /// merged, as the paper concedes for this strategy).
    DynamicFarm,
}

/// Which distribution aspect to plug (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Middleware {
    /// No distribution: shared-memory threads only.
    None,
    /// The RMI-style middleware (name server + synchronous calls).
    Rmi,
    /// The MPP-style middleware (direct node addressing).
    Mpp,
}

/// A full module combination plus workload shape.
#[derive(Debug, Clone, Copy)]
pub struct SieveConfig {
    /// Partition aspect.
    pub partition: PartitionStrategy,
    /// Plug the concurrency module?
    pub concurrency: bool,
    /// Distribution aspect.
    pub middleware: Middleware,
    /// Number of `PrimeFilter` instances (the figures' x-axis).
    pub filters: usize,
    /// Number of packs the candidate list is split into (the paper: 50).
    pub packs: usize,
    /// Fabric size when distributed (the paper: 7 nodes).
    pub nodes: usize,
}

impl SieveConfig {
    fn base(partition: PartitionStrategy, middleware: Middleware, filters: usize) -> Self {
        SieveConfig { partition, concurrency: true, middleware, filters, packs: 50, nodes: 7 }
    }

    /// Partition only — no concurrency, no distribution (debugging mode).
    pub fn sequential_pipeline(filters: usize) -> Self {
        SieveConfig {
            concurrency: false,
            ..Self::base(PartitionStrategy::Pipeline, Middleware::None, filters)
        }
    }

    /// Table 1 `FarmThreads`.
    pub fn farm_threads(filters: usize) -> Self {
        Self::base(PartitionStrategy::Farm, Middleware::None, filters)
    }

    /// Table 1 `PipeRMI`.
    pub fn pipe_rmi(filters: usize) -> Self {
        Self::base(PartitionStrategy::Pipeline, Middleware::Rmi, filters)
    }

    /// Table 1 `FarmRMI`.
    pub fn farm_rmi(filters: usize) -> Self {
        Self::base(PartitionStrategy::Farm, Middleware::Rmi, filters)
    }

    /// Table 1 `FarmDRMI` (dynamic farm; concurrency merged into partition).
    pub fn farm_drmi(filters: usize) -> Self {
        SieveConfig {
            concurrency: false,
            ..Self::base(PartitionStrategy::DynamicFarm, Middleware::Rmi, filters)
        }
    }

    /// Table 1 `FarmMPP`.
    pub fn farm_mpp(filters: usize) -> Self {
        Self::base(PartitionStrategy::Farm, Middleware::Mpp, filters)
    }

    /// The paper's row label for this combination.
    pub fn label(&self) -> String {
        let partition = match self.partition {
            PartitionStrategy::Pipeline => "Pipe",
            PartitionStrategy::Farm => "Farm",
            PartitionStrategy::DynamicFarm => "FarmD",
        };
        let middleware = match self.middleware {
            Middleware::None if self.concurrency => "Threads",
            Middleware::None => "Seq",
            Middleware::Rmi => "RMI",
            Middleware::Mpp => "MPP",
        };
        format!("{partition}{middleware}")
    }
}

/// Contiguous pre-prime ranges for pipeline stages: stage `rank` divides by
/// the primes in `ranges[rank]`. Empty stages get an empty range.
pub fn stage_ranges(pmin: u64, pmax: u64, stages: usize) -> Vec<(u64, u64)> {
    let primes: Vec<u64> = primes_upto(pmax).into_iter().filter(|p| *p >= pmin).collect();
    let stages = stages.max(1);
    let chunk = primes.len().div_ceil(stages).max(1);
    (0..stages)
        .map(|rank| match primes.chunks(chunk).nth(rank) {
            Some(slice) => (slice[0], slice[slice.len() - 1]),
            // An empty divisor range: pmin > pmax yields a filter with no
            // primes (it passes everything through).
            None => (3, 2),
        })
        .collect()
}

/// The `Protocol` closures shared by all sieve partitions.
fn sieve_protocol(strategy: PartitionStrategy, filters: usize, packs: usize) -> Protocol {
    let worker_args: RankedArgsFn = match strategy {
        PartitionStrategy::Pipeline => Arc::new(|rank, n, orig: &Args| {
            let pmin = *orig.get::<u64>(0)?;
            let pmax = *orig.get::<u64>(1)?;
            let (lo, hi) = stage_ranges(pmin, pmax, n)[rank];
            Ok(args![lo, hi])
        }),
        // Farms broadcast: every worker owns the full divisor range.
        PartitionStrategy::Farm | PartitionStrategy::DynamicFarm => {
            Arc::new(|_rank, _n, orig: &Args| Ok(args![*orig.get::<u64>(0)?, *orig.get::<u64>(1)?]))
        }
    };
    Protocol {
        class: "PrimeFilter",
        method: "filter",
        workers: filters,
        worker_args,
        split: Arc::new(move |a: &Args| {
            let nums = a.get::<Pack>(0)?;
            if nums.is_empty() {
                return Ok(Vec::new());
            }
            let chunk = nums.len().div_ceil(packs.max(1)).max(1);
            // Copy-on-write split: every pack aliases the candidate list's
            // single allocation.
            Ok(nums.split_chunks(chunk).into_iter().map(|p| args![p]).collect())
        }),
        reforward: Arc::new(|v: AnyValue| Ok(Args::from_value(v))),
        combine: Arc::new(|vs: Vec<AnyValue>| {
            let mut parts = Vec::with_capacity(vs.len());
            for v in vs {
                parts.push(downcast_ret::<Pack>(v)?);
            }
            Ok(ret!(Pack::concat(&parts)))
        }),
    }
}

/// Marshalling knowledge for the distributed configurations.
fn sieve_marshal() -> MarshalRegistry {
    let m = MarshalRegistry::new();
    m.register::<(u64, u64), ()>("PrimeFilter", "new");
    m.register::<(Pack,), Pack>("PrimeFilter", "filter");
    // State codec: lets the migration capability move filters between nodes.
    m.register_state::<PrimeFilter, Vec<u64>, _, _>(
        |f| f.primes().to_vec(),
        PrimeFilter::from_primes,
    );
    m
}

/// An assembled sieve: the concern stack plus the runtime pieces a caller
/// needs to drive and drain it.
pub struct SieveRun {
    /// The configured concern stack.
    pub stack: ConcernStack,
    /// The executor behind the concurrency module, when plugged.
    pub executor: Option<Executor>,
    /// The node fabric behind the distribution aspect, when plugged.
    pub fabric: Option<Arc<InProcFabric>>,
    /// The configuration this run was built from.
    pub config: SieveConfig,
}

impl std::fmt::Debug for SieveRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SieveRun({}, {})", self.config.label(), self.stack.describe())
    }
}

/// Assemble a sieve configuration by plugging the requested modules.
pub fn build_sieve(config: SieveConfig) -> SieveRun {
    let stack = ConcernStack::new();
    stack.weaver().register_class::<PrimeFilter>();

    // Partition concern.
    let protocol = sieve_protocol(config.partition, config.filters, config.packs);
    let partition = match config.partition {
        PartitionStrategy::Pipeline => PipelineConfig::new(protocol).aspect("Partition.pipeline"),
        PartitionStrategy::Farm => FarmConfig::new(protocol).aspect("Partition.farm"),
        PartitionStrategy::DynamicFarm => {
            DynamicFarmConfig::new(protocol).aspect("Partition.dynamic-farm")
        }
    };
    stack.plug(Concern::Partition, partition);

    // Concurrency concern.
    let executor = if config.concurrency {
        let executor = Executor::thread_per_call();
        stack.plug_all(
            Concern::Concurrency,
            future_concurrency_aspect(
                "Concurrency",
                Pointcut::call("PrimeFilter.filter"),
                executor.clone(),
            ),
        );
        Some(executor)
    } else {
        None
    };

    // Distribution concern.
    let fabric = match config.middleware {
        Middleware::None => None,
        Middleware::Rmi | Middleware::Mpp => {
            let fabric = InProcFabric::new(config.nodes, sieve_marshal());
            fabric.register_class::<PrimeFilter>();
            let aspect = match config.middleware {
                Middleware::Rmi => RmiConfig::new(
                    "PrimeFilter",
                    Pointcut::call("PrimeFilter.filter"),
                    fabric.clone(),
                )
                .placement(Policy::round_robin())
                .aspect("Distribution.rmi"),
                _ => MppConfig::new(
                    "PrimeFilter",
                    Pointcut::call("PrimeFilter.filter"),
                    fabric.clone(),
                )
                .placement(Policy::round_robin())
                .aspect("Distribution.mpp"),
            };
            stack.plug(Concern::Distribution, aspect);
            Some(fabric)
        }
    };

    SieveRun { stack, executor, fabric, config }
}

/// Drive an assembled sieve: the paper's `main`, verbatim across every
/// configuration. Returns all primes `<= max`, in order.
pub fn run_sieve(run: &SieveRun, max: u64) -> WeaveResult<Vec<u64>> {
    if max < 2 {
        return Ok(Vec::new());
    }
    if max == 2 {
        return Ok(vec![2]);
    }
    let weaver = run.stack.weaver();
    let filter = PrimeFilterProxy::construct(weaver, 2, isqrt(max))?;
    let raw = filter.handle().call("filter", args![Pack::from_vec(candidates(max))])?;
    let survivors: Pack = downcast_ret(resolve_any(raw)?)?;
    if let Some(executor) = &run.executor {
        executor.wait_idle();
    }
    let mut primes = vec![2];
    primes.extend_from_slice(survivors.as_slice());
    Ok(primes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sieve::core::sequential_sieve;

    const MAX: u64 = 5_000;

    fn check(config: SieveConfig) {
        let run = build_sieve(config);
        let got = run_sieve(&run, MAX).unwrap();
        assert_eq!(got, sequential_sieve(MAX), "{} diverged", config.label());
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(SieveConfig::farm_threads(4).label(), "FarmThreads");
        assert_eq!(SieveConfig::pipe_rmi(4).label(), "PipeRMI");
        assert_eq!(SieveConfig::farm_rmi(4).label(), "FarmRMI");
        assert_eq!(SieveConfig::farm_drmi(4).label(), "FarmDRMI");
        assert_eq!(SieveConfig::farm_mpp(4).label(), "FarmMPP");
        assert_eq!(SieveConfig::sequential_pipeline(4).label(), "PipeSeq");
    }

    #[test]
    fn stage_ranges_cover_all_primes() {
        let ranges = stage_ranges(2, 100, 4);
        assert_eq!(ranges.len(), 4);
        let all = primes_upto(100);
        let mut covered = Vec::new();
        for (lo, hi) in &ranges {
            covered.extend(all.iter().copied().filter(|p| p >= lo && p <= hi));
        }
        assert_eq!(covered, all, "ranges must partition the pre-primes");
    }

    #[test]
    fn stage_ranges_with_more_stages_than_primes() {
        // Only 4 primes <= 10; 8 stages: the tail stages are empty.
        let ranges = stage_ranges(2, 10, 8);
        assert_eq!(ranges.len(), 8);
        assert!(ranges.iter().skip(4).all(|r| *r == (3, 2)));
        // An empty-range filter passes everything through.
        let mut f = PrimeFilter::new(3, 2);
        assert_eq!(f.filter(Pack::from_slice(&[4, 6, 8])).to_vec(), vec![4, 6, 8]);
    }

    #[test]
    fn sequential_pipeline_partition_only() {
        check(SieveConfig::sequential_pipeline(4));
    }

    #[test]
    fn farm_threads_is_correct() {
        check(SieveConfig { packs: 10, ..SieveConfig::farm_threads(4) });
    }

    #[test]
    fn pipe_rmi_is_correct() {
        check(SieveConfig { packs: 8, nodes: 3, ..SieveConfig::pipe_rmi(4) });
    }

    #[test]
    fn farm_rmi_is_correct() {
        check(SieveConfig { packs: 8, nodes: 3, ..SieveConfig::farm_rmi(4) });
    }

    #[test]
    fn farm_drmi_is_correct() {
        check(SieveConfig { packs: 8, nodes: 3, ..SieveConfig::farm_drmi(4) });
    }

    #[test]
    fn farm_mpp_is_correct() {
        check(SieveConfig { packs: 8, nodes: 3, ..SieveConfig::farm_mpp(4) });
    }

    #[test]
    fn single_filter_degenerates_gracefully() {
        check(SieveConfig { filters: 1, packs: 4, ..SieveConfig::farm_threads(1) });
        check(SieveConfig { filters: 1, packs: 4, ..SieveConfig::sequential_pipeline(1) });
    }

    #[test]
    fn more_filters_than_nodes() {
        check(SieveConfig { filters: 9, packs: 6, nodes: 3, ..SieveConfig::farm_rmi(9) });
    }

    #[test]
    fn tiny_maxima() {
        let run = build_sieve(SieveConfig { packs: 4, ..SieveConfig::farm_threads(2) });
        assert_eq!(run_sieve(&run, 0).unwrap(), Vec::<u64>::new());
        assert_eq!(run_sieve(&run, 2).unwrap(), vec![2]);
        assert_eq!(run_sieve(&run, 3).unwrap(), vec![2, 3]);
    }
}
