//! Merge sort on the divide-and-conquer protocol.
//!
//! Core functionality: a [`Sorter`] that sorts a vector (plain sequential
//! merge sort). The divide-and-conquer aspect splits large inputs at the
//! *call* join point, creating sub-sorter objects on the fly (§4.1's
//! divide-and-conquer remark) and merging their outputs.

use std::sync::Arc;

use weavepar::concurrency::resolve_any;
use weavepar::prelude::*;
use weavepar::weave::value::downcast_ret;
use weavepar::weave::Pack;
use weavepar::{args, ret, weaveable};

/// Merge two sorted vectors.
pub fn merge(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    merge_slices(&a, &b)
}

/// Merge two sorted slices (the pack-level merge: reads both inputs in
/// place, allocating only the output).
pub fn merge_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The sequential sorter.
pub struct Sorter;

weaveable! {
    class Sorter as SorterProxy {
        fn new() -> Self { Sorter }

        /// Plain sequential merge sort. The halves are copy-on-write views
        /// of the input pack, so dividing never copies the data.
        fn sort(&mut self, xs: Pack) -> Pack {
            if xs.len() <= 1 {
                return xs;
            }
            let (left, right) = xs.split_at(xs.len() / 2);
            let mut s = Sorter;
            let left = s.sort(left);
            let right = s.sort(right);
            Pack::from_vec(merge_slices(left.as_slice(), right.as_slice()))
        }
    }
}

/// The divide-and-conquer refinement for the sorter: divide above
/// `threshold`, merge pairwise.
pub fn sort_dc_config(threshold: usize) -> DivideConquerConfig {
    DivideConquerConfig {
        class: "Sorter",
        method: "sort",
        should_divide: Arc::new(move |a: &Args| Ok(a.get::<Pack>(0)?.len() > threshold.max(1))),
        divide: Arc::new(|a: &Args| {
            let xs = a.get::<Pack>(0)?;
            // Copy-on-write divide: both halves alias the input allocation.
            let (left, right) = xs.split_at(xs.len() / 2);
            Ok(vec![args![left], args![right]])
        }),
        worker_args: Arc::new(|_sub| Ok(args![])),
        combine: Arc::new(|vs: Vec<AnyValue>| {
            let mut sorted: Vec<Pack> = Vec::with_capacity(vs.len());
            for v in vs {
                sorted.push(downcast_ret::<Pack>(v)?);
            }
            let combined = sorted
                .into_iter()
                .reduce(|a, b| Pack::from_vec(merge_slices(a.as_slice(), b.as_slice())))
                .unwrap_or_else(|| Pack::from_vec(Vec::new()));
            Ok(ret!(combined))
        }),
    }
}

/// Sort with the divide-and-conquer aspect (optionally with the concurrency
/// module, giving a parallel recursion tree).
pub fn sort_divide_conquer(
    xs: Vec<u64>,
    threshold: usize,
    concurrent: bool,
) -> WeaveResult<Vec<u64>> {
    let stack = ConcernStack::new();
    stack.weaver().register_class::<Sorter>();
    stack.plug(Concern::Partition, sort_dc_config(threshold).aspect("Partition.dc"));
    let executor = if concurrent {
        let executor = Executor::thread_per_call();
        stack.plug_all(
            Concern::Concurrency,
            future_concurrency_aspect(
                "Concurrency",
                Pointcut::call("Sorter.sort"),
                executor.clone(),
            ),
        );
        Some(executor)
    } else {
        None
    };
    let sorter = SorterProxy::construct(stack.weaver())?;
    let raw = sorter.handle().call("sort", args![Pack::from_vec(xs)])?;
    let sorted: Pack = downcast_ret(resolve_any(raw)?)?;
    if let Some(executor) = executor {
        executor.wait_idle();
    }
    Ok(sorted.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(mut xs: Vec<u64>) -> Vec<u64> {
        xs.sort_unstable();
        xs
    }

    fn pseudo_random(n: usize, mut seed: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                seed >> 33
            })
            .collect()
    }

    #[test]
    fn merge_is_correct() {
        assert_eq!(merge(vec![1, 3, 5], vec![2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merge(vec![], vec![1]), vec![1]);
        assert_eq!(merge(vec![1], vec![]), vec![1]);
        assert_eq!(merge(vec![1, 1], vec![1]), vec![1, 1, 1]);
    }

    #[test]
    fn sequential_core_sorts() {
        let mut s = Sorter::new();
        let xs = pseudo_random(500, 7);
        assert_eq!(s.sort(Pack::from_slice(&xs)).to_vec(), reference(xs));
        assert_eq!(s.sort(Pack::from_vec(vec![])).to_vec(), Vec::<u64>::new());
    }

    #[test]
    fn divide_conquer_sorts() {
        let xs = pseudo_random(2_000, 42);
        let got = sort_divide_conquer(xs.clone(), 64, false).unwrap();
        assert_eq!(got, reference(xs));
    }

    #[test]
    fn concurrent_divide_conquer_sorts() {
        let xs = pseudo_random(4_000, 99);
        let got = sort_divide_conquer(xs.clone(), 256, true).unwrap();
        assert_eq!(got, reference(xs));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(sort_divide_conquer(vec![], 8, false).unwrap(), Vec::<u64>::new());
        assert_eq!(sort_divide_conquer(vec![5], 8, false).unwrap(), vec![5]);
        assert_eq!(sort_divide_conquer(vec![2, 1], 1, false).unwrap(), vec![1, 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn dc_sort_equals_std_sort(xs in proptest::collection::vec(any::<u64>(), 0..300),
                                   threshold in 1usize..64) {
            let mut expect = xs.clone();
            expect.sort_unstable();
            let got = sort_divide_conquer(xs, threshold, false).unwrap();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn merge_preserves_multiset(mut a in proptest::collection::vec(any::<u64>(), 0..50),
                                    mut b in proptest::collection::vec(any::<u64>(), 0..50)) {
            a.sort_unstable();
            b.sort_unstable();
            let merged = merge(a.clone(), b.clone());
            let mut expect = [a, b].concat();
            expect.sort_unstable();
            prop_assert_eq!(merged, expect);
        }
    }
}
