//! `weavepar-demo` — drive any case-study application from the command line.
//!
//! ```text
//! weavepar-demo sieve  [--variant farm-rmi] [--max 1000000] [--filters 4] [--packs 50] [--nodes 7]
//! weavepar-demo mandel [--width 64] [--height 32] [--iters 500] [--workers 4] [--dynamic]
//! weavepar-demo heat   [--len 60] [--iters 2000] [--workers 4]
//! weavepar-demo heat2d [--width 16] [--height 16] [--iters 200] [--workers 4]
//! weavepar-demo sort   [--n 200000] [--threshold 10000] [--concurrent]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use weavepar_apps::heat::{solve_heartbeat, solve_sequential};
use weavepar_apps::heat2d::{solve2d_heartbeat, solve2d_sequential};
use weavepar_apps::mandel::{render_dynamic, render_farmed, render_sequential};
use weavepar_apps::sieve::{build_sieve, run_sieve, sequential_sieve, SieveConfig};
use weavepar_apps::sort::sort_divide_conquer;

struct Options {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(name) = arg.strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    flags.insert(name.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    switches.push(name.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Options { flags, switches }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags.get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: weavepar-demo <sieve|mandel|heat|heat2d|sort> [options]\n\
         \n\
         sieve  --variant <seq-pipe|farm-threads|pipe-rmi|farm-rmi|farm-drmi|farm-mpp>\n\
                --max N --filters N --packs N --nodes N\n\
         mandel --width N --height N --iters N --workers N --packs N [--dynamic]\n\
         heat   --len N --iters N --workers N\n\
         heat2d --width N --height N --iters N --workers N\n\
         sort   --n N --threshold N [--concurrent]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        return usage();
    };
    let opts = Options::parse(&argv[1..]);

    match command.as_str() {
        "sieve" => {
            let max: u64 = opts.get("max", 1_000_000);
            let filters: usize = opts.get("filters", 4);
            let variant = opts.flags.get("variant").map(String::as_str).unwrap_or("farm-threads");
            let mut config = match variant {
                "seq-pipe" => SieveConfig::sequential_pipeline(filters),
                "farm-threads" => SieveConfig::farm_threads(filters),
                "pipe-rmi" => SieveConfig::pipe_rmi(filters),
                "farm-rmi" => SieveConfig::farm_rmi(filters),
                "farm-drmi" => SieveConfig::farm_drmi(filters),
                "farm-mpp" => SieveConfig::farm_mpp(filters),
                other => {
                    eprintln!("unknown sieve variant `{other}`");
                    return usage();
                }
            };
            config.packs = opts.get("packs", config.packs);
            config.nodes = opts.get("nodes", config.nodes);
            let run = build_sieve(config);
            let t0 = Instant::now();
            match run_sieve(&run, max) {
                Ok(primes) => {
                    let elapsed = t0.elapsed();
                    let ok = primes == sequential_sieve(max);
                    println!(
                        "{}: {} primes <= {max} in {elapsed:?} ({})",
                        config.label(),
                        primes.len(),
                        if ok { "validated" } else { "MISMATCH" }
                    );
                    println!("stack: {}", run.stack.describe());
                    if ok {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("sieve failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "mandel" => {
            let width: u64 = opts.get("width", 64);
            let height: u64 = opts.get("height", 32);
            let iters: u64 = opts.get("iters", 500);
            let workers: usize = opts.get("workers", 4);
            let packs: usize = opts.get("packs", workers * 2);
            let t0 = Instant::now();
            let result = if opts.has("dynamic") {
                render_dynamic(width, height, iters, workers, packs)
            } else {
                render_farmed(width, height, iters, workers, packs, true)
            };
            match result {
                Ok(image) => {
                    let elapsed = t0.elapsed();
                    let ok = image == render_sequential(width, height, iters);
                    println!(
                        "mandel {width}x{height}@{iters}: {} pixels in {elapsed:?} ({})",
                        image.len(),
                        if ok { "validated" } else { "MISMATCH" }
                    );
                    if ok {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("mandel failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "heat" => {
            let len: u64 = opts.get("len", 60);
            let iters: u64 = opts.get("iters", 2_000);
            let workers: usize = opts.get("workers", 4);
            match solve_heartbeat(len, 0.0, 100.0, 0.0, iters, workers) {
                Ok(profile) => {
                    let reference = solve_sequential(len, 0.0, 100.0, 0.0, iters);
                    let max_err = profile
                        .iter()
                        .zip(&reference)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    println!(
                        "heat len={len} iters={iters} workers={workers}: max deviation {max_err:.2e}"
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("heat failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "heat2d" => {
            let width: u64 = opts.get("width", 16);
            let height: u64 = opts.get("height", 16);
            let iters: u64 = opts.get("iters", 200);
            let workers: usize = opts.get("workers", 4);
            match solve2d_heartbeat(width, height, 0.0, 10.0, 0.0, iters, workers) {
                Ok(grid) => {
                    let reference = solve2d_sequential(width, height, 0.0, 10.0, 0.0, iters);
                    let max_err = grid
                        .iter()
                        .zip(&reference)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    println!(
                        "heat2d {width}x{height} iters={iters} workers={workers}: max deviation {max_err:.2e}"
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("heat2d failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "sort" => {
            let n: usize = opts.get("n", 200_000);
            let threshold: usize = opts.get("threshold", 10_000);
            let concurrent = opts.has("concurrent");
            let mut seed = 2026u64;
            let xs: Vec<u64> = (0..n)
                .map(|_| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    seed >> 33
                })
                .collect();
            let t0 = Instant::now();
            match sort_divide_conquer(xs.clone(), threshold, concurrent) {
                Ok(sorted) => {
                    let elapsed = t0.elapsed();
                    let ok = sorted.windows(2).all(|w| w[0] <= w[1]) && sorted.len() == xs.len();
                    println!(
                        "sort n={n} threshold={threshold} concurrent={concurrent}: {elapsed:?} ({})",
                        if ok { "validated" } else { "MISMATCH" }
                    );
                    if ok {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("sort failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
