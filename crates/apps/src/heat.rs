//! 1-D heat diffusion (Jacobi relaxation) — the heartbeat category.
//!
//! Core functionality: a [`Rod`] of cells with fixed boundary temperatures,
//! relaxed one Jacobi step at a time. The heartbeat aspect splits the rod
//! into blocks, and each iteration exchanges the block-edge temperatures
//! before stepping — the "exchange updated data among objects between
//! iterations" of §4.1.

use std::sync::Arc;

use weavepar::concurrency::resolve_any;
use weavepar::prelude::*;
use weavepar::weave::value::downcast_ret;
use weavepar::{args, ret, weaveable};

/// A rod segment with explicit halo cells at both ends.
///
/// `next` is a persistent scratch buffer: each `step` writes into it and
/// swaps, so the steady-state iteration loop allocates nothing.
pub struct Rod {
    cells: Vec<f64>,
    next: Vec<f64>,
    left_halo: f64,
    right_halo: f64,
}

impl Rod {
    /// Current cell values (tests, assembly).
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }
}

weaveable! {
    class Rod as RodProxy {
        fn new(len: u64, initial: f64, left: f64, right: f64) -> Self {
            Rod {
                cells: vec![initial; len as usize],
                next: vec![initial; len as usize],
                left_halo: left,
                right_halo: right,
            }
        }

        fn set_halos(&mut self, left: f64, right: f64) {
            self.left_halo = left;
            self.right_halo = right;
        }

        fn edges(&mut self) -> (f64, f64) {
            let first = self.cells.first().copied().unwrap_or(self.left_halo);
            let last = self.cells.last().copied().unwrap_or(self.right_halo);
            (first, last)
        }

        fn step(&mut self) {
            let n = self.cells.len();
            for (i, cell) in self.next.iter_mut().enumerate() {
                let left = if i == 0 { self.left_halo } else { self.cells[i - 1] };
                let right = if i + 1 == n { self.right_halo } else { self.cells[i + 1] };
                *cell = (left + right) / 2.0;
            }
            std::mem::swap(&mut self.cells, &mut self.next);
        }

        fn snapshot(&mut self) -> Vec<f64> {
            self.cells.clone()
        }

        fn run(&mut self, iterations: u64) -> Vec<f64> {
            for _ in 0..iterations {
                self.step();
            }
            self.cells.clone()
        }
    }
}

/// The sequential reference solution.
pub fn solve_sequential(
    len: u64,
    initial: f64,
    left: f64,
    right: f64,
    iterations: u64,
) -> Vec<f64> {
    let mut rod = Rod::new(len, initial, left, right);
    rod.run(iterations)
}

/// The heartbeat configuration for the rod: block partition, per-iteration
/// edge exchange, snapshot concatenation.
pub fn heat_heartbeat_config(workers: usize) -> HeartbeatConfig {
    HeartbeatConfig {
        class: "Rod",
        workers,
        worker_args: Arc::new(move |rank, n, orig: &Args| {
            let len = *orig.get::<u64>(0)?;
            let initial = *orig.get::<f64>(1)?;
            let left = *orig.get::<f64>(2)?;
            let right = *orig.get::<f64>(3)?;
            // Block partition of `len` cells; edge blocks keep the fixed
            // boundary temperatures, interior halos are refreshed by the
            // exchange phase.
            let base = len / n as u64;
            let extra = (len % n as u64) as usize;
            let block = base + u64::from(rank < extra);
            let left_halo = if rank == 0 { left } else { initial };
            let right_halo = if rank + 1 == n { right } else { initial };
            Ok(args![block, initial, left_halo, right_halo])
        }),
        run_method: "run",
        iterations: Arc::new(|a: &Args| Ok(*a.get::<u64>(0)?)),
        step_method: "step",
        step_args: Arc::new(|_iter| Ok(args![])),
        exchange: Arc::new(|weaver: &Weaver, workers: &[ObjId], _iter| {
            let mut edges = Vec::with_capacity(workers.len());
            for &w in workers {
                let raw = weaver.invoke_call(w, "Rod", "edges", args![])?;
                edges.push(downcast_ret::<(f64, f64)>(resolve_any(raw)?)?);
            }
            for (i, &w) in workers.iter().enumerate() {
                // Outermost halos are the fixed boundary temperatures the
                // blocks were constructed with; only interior halos change.
                let left = if i == 0 { None } else { Some(edges[i - 1].1) };
                let right = if i + 1 == workers.len() { None } else { Some(edges[i + 1].0) };
                if left.is_some() || right.is_some() {
                    let (cur_left, cur_right) = fetch_halos(weaver, w)?;
                    let raw = weaver.invoke_call(
                        w,
                        "Rod",
                        "set_halos",
                        args![left.unwrap_or(cur_left), right.unwrap_or(cur_right)],
                    )?;
                    resolve_any(raw)?;
                }
            }
            Ok(())
        }),
        collect: Arc::new(|weaver: &Weaver, workers: &[ObjId]| {
            let mut all = Vec::new();
            for &w in workers {
                let raw = weaver.invoke_call(w, "Rod", "snapshot", args![])?;
                all.extend(downcast_ret::<Vec<f64>>(resolve_any(raw)?)?);
            }
            Ok(ret!(all))
        }),
    }
}

/// Read a rod's current halo values directly from the object space.
fn fetch_halos(weaver: &Weaver, rod: ObjId) -> WeaveResult<(f64, f64)> {
    weaver.space().with_object::<Rod, _>(rod, |r| (r.left_halo, r.right_halo))
}

/// Solve with the heartbeat aspect over `workers` blocks.
pub fn solve_heartbeat(
    len: u64,
    initial: f64,
    left: f64,
    right: f64,
    iterations: u64,
    workers: usize,
) -> WeaveResult<Vec<f64>> {
    // Never create empty blocks (see the 2-D variant for the rationale).
    let workers = workers.clamp(1, len.max(1) as usize);
    let stack = ConcernStack::new();
    stack.plug(Concern::Partition, heat_heartbeat_config(workers).aspect("Partition.heartbeat"));
    let rod = RodProxy::construct(stack.weaver(), len, initial, left, right)?;
    rod.run(iterations)
}

/// Solve with heartbeat + concurrent steps.
pub fn solve_heartbeat_concurrent(
    len: u64,
    initial: f64,
    left: f64,
    right: f64,
    iterations: u64,
    workers: usize,
) -> WeaveResult<Vec<f64>> {
    let stack = ConcernStack::new();
    stack.plug(Concern::Partition, heat_heartbeat_config(workers).aspect("Partition.heartbeat"));
    let executor = Executor::thread_per_call();
    stack.plug_all(
        Concern::Concurrency,
        future_concurrency_aspect("Concurrency", Pointcut::call("Rod.step"), executor.clone()),
    );
    let rod = RodProxy::construct(stack.weaver(), len, initial, left, right)?;
    let result = rod.run(iterations)?;
    executor.wait_idle();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn sequential_diffusion_converges_to_linear_profile() {
        // With fixed halos 0 and 1 (at virtual positions -1 and n), the
        // steady state is the linear profile u_i = (i + 1) / (n + 1).
        let out = solve_sequential(8, 0.5, 0.0, 1.0, 2_000);
        for (i, v) in out.iter().enumerate() {
            let expect = (i as f64 + 1.0) / 9.0;
            assert!((v - expect).abs() < 1e-6, "cell {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn heartbeat_matches_sequential() {
        let reference = solve_sequential(24, 0.0, 1.0, 3.0, 50);
        for workers in [1usize, 2, 3, 4] {
            let got = solve_heartbeat(24, 0.0, 1.0, 3.0, 50, workers).unwrap();
            assert!(close(&got, &reference), "workers={workers}");
        }
    }

    #[test]
    fn heartbeat_concurrent_matches() {
        let reference = solve_sequential(32, 0.0, 2.0, -1.0, 30);
        let got = solve_heartbeat_concurrent(32, 0.0, 2.0, -1.0, 30, 4).unwrap();
        assert!(close(&got, &reference));
    }

    #[test]
    fn uneven_block_sizes_are_handled() {
        // 10 cells over 3 workers: blocks of 4, 3, 3.
        let reference = solve_sequential(10, 0.0, 5.0, 5.0, 25);
        let got = solve_heartbeat(10, 0.0, 5.0, 5.0, 25, 3).unwrap();
        assert!(close(&got, &reference));
    }

    #[test]
    fn zero_iterations_returns_initial_state() {
        let got = solve_heartbeat(6, 0.25, 0.0, 0.0, 0, 2).unwrap();
        assert_eq!(got, vec![0.25; 6]);
    }

    #[test]
    fn rod_edges_and_snapshot() {
        let mut rod = Rod::new(4, 1.0, 9.0, 9.0);
        assert_eq!(rod.edges(), (1.0, 1.0));
        assert_eq!(rod.snapshot(), vec![1.0; 4]);
        rod.set_halos(2.0, 4.0);
        rod.step();
        assert_eq!(rod.cells()[0], 1.5); // (2.0 + 1.0)/2
        assert_eq!(rod.cells()[3], 2.5); // (1.0 + 4.0)/2
    }
}
