//! The divide-and-conquer partition aspect.
//!
//! §4.1: "Object duplication is specified by intercepting the creation of
//! objects and method split calls are specified by intercepting method
//! calls, but **it is also possible to perform object creations when
//! intercepting method calls (e.g., in divide and conquer algorithms)**."
//!
//! That is exactly what this aspect does: intercepting a `solve` call whose
//! problem is still large, it *creates sub-worker objects at the call join
//! point*, dispatches the sub-problems to them, and combines. The sub-calls
//! are themselves intercepted (advice applies recursively to aspect-made
//! calls, like the pipeline's forwarding), so the recursion tree unfolds
//! through the weaver — and the concurrency/distribution aspects apply at
//! every level.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use weavepar_concurrency::{resolve_any, BatchScope};
use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;
use weavepar_weave::MetricsRegistry;

use crate::common::{hints, MapArgsFn, PredicateFn, SplitFn};

/// Configuration of a concrete divide-and-conquer computation.
#[derive(Clone)]
pub struct DivideConquerConfig {
    /// Weaveable class of the solvers.
    pub class: &'static str,
    /// The recursive method (e.g. `solve`).
    pub method: &'static str,
    /// Should this call's problem be divided further (false = solve
    /// directly via `proceed`)?
    pub should_divide: PredicateFn,
    /// Split the call's arguments into sub-problem argument packs.
    pub divide: SplitFn,
    /// Constructor arguments for a sub-worker created for the given
    /// sub-problem.
    pub worker_args: MapArgsFn,
    /// Combine the sub-results into this call's result.
    pub combine: Arc<dyn Fn(Vec<AnyValue>) -> WeaveResult<AnyValue> + Send + Sync>,
}

impl std::fmt::Debug for DivideConquerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DivideConquerConfig")
            .field("class", &self.class)
            .field("method", &self.method)
            .finish()
    }
}

impl DivideConquerConfig {
    /// Follow a live sequential-cutoff hint: the cell's value is published
    /// through [`hints::set_cutoff`](crate::common::hints) around
    /// `should_divide` and `divide`, so a cutoff-aware predicate (reading
    /// [`hints::cutoff_or`](crate::common::hints::cutoff_or)) lets a tuner
    /// move the depth at which recursion falls back to the sequential solve.
    pub fn tuned(self, cutoff_hint: Arc<AtomicU32>) -> DivideConquerBuilder {
        self.builder().tuned(cutoff_hint)
    }

    /// Meter the recursion into `registry`: `{name}.divides` counts divide
    /// events, `{name}.sub_calls` counts sub-problems dispatched.
    pub fn metrics(self, registry: &MetricsRegistry) -> DivideConquerBuilder {
        self.builder().metrics(registry)
    }

    /// Build the divide-and-conquer aspect named `name`, untuned and
    /// unmetered.
    pub fn aspect(self, name: impl Into<String>) -> Aspect {
        self.builder().aspect(name)
    }

    fn builder(self) -> DivideConquerBuilder {
        DivideConquerBuilder { config: self, cutoff_hint: None, metrics: None }
    }
}

/// Option carrier produced by [`DivideConquerConfig::tuned`] /
/// [`DivideConquerConfig::metrics`]; finish with
/// [`aspect`](DivideConquerBuilder::aspect).
#[derive(Clone)]
pub struct DivideConquerBuilder {
    config: DivideConquerConfig,
    cutoff_hint: Option<Arc<AtomicU32>>,
    metrics: Option<MetricsRegistry>,
}

impl DivideConquerBuilder {
    /// See [`DivideConquerConfig::tuned`].
    pub fn tuned(mut self, cutoff_hint: Arc<AtomicU32>) -> Self {
        self.cutoff_hint = Some(cutoff_hint);
        self
    }

    /// See [`DivideConquerConfig::metrics`].
    pub fn metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Build the divide-and-conquer aspect named `name`.
    pub fn aspect(self, name: impl Into<String>) -> Aspect {
        let name = name.into();
        let DivideConquerBuilder { config, cutoff_hint, metrics } = self;
        // Counters resolved once at build time; the recursion bumps pre-bound
        // atomics only.
        let meters = metrics.map(|m| {
            (m.counter(&format!("{name}.divides")), m.counter(&format!("{name}.sub_calls")))
        });
        let cfg = config;
        Aspect::named(name)
            .precedence(precedence::PARTITION)
            // Applies to every call site — core and aspect alike — so the
            // recursion unfolds until `should_divide` says stop.
            .around(Pointcut::call_sig(cfg.class, cfg.method), {
                let cfg = cfg.clone();
                move |inv: &mut Invocation| {
                    let _hint = cutoff_hint
                        .as_ref()
                        .map(|cell| hints::set_cutoff(cell.load(Ordering::Relaxed)));
                    if !(cfg.should_divide)(inv.args()?)? {
                        return inv.proceed();
                    }
                    let weaver = inv.weaver().clone();
                    let subproblems = (cfg.divide)(inv.args()?)?;
                    if let Some((divides, sub_calls)) = &meters {
                        divides.inc();
                        sub_calls.add(subproblems.len() as u64);
                    }
                    let mut pending = Vec::with_capacity(subproblems.len());
                    // One batch submission per divide level. Scopes nest per level
                    // (recursive sub-calls running on pool workers open their own),
                    // and each level flushes before blocking on its sub-results.
                    let scope = BatchScope::enter();
                    for sub in subproblems {
                        // Object creation at a *call* join point: a fresh
                        // aspect-managed worker per sub-problem, constructed through
                        // the weaver so distribution places it.
                        let worker = weaver.construct_dyn(cfg.class, (cfg.worker_args)(&sub)?)?;
                        pending.push(weaver.invoke_call(worker, cfg.class, cfg.method, sub)?);
                    }
                    scope.flush();
                    let mut results = Vec::with_capacity(pending.len());
                    for ret in pending {
                        results.push(resolve_any(ret)?);
                    }
                    (cfg.combine)(results)
                }
            })
            .build()
    }
}

/// Build the divide-and-conquer aspect for `config`.
#[deprecated(note = "use `config.aspect(name)` (see `DivideConquerConfig`)")]
pub fn divide_conquer_aspect(name: impl Into<String>, config: DivideConquerConfig) -> Aspect {
    config.aspect(name)
}

/// [`DivideConquerConfig::tuned`] in the old free-function shape.
#[deprecated(note = "use `config.tuned(cell).aspect(name)` (see `DivideConquerConfig`)")]
pub fn divide_conquer_aspect_tuned(
    name: impl Into<String>,
    config: DivideConquerConfig,
    cutoff_hint: Option<Arc<AtomicU32>>,
) -> Aspect {
    let builder = config.builder();
    match cutoff_hint {
        Some(cell) => builder.tuned(cell).aspect(name),
        None => builder.aspect(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavepar_concurrency::{future_concurrency_aspect, Executor};
    use weavepar_weave::{args, value::downcast_ret};

    /// Summation solver: trivially divisible, easy to verify.
    struct Summer {
        calls: u64,
    }

    weavepar_weave::weaveable! {
        class Summer as SummerProxy {
            fn new() -> Self { Summer { calls: 0 } }
            fn solve(&mut self, xs: Vec<u64>) -> u64 {
                self.calls += 1;
                xs.iter().sum()
            }
        }
    }

    fn config(threshold: usize) -> DivideConquerConfig {
        DivideConquerConfig {
            class: "Summer",
            method: "solve",
            should_divide: Arc::new(move |a: &Args| Ok(a.get::<Vec<u64>>(0)?.len() > threshold)),
            divide: Arc::new(|a: &Args| {
                let xs = a.get::<Vec<u64>>(0)?;
                let mid = xs.len() / 2;
                Ok(vec![args![xs[..mid].to_vec()], args![xs[mid..].to_vec()]])
            }),
            worker_args: Arc::new(|_sub| Ok(args![])),
            combine: Arc::new(|vs: Vec<AnyValue>| {
                let mut total = 0u64;
                for v in vs {
                    total += downcast_ret::<u64>(v)?;
                }
                Ok(weavepar_weave::ret!(total))
            }),
        }
    }

    #[test]
    fn recursion_divides_to_the_threshold() {
        let weaver = Weaver::new();
        weaver.register_class::<Summer>();
        weaver.plug(config(4).aspect("Partition.dc"));
        let s = SummerProxy::construct(&weaver).unwrap();
        let xs: Vec<u64> = (1..=32).collect();
        assert_eq!(s.solve(xs).unwrap(), 32 * 33 / 2);
        // 32 elements over threshold 4: the tree creates workers at every
        // divide — 2 + 4 + 8 = 14 internal splits' children... at minimum
        // more than one object must now exist.
        let objects = weaver.space().ids_of_class("Summer").len();
        assert!(objects > 8, "recursive division must create sub-workers: {objects}");
    }

    #[test]
    fn small_problems_solve_directly() {
        let weaver = Weaver::new();
        weaver.register_class::<Summer>();
        weaver.plug(config(100).aspect("Partition.dc"));
        let s = SummerProxy::construct(&weaver).unwrap();
        assert_eq!(s.solve(vec![1, 2, 3]).unwrap(), 6);
        assert_eq!(weaver.space().ids_of_class("Summer").len(), 1, "no division, no workers");
    }

    #[test]
    fn concurrent_divide_conquer_matches() {
        let weaver = Weaver::new();
        weaver.register_class::<Summer>();
        weaver.plug(config(8).aspect("Partition.dc"));
        let executor = Executor::thread_per_call();
        for a in future_concurrency_aspect(
            "Concurrency",
            Pointcut::call("Summer.solve"),
            executor.clone(),
        ) {
            weaver.plug(a);
        }
        let s = SummerProxy::construct(&weaver).unwrap();
        let xs: Vec<u64> = (0..256).collect();
        let raw = s.handle().call("solve", args![xs]).unwrap();
        let total = downcast_ret::<u64>(resolve_any(raw).unwrap()).unwrap();
        assert_eq!(total, 255 * 256 / 2);
        executor.wait_idle();
    }

    #[test]
    fn unplugged_solves_sequentially() {
        let weaver = Weaver::new();
        let plugged = weaver.plug(config(2).aspect("Partition.dc"));
        weaver.unplug(&plugged);
        let s = SummerProxy::construct(&weaver).unwrap();
        assert_eq!(s.solve((0..64).collect()).unwrap(), 63 * 64 / 2);
        assert_eq!(weaver.space().ids_of_class("Summer").len(), 1);
    }

    #[test]
    fn empty_input() {
        let weaver = Weaver::new();
        weaver.register_class::<Summer>();
        weaver.plug(config(4).aspect("Partition.dc"));
        let s = SummerProxy::construct(&weaver).unwrap();
        assert_eq!(s.solve(vec![]).unwrap(), 0);
    }
}
