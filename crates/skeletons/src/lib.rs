//! # weavepar-skeletons — reusable partition aspects (paper §4.1, §5.2)
//!
//! The paper's Figure 9 turns the sieve-specific Partition aspect into an
//! abstract, reusable `PipelineProtocol`; its conclusion reports reusable
//! strategies for "the three most common categories: pipeline, farm with
//! separable dependencies and heartbeat". This crate is that library:
//!
//! * [`pipeline`] — object duplication into a stage chain, method-call split
//!   into packs, and recursive forwarding of each pack down the chain
//!   (Figure 8's three advice blocks);
//! * [`farm`] — broadcast duplication and per-pack routing to any worker
//!   (Figure 10);
//! * [`dynamic_farm`] — demand-driven farm with its own worker threads; the
//!   paper's example of a strategy where partition and concurrency could not
//!   be separated into different aspects;
//! * [`heartbeat`] — block duplication plus an iterate/exchange/step driver
//!   for stencil-style computations;
//! * [`divide_conquer`] — object creation at *call* join points, unfolding a
//!   recursion tree of sub-workers (the §4.1 divide-and-conquer remark);
//! * [`supervisor`] — fault tolerance as one more pluggable layer: worker
//!   checkpoints, node-loss detection and re-dispatch of orphaned tasks,
//!   woven outside the distribution aspect.
//!
//! Every protocol is *generic*: it quantifies over a weaveable class by name
//! and composes with the application through a small set of closures
//! ([`Protocol`]) that say how to derive per-worker constructor arguments,
//! how to split a call's data into packs, and how to combine pack results —
//! the "concrete aspect refining the abstract aspect" of Figure 9.
//!
//! All protocols issue their internal calls through the weaver, so the
//! concurrency and distribution aspects (plugged or not) apply to them
//! exactly as the paper's Figure 11 depicts.

pub mod common;
pub mod divide_conquer;
pub mod dynamic_farm;
pub mod farm;
pub mod heartbeat;
pub mod pipeline;
pub mod supervisor;

pub use common::{
    hints, CollectFn, ExchangeFn, IterationsFn, MapArgsFn, PredicateFn, Protocol, RankedArgsFn,
    SplitFn,
};
pub use divide_conquer::{DivideConquerBuilder, DivideConquerConfig};
pub use dynamic_farm::DynamicFarmConfig;
pub use farm::FarmConfig;
pub use heartbeat::HeartbeatConfig;
pub use pipeline::PipelineConfig;
pub use supervisor::{supervisor_aspect, SupervisorStats};

#[allow(deprecated)]
pub use divide_conquer::{divide_conquer_aspect, divide_conquer_aspect_tuned};
#[allow(deprecated)]
pub use dynamic_farm::{dynamic_farm_aspect, dynamic_farm_aspect_tuned};
#[allow(deprecated)]
pub use farm::{farm_aspect, farm_aspect_tuned};
#[allow(deprecated)]
pub use heartbeat::heartbeat_aspect;
#[allow(deprecated)]
pub use pipeline::{pipeline_aspect, pipeline_aspect_tuned};
