//! The reusable farm partition aspect (paper Figure 10).
//!
//! "In a simple farming parallelisation each filter has ALL the primes up to
//! the square root of the maximum number and each pack of numbers can be
//! processed by ANY PrimeFilter." Relative to the pipeline this changes two
//! things: worker constructor arguments are broadcast (every worker gets the
//! full problem), and each pack is routed to exactly one worker instead of
//! being forwarded along a chain.
//!
//! The paper realises routing by editing the forward advice's `next`
//! selection (its blocks 2 and 3); here routing lives in the split advice
//! directly, since both blocks are private to the partition module — a
//! deviation recorded in DESIGN.md.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use weavepar_concurrency::{resolve_any, BatchScope};
use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;
use weavepar_weave::{Counter, MetricsRegistry};

use crate::common::{hints, Protocol, WORKERS_FIELD};

/// Builder-style configuration of a concrete farm. The mandatory part is the
/// [`Protocol`] (whose `worker_args` typically broadcasts the original
/// constructor arguments); everything optional chains:
///
/// ```ignore
/// weaver.plug(FarmConfig::new(protocol).tuned(cell).metrics(&reg).aspect("Partition"));
/// ```
#[derive(Clone)]
pub struct FarmConfig {
    protocol: Protocol,
    packs_hint: Option<Arc<AtomicU32>>,
    metrics: Option<MetricsRegistry>,
}

impl FarmConfig {
    /// A farm over `protocol`, untuned and unmetered.
    pub fn new(protocol: Protocol) -> Self {
        Self { protocol, packs_hint: None, metrics: None }
    }

    /// Follow a live pack-count hint: before each split the aspect publishes
    /// the cell's current value through
    /// [`hints::set_packs`](crate::common::hints), so grain-aware `split`
    /// closures (ones reading
    /// [`hints::packs_or`](crate::common::hints::packs_or)) follow the tuner
    /// while the farm runs.
    pub fn tuned(mut self, packs_hint: Arc<AtomicU32>) -> Self {
        self.packs_hint = Some(packs_hint);
        self
    }

    /// Meter the farm into `registry`: `{name}.packs_issued` counts packs
    /// dispatched by the split advice, `{name}.redispatched` counts packs
    /// re-offered to surviving workers after a node loss.
    pub fn metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Build the farm partition aspect named `name`.
    pub fn aspect(self, name: impl Into<String>) -> Aspect {
        let name = name.into();
        let FarmConfig { protocol, packs_hint, metrics } = self;
        // Counters resolved once at build time: the hot path bumps two
        // pre-bound atomics, never consulting the registry.
        let meters = metrics.map(|m| FarmMeters {
            packs: m.counter(&format!("{name}.packs_issued")),
            redispatched: m.counter(&format!("{name}.redispatched")),
        });
        let dup = protocol.clone();
        let route = protocol.clone();

        Aspect::named(name)
            .precedence(precedence::PARTITION)
            // Object duplication with broadcast construction.
            .around(
                Pointcut::construct(protocol.class).and(Pointcut::within_core()),
                move |inv: &mut Invocation| {
                    let weaver = inv.weaver().clone();
                    let ids = dup.create_workers(&weaver, inv.args()?)?;
                    let first = *ids.first().ok_or_else(|| {
                        WeaveError::app("farm protocol needs at least one worker")
                    })?;
                    weaver.intertype().set_field(first, WORKERS_FIELD, ids);
                    Ok(weavepar_weave::ret!(first))
                },
            )
            // Split + round-robin routing of packs to workers.
            .around(
                Pointcut::call_sig(protocol.class, protocol.method).and(Pointcut::within_core()),
                move |inv: &mut Invocation| {
                    let weaver = inv.weaver().clone();
                    let target = inv.target_required()?;
                    let workers = weaver
                        .intertype()
                        .get_field::<Vec<ObjId>>(target, WORKERS_FIELD)
                        .unwrap_or_else(|| vec![target]);
                    let _hint = packs_hint
                        .as_ref()
                        .map(|cell| hints::set_packs(cell.load(Ordering::Relaxed)));
                    let packs = (route.split)(inv.args()?)?;
                    if let Some(m) = &meters {
                        m.packs.add(packs.len() as u64);
                    }
                    let mut pending = Vec::with_capacity(packs.len());
                    // With a concurrency aspect plugged, every invoke below ends
                    // in an executor spawn; the scope coalesces them into one
                    // batch submission for the whole pack set, flushed before the
                    // results are awaited.
                    let scope = BatchScope::enter();
                    for (k, pack) in packs.into_iter().enumerate() {
                        let worker = workers[k % workers.len()];
                        pending
                            .push((k, weaver.invoke_call(worker, route.class, route.method, pack)));
                    }
                    scope.flush();
                    let mut results = Vec::with_capacity(pending.len());
                    // Packs regenerated for orphan re-dispatch, shared across
                    // orphans so one wave of losses costs one extra split, not
                    // one per pack per attempt.
                    let mut regen: Option<Vec<Option<Args>>> = None;
                    for (k, ret) in pending {
                        match ret.and_then(resolve_any) {
                            Ok(v) => results.push(v),
                            Err(err) if err.is_node_loss() => {
                                // Farm property: any worker can process any pack.
                                // A pack orphaned by a dead node is regenerated
                                // from the original arguments and offered to the
                                // surviving workers.
                                if let Some(m) = &meters {
                                    m.redispatched.inc();
                                }
                                results.push(redispatch_pack(
                                    &weaver,
                                    &route,
                                    &workers,
                                    k,
                                    inv.args()?,
                                    &mut regen,
                                    err,
                                )?);
                            }
                            Err(err) => return Err(err),
                        }
                    }
                    (route.combine)(results)
                },
            )
            .build()
    }
}

/// Pre-resolved farm counters (see [`FarmConfig::metrics`]).
#[derive(Clone)]
struct FarmMeters {
    packs: Counter,
    redispatched: Counter,
}

/// Build the farm partition aspect for `protocol`.
#[deprecated(note = "use `FarmConfig::new(protocol).aspect(name)`")]
pub fn farm_aspect(name: impl Into<String>, protocol: Protocol) -> Aspect {
    FarmConfig::new(protocol).aspect(name)
}

/// [`FarmConfig::new`] + [`tuned`](FarmConfig::tuned) in the old free-function
/// shape.
#[deprecated(note = "use `FarmConfig::new(protocol).tuned(cell).aspect(name)`")]
pub fn farm_aspect_tuned(
    name: impl Into<String>,
    protocol: Protocol,
    packs_hint: Option<Arc<AtomicU32>>,
) -> Aspect {
    let mut cfg = FarmConfig::new(protocol);
    if let Some(cell) = packs_hint {
        cfg = cfg.tuned(cell);
    }
    cfg.aspect(name)
}

/// Re-dispatch pack `k`, lost to a dead node, on the other workers in
/// round-robin order starting after the one that failed. Argument packs are
/// consumed by dispatch, so a retry needs a fresh pack; `regen` caches one
/// whole regenerated split per orphan wave (filled lazily, packs taken as
/// orphans claim them) so the common one-attempt recovery re-splits the
/// original arguments once in total instead of once per orphaned pack.
/// Returns the last node-loss error when every worker is unreachable;
/// non-loss errors abort immediately.
fn redispatch_pack(
    weaver: &Weaver,
    route: &Protocol,
    workers: &[ObjId],
    k: usize,
    original: &Args,
    regen: &mut Option<Vec<Option<Args>>>,
    err: WeaveError,
) -> WeaveResult<AnyValue> {
    let mut last = err;
    for offset in 1..workers.len() {
        let alt = workers[(k + offset) % workers.len()];
        let cached = match regen {
            Some(packs) => packs.get_mut(k).and_then(Option::take),
            None => {
                let packs: Vec<Option<Args>> =
                    (route.split)(original)?.into_iter().map(Some).collect();
                *regen = Some(packs);
                regen.as_mut().expect("just filled").get_mut(k).and_then(Option::take)
            }
        };
        let pack = match cached {
            Some(pack) => pack,
            // A second attempt for the same pack: the cached copy was
            // consumed by the failed dispatch, regenerate just this one.
            None => (route.split)(original)?
                .into_iter()
                .nth(k)
                .ok_or_else(|| WeaveError::app("farm cannot regenerate a lost pack"))?,
        };
        match weaver.invoke_call(alt, route.class, route.method, pack).and_then(resolve_any) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_node_loss() => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;
    use weavepar_concurrency::{future_concurrency_aspect, Executor};
    use weavepar_weave::{args, value::downcast_ret};

    /// Doubles every item; counts how many packs it served.
    pub(crate) struct Worker {
        pub(crate) served: u64,
    }

    weavepar_weave::weaveable! {
        class Worker as WorkerProxy {
            fn new(_seed: u64) -> Self { Worker { served: 0 } }
            fn compute(&mut self, items: Vec<u64>) -> Vec<u64> {
                self.served += 1;
                items.into_iter().map(|x| x * 2).collect()
            }
            fn served(&mut self) -> u64 { self.served }
        }
    }

    fn protocol(workers: usize, packs: usize) -> Protocol {
        Protocol {
            class: "Worker",
            method: "compute",
            workers,
            // Broadcast: every worker receives the original arguments.
            worker_args: Arc::new(|_rank, _n, orig: &Args| Ok(args![*orig.get::<u64>(0)?])),
            split: Arc::new(move |a: &Args| {
                let items = a.get::<Vec<u64>>(0)?;
                let chunk = items.len().div_ceil(packs.max(1)).max(1);
                Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
            }),
            reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
            combine: Arc::new(|vs: Vec<AnyValue>| {
                let mut all = Vec::new();
                for v in vs {
                    all.extend(downcast_ret::<Vec<u64>>(v)?);
                }
                Ok(weavepar_weave::ret!(all))
            }),
        }
    }

    #[test]
    fn farm_computes_and_preserves_order() {
        let weaver = Weaver::new();
        weaver.plug(FarmConfig::new(protocol(3, 6)).aspect("Partition"));
        let w = WorkerProxy::construct(&weaver, 42).unwrap();
        assert_eq!(weaver.space().ids_of_class("Worker").len(), 3);
        let input: Vec<u64> = (0..24).collect();
        let out = w.compute(input.clone()).unwrap();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn packs_are_spread_round_robin() {
        let weaver = Weaver::new();
        weaver.plug(FarmConfig::new(protocol(3, 6)).aspect("Partition"));
        let w = WorkerProxy::construct(&weaver, 0).unwrap();
        w.compute((0..24).collect()).unwrap();
        // 6 packs over 3 workers: 2 each.
        for id in weaver.space().ids_of_class("Worker") {
            let served = weaver.space().with_object::<Worker, _>(id, |w| w.served).unwrap();
            assert_eq!(served, 2, "round robin must balance packs");
        }
        let _ = w;
    }

    #[test]
    fn farm_with_concurrency_matches_sequential() {
        let weaver = Weaver::new();
        weaver.plug(FarmConfig::new(protocol(4, 8)).aspect("Partition"));
        let executor = Executor::thread_per_call();
        for a in future_concurrency_aspect(
            "Concurrency",
            Pointcut::call("Worker.compute"),
            executor.clone(),
        ) {
            weaver.plug(a);
        }
        let w = WorkerProxy::construct(&weaver, 0).unwrap();
        let ret = w.handle().call("compute", args![(0..64).collect::<Vec<u64>>()]).unwrap();
        let out = downcast_ret::<Vec<u64>>(resolve_any(ret).unwrap()).unwrap();
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
        executor.wait_idle();
    }

    #[test]
    fn unmanaged_target_falls_back_to_itself() {
        // Plug the farm aspect *after* construction: the object has no
        // workers field, so packs all route to the original object.
        let weaver = Weaver::new();
        let w = WorkerProxy::construct(&weaver, 0).unwrap();
        weaver.plug(FarmConfig::new(protocol(3, 2)).aspect("Partition"));
        let out = w.compute(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(out, vec![2, 4, 6, 8]);
        assert_eq!(w.served().unwrap(), 2, "both packs served by the original");
    }

    #[test]
    fn swap_pipeline_for_farm_is_a_replug() {
        // The paper's headline: exchanging one partition strategy for the
        // other is plugging a different aspect — core code untouched.
        let weaver = Weaver::new();
        let pipeline = weaver.plug(
            crate::pipeline::PipelineConfig::new(Protocol {
                // Pipeline of no-op-ish taggers is unsuitable for Worker, so
                // use a 1-stage pipeline: semantically same as the farm of 1.
                workers: 1,
                ..protocol(1, 2)
            })
            .aspect("Partition"),
        );
        let w = WorkerProxy::construct(&weaver, 0).unwrap();
        assert_eq!(w.compute(vec![3]).unwrap(), vec![6]);
        weaver.unplug(&pipeline);
        weaver.plug(FarmConfig::new(protocol(3, 3)).aspect("Partition"));
        let w2 = WorkerProxy::construct(&weaver, 0).unwrap();
        assert_eq!(w2.compute(vec![3]).unwrap(), vec![6]);
    }

    fn marshal() -> weavepar_middleware::MarshalRegistry {
        let m = weavepar_middleware::MarshalRegistry::new();
        m.register::<(u64,), ()>("Worker", "new");
        m.register::<(Vec<u64>,), Vec<u64>>("Worker", "compute");
        m
    }

    #[test]
    fn farm_redispatches_orphaned_packs_without_a_supervisor() {
        use weavepar_middleware::{InProcFabric, RmiConfig};
        let fabric = InProcFabric::new(2, marshal());
        fabric.register_class::<Worker>();
        let weaver = Weaver::new();
        weaver.plug(FarmConfig::new(protocol(2, 4)).aspect("Partition"));
        weaver.plug(
            RmiConfig::new("Worker", Pointcut::call("Worker.compute"), fabric.clone())
                .aspect("Distribution"),
        );
        let w = WorkerProxy::construct(&weaver, 0).unwrap();
        // Two workers on nodes 0 and 1; node 1 dies. Its packs are
        // regenerated and served by the survivor — results identical.
        fabric.kill_node(1).unwrap();
        let input: Vec<u64> = (0..16).collect();
        let out = w.compute(input.clone()).unwrap();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn farm_with_every_worker_dead_fails_typed() {
        use weavepar_middleware::{InProcFabric, RmiConfig};
        let fabric = InProcFabric::new(2, marshal());
        fabric.register_class::<Worker>();
        let weaver = Weaver::new();
        weaver.plug(FarmConfig::new(protocol(2, 2)).aspect("Partition"));
        weaver.plug(
            RmiConfig::new("Worker", Pointcut::call("Worker.compute"), fabric.clone())
                .aspect("Distribution"),
        );
        let w = WorkerProxy::construct(&weaver, 0).unwrap();
        fabric.kill_node(0).unwrap();
        fabric.kill_node(1).unwrap();
        let err = w.compute(vec![1, 2]).unwrap_err();
        assert!(err.is_node_loss(), "unexpected error: {err}");
    }

    #[test]
    fn metered_farm_counts_packs_and_redispatches() {
        use weavepar_middleware::{InProcFabric, RmiConfig};
        let registry = MetricsRegistry::new();
        let fabric = InProcFabric::new(2, marshal());
        fabric.register_class::<Worker>();
        let weaver = Weaver::new();
        weaver.plug(FarmConfig::new(protocol(2, 4)).metrics(&registry).aspect("Partition"));
        weaver.plug(
            RmiConfig::new("Worker", Pointcut::call("Worker.compute"), fabric.clone())
                .aspect("Distribution"),
        );
        let w = WorkerProxy::construct(&weaver, 0).unwrap();
        fabric.kill_node(1).unwrap();
        let input: Vec<u64> = (0..16).collect();
        let out = w.compute(input.clone()).unwrap();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("Partition.packs_issued"), Some(4));
        // Packs 1 and 3 landed on the dead node and came back through
        // re-dispatch.
        assert_eq!(snap.counter("Partition.redispatched"), Some(2));
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::{Worker, WorkerProxy};
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;
    use weavepar_weave::{args, value::downcast_ret};

    fn protocol(workers: usize, packs: usize) -> Protocol {
        Protocol {
            class: "Worker",
            method: "compute",
            workers,
            worker_args: Arc::new(|_rank, _n, orig: &Args| Ok(args![*orig.get::<u64>(0)?])),
            split: Arc::new(move |a: &Args| {
                let items = a.get::<Vec<u64>>(0)?;
                if items.is_empty() {
                    return Ok(Vec::new());
                }
                let chunk = items.len().div_ceil(packs.max(1)).max(1);
                Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
            }),
            reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
            combine: Arc::new(|vs: Vec<AnyValue>| {
                let mut all = Vec::new();
                for v in vs {
                    all.extend(downcast_ret::<Vec<u64>>(v)?);
                }
                Ok(weavepar_weave::ret!(all))
            }),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Farming is semantically invisible: any input, worker count and
        /// pack count produces exactly the sequential map, in order.
        #[test]
        fn farm_is_semantically_invisible(
            input in proptest::collection::vec(any::<u32>(), 0..200),
            workers in 1usize..6,
            packs in 1usize..10,
        ) {
            let input: Vec<u64> = input.into_iter().map(u64::from).collect();
            let weaver = Weaver::new();
            weaver.plug(FarmConfig::new(protocol(workers, packs)).aspect("Partition"));
            let w = WorkerProxy::construct(&weaver, 0).unwrap();
            let out = w.compute(input.clone()).unwrap();
            let expect: Vec<u64> = input.iter().map(|x| x * 2).collect();
            prop_assert_eq!(out, expect);
            // The duplication invariant: exactly `workers` aspect-managed
            // objects exist besides nothing else.
            prop_assert_eq!(weaver.space().ids_of_class("Worker").len(), workers);
        }

        /// Pack routing covers every worker when there are at least as many
        /// packs as workers (round-robin coverage).
        #[test]
        fn round_robin_covers_all_workers(workers in 1usize..5, multiplier in 1usize..4) {
            let packs = workers * multiplier;
            let weaver = Weaver::new();
            weaver.plug(FarmConfig::new(protocol(workers, packs)).aspect("Partition"));
            let w = WorkerProxy::construct(&weaver, 0).unwrap();
            let input: Vec<u64> = (0..(packs as u64 * 4)).collect();
            w.compute(input).unwrap();
            for id in weaver.space().ids_of_class("Worker") {
                let served = weaver.space().with_object::<Worker, _>(id, |w| w.served).unwrap();
                prop_assert!(served >= 1, "worker {id} starved");
            }
        }
    }
}
