//! The heartbeat partition aspect.
//!
//! The paper's conclusion names *heartbeat* as the third strategy category it
//! developed reusable aspects for: iterative computations where, between
//! iterations, neighbouring partitions exchange updated boundary data (§4.1:
//! "in iterative applications the full data set can be initially distributed
//! into several objects in a block fashion ... Between iterations, the
//! partition code must exchange updated data among objects").
//!
//! The aspect intercepts the core's *run* call and replaces it with the
//! heartbeat driver: per iteration, an exchange phase followed by a step on
//! every worker (a barrier separates iterations). All worker interactions go
//! through the weaver, so concurrency and distribution aspects compose.

use std::sync::Arc;

use weavepar_concurrency::resolve_any;
use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;

use crate::common::{CollectFn, ExchangeFn, IterationsFn, RankedArgsFn, WORKERS_FIELD};

/// Configuration of a concrete heartbeat computation.
#[derive(Clone)]
pub struct HeartbeatConfig {
    /// Weaveable class of the workers.
    pub class: &'static str,
    /// Number of block workers.
    pub workers: usize,
    /// Derive worker `rank`'s constructor arguments from the original
    /// construction's arguments.
    pub worker_args: RankedArgsFn,
    /// The core method that drives the whole computation (intercepted).
    pub run_method: &'static str,
    /// Extract the iteration count from the run call's arguments.
    pub iterations: IterationsFn,
    /// Per-iteration method invoked on every worker.
    pub step_method: &'static str,
    /// Arguments for the step call at a given iteration.
    pub step_args: Arc<dyn Fn(u64) -> WeaveResult<Args> + Send + Sync>,
    /// Boundary exchange between workers before each iteration, expressed as
    /// woven calls so distribution applies.
    pub exchange: ExchangeFn,
    /// Gather the final result from the workers.
    pub collect: CollectFn,
}

impl std::fmt::Debug for HeartbeatConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeartbeatConfig")
            .field("class", &self.class)
            .field("workers", &self.workers)
            .field("run_method", &self.run_method)
            .field("step_method", &self.step_method)
            .finish()
    }
}

impl HeartbeatConfig {
    /// Build the heartbeat partition aspect named `name` (the builder-style
    /// terminal, like the other skeleton configs):
    ///
    /// ```ignore
    /// weaver.plug(HeartbeatConfig { /* ... */ }.aspect("Partition"));
    /// ```
    pub fn aspect(self, name: impl Into<String>) -> Aspect {
        build(name.into(), self)
    }
}

/// Build the heartbeat partition aspect for `config`.
#[deprecated(note = "use `config.aspect(name)` (see `HeartbeatConfig`)")]
pub fn heartbeat_aspect(name: impl Into<String>, config: HeartbeatConfig) -> Aspect {
    config.aspect(name)
}

fn build(name: String, config: HeartbeatConfig) -> Aspect {
    let dup = config.clone();
    let drive = config.clone();

    Aspect::named(name)
        .precedence(precedence::PARTITION)
        // Block duplication: one construction becomes `workers` block objects.
        .around(
            Pointcut::construct(config.class).and(Pointcut::within_core()),
            move |inv: &mut Invocation| {
                let weaver = inv.weaver().clone();
                let mut ids = Vec::with_capacity(dup.workers);
                for rank in 0..dup.workers {
                    let args = (dup.worker_args)(rank, dup.workers, inv.args()?)?;
                    ids.push(weaver.construct_dyn(dup.class, args)?);
                }
                let first = *ids.first().ok_or_else(|| {
                    WeaveError::app("heartbeat protocol needs at least one worker")
                })?;
                weaver.intertype().set_field(first, WORKERS_FIELD, ids);
                Ok(weavepar_weave::ret!(first))
            },
        )
        // The heartbeat driver replaces the core run call.
        .around(
            Pointcut::call_sig(config.class, config.run_method).and(Pointcut::within_core()),
            move |inv: &mut Invocation| {
                let weaver = inv.weaver().clone();
                let target = inv.target_required()?;
                let workers = weaver
                    .intertype()
                    .get_field::<Vec<ObjId>>(target, WORKERS_FIELD)
                    .unwrap_or_else(|| vec![target]);
                let iterations = (drive.iterations)(inv.args()?)?;
                // One exchange buffer reused across iterations — the step
                // phase runs every heartbeat, so a fresh Vec per iteration
                // is avoidable hot-path allocation.
                let mut pending = Vec::with_capacity(workers.len());
                for iteration in 0..iterations {
                    (drive.exchange)(&weaver, &workers, iteration)?;
                    // Step phase: issue to all workers, then barrier.
                    for &worker in &workers {
                        let args = (drive.step_args)(iteration)?;
                        pending.push(weaver.invoke_call(
                            worker,
                            drive.class,
                            drive.step_method,
                            args,
                        )?);
                    }
                    for ret in pending.drain(..) {
                        resolve_any(ret)?;
                    }
                }
                (drive.collect)(&weaver, &workers)
            },
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use weavepar_concurrency::{future_concurrency_aspect, Executor};
    use weavepar_weave::{args, value::downcast_ret};

    /// A 1-D block that relaxes towards the average of its neighbours —
    /// a miniature Jacobi worker with explicit halo cells.
    struct Block {
        cells: Vec<f64>,
        left_halo: f64,
        right_halo: f64,
    }

    weavepar_weave::weaveable! {
        class Block as BlockProxy {
            fn new(value: f64, len: u64) -> Self {
                Block { cells: vec![value; len as usize], left_halo: 0.0, right_halo: 0.0 }
            }
            fn set_halos(&mut self, left: f64, right: f64) {
                self.left_halo = left;
                self.right_halo = right;
            }
            fn edge_values(&mut self) -> (f64, f64) {
                (*self.cells.first().unwrap(), *self.cells.last().unwrap())
            }
            fn step(&mut self) {
                let mut next = self.cells.clone();
                let n = self.cells.len();
                for (i, cell) in next.iter_mut().enumerate() {
                    let left = if i == 0 { self.left_halo } else { self.cells[i - 1] };
                    let right = if i + 1 == n { self.right_halo } else { self.cells[i + 1] };
                    *cell = (left + right) / 2.0;
                }
                self.cells = next;
            }
            fn sum(&mut self) -> f64 {
                self.cells.iter().sum()
            }
            fn run(&mut self, iterations: u64) -> f64 {
                // Sequential reference semantics: a single block with fixed
                // zero halos, relaxed `iterations` times.
                for _ in 0..iterations {
                    self.step();
                }
                self.sum()
            }
        }
    }

    fn config(workers: usize) -> HeartbeatConfig {
        HeartbeatConfig {
            class: "Block",
            workers,
            worker_args: Arc::new(move |_rank, n, orig: &Args| {
                let value = *orig.get::<f64>(0)?;
                let len = *orig.get::<u64>(1)?;
                Ok(args![value, len / n as u64])
            }),
            run_method: "run",
            iterations: Arc::new(|a: &Args| Ok(*a.get::<u64>(0)?)),
            step_method: "step",
            step_args: Arc::new(|_iter| Ok(args![])),
            exchange: Arc::new(|weaver: &Weaver, workers: &[ObjId], _iter| {
                // Gather edges, then set halos (outermost halos stay 0).
                let mut edges = Vec::with_capacity(workers.len());
                for &w in workers {
                    let ret = weaver.invoke_call(w, "Block", "edge_values", args![])?;
                    edges.push(downcast_ret::<(f64, f64)>(resolve_any(ret)?)?);
                }
                for (i, &w) in workers.iter().enumerate() {
                    let left = if i == 0 { 0.0 } else { edges[i - 1].1 };
                    let right = if i + 1 == workers.len() { 0.0 } else { edges[i + 1].0 };
                    let ret = weaver.invoke_call(w, "Block", "set_halos", args![left, right])?;
                    resolve_any(ret)?;
                }
                Ok(())
            }),
            collect: Arc::new(|weaver: &Weaver, workers: &[ObjId]| {
                let mut total = 0.0;
                for &w in workers {
                    let ret = weaver.invoke_call(w, "Block", "sum", args![])?;
                    total += downcast_ret::<f64>(resolve_any(ret)?)?;
                }
                Ok(weavepar_weave::ret!(total))
            }),
        }
    }

    fn sequential_reference(value: f64, len: usize, iterations: u64) -> f64 {
        let mut b = Block::new(value, len as u64);
        b.run(iterations)
    }

    #[test]
    fn heartbeat_matches_sequential_reference() {
        for workers in [1usize, 2, 4] {
            let weaver = Weaver::new();
            weaver.plug(config(workers).aspect("Partition"));
            let b = BlockProxy::construct(&weaver, 1.0, 16).unwrap();
            assert_eq!(weaver.space().ids_of_class("Block").len(), workers);
            let got = b.run(10).unwrap();
            let want = sequential_reference(1.0, 16, 10);
            assert!((got - want).abs() < 1e-9, "workers={workers}: {got} vs sequential {want}");
        }
    }

    #[test]
    fn heartbeat_with_concurrent_steps_matches() {
        let weaver = Weaver::new();
        weaver.plug(config(4).aspect("Partition"));
        let executor = Executor::thread_per_call();
        // Only the per-iteration steps run asynchronously; the exchange
        // calls stay synchronous (they are matched by their own names).
        for a in
            future_concurrency_aspect("Concurrency", Pointcut::call("Block.step"), executor.clone())
        {
            weaver.plug(a);
        }
        let b = BlockProxy::construct(&weaver, 2.0, 32).unwrap();
        let got = b.run(8).unwrap();
        executor.wait_idle();
        let want = sequential_reference(2.0, 32, 8);
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn zero_iterations_is_identity() {
        let weaver = Weaver::new();
        weaver.plug(config(2).aspect("Partition"));
        let b = BlockProxy::construct(&weaver, 3.0, 8).unwrap();
        let got = b.run(0).unwrap();
        assert!((got - 24.0).abs() < 1e-12);
    }

    #[test]
    fn unplugged_heartbeat_runs_the_core_sequentially() {
        let weaver = Weaver::new();
        let plugged = weaver.plug(config(4).aspect("Partition"));
        weaver.unplug(&plugged);
        let b = BlockProxy::construct(&weaver, 1.0, 16).unwrap();
        assert_eq!(weaver.space().ids_of_class("Block").len(), 1);
        let got = b.run(10).unwrap();
        let want = sequential_reference(1.0, 16, 10);
        assert!((got - want).abs() < 1e-12);
    }
}
