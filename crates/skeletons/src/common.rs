//! Shared pieces of the partition protocols.

use std::sync::Arc;

use weavepar_weave::{AnyValue, Args, ObjId, WeaveResult, Weaver};

/// Derives a worker's constructor arguments from `(rank, workers, original)`.
pub type RankedArgsFn = Arc<dyn Fn(usize, usize, &Args) -> WeaveResult<Args> + Send + Sync>;

/// Splits one call's arguments into per-pack argument packs.
pub type SplitFn = Arc<dyn Fn(&Args) -> WeaveResult<Vec<Args>> + Send + Sync>;

/// Maps one call's arguments to another call's arguments.
pub type MapArgsFn = Arc<dyn Fn(&Args) -> WeaveResult<Args> + Send + Sync>;

/// Decides a yes/no question about a call's arguments.
pub type PredicateFn = Arc<dyn Fn(&Args) -> WeaveResult<bool> + Send + Sync>;

/// Extracts an iteration count from a call's arguments.
pub type IterationsFn = Arc<dyn Fn(&Args) -> WeaveResult<u64> + Send + Sync>;

/// Boundary exchange between workers at a given iteration, expressed as
/// woven calls so a plugged distribution aspect applies to it.
pub type ExchangeFn = Arc<dyn Fn(&Weaver, &[ObjId], u64) -> WeaveResult<()> + Send + Sync>;

/// Gathers a final result from the workers.
pub type CollectFn = Arc<dyn Fn(&Weaver, &[ObjId]) -> WeaveResult<AnyValue> + Send + Sync>;

/// How a concrete application refines an abstract partition protocol —
/// the closure-shaped analogue of implementing the paper's `Pipe` marker
/// interface under the abstract `PipelineProtocol` aspect (Figure 9).
#[derive(Clone)]
pub struct Protocol {
    /// Weaveable class the protocol quantifies over.
    pub class: &'static str,
    /// The compute method whose calls are split (`filter`, `compute`, ...).
    pub method: &'static str,
    /// Number of aspect-managed workers/stages to create.
    pub workers: usize,
    /// Derive worker `rank`'s constructor arguments from the original
    /// construction's arguments (`rank` ∈ `0..workers`). A farm typically
    /// broadcasts the originals; a pipeline slices a range per stage.
    pub worker_args: RankedArgsFn,
    /// Split the original call's arguments into per-pack argument packs.
    pub split: SplitFn,
    /// Rebuild call arguments from a value flowing between stages (pipeline
    /// forwarding: the previous stage's output becomes the next stage's
    /// input).
    pub reforward: Arc<dyn Fn(AnyValue) -> WeaveResult<Args> + Send + Sync>,
    /// Combine the per-pack results into the original call's result.
    pub combine: Arc<dyn Fn(Vec<AnyValue>) -> WeaveResult<AnyValue> + Send + Sync>,
}

impl Protocol {
    /// Create the protocol's aspect-managed workers through *woven*
    /// constructions (provenance: aspect), so a plugged distribution aspect
    /// places each of them remotely, and return their ids in rank order.
    pub fn create_workers(
        &self,
        weaver: &Weaver,
        original_ctor_args: &Args,
    ) -> WeaveResult<Vec<ObjId>> {
        let mut ids = Vec::with_capacity(self.workers);
        for rank in 0..self.workers {
            let args = (self.worker_args)(rank, self.workers, original_ctor_args)?;
            ids.push(weaver.construct_dyn(self.class, args)?);
        }
        Ok(ids)
    }
}

impl std::fmt::Debug for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Protocol")
            .field("class", &self.class)
            .field("method", &self.method)
            .field("workers", &self.workers)
            .finish()
    }
}

/// Grain hints: how a tuning controller reaches into an application's split
/// logic without changing the [`Protocol`] surface.
///
/// The pack/cutoff/fusion granularity lives inside app-supplied closures
/// (`split`, `should_divide`), which capture their grain by value. Rather
/// than threading a handle through every closure signature, the tuned
/// skeleton aspects publish the current hint in a thread-local around the
/// closure call, and grain-aware closures read it back through
/// [`hints::packs_or`] / [`hints::cutoff_or`] / [`hints::fusion_or`],
/// falling back to their captured default when no tuner is plugged. The
/// hint is scoped by an RAII guard, so nested skeletons (a farm splitting
/// inside a divide-and-conquer) never see each other's values.
pub mod hints {
    use std::cell::Cell;

    thread_local! {
        static PACKS: Cell<u32> = const { Cell::new(0) };
        static CUTOFF: Cell<u32> = const { Cell::new(0) };
        static FUSION: Cell<u32> = const { Cell::new(0) };
    }

    /// RAII restore of one hint cell.
    pub struct HintGuard {
        cell: &'static std::thread::LocalKey<Cell<u32>>,
        prev: u32,
    }

    impl Drop for HintGuard {
        fn drop(&mut self) {
            let prev = self.prev;
            self.cell.with(|c| c.set(prev));
        }
    }

    fn set(cell: &'static std::thread::LocalKey<Cell<u32>>, value: u32) -> HintGuard {
        let prev = cell.with(|c| c.replace(value));
        HintGuard { cell, prev }
    }

    /// Publish a pack-count hint for the duration of the guard (0 = unset).
    pub fn set_packs(value: u32) -> HintGuard {
        set(&PACKS, value)
    }

    /// Publish a sequential-cutoff hint for the duration of the guard.
    pub fn set_cutoff(value: u32) -> HintGuard {
        set(&CUTOFF, value)
    }

    /// Publish a pipeline stage-fusion hint for the duration of the guard.
    pub fn set_fusion(value: u32) -> HintGuard {
        set(&FUSION, value)
    }

    /// The tuned pack count, or `default` when no tuner published one.
    pub fn packs_or(default: usize) -> usize {
        let v = PACKS.with(|c| c.get());
        if v == 0 {
            default
        } else {
            v as usize
        }
    }

    /// The tuned sequential cutoff, or `default` when none is published.
    pub fn cutoff_or(default: usize) -> usize {
        let v = CUTOFF.with(|c| c.get());
        if v == 0 {
            default
        } else {
            v as usize
        }
    }

    /// The tuned stage-fusion factor, or `default` when none is published.
    pub fn fusion_or(default: usize) -> usize {
        let v = FUSION.with(|c| c.get());
        if v == 0 {
            default
        } else {
            v as usize
        }
    }
}

/// Inter-type field linking a pipeline stage to its successor
/// (the paper's `next` HashMap in Figure 8).
pub const NEXT_FIELD: &str = "pipeline.next";

/// Inter-type field on the lead object listing all farm workers.
pub const WORKERS_FIELD: &str = "farm.workers";

#[cfg(test)]
mod tests {
    use super::*;
    use weavepar_weave::args;

    struct W {
        rank: u64,
    }

    weavepar_weave::weaveable! {
        class W as WProxy {
            fn new(rank: u64) -> Self { W { rank } }
            fn rank(&mut self) -> u64 { self.rank }
        }
    }

    fn protocol(workers: usize) -> Protocol {
        Protocol {
            class: "W",
            method: "rank",
            workers,
            worker_args: Arc::new(|rank, _n, _orig| Ok(args![rank as u64])),
            split: Arc::new(|_args| Ok(vec![])),
            reforward: Arc::new(|_v| Ok(args![])),
            combine: Arc::new(|_v| Ok(weavepar_weave::ret!())),
        }
    }

    #[test]
    fn create_workers_in_rank_order() {
        let weaver = Weaver::new();
        weaver.register_class::<W>();
        let ids = protocol(4).create_workers(&weaver, &args![]).unwrap();
        assert_eq!(ids.len(), 4);
        for (rank, id) in ids.iter().enumerate() {
            let got = weaver.space().with_object::<W, _>(*id, |w| w.rank).unwrap();
            assert_eq!(got, rank as u64);
        }
    }

    #[test]
    fn create_workers_requires_registered_class() {
        let weaver = Weaver::new();
        let err = protocol(1).create_workers(&weaver, &args![]).unwrap_err();
        assert!(matches!(err, weavepar_weave::WeaveError::Construction(_)));
    }
}
