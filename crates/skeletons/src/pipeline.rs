//! The reusable pipeline partition aspect — Figure 8's three blocks, made
//! generic (Figure 9).
//!
//! 1. **Object duplication** (`around Class.new`, core-made only): the single
//!    core construction becomes a chain of `workers` stage objects linked by
//!    the `pipeline.next` inter-type field; the client receives the first.
//! 2. **Method-call split** (`around Class.method`, core-made only): the one
//!    big call becomes one call per pack; pack results are combined into the
//!    original call's result.
//! 3. **Forwarding** (`around Class.method`, *all* call sites — applies
//!    recursively to the aspect's own calls, as the paper highlights): after
//!    the stage processes a pack, its output is forwarded to the next stage;
//!    the value of a pack call is the value produced by the *end* of the
//!    chain.
//!
//! Block 3 runs *inside* a plugged asynchronous-invocation aspect (see
//! `weavepar_weave::aspect::precedence`), so with concurrency plugged every
//! hop returns a future and packs stream through the stages concurrently —
//! the paper's Figure 11.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use weavepar_concurrency::resolve_any;
use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;
use weavepar_weave::{Gauge, MetricsRegistry};

use crate::common::{hints, Protocol, NEXT_FIELD};

/// Builder-style configuration of a concrete pipeline (see [`Protocol`]):
///
/// ```ignore
/// weaver.plug(PipelineConfig::new(protocol).tuned(cell).metrics(&reg).aspect("Partition"));
/// ```
#[derive(Clone)]
pub struct PipelineConfig {
    protocol: Protocol,
    fusion_hint: Option<Arc<AtomicU32>>,
    metrics: Option<MetricsRegistry>,
}

impl PipelineConfig {
    /// A pipeline over `protocol`, untuned and unmetered.
    pub fn new(protocol: Protocol) -> Self {
        Self { protocol, fusion_hint: None, metrics: None }
    }

    /// Follow a live stage-fusion hint: the cell's value is published through
    /// [`hints::set_fusion`](crate::common::hints) around each split, so a
    /// fusion-aware `split` closure (reading
    /// [`hints::fusion_or`](crate::common::hints::fusion_or)) can coarsen its
    /// packs — fewer, larger packs amortise the per-hop forwarding cost when
    /// a tuner observes the stages are under-loaded.
    pub fn tuned(mut self, fusion_hint: Arc<AtomicU32>) -> Self {
        self.fusion_hint = Some(fusion_hint);
        self
    }

    /// Meter the pipeline into `registry`: `{name}.packs_issued` counts packs
    /// produced by the split, `{name}.stage_occupancy` gauges how many packs
    /// are being processed inside a stage right now (forwarding hops
    /// excluded) — under a plugged concurrency aspect it rises towards the
    /// stage count while packs stream.
    pub fn metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Build the pipeline partition aspect named `name`.
    pub fn aspect(self, name: impl Into<String>) -> Aspect {
        let name = name.into();
        let PipelineConfig { protocol, fusion_hint, metrics } = self;
        // Resolved once at build time; the hot path touches pre-bound atomics
        // only.
        let packs_issued = metrics.as_ref().map(|m| m.counter(&format!("{name}.packs_issued")));
        let occupancy = metrics.map(|m| m.gauge(&format!("{name}.stage_occupancy")));
        let dup = protocol.clone();
        let split = protocol.clone();
        let fwd = protocol.clone();

        Aspect::named(name)
            .precedence(precedence::PARTITION)
            // Block 1: object duplication (core constructions only).
            .around(
                Pointcut::construct(protocol.class).and(Pointcut::within_core()),
                move |inv: &mut Invocation| {
                    let weaver = inv.weaver().clone();
                    let ids = dup.create_workers(&weaver, inv.args()?)?;
                    // Link the chain: ids[i] -> ids[i+1], last -> None.
                    for (i, id) in ids.iter().enumerate() {
                        let next = ids.get(i + 1).copied();
                        weaver.intertype().set_field(*id, NEXT_FIELD, next);
                    }
                    let first = *ids.first().ok_or_else(|| {
                        WeaveError::app("pipeline protocol needs at least one stage")
                    })?;
                    Ok(weavepar_weave::ret!(first))
                },
            )
            // Block 2: method-call split (core calls only).
            .around(
                Pointcut::call_sig(protocol.class, protocol.method).and(Pointcut::within_core()),
                move |inv: &mut Invocation| {
                    let weaver = inv.weaver().clone();
                    let target = inv.target_required()?;
                    let packs = {
                        let _hint = fusion_hint
                            .as_ref()
                            .map(|cell| hints::set_fusion(cell.load(Ordering::Relaxed)));
                        (split.split)(inv.args()?)?
                    };
                    if let Some(c) = &packs_issued {
                        c.add(packs.len() as u64);
                    }
                    // Issue every pack call (aspect provenance: matched by the
                    // forward advice and by concurrency/distribution, not by this
                    // split again), then resolve and combine.
                    //
                    // Deliberately NOT wrapped in a `BatchScope` (unlike the farm
                    // and divide-and-conquer skeletons): packs must *enter stage
                    // one in submission order* so the stages see them in the
                    // sequence the split produced — a pack's journey overlaps the
                    // next pack's, which is the pipeline's parallelism. A batch
                    // flush hands the whole set to the work-stealing pool, whose
                    // LIFO deques and stealing give no FIFO guarantee.
                    let mut pending = Vec::with_capacity(packs.len());
                    for pack in packs {
                        pending.push(weaver.invoke_call(
                            target,
                            split.class,
                            split.method,
                            pack,
                        )?);
                    }
                    let mut results = Vec::with_capacity(pending.len());
                    for ret in pending {
                        results.push(resolve_any(ret)?);
                    }
                    (split.combine)(results)
                },
            )
            // Block 3: forwarding (all call sites, applied recursively).
            .around(
                Pointcut::call_sig(protocol.class, protocol.method),
                move |inv: &mut Invocation| {
                    let weaver = inv.weaver().clone();
                    let target = inv.target_required()?;
                    let out = {
                        // Occupancy covers the stage's own processing; the
                        // guard restores the gauge on the error path too.
                        let _occ = occupancy.as_ref().map(|g| {
                            g.inc();
                            OccupancyGuard(g)
                        });
                        inv.proceed()?
                    };
                    match weaver.intertype().get_field::<Option<ObjId>>(target, NEXT_FIELD) {
                        Some(Some(next)) => {
                            // Forward this stage's output down the chain; the
                            // downstream return value (possibly a future) IS this
                            // pack's result.
                            let fwd_args = (fwd.reforward)(out)?;
                            weaver.invoke_call(next, fwd.class, fwd.method, fwd_args)
                        }
                        // Last stage (or an unmanaged object): its output is final.
                        _ => Ok(out),
                    }
                },
            )
            .build()
    }
}

/// Decrements the stage-occupancy gauge on every exit path.
struct OccupancyGuard<'a>(&'a Gauge);

impl Drop for OccupancyGuard<'_> {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Build the pipeline partition aspect for `protocol`.
#[deprecated(note = "use `PipelineConfig::new(protocol).aspect(name)`")]
pub fn pipeline_aspect(name: impl Into<String>, protocol: Protocol) -> Aspect {
    PipelineConfig::new(protocol).aspect(name)
}

/// [`PipelineConfig::new`] + [`tuned`](PipelineConfig::tuned) in the old
/// free-function shape.
#[deprecated(note = "use `PipelineConfig::new(protocol).tuned(cell).aspect(name)`")]
pub fn pipeline_aspect_tuned(
    name: impl Into<String>,
    protocol: Protocol,
    fusion_hint: Option<Arc<AtomicU32>>,
) -> Aspect {
    let mut cfg = PipelineConfig::new(protocol);
    if let Some(cell) = fusion_hint {
        cfg = cfg.tuned(cell);
    }
    cfg.aspect(name)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;
    use weavepar_concurrency::{future_concurrency_aspect, Executor};
    use weavepar_weave::{args, value::downcast_ret};

    /// A stage that appends its tag to every item it sees.
    pub(crate) struct Tagger {
        pub(crate) tag: u64,
    }

    weavepar_weave::weaveable! {
        class Tagger as TaggerProxy {
            fn new(tag: u64) -> Self { Tagger { tag } }
            fn process(&mut self, items: Vec<u64>) -> Vec<u64> {
                items.into_iter().map(|x| x * 10 + self.tag).collect()
            }
        }
    }

    fn protocol(stages: usize, packs: usize) -> Protocol {
        Protocol {
            class: "Tagger",
            method: "process",
            workers: stages,
            worker_args: Arc::new(|rank, _n, _orig| Ok(args![rank as u64 + 1])),
            split: Arc::new(move |a: &Args| {
                let items = a.get::<Vec<u64>>(0)?;
                let chunk = items.len().div_ceil(packs.max(1)).max(1);
                Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
            }),
            reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
            combine: Arc::new(|vs: Vec<AnyValue>| {
                let mut all = Vec::new();
                for v in vs {
                    all.extend(downcast_ret::<Vec<u64>>(v)?);
                }
                Ok(weavepar_weave::ret!(all))
            }),
        }
    }

    #[test]
    fn sequential_pipeline_transforms_through_all_stages() {
        let weaver = Weaver::new();
        weaver.plug(PipelineConfig::new(protocol(3, 2)).aspect("Partition"));
        let p = TaggerProxy::construct(&weaver, 99).unwrap();
        // 3 stages exist, not 1, and the ctor arg 99 was replaced per stage.
        assert_eq!(weaver.space().ids_of_class("Tagger").len(), 3);
        // Each item passes stages 1, 2, 3: x -> x*10+1 -> ... -> ((x*10+1)*10+2)*10+3.
        let out = p.process(vec![0, 1]).unwrap();
        let f = |x: u64| ((x * 10 + 1) * 10 + 2) * 10 + 3;
        assert_eq!(out, vec![f(0), f(1)]);
    }

    #[test]
    fn pack_order_is_preserved_by_combine() {
        let weaver = Weaver::new();
        weaver.plug(PipelineConfig::new(protocol(1, 4)).aspect("Partition"));
        let p = TaggerProxy::construct(&weaver, 0).unwrap();
        let input: Vec<u64> = (0..16).collect();
        let out = p.process(input.clone()).unwrap();
        let expect: Vec<u64> = input.iter().map(|x| x * 10 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_pipeline_gives_same_answer() {
        let weaver = Weaver::new();
        weaver.plug(PipelineConfig::new(protocol(3, 4)).aspect("Partition"));
        let executor = Executor::thread_per_call();
        for a in future_concurrency_aspect(
            "Concurrency",
            Pointcut::call("Tagger.process"),
            executor.clone(),
        ) {
            weaver.plug(a);
        }
        let p = TaggerProxy::construct(&weaver, 0).unwrap();
        // With concurrency plugged the core-level call returns a future.
        let ret = p.handle().call("process", args![(0..32).collect::<Vec<u64>>()]).unwrap();
        let out = downcast_ret::<Vec<u64>>(resolve_any(ret).unwrap()).unwrap();
        let f = |x: u64| ((x * 10 + 1) * 10 + 2) * 10 + 3;
        let expect: Vec<u64> = (0..32).map(f).collect();
        assert_eq!(out, expect);
        executor.wait_idle();
    }

    #[test]
    fn unplugging_restores_single_object_semantics() {
        let weaver = Weaver::new();
        let plugged = weaver.plug(PipelineConfig::new(protocol(3, 2)).aspect("Partition"));
        weaver.unplug(&plugged);
        let p = TaggerProxy::construct(&weaver, 7).unwrap();
        assert_eq!(weaver.space().ids_of_class("Tagger").len(), 1);
        assert_eq!(p.process(vec![1]).unwrap(), vec![17]);
    }

    #[test]
    fn zero_stage_pipeline_is_an_error() {
        let weaver = Weaver::new();
        weaver.plug(PipelineConfig::new(protocol(0, 1)).aspect("Partition"));
        assert!(TaggerProxy::construct(&weaver, 0).is_err());
    }

    #[test]
    fn metered_pipeline_counts_packs_and_restores_occupancy() {
        let registry = MetricsRegistry::new();
        let weaver = Weaver::new();
        weaver.plug(PipelineConfig::new(protocol(3, 4)).metrics(&registry).aspect("Partition"));
        let p = TaggerProxy::construct(&weaver, 0).unwrap();
        p.process((0..16).collect()).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("Partition.packs_issued"), Some(4));
        // Quiescent pipeline: every occupancy increment was paired with its
        // guard's decrement.
        assert_eq!(snap.gauge("Partition.stage_occupancy"), Some(0));
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::{Tagger, TaggerProxy};
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;
    use weavepar_weave::{args, value::downcast_ret};

    fn protocol(stages: usize, packs: usize) -> Protocol {
        Protocol {
            class: "Tagger",
            method: "process",
            workers: stages,
            worker_args: Arc::new(|rank, _n, _orig| Ok(args![rank as u64 + 1])),
            split: Arc::new(move |a: &Args| {
                let items = a.get::<Vec<u64>>(0)?;
                if items.is_empty() {
                    return Ok(Vec::new());
                }
                let chunk = items.len().div_ceil(packs.max(1)).max(1);
                Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
            }),
            reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
            combine: Arc::new(|vs: Vec<AnyValue>| {
                let mut all = Vec::new();
                for v in vs {
                    all.extend(downcast_ret::<Vec<u64>>(v)?);
                }
                Ok(weavepar_weave::ret!(all))
            }),
        }
    }

    /// What a pipeline of `stages` tag-appenders computes, by definition.
    fn staged_reference(input: &[u64], stages: usize) -> Vec<u64> {
        let mut data = input.to_vec();
        for stage in 1..=stages as u64 {
            let mut t = Tagger { tag: stage };
            data = t.process(data);
        }
        data
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every pack crosses every stage exactly once, in stage order, and
        /// pack order survives the combine.
        #[test]
        fn pipeline_composes_stages_in_order(
            input in proptest::collection::vec(0u64..1000, 0..120),
            stages in 1usize..5,
            packs in 1usize..8,
        ) {
            let weaver = Weaver::new();
            weaver.plug(PipelineConfig::new(protocol(stages, packs)).aspect("Partition"));
            let p = TaggerProxy::construct(&weaver, 0).unwrap();
            let out = p.process(input.clone()).unwrap();
            prop_assert_eq!(out, staged_reference(&input, stages));
            prop_assert_eq!(weaver.space().ids_of_class("Tagger").len(), stages);
        }

        /// Pack granularity never changes the result.
        #[test]
        fn pack_count_is_irrelevant(
            input in proptest::collection::vec(0u64..1000, 1..80),
            stages in 1usize..4,
        ) {
            let run = |packs: usize| {
                let weaver = Weaver::new();
                weaver.plug(PipelineConfig::new(protocol(stages, packs)).aspect("Partition"));
                let p = TaggerProxy::construct(&weaver, 0).unwrap();
                p.process(input.clone()).unwrap()
            };
            let one = run(1);
            let many = run(7);
            prop_assert_eq!(one, many);
        }
    }
}
