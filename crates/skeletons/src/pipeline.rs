//! The reusable pipeline partition aspect — Figure 8's three blocks, made
//! generic (Figure 9).
//!
//! 1. **Object duplication** (`around Class.new`, core-made only): the single
//!    core construction becomes a chain of `workers` stage objects linked by
//!    the `pipeline.next` inter-type field; the client receives the first.
//! 2. **Method-call split** (`around Class.method`, core-made only): the one
//!    big call becomes one call per pack; pack results are combined into the
//!    original call's result.
//! 3. **Forwarding** (`around Class.method`, *all* call sites — applies
//!    recursively to the aspect's own calls, as the paper highlights): after
//!    the stage processes a pack, its output is forwarded to the next stage;
//!    the value of a pack call is the value produced by the *end* of the
//!    chain.
//!
//! Block 3 runs *inside* a plugged asynchronous-invocation aspect (see
//! `weavepar_weave::aspect::precedence`), so with concurrency plugged every
//! hop returns a future and packs stream through the stages concurrently —
//! the paper's Figure 11.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use weavepar_concurrency::resolve_any;
use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;

use crate::common::{hints, Protocol, NEXT_FIELD};

/// Configuration of a concrete pipeline (see [`Protocol`]).
pub type PipelineConfig = Protocol;

/// Build the pipeline partition aspect for `protocol`.
pub fn pipeline_aspect(name: impl Into<String>, protocol: PipelineConfig) -> Aspect {
    pipeline_aspect_tuned(name, protocol, None)
}

/// [`pipeline_aspect`] with a live stage-fusion hint: the cell's value is
/// published through [`hints::set_fusion`](crate::common::hints) around each
/// split, so a fusion-aware `split` closure (reading
/// [`hints::fusion_or`](crate::common::hints::fusion_or)) can coarsen its
/// packs — fewer, larger packs amortise the per-hop forwarding cost when a
/// tuner observes the stages are under-loaded.
pub fn pipeline_aspect_tuned(
    name: impl Into<String>,
    protocol: PipelineConfig,
    fusion_hint: Option<Arc<AtomicU32>>,
) -> Aspect {
    let dup = protocol.clone();
    let split = protocol.clone();
    let fwd = protocol.clone();

    Aspect::named(name)
        .precedence(precedence::PARTITION)
        // Block 1: object duplication (core constructions only).
        .around(
            Pointcut::construct(protocol.class).and(Pointcut::within_core()),
            move |inv: &mut Invocation| {
                let weaver = inv.weaver().clone();
                let ids = dup.create_workers(&weaver, inv.args()?)?;
                // Link the chain: ids[i] -> ids[i+1], last -> None.
                for (i, id) in ids.iter().enumerate() {
                    let next = ids.get(i + 1).copied();
                    weaver.intertype().set_field(*id, NEXT_FIELD, next);
                }
                let first = *ids
                    .first()
                    .ok_or_else(|| WeaveError::app("pipeline protocol needs at least one stage"))?;
                Ok(weavepar_weave::ret!(first))
            },
        )
        // Block 2: method-call split (core calls only).
        .around(
            Pointcut::call_sig(protocol.class, protocol.method).and(Pointcut::within_core()),
            move |inv: &mut Invocation| {
                let weaver = inv.weaver().clone();
                let target = inv.target_required()?;
                let packs = {
                    let _hint = fusion_hint
                        .as_ref()
                        .map(|cell| hints::set_fusion(cell.load(Ordering::Relaxed)));
                    (split.split)(inv.args()?)?
                };
                // Issue every pack call (aspect provenance: matched by the
                // forward advice and by concurrency/distribution, not by this
                // split again), then resolve and combine.
                //
                // Deliberately NOT wrapped in a `BatchScope` (unlike the farm
                // and divide-and-conquer skeletons): packs must *enter stage
                // one in submission order* so the stages see them in the
                // sequence the split produced — a pack's journey overlaps the
                // next pack's, which is the pipeline's parallelism. A batch
                // flush hands the whole set to the work-stealing pool, whose
                // LIFO deques and stealing give no FIFO guarantee.
                let mut pending = Vec::with_capacity(packs.len());
                for pack in packs {
                    pending.push(weaver.invoke_call(target, split.class, split.method, pack)?);
                }
                let mut results = Vec::with_capacity(pending.len());
                for ret in pending {
                    results.push(resolve_any(ret)?);
                }
                (split.combine)(results)
            },
        )
        // Block 3: forwarding (all call sites, applied recursively).
        .around(Pointcut::call_sig(protocol.class, protocol.method), move |inv: &mut Invocation| {
            let weaver = inv.weaver().clone();
            let target = inv.target_required()?;
            let out = inv.proceed()?;
            match weaver.intertype().get_field::<Option<ObjId>>(target, NEXT_FIELD) {
                Some(Some(next)) => {
                    // Forward this stage's output down the chain; the
                    // downstream return value (possibly a future) IS this
                    // pack's result.
                    let fwd_args = (fwd.reforward)(out)?;
                    weaver.invoke_call(next, fwd.class, fwd.method, fwd_args)
                }
                // Last stage (or an unmanaged object): its output is final.
                _ => Ok(out),
            }
        })
        .build()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;
    use weavepar_concurrency::{future_concurrency_aspect, Executor};
    use weavepar_weave::{args, value::downcast_ret};

    /// A stage that appends its tag to every item it sees.
    pub(crate) struct Tagger {
        pub(crate) tag: u64,
    }

    weavepar_weave::weaveable! {
        class Tagger as TaggerProxy {
            fn new(tag: u64) -> Self { Tagger { tag } }
            fn process(&mut self, items: Vec<u64>) -> Vec<u64> {
                items.into_iter().map(|x| x * 10 + self.tag).collect()
            }
        }
    }

    fn protocol(stages: usize, packs: usize) -> PipelineConfig {
        Protocol {
            class: "Tagger",
            method: "process",
            workers: stages,
            worker_args: Arc::new(|rank, _n, _orig| Ok(args![rank as u64 + 1])),
            split: Arc::new(move |a: &Args| {
                let items = a.get::<Vec<u64>>(0)?;
                let chunk = items.len().div_ceil(packs.max(1)).max(1);
                Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
            }),
            reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
            combine: Arc::new(|vs: Vec<AnyValue>| {
                let mut all = Vec::new();
                for v in vs {
                    all.extend(downcast_ret::<Vec<u64>>(v)?);
                }
                Ok(weavepar_weave::ret!(all))
            }),
        }
    }

    #[test]
    fn sequential_pipeline_transforms_through_all_stages() {
        let weaver = Weaver::new();
        weaver.plug(pipeline_aspect("Partition", protocol(3, 2)));
        let p = TaggerProxy::construct(&weaver, 99).unwrap();
        // 3 stages exist, not 1, and the ctor arg 99 was replaced per stage.
        assert_eq!(weaver.space().ids_of_class("Tagger").len(), 3);
        // Each item passes stages 1, 2, 3: x -> x*10+1 -> ... -> ((x*10+1)*10+2)*10+3.
        let out = p.process(vec![0, 1]).unwrap();
        let f = |x: u64| ((x * 10 + 1) * 10 + 2) * 10 + 3;
        assert_eq!(out, vec![f(0), f(1)]);
    }

    #[test]
    fn pack_order_is_preserved_by_combine() {
        let weaver = Weaver::new();
        weaver.plug(pipeline_aspect("Partition", protocol(1, 4)));
        let p = TaggerProxy::construct(&weaver, 0).unwrap();
        let input: Vec<u64> = (0..16).collect();
        let out = p.process(input.clone()).unwrap();
        let expect: Vec<u64> = input.iter().map(|x| x * 10 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_pipeline_gives_same_answer() {
        let weaver = Weaver::new();
        weaver.plug(pipeline_aspect("Partition", protocol(3, 4)));
        let executor = Executor::thread_per_call();
        for a in future_concurrency_aspect(
            "Concurrency",
            Pointcut::call("Tagger.process"),
            executor.clone(),
        ) {
            weaver.plug(a);
        }
        let p = TaggerProxy::construct(&weaver, 0).unwrap();
        // With concurrency plugged the core-level call returns a future.
        let ret = p.handle().call("process", args![(0..32).collect::<Vec<u64>>()]).unwrap();
        let out = downcast_ret::<Vec<u64>>(resolve_any(ret).unwrap()).unwrap();
        let f = |x: u64| ((x * 10 + 1) * 10 + 2) * 10 + 3;
        let expect: Vec<u64> = (0..32).map(f).collect();
        assert_eq!(out, expect);
        executor.wait_idle();
    }

    #[test]
    fn unplugging_restores_single_object_semantics() {
        let weaver = Weaver::new();
        let plugged = weaver.plug(pipeline_aspect("Partition", protocol(3, 2)));
        weaver.unplug(&plugged);
        let p = TaggerProxy::construct(&weaver, 7).unwrap();
        assert_eq!(weaver.space().ids_of_class("Tagger").len(), 1);
        assert_eq!(p.process(vec![1]).unwrap(), vec![17]);
    }

    #[test]
    fn zero_stage_pipeline_is_an_error() {
        let weaver = Weaver::new();
        weaver.plug(pipeline_aspect("Partition", protocol(0, 1)));
        assert!(TaggerProxy::construct(&weaver, 0).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::{Tagger, TaggerProxy};
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;
    use weavepar_weave::{args, value::downcast_ret};

    fn protocol(stages: usize, packs: usize) -> PipelineConfig {
        Protocol {
            class: "Tagger",
            method: "process",
            workers: stages,
            worker_args: Arc::new(|rank, _n, _orig| Ok(args![rank as u64 + 1])),
            split: Arc::new(move |a: &Args| {
                let items = a.get::<Vec<u64>>(0)?;
                if items.is_empty() {
                    return Ok(Vec::new());
                }
                let chunk = items.len().div_ceil(packs.max(1)).max(1);
                Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
            }),
            reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
            combine: Arc::new(|vs: Vec<AnyValue>| {
                let mut all = Vec::new();
                for v in vs {
                    all.extend(downcast_ret::<Vec<u64>>(v)?);
                }
                Ok(weavepar_weave::ret!(all))
            }),
        }
    }

    /// What a pipeline of `stages` tag-appenders computes, by definition.
    fn staged_reference(input: &[u64], stages: usize) -> Vec<u64> {
        let mut data = input.to_vec();
        for stage in 1..=stages as u64 {
            let mut t = Tagger { tag: stage };
            data = t.process(data);
        }
        data
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every pack crosses every stage exactly once, in stage order, and
        /// pack order survives the combine.
        #[test]
        fn pipeline_composes_stages_in_order(
            input in proptest::collection::vec(0u64..1000, 0..120),
            stages in 1usize..5,
            packs in 1usize..8,
        ) {
            let weaver = Weaver::new();
            weaver.plug(pipeline_aspect("Partition", protocol(stages, packs)));
            let p = TaggerProxy::construct(&weaver, 0).unwrap();
            let out = p.process(input.clone()).unwrap();
            prop_assert_eq!(out, staged_reference(&input, stages));
            prop_assert_eq!(weaver.space().ids_of_class("Tagger").len(), stages);
        }

        /// Pack granularity never changes the result.
        #[test]
        fn pack_count_is_irrelevant(
            input in proptest::collection::vec(0u64..1000, 1..80),
            stages in 1usize..4,
        ) {
            let run = |packs: usize| {
                let weaver = Weaver::new();
                weaver.plug(pipeline_aspect("Partition", protocol(stages, packs)));
                let p = TaggerProxy::construct(&weaver, 0).unwrap();
                p.process(input.clone()).unwrap()
            };
            let one = run(1);
            let many = run(7);
            prop_assert_eq!(one, many);
        }
    }
}
