//! The dynamic (demand-driven) farm.
//!
//! The paper's `FarmDRMI` row in Table 1: packs are not pre-assigned
//! round-robin but pulled by whichever worker becomes free, which absorbs
//! load imbalance. The paper notes this is the one strategy where it could
//! not separate partition from concurrency — the demand-driven pull *is*
//! the concurrency structure. The same holds here: this aspect owns its
//! worker threads, and is meant to be plugged **without** a separate
//! concurrency aspect.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam::channel::unbounded;

use weavepar_concurrency::resolve_any;
use weavepar_weave::aspect::precedence;
use weavepar_weave::context::CurrentContext;
use weavepar_weave::prelude::*;
use weavepar_weave::{Counter, MetricsRegistry};

use crate::common::{hints, Protocol, WORKERS_FIELD};

/// Builder-style configuration of a concrete dynamic farm (see
/// [`Protocol`]):
///
/// ```ignore
/// weaver.plug(DynamicFarmConfig::new(protocol).tuned(cell).metrics(&reg).aspect("Partition+Concurrency"));
/// ```
#[derive(Clone)]
pub struct DynamicFarmConfig {
    protocol: Protocol,
    packs_hint: Option<Arc<AtomicU32>>,
    metrics: Option<MetricsRegistry>,
}

impl DynamicFarmConfig {
    /// A dynamic farm over `protocol`, untuned and unmetered.
    pub fn new(protocol: Protocol) -> Self {
        Self { protocol, packs_hint: None, metrics: None }
    }

    /// Follow a live pack-count hint, published through
    /// [`hints::set_packs`](crate::common::hints) around each split exactly
    /// like the static farm's tuned variant.
    pub fn tuned(mut self, packs_hint: Arc<AtomicU32>) -> Self {
        self.packs_hint = Some(packs_hint);
        self
    }

    /// Meter the farm into `registry`: `{name}.packs_issued` counts packs
    /// queued for the pulling workers, `{name}.redispatched` counts packs
    /// re-offered to surviving workers after a node loss.
    pub fn metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Build the dynamic-farm aspect (partition *and* concurrency, merged)
    /// named `name`.
    pub fn aspect(self, name: impl Into<String>) -> Aspect {
        let name = name.into();
        let DynamicFarmConfig { protocol, packs_hint, metrics } = self;
        // Counters resolved once at build time; the advice bumps pre-bound
        // atomics only.
        let meters = metrics.map(|m| FarmMeters {
            packs: m.counter(&format!("{name}.packs_issued")),
            redispatched: m.counter(&format!("{name}.redispatched")),
        });
        let dup = protocol.clone();
        let drive = protocol.clone();

        Aspect::named(name)
            .precedence(precedence::PARTITION)
            // Object duplication, identical to the static farm.
            .around(
                Pointcut::construct(protocol.class).and(Pointcut::within_core()),
                move |inv: &mut Invocation| {
                    let weaver = inv.weaver().clone();
                    let ids = dup.create_workers(&weaver, inv.args()?)?;
                    let first = *ids.first().ok_or_else(|| {
                        WeaveError::app("dynamic farm protocol needs at least one worker")
                    })?;
                    weaver.intertype().set_field(first, WORKERS_FIELD, ids);
                    Ok(weavepar_weave::ret!(first))
                },
            )
            // Split + demand-driven execution on per-worker threads.
            .around(
                Pointcut::call_sig(protocol.class, protocol.method).and(Pointcut::within_core()),
                move |inv: &mut Invocation| {
                    let weaver = inv.weaver().clone();
                    let target = inv.target_required()?;
                    let workers = weaver
                        .intertype()
                        .get_field::<Vec<ObjId>>(target, WORKERS_FIELD)
                        .unwrap_or_else(|| vec![target]);
                    // The hint guard covers the whole advice, so orphan
                    // regeneration below splits with the same grain the original
                    // dispatch used even if the tuner moves mid-call.
                    let _hint = packs_hint
                        .as_ref()
                        .map(|cell| hints::set_packs(cell.load(Ordering::Relaxed)));
                    let packs = (drive.split)(inv.args()?)?;
                    let total = packs.len();
                    if let Some(m) = &meters {
                        m.packs.add(total as u64);
                    }

                    let (task_tx, task_rx) = unbounded::<(usize, Args)>();
                    // Seed the whole pack set in one batch send: one queue-lock
                    // acquisition instead of one per pack.
                    task_tx.send_batch(packs.into_iter().enumerate()).expect("queue open");
                    drop(task_tx); // workers stop when the queue drains

                    let (res_tx, res_rx) = unbounded::<(usize, WeaveResult<AnyValue>)>();
                    let ctx = CurrentContext::capture();
                    let mut threads = Vec::with_capacity(workers.len());
                    for &worker in &workers {
                        let rx = task_rx.clone();
                        let tx = res_tx.clone();
                        let weaver = weaver.clone();
                        let ctx = ctx.clone();
                        let (class, method) = (drive.class, drive.method);
                        threads.push(std::thread::spawn(move || {
                            // Keep aspect provenance (and the trace context) on
                            // this thread so the farm's own calls do not re-match
                            // its within-core pointcut.
                            let _guards = ctx.install();
                            while let Ok((k, pack)) = rx.recv() {
                                // Each pack's data comes from the client's queue,
                                // not from the previous pack this thread happened
                                // to execute: mask the data-dependency marker so
                                // traces don't record a spurious node-local edge
                                // (per-worker serialisation is already captured
                                // by the object monitor).
                                let _dep = weavepar_weave::trace::push_data_dep(None);
                                let result = weaver
                                    .invoke_call(worker, class, method, pack)
                                    .and_then(resolve_any);
                                if tx.send((k, result)).is_err() {
                                    break;
                                }
                            }
                        }));
                    }
                    drop(res_tx);

                    let mut slots: Vec<Option<AnyValue>> = (0..total).map(|_| None).collect();
                    let mut first_error = None;
                    let mut orphans: Vec<usize> = Vec::new();
                    for (k, result) in res_rx {
                        match result {
                            Ok(v) => slots[k] = Some(v),
                            // A pack lost to a dead node is not fatal: a
                            // demand-driven farm can re-offer it to whichever
                            // worker still answers once the main wave is done.
                            Err(e) if e.is_node_loss() => orphans.push(k),
                            Err(e) => {
                                if first_error.is_none() {
                                    first_error = Some(e);
                                }
                            }
                        }
                    }
                    for t in threads {
                        let _ = t.join();
                    }
                    if let Some(e) = first_error {
                        return Err(e);
                    }
                    // Packs are consumed by dispatch, so orphans must be rebuilt
                    // from the original arguments. One full re-split (shared by
                    // every orphan) replaces the old split-per-attempt; only a
                    // retry of the *same* pack, whose cached slot is already
                    // taken, pays for another split.
                    let mut regen: Option<Vec<Option<Args>>> = None;
                    for k in orphans {
                        if let Some(m) = &meters {
                            m.redispatched.inc();
                        }
                        let mut recovered = None;
                        let mut last = None;
                        for offset in 0..workers.len() {
                            let alt = workers[(k + offset) % workers.len()];
                            let cached = regen
                                .get_or_insert_with(Vec::new)
                                .get_mut(k)
                                .and_then(Option::take);
                            let pack = match cached {
                                Some(pack) => pack,
                                None => {
                                    let fresh: Vec<Option<Args>> =
                                        (drive.split)(inv.args()?)?.into_iter().map(Some).collect();
                                    let slot =
                                        regen.insert(fresh).get_mut(k).and_then(Option::take);
                                    slot.ok_or_else(|| {
                                        WeaveError::app(
                                            "dynamic farm cannot regenerate a lost pack",
                                        )
                                    })?
                                }
                            };
                            match weaver
                                .invoke_call(alt, drive.class, drive.method, pack)
                                .and_then(resolve_any)
                            {
                                Ok(v) => {
                                    recovered = Some(v);
                                    break;
                                }
                                Err(e) if e.is_node_loss() => last = Some(e),
                                Err(e) => return Err(e),
                            }
                        }
                        match recovered {
                            Some(v) => slots[k] = Some(v),
                            None => {
                                return Err(last.unwrap_or_else(|| {
                                    WeaveError::app("dynamic farm lost a pack")
                                }))
                            }
                        }
                    }
                    let results: WeaveResult<Vec<AnyValue>> = slots
                        .into_iter()
                        .map(|s| s.ok_or_else(|| WeaveError::app("dynamic farm lost a pack")))
                        .collect();
                    (drive.combine)(results?)
                },
            )
            .build()
    }
}

/// Pre-resolved dynamic-farm counters (see [`DynamicFarmConfig::metrics`]).
#[derive(Clone)]
struct FarmMeters {
    packs: Counter,
    redispatched: Counter,
}

/// Build the dynamic-farm aspect (partition *and* concurrency, merged).
#[deprecated(note = "use `DynamicFarmConfig::new(protocol).aspect(name)`")]
pub fn dynamic_farm_aspect(name: impl Into<String>, protocol: Protocol) -> Aspect {
    DynamicFarmConfig::new(protocol).aspect(name)
}

/// [`DynamicFarmConfig::new`] + [`tuned`](DynamicFarmConfig::tuned) in the
/// old free-function shape.
#[deprecated(note = "use `DynamicFarmConfig::new(protocol).tuned(cell).aspect(name)`")]
pub fn dynamic_farm_aspect_tuned(
    name: impl Into<String>,
    protocol: Protocol,
    packs_hint: Option<Arc<AtomicU32>>,
) -> Aspect {
    let mut cfg = DynamicFarmConfig::new(protocol);
    if let Some(cell) = packs_hint {
        cfg = cfg.tuned(cell);
    }
    cfg.aspect(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use weavepar_weave::{args, value::downcast_ret};

    /// Workload with deliberately unequal pack costs.
    struct Uneven {
        served: u64,
    }

    weavepar_weave::weaveable! {
        class Uneven as UnevenProxy {
            fn new(_seed: u64) -> Self { Uneven { served: 0 } }
            fn crunch(&mut self, items: Vec<u64>) -> Vec<u64> {
                self.served += 1;
                // Item value doubles as per-item cost.
                let cost: u64 = items.iter().sum();
                std::thread::sleep(std::time::Duration::from_micros(cost * 20));
                items.into_iter().map(|x| x + 1).collect()
            }
        }
    }

    fn protocol(workers: usize, packs: usize) -> Protocol {
        Protocol {
            class: "Uneven",
            method: "crunch",
            workers,
            worker_args: Arc::new(|_r, _n, orig: &Args| Ok(args![*orig.get::<u64>(0)?])),
            split: Arc::new(move |a: &Args| {
                let items = a.get::<Vec<u64>>(0)?;
                let chunk = items.len().div_ceil(packs.max(1)).max(1);
                Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
            }),
            reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
            combine: Arc::new(|vs: Vec<AnyValue>| {
                let mut all = Vec::new();
                for v in vs {
                    all.extend(downcast_ret::<Vec<u64>>(v)?);
                }
                Ok(weavepar_weave::ret!(all))
            }),
        }
    }

    #[test]
    fn dynamic_farm_computes_in_order() {
        let weaver = Weaver::new();
        weaver.plug(DynamicFarmConfig::new(protocol(3, 9)).aspect("Partition+Concurrency"));
        let w = UnevenProxy::construct(&weaver, 0).unwrap();
        assert_eq!(weaver.space().ids_of_class("Uneven").len(), 3);
        let input: Vec<u64> = (0..18).collect();
        let out = w.crunch(input.clone()).unwrap();
        assert_eq!(out, input.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn demand_driven_pull_uses_parallel_workers() {
        let weaver = Weaver::new();
        weaver.plug(DynamicFarmConfig::new(protocol(4, 8)).aspect("Partition+Concurrency"));
        let w = UnevenProxy::construct(&weaver, 0).unwrap();
        // 8 packs, each sleeping ~: with 4 pulling workers wall time is well
        // under the serial sum.
        let input: Vec<u64> = vec![100; 32]; // 32*100*20 µs = 64 ms serial
        let start = std::time::Instant::now();
        let out = w.crunch(input).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(out.len(), 32);
        assert!(
            elapsed < std::time::Duration::from_millis(45),
            "no demand-driven parallelism: {elapsed:?}"
        );
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let weaver = Weaver::new();
        weaver.plug(DynamicFarmConfig::new(protocol(1, 4)).aspect("Partition+Concurrency"));
        let w = UnevenProxy::construct(&weaver, 0).unwrap();
        let out = w.crunch(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn dynamic_farm_redispatches_packs_lost_to_a_dead_node() {
        use weavepar_middleware::{InProcFabric, MarshalRegistry, RmiConfig};
        let m = MarshalRegistry::new();
        m.register::<(u64,), ()>("Uneven", "new");
        m.register::<(Vec<u64>,), Vec<u64>>("Uneven", "crunch");
        let fabric = InProcFabric::new(2, m);
        fabric.register_class::<Uneven>();
        let registry = MetricsRegistry::new();
        let weaver = Weaver::new();
        weaver.plug(
            DynamicFarmConfig::new(protocol(2, 6))
                .metrics(&registry)
                .aspect("Partition+Concurrency"),
        );
        weaver.plug(
            RmiConfig::new("Uneven", Pointcut::call("Uneven.crunch"), fabric.clone())
                .aspect("Distribution"),
        );
        let w = UnevenProxy::construct(&weaver, 0).unwrap();
        // One of the two workers' nodes dies: every pack its thread pulls
        // fails with NodeDown, is collected as an orphan, and is re-offered
        // to the survivor — the crunch still completes with exact results.
        fabric.kill_node(1).unwrap();
        let input: Vec<u64> = (0..12).collect();
        let out = w.crunch(input.clone()).unwrap();
        assert_eq!(out, input.iter().map(|x| x + 1).collect::<Vec<_>>());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("Partition+Concurrency.packs_issued"), Some(6));
        // At least the packs the dead worker pulled first came back through
        // re-dispatch (the exact count depends on the pull race).
        assert!(snap.counter("Partition+Concurrency.redispatched").unwrap_or(0) >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let weaver = Weaver::new();
        weaver.plug(DynamicFarmConfig::new(protocol(2, 4)).aspect("Partition+Concurrency"));
        let w = UnevenProxy::construct(&weaver, 0).unwrap();
        let out = w.crunch(vec![]).unwrap();
        assert!(out.is_empty());
    }
}
