//! The supervision aspect: fault detection and worker recovery as one more
//! pluggable concern.
//!
//! The paper's fault handling stops at wrapping `RemoteException` in
//! try/catch (Figure 14). This module is the next increment the methodology
//! promises: plug one aspect and the skeletons become fault-tolerant, unplug
//! it and they are exactly the non-tolerant build — core and partition code
//! untouched.
//!
//! It weaves at [`precedence::SUPERVISION`], *outside* distribution, so a
//! typed [`WeaveError::NodeDown`] surfacing from a remote call is caught and
//! repaired before the partition layer ever sees it:
//!
//! * **checkpoints** — each aspect-managed worker's marshalled constructor
//!   arguments are recorded when it is built, and (when the class has a
//!   state codec) its post-construction state is snapshotted; each
//!   redirected call's argument pack is encoded *before* the call leaves,
//!   so a lost task's input chunk survives the node that was computing it;
//! * **detection** — the call advice catches `NodeDown` from the layers
//!   beneath it (the distribution aspect's remote call, or the name-server
//!   tombstone);
//! * **recovery** — under a recovery lock the dead worker is rebuilt on a
//!   surviving node ([`InProcFabric::restore`] from its checkpointed state,
//!   falling back to re-construction from its recorded constructor
//!   arguments), the stub's remote reference is repointed, and the orphaned
//!   task is re-dispatched from its saved argument pack. Concurrent calls
//!   that hit the same dead worker find the repaired reference and only
//!   re-dispatch themselves.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use weavepar_middleware::aspects::REMOTE_FIELD;
use weavepar_middleware::{Bytes, InProcFabric, RemoteRef};
use weavepar_weave::aspect::precedence;
use weavepar_weave::prelude::*;

/// Counters for what the supervisor actually did.
#[derive(Debug, Default)]
pub struct SupervisorStats {
    workers_recovered: AtomicUsize,
    tasks_redispatched: AtomicUsize,
}

impl SupervisorStats {
    /// Workers rebuilt on a surviving node after their node died.
    pub fn workers_recovered(&self) -> usize {
        self.workers_recovered.load(Ordering::Relaxed)
    }

    /// Calls re-dispatched from their checkpointed argument pack.
    pub fn tasks_redispatched(&self) -> usize {
        self.tasks_redispatched.load(Ordering::Relaxed)
    }
}

/// Shared supervisor state: per-worker checkpoints plus the recovery lock.
struct Supervisor {
    fabric: Arc<InProcFabric>,
    class: &'static str,
    /// Marshalled constructor arguments per local stub (recorded pre-proceed,
    /// so they exist even if the node dies later).
    ctor_args: Mutex<HashMap<ObjId, Bytes>>,
    /// Post-construction state snapshot per local stub (only for classes
    /// with a registered state codec).
    states: Mutex<HashMap<ObjId, Bytes>>,
    /// Serialises recoveries so N concurrent failures of one worker rebuild
    /// it once, not N times.
    recovery: Mutex<()>,
    stats: Arc<SupervisorStats>,
}

impl Supervisor {
    /// Find a node that is still alive.
    fn survivor(&self) -> WeaveResult<usize> {
        for n in 0..self.fabric.node_count() {
            if !self.fabric.node(n)?.is_down() {
                return Ok(n);
            }
        }
        Err(WeaveError::remote("supervisor: no surviving node to recover on"))
    }

    /// Rebuild the worker behind `target` after `dead` was lost; returns the
    /// reference calls should go to now. Re-checks under the recovery lock:
    /// if another thread already repaired the stub, its new reference is
    /// reused instead of rebuilding again.
    fn recover(&self, weaver: &Weaver, target: ObjId, dead: RemoteRef) -> WeaveResult<RemoteRef> {
        let _guard = self.recovery.lock();
        if let Some(current) = weaver.intertype().get_field::<RemoteRef>(target, REMOTE_FIELD) {
            if current != dead && !self.fabric.node(current.node)?.is_down() {
                return Ok(current);
            }
        }
        let survivor = self.survivor()?;
        let checkpoint = self.states.lock().get(&target).cloned();
        let rebuilt = match checkpoint {
            Some(state) => self.fabric.restore(survivor, self.class, state)?,
            None => {
                let ctor_args =
                    self.ctor_args.lock().get(&target).cloned().ok_or_else(|| {
                        WeaveError::remote("supervisor: no checkpoint for worker")
                    })?;
                let ctor = self.fabric.marshal().method_id(self.class, "new")?;
                self.fabric.construct_on_id(survivor, ctor, ctor_args)?
            }
        };
        weaver.intertype().set_field(target, REMOTE_FIELD, rebuilt);
        self.stats.workers_recovered.fetch_add(1, Ordering::Relaxed);
        Ok(rebuilt)
    }
}

/// Build the supervision aspect for `class`, catching node loss on calls
/// matched by `call_pointcut` (use the same pointcut as the distribution
/// aspect, *without* `within_core`, so aspect-issued skeleton calls are
/// protected too). Returns the aspect plus its stats handle.
pub fn supervisor_aspect(
    name: impl Into<String>,
    class: &'static str,
    call_pointcut: Pointcut,
    fabric: Arc<InProcFabric>,
) -> (Aspect, Arc<SupervisorStats>) {
    let stats = Arc::new(SupervisorStats::default());
    let supervisor = Arc::new(Supervisor {
        fabric: fabric.clone(),
        class,
        ctor_args: Mutex::new(HashMap::new()),
        states: Mutex::new(HashMap::new()),
        recovery: Mutex::new(()),
        stats: stats.clone(),
    });
    let construct_supervisor = supervisor.clone();
    let aspect = Aspect::named(name)
        .precedence(precedence::SUPERVISION)
        // Checkpoint every construction of the class (worker or lead):
        // marshalled constructor arguments before `proceed` consumes them,
        // and — once the distribution aspect beneath created the remote
        // instance — a snapshot of its initial state.
        .around(Pointcut::construct(class), move |inv: &mut Invocation| {
            let sup = &construct_supervisor;
            // Without a registered codec there is nothing to checkpoint;
            // supervision degrades to a pass-through.
            let Ok(ctor) = sup.fabric.marshal().method_id(class, "new") else {
                return inv.proceed();
            };
            let mut buf = sup.fabric.buffers().take();
            sup.fabric.marshal().encode_args_id(ctor, inv.args()?, &mut buf)?;
            let saved = buf.freeze();
            let ret = inv.proceed()?;
            if let Some(local) = ret.downcast_ref::<ObjId>().copied() {
                sup.ctor_args.lock().insert(local, saved);
                if sup.fabric.marshal().knows_state(class) {
                    if let Some(remote) =
                        inv.weaver().intertype().get_field::<RemoteRef>(local, REMOTE_FIELD)
                    {
                        if let Ok(state) = sup.fabric.snapshot(remote, false) {
                            sup.states.lock().insert(local, state);
                        }
                    }
                }
            }
            Ok(ret)
        })
        // Detection + recovery + re-dispatch around every protected call.
        .around(call_pointcut, move |inv: &mut Invocation| {
            let sup = &supervisor;
            let target = inv.target_required()?;
            let weaver = inv.weaver().clone();
            let Some(remote) = weaver.intertype().get_field::<RemoteRef>(target, REMOTE_FIELD)
            else {
                // Purely local object: node loss cannot reach it.
                return inv.proceed();
            };
            let Ok(method) = sup.fabric.marshal().method_id(sup.class, inv.signature().method)
            else {
                return inv.proceed();
            };
            // Per-task checkpoint: the input chunk leaves in marshalled form
            // before the call does, so it survives the worker's node.
            let mut buf = sup.fabric.buffers().take();
            sup.fabric.marshal().encode_args_id(method, inv.args()?, &mut buf)?;
            let saved = buf.freeze();
            match inv.proceed() {
                Ok(ret) => Ok(ret),
                Err(err) if err.is_node_loss() => {
                    let repaired = sup.recover(&weaver, target, remote)?;
                    let reply = sup
                        .fabric
                        .call_id(repaired, method, saved, true)?
                        .ok_or_else(|| WeaveError::remote("supervisor: missing reply"))?;
                    let mut view = reply.clone();
                    let ret = sup.fabric.marshal().decode_ret_id(method, &mut view);
                    drop(view);
                    sup.fabric.buffers().recycle(reply);
                    sup.stats.tasks_redispatched.fetch_add(1, Ordering::Relaxed);
                    ret
                }
                Err(err) => Err(err),
            }
        })
        .build();
    (aspect, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Protocol;
    use crate::farm::FarmConfig;
    use std::sync::Arc;
    use weavepar_middleware::wire::MarshalRegistry;
    use weavepar_middleware::{Policy, RmiConfig};
    use weavepar_weave::{args, value::downcast_ret};

    struct Squarer {
        bias: u64,
    }

    weavepar_weave::weaveable! {
        class Squarer as SquarerProxy {
            fn new(bias: u64) -> Self { Squarer { bias } }
            fn compute(&mut self, items: Vec<u64>) -> Vec<u64> {
                items.into_iter().map(|x| x * x + self.bias).collect()
            }
        }
    }

    fn marshal() -> MarshalRegistry {
        let m = MarshalRegistry::new();
        m.register::<(u64,), ()>("Squarer", "new");
        m.register::<(Vec<u64>,), Vec<u64>>("Squarer", "compute");
        m.register_state::<Squarer, u64, _, _>(|s| s.bias, |bias| Squarer { bias });
        m
    }

    fn protocol(workers: usize, packs: usize) -> Protocol {
        Protocol {
            class: "Squarer",
            method: "compute",
            workers,
            worker_args: Arc::new(|_r, _n, orig: &Args| Ok(args![*orig.get::<u64>(0)?])),
            split: Arc::new(move |a: &Args| {
                let items = a.get::<Vec<u64>>(0)?;
                let chunk = items.len().div_ceil(packs.max(1)).max(1);
                Ok(items.chunks(chunk).map(|c| args![c.to_vec()]).collect())
            }),
            reforward: Arc::new(|v: AnyValue| Ok(Args::from_values(vec![v]))),
            combine: Arc::new(|vs: Vec<AnyValue>| {
                let mut all = Vec::new();
                for v in vs {
                    all.extend(downcast_ret::<Vec<u64>>(v)?);
                }
                Ok(weavepar_weave::ret!(all))
            }),
        }
    }

    /// The full stack: farm partition, supervision, RMI distribution.
    fn stack(
        nodes: usize,
        workers: usize,
        packs: usize,
    ) -> (Weaver, Arc<InProcFabric>, Arc<SupervisorStats>) {
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(nodes, marshal());
        fabric.register_class::<Squarer>();
        weaver.plug(FarmConfig::new(protocol(workers, packs)).aspect("Partition"));
        let (sup, stats) = supervisor_aspect(
            "Supervision",
            "Squarer",
            Pointcut::call("Squarer.compute"),
            fabric.clone(),
        );
        weaver.plug(sup);
        weaver.plug(
            RmiConfig::new("Squarer", Pointcut::call("Squarer.compute"), fabric.clone())
                .placement(Policy::round_robin())
                .aspect("Distribution"),
        );
        (weaver, fabric, stats)
    }

    #[test]
    fn farm_survives_a_worker_node_loss() {
        let (weaver, fabric, stats) = stack(4, 4, 8);
        let lead = SquarerProxy::construct(&weaver, 3).unwrap();
        let input: Vec<u64> = (0..32).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * x + 3).collect();
        // Warm run, then kill one worker's node and run again: the
        // supervisor rebuilds the dead workers on survivors and the farm
        // completes with identical results.
        assert_eq!(lead.compute(input.clone()).unwrap(), expect);
        fabric.kill_node(1).unwrap();
        assert_eq!(lead.compute(input.clone()).unwrap(), expect, "degraded run must match");
        assert!(stats.workers_recovered() >= 1, "at least one worker was rebuilt");
        assert!(stats.tasks_redispatched() >= 1, "orphaned packs were re-dispatched");
        // A third run hits the repaired references without new recoveries.
        let recovered = stats.workers_recovered();
        assert_eq!(lead.compute(input).unwrap(), expect);
        assert_eq!(stats.workers_recovered(), recovered, "repair is sticky");
    }

    #[test]
    fn recovery_restores_checkpointed_state() {
        let (weaver, fabric, stats) = stack(3, 3, 3);
        let lead = SquarerProxy::construct(&weaver, 7).unwrap();
        // Kill two of the three nodes: every worker that lived there must be
        // revived with its bias intact (restore path, state codec present).
        fabric.kill_node(1).unwrap();
        fabric.kill_node(2).unwrap();
        let input: Vec<u64> = (0..9).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * x + 7).collect();
        assert_eq!(lead.compute(input).unwrap(), expect);
        assert!(stats.workers_recovered() >= 1);
    }

    #[test]
    fn no_survivor_is_a_typed_failure() {
        let (weaver, fabric, _stats) = stack(2, 2, 2);
        let lead = SquarerProxy::construct(&weaver, 0).unwrap();
        fabric.kill_node(0).unwrap();
        fabric.kill_node(1).unwrap();
        let err = lead.compute(vec![1, 2]).unwrap_err();
        // Unrecoverable: the error is typed (node loss or the supervisor's
        // "no surviving node"), never a hang.
        assert!(
            err.is_node_loss() || matches!(err, WeaveError::Remote(_)),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn unplugged_supervision_leaves_failures_typed_but_unhandled() {
        // Without the supervisor the same kill surfaces as NodeDown to the
        // caller — fault tolerance really lives in the aspect.
        let weaver = Weaver::new();
        let fabric = InProcFabric::new(2, marshal());
        fabric.register_class::<Squarer>();
        weaver.plug(
            RmiConfig::new("Squarer", Pointcut::call("Squarer.compute"), fabric.clone())
                .placement(Policy::fixed(1))
                .aspect("Distribution"),
        );
        let s = SquarerProxy::construct(&weaver, 0).unwrap();
        fabric.kill_node(1).unwrap();
        let err = s.compute(vec![1]).unwrap_err();
        assert!(err.is_node_loss(), "unexpected error: {err}");
    }
}
