//! # weavepar-cluster — a deterministic discrete-event cluster simulator
//!
//! The paper evaluates on seven dual-Xeon 3.2 GHz (hyper-threaded) nodes
//! connected by Gigabit Ethernet — hardware this reproduction does not have.
//! Instead, the benchmark harness runs the *real woven applications*
//! in-process with a [`Recorder`](weavepar_weave::trace::Recorder) installed,
//! then replays the captured task DAG on this simulator configured with the
//! paper's cluster parameters. The aspect structure, call multiplicities,
//! message sizes and causal ordering in the replay are therefore genuine
//! artefacts of the woven execution; only CPU speed and network costs are
//! modelled.
//!
//! ## Model
//!
//! * A [`ClusterConfig`] describes nodes × cores and the interconnect
//!   (latency + bandwidth).
//! * A [`MiddlewareProfile`] adds per-call middleware costs (marshal CPU,
//!   protocol latency) — presets for Java-RMI-like and MPP-like stacks.
//! * A [`Placement`] maps objects to nodes.
//! * [`simulate`](sim::simulate) replays a [`TraceGraph`]: each recorded task
//!   occupies one core on its object's node for its recorded (or modelled)
//!   cost, tasks on the same object serialise (per-object monitors), `after`
//!   edges carry messages (paying network costs when they cross nodes), and a
//!   client timeline issues root tasks sequentially — blocking on synchronous
//!   ones, as the real `main` did.
//!
//! The engine is fully deterministic: same trace + same parameters ⇒ same
//! report, bit for bit.

pub mod analysis;
pub mod config;
pub mod report;
pub mod sim;

pub use analysis::{critical_path, lower_bound};
pub use config::{
    ClusterConfig, FaultTimeline, MiddlewareProfile, NodeFailure, PackingModel, Placement,
    SimParams,
};
pub use report::SimReport;
pub use sim::{simulate, simulate_schedule, simulate_with_faults, Schedule, ScheduledTask};
