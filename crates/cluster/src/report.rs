//! Simulation output: the numbers the benchmark harness turns into the
//! paper's figures.

/// Result of replaying one trace on one parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end virtual time: everything executed and the client resumed,
    /// seconds.
    pub makespan: f64,
    /// Sum of all task CPU costs after inflation/speed scaling, seconds
    /// (the sequential work content).
    pub total_work: f64,
    /// Busy CPU time per node, seconds.
    pub busy: Vec<f64>,
    /// Number of cross-node messages.
    pub messages: usize,
    /// Bytes carried by cross-node messages.
    pub bytes: usize,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Tasks re-dispatched to a surviving node after a simulated node
    /// failure (always 0 without a fault timeline).
    pub redispatched: usize,
    /// Time at which the client issued its last root (or resumed after its
    /// last synchronous call), seconds.
    pub client_done: f64,
}

impl SimReport {
    /// Mean core utilisation over the makespan across `cores` total cores.
    pub fn utilization(&self, total_cores: usize) -> f64 {
        if self.makespan <= 0.0 || total_cores == 0 {
            return 0.0;
        }
        self.busy.iter().sum::<f64>() / (self.makespan * total_cores as f64)
    }

    /// Speedup relative to a given sequential execution time.
    pub fn speedup(&self, sequential: f64) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        sequential / self.makespan
    }

    /// Export the report's integer totals into `registry` under `prefix`
    /// (`{prefix}.messages`, `.bytes`, `.tasks`, `.redispatched`), so a
    /// simulated run and a live run land in the same [`Snapshot`] and can be
    /// compared line-for-line. Counters accumulate across repeated exports —
    /// use a fresh registry (or distinct prefixes) per replayed trace.
    ///
    /// [`Snapshot`]: weavepar_weave::Snapshot
    pub fn install_metrics(&self, registry: &weavepar_weave::MetricsRegistry, prefix: &str) {
        registry.counter(&format!("{prefix}.messages")).add(self.messages as u64);
        registry.counter(&format!("{prefix}.bytes")).add(self.bytes as u64);
        registry.counter(&format!("{prefix}.tasks")).add(self.tasks as u64);
        registry.counter(&format!("{prefix}.redispatched")).add(self.redispatched as u64);
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "makespan {:.3}s | work {:.3}s | {} tasks | {} msgs ({} bytes)",
            self.makespan, self.total_work, self.tasks, self.messages, self.bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            makespan: 2.0,
            total_work: 6.0,
            busy: vec![2.0, 2.0, 2.0],
            messages: 10,
            bytes: 1000,
            tasks: 5,
            redispatched: 0,
            client_done: 1.0,
        }
    }

    #[test]
    fn utilization_math() {
        let r = report();
        // 6s busy over 2s × 3 cores = 100%.
        assert!((r.utilization(3) - 1.0).abs() < 1e-12);
        assert!((r.utilization(6) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(0), 0.0);
    }

    #[test]
    fn speedup_math() {
        let r = report();
        assert!((r.speedup(6.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_compact() {
        let s = report().to_string();
        assert!(s.contains("makespan 2.000s"));
        assert!(s.contains("5 tasks"));
    }

    #[test]
    fn install_metrics_exports_totals() {
        let registry = weavepar_weave::MetricsRegistry::new();
        report().install_metrics(&registry, "sim");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sim.messages"), Some(10));
        assert_eq!(snap.counter("sim.bytes"), Some(1000));
        assert_eq!(snap.counter("sim.tasks"), Some(5));
        assert_eq!(snap.counter("sim.redispatched"), Some(0));
    }

    #[test]
    fn degenerate_makespan() {
        let mut r = report();
        r.makespan = 0.0;
        assert_eq!(r.utilization(3), 0.0);
        assert_eq!(r.speedup(6.0), 0.0);
    }
}
